#!/usr/bin/env bash
# Full local gate: formatting, clippy, repo-specific lints, tests.
# Usage: scripts/check.sh [--fix]   (--fix applies rustfmt instead of checking)
#
# sm-lint ratchet workflow
# ------------------------
# Line rules (D1-D4, R1-R3) are held at zero unwaived violations. Graph
# rules (P1/L1/D5/R4; audited by W1) carry a known backlog, tracked per
# (rule, crate) in lint-baseline.json:
#   * a count RISING above its baseline entry fails this gate — fix the
#     new finding or waive it with `// sm-lint: allow(<rule>) — why`;
#   * a count FALLING is auto-lowered in the file by the run below —
#     commit the updated lint-baseline.json with your cleanup so the
#     burn-down is monotone;
#   * to deliberately accept a higher count (e.g. after adding a rule),
#     regenerate wholesale:
#       cargo run -p sm-lint -- --baseline lint-baseline.json --fix-baseline
#     and justify the diff in review.
set -euo pipefail
cd "$(dirname "$0")/.."

FIX=0
if [[ "${1:-}" == "--fix" ]]; then
  FIX=1
fi

step() { printf '\n== %s ==\n' "$*"; }

step "rustfmt"
if [[ "$FIX" == 1 ]]; then
  cargo fmt --all
else
  cargo fmt --all --check
fi

step "clippy (workspace lints: unwrap_used warn, dbg_macro/todo deny)"
if command -v cargo-clippy >/dev/null 2>&1 || cargo clippy --version >/dev/null 2>&1; then
  cargo clippy --workspace --all-targets -- -D warnings -A clippy::unwrap_used
else
  echo "clippy not installed; skipping"
fi

step "sm-lint (determinism & robustness invariants, ratcheted baseline)"
cargo run -q -p sm-lint -- --json --baseline lint-baseline.json

step "chaos gate (control-plane fault tolerance)"
cargo test --test chaos -q

step "DST gate (fixed-seed smoke swarm + fencing-mutation shrink)"
cargo test --test dst -q

step "reconfig gate (joint-consensus membership changes under chaos)"
cargo test --test reconfig -q

step "split gate (adaptive splitting/merging under the skew storm)"
cargo test --test split -q

step "bench gates (recorded router + simulator floors)"
cargo test --test bench_router --test bench_sim -q

step "queue differential gate (calendar vs heap, byte-identical runs)"
cargo test --release --test sim_queue_diff -q

step "tests"
cargo test --workspace -q

printf '\nall checks passed\n'
