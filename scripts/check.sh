#!/usr/bin/env bash
# Full local gate: formatting, clippy, repo-specific lints, tests.
# Usage: scripts/check.sh [--fix]   (--fix applies rustfmt instead of checking)
set -euo pipefail
cd "$(dirname "$0")/.."

FIX=0
if [[ "${1:-}" == "--fix" ]]; then
  FIX=1
fi

step() { printf '\n== %s ==\n' "$*"; }

step "rustfmt"
if [[ "$FIX" == 1 ]]; then
  cargo fmt --all
else
  cargo fmt --all --check
fi

step "clippy (workspace lints: unwrap_used warn, dbg_macro/todo deny)"
if command -v cargo-clippy >/dev/null 2>&1 || cargo clippy --version >/dev/null 2>&1; then
  cargo clippy --workspace --all-targets -- -D warnings -A clippy::unwrap_used
else
  echo "clippy not installed; skipping"
fi

step "sm-lint (determinism & robustness invariants)"
cargo run -q -p sm-lint

step "chaos gate (control-plane fault tolerance)"
cargo test --test chaos -q

step "DST gate (fixed-seed smoke swarm + fencing-mutation shrink)"
cargo test --test dst -q

step "tests"
cargo test --workspace -q

printf '\nall checks passed\n'
