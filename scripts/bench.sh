#!/usr/bin/env bash
# Solver benchmark: runs the machine-readable bench over the Figure-21
# problem sizes and records the result as BENCH_solver.json.
#
# Usage: scripts/bench.sh [--threads 1,8]
#   SM_SCALE=paper scripts/bench.sh    # full paper sizes (slow)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_solver.json"

cargo build --release -q -p sm-bench

./target/release/bench_solver "$@" > "$OUT"

echo "wrote $OUT"
