#!/usr/bin/env bash
# Machine-readable benchmarks. Targets:
#   scripts/bench.sh [solver] [--threads 1,8]   -> BENCH_solver.json
#   scripts/bench.sh router                     -> BENCH_router.json
#   scripts/bench.sh sim                        -> BENCH_sim.json
#   scripts/bench.sh split                      -> BENCH_split.json
#
#   SM_SCALE=paper scripts/bench.sh             # full paper sizes (slow)
set -euo pipefail
cd "$(dirname "$0")/.."

TARGET="solver"
if [[ $# -gt 0 && $1 != --* ]]; then
  TARGET="$1"
  shift
fi

case "$TARGET" in
  solver)
    OUT="BENCH_solver.json"
    BIN="bench_solver"
    ;;
  router)
    OUT="BENCH_router.json"
    BIN="bench_router"
    ;;
  sim)
    OUT="BENCH_sim.json"
    BIN="bench_sim"
    ;;
  split)
    OUT="BENCH_split.json"
    BIN="fig_split"
    ;;
  *)
    echo "unknown bench target '$TARGET' (expected: solver, router, sim, split)" >&2
    exit 2
    ;;
esac

cargo build --release -q -p sm-bench

"./target/release/$BIN" "$@" > "$OUT"

echo "wrote $OUT"
