#!/usr/bin/env bash
# Seed-swarm DST exploration: N seeds across every fault profile, with
# automatic shrinking of any failure to a replayable JSON reproducer.
#
# Usage: scripts/swarm.sh [SEEDS|--nightly] [extra swarm flags...]
#   scripts/swarm.sh                  # 64 seeds x all profiles
#   scripts/swarm.sh 256              # bigger sweep
#   scripts/swarm.sh --nightly        # 1000 seeds x all profiles — the
#                                     # nightly soak; the calendar event
#                                     # queue makes this a minutes-scale
#                                     # run, not an hours-scale one
#   scripts/swarm.sh 16 --mutate      # demonstrate the oracle catching
#                                     # the broken-fencing mutation
#   scripts/swarm.sh 8 --replay out/repro-lossy_net-2.json
#
# Reproducers land in target/swarm/ and replay with:
#   cargo run --release -p sm-bench --bin swarm -- --replay <file>
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${1:-64}"
if [[ "$SEEDS" == "--nightly" ]]; then
  SEEDS=1000
fi
shift || true

exec cargo run --release -q -p sm-bench --bin swarm -- \
  --seeds "$SEEDS" --out target/swarm "$@"
