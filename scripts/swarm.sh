#!/usr/bin/env bash
# Seed-swarm DST exploration: N seeds across every fault profile, with
# automatic shrinking of any failure to a replayable JSON reproducer.
#
# Usage: scripts/swarm.sh [SEEDS] [extra swarm flags...]
#   scripts/swarm.sh                  # 64 seeds x all profiles
#   scripts/swarm.sh 256              # bigger sweep
#   scripts/swarm.sh 16 --mutate      # demonstrate the oracle catching
#                                     # the broken-fencing mutation
#   scripts/swarm.sh 8 --replay out/repro-lossy_net-2.json
#
# Reproducers land in target/swarm/ and replay with:
#   cargo run --release -p sm-bench --bin swarm -- --replay <file>
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${1:-64}"
shift || true

exec cargo run --release -q -p sm-bench --bin swarm -- \
  --seeds "$SEEDS" --out target/swarm "$@"
