#![warn(missing_docs)]
//! Shard Manager: a generic shard management framework for
//! geo-distributed applications.
//!
//! This facade crate re-exports the workspace's public API. See the
//! individual crates for detail:
//!
//! - [`types`] — shared domain vocabulary (ids, key ranges, topology,
//!   load metrics, policies, assignments).
//! - [`sim`] — deterministic discrete-event simulation substrate.
//! - [`zk`] — ZooKeeper-like coordination store.
//! - [`cluster`] — Twine-like regional cluster manager with the
//!   TaskControl negotiation protocol.
//! - [`solver`] — ReBalancer-like constraint solver (local search).
//! - [`allocator`] — SM's shard placement & load balancing layer.
//! - [`core`] — the orchestrator, TaskController, migration protocol,
//!   and scale-out control plane.
//! - [`routing`] — service discovery and the client-side service router.
//! - [`apps`] — example applications built on the SM programming model.
//! - [`workloads`] — census / load / snapshot generators used by the
//!   benchmark harness.

pub use sm_allocator as allocator;
pub use sm_apps as apps;
pub use sm_cluster as cluster;
pub use sm_core as core;
pub use sm_routing as routing;
pub use sm_sim as sim;
pub use sm_solver as solver;
pub use sm_types as types;
pub use sm_workloads as workloads;
pub use sm_zk as zk;
