//! Geo-distributed deployment surviving a whole-region outage (§8.3).
//!
//! ```sh
//! cargo run --release --example geo_failover
//! ```
//!
//! A secondary-only application spreads two replicas of each shard
//! across FRC, PRN, and ODN. East-coast shards prefer FRC, where the
//! client lives. When FRC fails, requests transparently fail over to
//! remote replicas (higher latency); when it recovers, SM migrates
//! replicas home and latency returns to normal.

use shard_manager::apps::harness::{ExperimentConfig, SimWorld, WorldEvent};
use shard_manager::sim::SimTime;
use shard_manager::types::{AppPolicy, RegionId, ShardId};

fn main() {
    let shards = 200u64;
    let ec = 80u64;
    let mut cfg = ExperimentConfig::three_region_geo(8, shards);
    let mut policy = AppPolicy::secondary_only(2);
    for s in 0..ec {
        policy
            .region_preferences
            .insert(ShardId(s), (RegionId(0), 2.0));
    }
    cfg.policy = policy;
    cfg.client_regions = Some(vec![RegionId(0)]);
    cfg.target_shards = Some(0..ec);
    cfg.periodic_alloc_interval = shard_manager::sim::SimDuration::from_secs(30);
    let mut sim = SimWorld::primed(cfg);
    sim.world_mut().sample_interval = shard_manager::sim::SimDuration::from_secs(10);

    sim.schedule_at(SimTime::from_secs(90), WorldEvent::RegionFail(RegionId(0)));
    sim.schedule_at(
        SimTime::from_secs(300),
        WorldEvent::RegionRecover(RegionId(0)),
    );
    sim.run_until(SimTime::from_secs(500));

    let w = sim.world();
    let lat = w.trace.series("latency_ms").expect("latency recorded");
    let phase = |label: &str, from: u64, to: u64| {
        let mean = lat
            .mean_in(SimTime::from_secs(from), SimTime::from_secs(to))
            .unwrap_or(f64::NAN);
        println!("  {label:<34} {mean:>7.1} ms");
    };
    println!("mean client latency by phase:");
    phase("steady state (local replicas)", 40, 90);
    phase("failover (remote replicas)", 120, 290);
    phase("after recovery (moved back)", 420, 500);
    let back = (0..ec)
        .filter(|&s| {
            w.orchestrator()
                .assignment()
                .replicas(ShardId(s))
                .iter()
                .any(|r| w.server_region(r.server) == Some(RegionId(0)))
        })
        .count();
    println!("\nEC shards with a replica back in FRC: {back}/{ec}");
    println!(
        "overall success rate: {:.2}%",
        w.stats.success_rate() * 100.0
    );
}
