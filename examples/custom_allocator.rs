//! Composability (§1.2, §7): adopting only the allocator.
//!
//! ```sh
//! cargo run --release --example custom_allocator
//! ```
//!
//! The paper's "Data Placer" path: a complex data store keeps its own
//! orchestrator but reuses SM's allocator to compute shard-to-server
//! assignments that honor both its placement needs and the
//! infrastructure contracts. This example drives `sm-allocator`
//! standalone: geo spread, region preferences, a draining server, and
//! capacity-constrained balancing — no SM control plane involved.

use shard_manager::allocator::{AllocConfig, AllocInput, Allocator, ServerInfo, ShardPlacement};
use shard_manager::types::{LoadVector, Location, MachineId, Metric, RegionId, ServerId, ShardId};

fn main() {
    // 3 regions x 4 servers with heterogeneous CPU capacity.
    let mut servers = Vec::new();
    for i in 0..12u32 {
        let region = RegionId((i / 4) as u16);
        servers.push(ServerInfo {
            id: ServerId(i),
            location: Location {
                region,
                datacenter: u32::from(region.raw()),
                rack: i,
                machine: MachineId(i),
            },
            capacity: LoadVector::single(Metric::Cpu.id(), if i % 4 == 0 { 80.0 } else { 100.0 }),
            draining: i == 5, // server 5 has pending maintenance
        });
    }

    // 60 shards x 2 replicas, all unplaced; shards 0-19 prefer region 2.
    let shards: Vec<ShardPlacement> = (0..60)
        .map(|s| ShardPlacement::unplaced(ShardId(s), LoadVector::single(Metric::Cpu.id(), 6.0), 2))
        .collect();
    let mut config = AllocConfig::new(vec![Metric::Cpu.id()]);
    for s in 0..20u64 {
        config
            .region_preferences
            .insert(ShardId(s), (RegionId(2), 1.5));
    }
    config.search.seed = 2;

    let plan = Allocator::plan_periodic(&AllocInput {
        servers,
        shards,
        config,
    });
    println!(
        "plan: {} placements, {} violations left",
        plan.moves.len(),
        plan.violations.total()
    );

    // Verify the properties the Data Placer is hired for.
    let region_of = |srv: ServerId| RegionId((srv.raw() / 4) as u16);
    let mut on_draining = 0;
    let mut colocated = 0;
    let mut pref_honored = 0;
    for (shard, replicas) in &plan.target {
        let regions: Vec<RegionId> = replicas.iter().flatten().map(|&r| region_of(r)).collect();
        if regions.len() == 2 && regions[0] == regions[1] {
            colocated += 1;
        }
        if replicas.iter().flatten().any(|&r| r == ServerId(5)) {
            on_draining += 1;
        }
        if shard.raw() < 20 && regions.contains(&RegionId(2)) {
            pref_honored += 1;
        }
    }
    println!("replica pairs sharing a region : {colocated} (want 0 — spread goal)");
    println!("replicas on the draining server: {on_draining} (want 0 — drain goal)");
    println!("preferring shards in region 2  : {pref_honored}/20 (region preference)");
}
