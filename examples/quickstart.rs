//! Quickstart: stand up a sharded application under Shard Manager and
//! watch it serve.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This builds a single-region deployment of the bundled key-value
//! store (12 servers, 500 app-defined shards), lets SM place every
//! shard, serves client traffic for two simulated minutes, then crashes
//! a server and shows SM's automatic failover.

use shard_manager::apps::harness::{ExperimentConfig, SimWorld, WorldEvent};
use shard_manager::sim::SimTime;
use shard_manager::types::{ServerId, ShardId};

fn main() {
    // 12 servers, 500 shards, primary-only policy, graceful migration
    // and TaskController on — the defaults mirror §3.4's feature list.
    let cfg = ExperimentConfig::single_region(12, 500);
    let mut sim = SimWorld::primed(cfg);

    // Let SM bootstrap (placement + shard-map dissemination), then
    // serve for two minutes of simulated time.
    sim.run_until(SimTime::from_secs(120));
    {
        let w = sim.world();
        println!("after 2 minutes:");
        println!(
            "  shards placed        : {}",
            w.orchestrator().assignment().shard_count()
        );
        println!("  requests served      : {}", w.stats.ok);
        println!(
            "  success rate         : {:.2}%",
            w.stats.success_rate() * 100.0
        );
    }

    // Crash a server: ZooKeeper's ephemeral node expires, the
    // orchestrator detects it, promotes/re-places the lost shards, and
    // publishes a new map.
    let victim = ServerId(0);
    let lost = sim.world().orchestrator().shards_on(victim).len();
    println!("\ncrashing {victim} (hosted {lost} shards)...");
    sim.schedule_at(SimTime::from_secs(121), WorldEvent::ServerCrash(victim));
    sim.run_until(SimTime::from_secs(240));

    let w = sim.world();
    println!("after failover:");
    println!(
        "  shards placed        : {}",
        w.orchestrator().assignment().shard_count()
    );
    println!(
        "  shards on dead server: {}",
        w.orchestrator().shards_on(victim).len()
    );
    println!(
        "  success rate         : {:.2}%",
        w.stats.success_rate() * 100.0
    );
    // Every shard has a live primary.
    let orphan = (0..500)
        .filter(|&s| {
            w.orchestrator()
                .assignment()
                .primary_of(ShardId(s))
                .is_none()
        })
        .count();
    println!("  shards without owner : {orphan}");
}
