//! A ZippyDB-like replicated store on the SM programming model (§2.5).
//!
//! ```sh
//! cargo run --release --example zippydb
//! ```
//!
//! Drives the primary-secondary replicated store directly through the
//! Figure 11 API — the same calls the orchestrator would make — to show
//! the division of labour: SM elects primaries and orchestrates role
//! changes; the application's replicated log keeps committed writes
//! safe across the failover.

use shard_manager::apps::replstore::{shared_groups, ReplStoreServer};
use shard_manager::core::ShardServer;
use shard_manager::types::{ReplicaRole, ServerId, ShardId};

fn main() {
    let groups = shared_groups();
    let mut a = ReplStoreServer::new(ServerId(1), groups.clone());
    let mut b = ReplStoreServer::new(ServerId(2), groups.clone());
    let mut c = ReplStoreServer::new(ServerId(3), groups.clone());
    let shard = ShardId(0);

    // SM bootstraps the shard: one primary, two secondaries.
    a.add_shard(shard, ReplicaRole::Primary)
        .expect("add primary");
    b.add_shard(shard, ReplicaRole::Secondary)
        .expect("add secondary");
    c.add_shard(shard, ReplicaRole::Secondary)
        .expect("add secondary");

    // Writes go through the primary and commit on a quorum.
    for i in 0..5u8 {
        let idx = a.write(shard, vec![i]).expect("write");
        println!("wrote entry {idx} via the primary");
    }
    println!(
        "committed at primary/secondaries: {}/{}/{}",
        a.committed_len(shard),
        b.committed_len(shard),
        c.committed_len(shard)
    );

    // The primary's server dies. SM detects it (ZooKeeper ephemeral),
    // drops the replica, and promotes a surviving secondary.
    println!("\nprimary fails; SM promotes a secondary...");
    a.drop_shard(shard).expect("drop");
    b.change_role(shard, ReplicaRole::Secondary, ReplicaRole::Primary)
        .expect("promote");

    // No committed write was lost, and the new primary serves writes.
    assert_eq!(b.committed_len(shard), 5);
    let idx = b.write(shard, b"after failover".to_vec()).expect("write");
    println!("new primary accepted entry {idx}");
    println!(
        "committed at new primary/secondary: {}/{}",
        b.committed_len(shard),
        c.committed_len(shard)
    );

    // SM replaces the lost replica; it catches up through replication.
    let mut d = ReplStoreServer::new(ServerId(4), groups);
    d.prepare_add_shard(shard, ServerId(2), ReplicaRole::Secondary)
        .expect("warm up");
    d.add_shard(shard, ReplicaRole::Secondary).expect("join");
    b.write(shard, b"with new member".to_vec()).expect("write");
    println!("replacement replica committed: {}", d.committed_len(shard));
}
