//! Rolling upgrade with and without Shard Manager's availability
//! machinery — the heart of the paper's story (§4, Figure 17).
//!
//! ```sh
//! cargo run --release --example rolling_upgrade
//! ```
//!
//! Two identical deployments perform the same binary upgrade. The first
//! runs full SM: the TaskController negotiates each container restart
//! with the cluster manager, shards drain gracefully (the five-step
//! primary migration forwards in-flight requests), and clients barely
//! notice. The second restarts containers blindly.

use shard_manager::apps::harness::{ExperimentConfig, SimWorld, WorldEvent};
use shard_manager::sim::SimTime;
use shard_manager::types::{AppId, RegionId};

fn run(label: &str, graceful: bool, use_tc: bool) {
    let mut cfg = ExperimentConfig::single_region(16, 800);
    cfg.graceful_migration = graceful;
    cfg.use_taskcontroller = use_tc;
    cfg.policy.max_concurrent_container_ops = 2;
    cfg.no_tc_concurrency = 2;
    let mut sim = SimWorld::primed(cfg);

    sim.run_until(SimTime::from_secs(60));
    let before = sim.world().stats;
    sim.schedule_at(
        SimTime::from_secs(61),
        WorldEvent::StartUpgrade {
            region: RegionId(0),
            version: 2,
        },
    );
    let mut finished_at = None;
    for t in (70..1200).step_by(10) {
        sim.run_until(SimTime::from_secs(t));
        if sim
            .world()
            .cluster_manager(RegionId(0))
            .expect("region 0")
            .upgrade_finished(AppId(0))
        {
            finished_at = Some(t - 61);
            break;
        }
    }
    sim.run_until(SimTime::from_secs(1260));

    let w = sim.world();
    let ok = w.stats.ok - before.ok;
    let failed = w.stats.failed - before.failed;
    println!("{label}:");
    println!(
        "  upgrade finished in  : {}",
        finished_at
            .map(|t| format!("{t} s"))
            .unwrap_or_else(|| "did not converge".into())
    );
    println!(
        "  success rate         : {:.2}% ({} ok / {} failed)",
        100.0 * ok as f64 / (ok + failed).max(1) as f64,
        ok,
        failed
    );
    println!("  requests forwarded   : {}\n", w.stats.forwarded);
}

fn main() {
    run("full SM (TaskController + graceful migration)", true, true);
    run(
        "blind restarts (no TaskController, abrupt moves)",
        false,
        false,
    );
}
