//! The local-search engine (§5.3).
//!
//! Starting from the current assignment, the search repeatedly:
//!
//! 1. picks the hottest bins by attributed penalty (plus the replica
//!    groups that currently violate a spread goal);
//! 2. enumerates candidate entities on them — large loads first, with
//!    equivalent entities deduplicated;
//! 3. samples destination bins, either uniformly or *grouped* by
//!    (region, utilization band), the domain-knowledge optimization the
//!    paper credits with the Figure 22 speedup;
//! 4. evaluates every candidate move incrementally and applies the best
//!    improving one; when single moves stall it attempts two-way swaps.
//!
//! Goals are activated in priority batches (earlier batches get more of
//! the evaluation budget), and the run stops on convergence, an
//! exhausted move/evaluation budget, or a zero objective. All budgets
//! are counted in solver steps, never wall time, so a solve is a pure
//! function of `(problem, specs, seed)` — the property the replayable
//! simulator and the figure harness rely on (sm-lint rule D1).

use crate::eval::Evaluator;
use crate::problem::{BinId, EntityId, Problem};
use crate::specs::SpecSet;
use sm_types::METRIC_COUNT;

use sm_sim::SimRng;

/// How [`crate::ParallelSearch`] splits work across workers when
/// [`SearchConfig::threads`] is greater than one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParallelMode {
    /// Every worker solves the full problem with a distinct seed and
    /// the best final assignment wins (deterministic `(penalty, seed)`
    /// tie-break). Best objective, no wall-clock reduction on one core.
    Portfolio,
    /// The problem is split into disjoint bin partitions (striped
    /// across regions), each solved concurrently on a narrower
    /// sub-problem, then merged and polished sequentially. Reduces
    /// total work, so it is faster even on a single core.
    RegionPartition,
}

/// Tuning knobs and ablation switches for [`LocalSearch`].
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// RNG seed.
    pub seed: u64,
    /// Worker count for [`crate::ParallelSearch`]; `0` or `1` means
    /// the plain single-threaded [`LocalSearch`] path.
    pub threads: usize,
    /// Work-splitting strategy when `threads > 1`.
    pub parallel_mode: ParallelMode,
    /// Maximum number of applied moves (the paper's "move budget").
    pub max_moves: usize,
    /// Candidate-evaluation budget; `None` = unbounded. This is the
    /// deterministic replacement for a wall-clock budget: evaluations
    /// are the unit of solver work, so equal seeds + equal budgets
    /// give identical runs (sm-lint rule D1).
    pub eval_budget: Option<u64>,
    /// Hot bins examined per round.
    pub hot_bins_per_round: usize,
    /// Candidate entities taken from each hot bin.
    pub entities_per_bin: usize,
    /// Destination bins sampled per candidate entity.
    pub targets_per_entity: usize,
    /// §5.3 optimization 4: sample targets across (region, utilization
    /// band) groups instead of uniformly.
    pub use_grouped_sampling: bool,
    /// §5.3: skip equivalent entities when enumerating candidates.
    pub use_equivalence: bool,
    /// §5.3: evaluate large shards before small ones.
    pub use_large_first: bool,
    /// §5.3: attempt two-way swaps when single moves stall.
    pub use_swaps: bool,
    /// §5.3: activate goals in priority batches.
    pub use_batching: bool,
    /// Record a timeline sample every this many applied moves.
    pub sample_every: usize,
    /// Consecutive non-improving rounds (with resampled candidates)
    /// before a batch is declared converged.
    pub patience: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            threads: 1,
            parallel_mode: ParallelMode::RegionPartition,
            max_moves: usize::MAX,
            eval_budget: None,
            hot_bins_per_round: 8,
            entities_per_bin: 8,
            targets_per_entity: 24,
            use_grouped_sampling: true,
            use_equivalence: true,
            use_large_first: true,
            use_swaps: true,
            use_batching: true,
            sample_every: 512,
            patience: 16,
        }
    }
}

impl SearchConfig {
    /// The naive configuration used as the Figure 22 ablation baseline:
    /// uniform random target sampling and none of the §5.3 candidate
    /// optimizations.
    pub fn baseline(seed: u64) -> Self {
        Self {
            seed,
            use_grouped_sampling: false,
            use_equivalence: false,
            use_large_first: false,
            use_swaps: false,
            use_batching: false,
            ..Self::default()
        }
    }
}

/// Outcome statistics of a search run.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Applied moves.
    pub moves: usize,
    /// Candidate evaluations performed.
    pub evaluated: u64,
    /// Objective before the run.
    pub initial_penalty: f64,
    /// Objective after the run.
    pub final_penalty: f64,
    /// Total violations after the run.
    pub final_violations: usize,
    /// `(evaluations so far, total violations, penalty)` samples over
    /// the run — the series plotted in Figures 21 and 22. Evaluations
    /// are the deterministic clock of a solve; callers that want wall
    /// time measure around `solve()` themselves.
    pub timeline: Vec<(u64, usize, f64)>,
}

/// Reusable per-round buffers so the hot loop never reallocates:
/// candidate and target vectors are cleared and refilled each round
/// instead of constructed fresh.
#[derive(Default)]
struct Scratch {
    candidates: Vec<EntityId>,
    targets: Vec<BinId>,
    on_bin: Vec<EntityId>,
    /// `(misplacement, load, entity)` ranking keys, computed once per
    /// entity per round instead of once per sort comparison.
    ranked: Vec<(f64, f64, EntityId)>,
    /// Load keys of candidates kept so far (equivalence dedup).
    seen_keys: Vec<[u64; METRIC_COUNT]>,
}

/// The local-search solver.
pub struct LocalSearch {
    config: SearchConfig,
}

impl LocalSearch {
    /// Creates a solver with the given configuration.
    pub fn new(config: SearchConfig) -> Self {
        Self { config }
    }

    /// Solves the problem: returns the final assignment and run stats.
    pub fn solve(&self, problem: &Problem, specs: &SpecSet) -> (Vec<Option<BinId>>, SearchStats) {
        let mut rng = SimRng::seeded(self.config.seed);
        self.solve_from(
            problem,
            specs,
            problem.initial_assignment().to_vec(),
            &mut rng,
        )
    }

    /// Like [`Self::solve`] but starting from an explicit assignment
    /// and an externally seeded RNG — the building block
    /// [`crate::ParallelSearch`] uses for per-worker solves and for the
    /// sequential cross-partition polish pass.
    pub fn solve_from(
        &self,
        problem: &Problem,
        specs: &SpecSet,
        initial: Vec<Option<BinId>>,
        rng: &mut SimRng,
    ) -> (Vec<Option<BinId>>, SearchStats) {
        let mut stats = SearchStats::default();
        let mut assignment = initial;
        let mut scratch = Scratch::default();

        let batches: Vec<u8> = if self.config.use_batching {
            specs.priorities()
        } else {
            vec![u8::MAX]
        };
        let batches = if batches.is_empty() {
            vec![u8::MAX]
        } else {
            batches
        };
        let n_batches = batches.len() as u32;

        for (bi, &prio) in batches.iter().enumerate() {
            let mut eval = Evaluator::with_assignment(problem, specs, prio, &assignment);
            if bi == 0 {
                stats.initial_penalty = eval.total_penalty();
                self.place_unplaced(problem, &mut eval, rng, &mut stats, &mut scratch);
            }
            // Earlier batches get a larger share of the remaining
            // budget: batch k of n gets 1/(n-k) of what is left when
            // it starts.
            let batch_deadline = self.config.eval_budget.map(|budget| {
                let remaining = budget.saturating_sub(stats.evaluated);
                let share = remaining / u64::from(n_batches - bi as u32);
                stats.evaluated + share
            });
            self.run_batch(
                problem,
                &mut eval,
                rng,
                &mut stats,
                batch_deadline,
                &mut scratch,
            );
            assignment = eval.assignment();
            stats.final_penalty = eval.total_penalty();
            stats.final_violations = eval.violations().total();
        }
        stats
            .timeline
            .push((stats.evaluated, stats.final_violations, stats.final_penalty));
        (assignment, stats)
    }

    /// Emergency-style greedy placement of unplaced entities: sample
    /// candidate bins, keep the best non-violating one.
    fn place_unplaced(
        &self,
        problem: &Problem,
        eval: &mut Evaluator,
        rng: &mut SimRng,
        stats: &mut SearchStats,
        scratch: &mut Scratch,
    ) {
        let n_bins = problem.bin_count();
        if n_bins == 0 {
            return;
        }
        for i in 0..problem.entity_count() {
            let e = EntityId(i);
            if eval.bin_of(e).is_some() {
                continue;
            }
            self.sample_targets(eval, rng, n_bins, &mut scratch.targets);
            let mut best: Option<(f64, BinId)> = None;
            for &t in &scratch.targets {
                stats.evaluated += 1;
                if let Some(delta) = eval.eval_move(e, t) {
                    if best.map(|(d, _)| delta < d).unwrap_or(true) {
                        best = Some((delta, t));
                    }
                }
            }
            // Fall back to a full scan if sampling found nothing feasible.
            if best.is_none() {
                for b in 0..n_bins {
                    stats.evaluated += 1;
                    if let Some(delta) = eval.eval_move(e, BinId(b)) {
                        if best.map(|(d, _)| delta < d).unwrap_or(true) {
                            best = Some((delta, BinId(b)));
                        }
                    }
                }
            }
            if let Some((_, t)) = best {
                eval.apply_move(e, t);
                stats.moves += 1;
            }
        }
    }

    fn run_batch(
        &self,
        problem: &Problem,
        eval: &mut Evaluator,
        rng: &mut SimRng,
        stats: &mut SearchStats,
        deadline: Option<u64>,
        scratch: &mut Scratch,
    ) {
        let n_bins = problem.bin_count();
        if n_bins < 2 {
            return;
        }
        let mut moves_since_sample = 0usize;
        let mut dry_rounds = 0usize;
        loop {
            if stats.moves >= self.config.max_moves {
                return;
            }
            if let Some(d) = deadline {
                if stats.evaluated >= d {
                    return;
                }
            }
            if eval.total_penalty() <= 1e-9 {
                return;
            }

            let improved = self.one_round(eval, rng, stats, n_bins, scratch);
            if stats.moves / self.config.sample_every.max(1)
                != moves_since_sample / self.config.sample_every.max(1)
            {
                moves_since_sample = stats.moves;
                stats.timeline.push((
                    stats.evaluated,
                    eval.violations().total(),
                    eval.total_penalty(),
                ));
            }
            if improved {
                dry_rounds = 0;
            } else {
                // Candidates and targets are sampled, so one dry round
                // does not prove convergence; retry with fresh samples
                // (and swaps) up to the configured patience.
                dry_rounds += 1;
                let swapped =
                    self.config.use_swaps && self.try_swaps(eval, rng, stats, n_bins, scratch);
                if swapped {
                    dry_rounds = 0;
                } else if dry_rounds >= self.config.patience.max(1) {
                    return; // local optimum for this batch
                }
            }
        }
    }

    /// One improvement round: gather candidates, apply the best move.
    /// Returns false when no improving move was found.
    fn one_round(
        &self,
        eval: &mut Evaluator,
        rng: &mut SimRng,
        stats: &mut SearchStats,
        n_bins: usize,
        scratch: &mut Scratch,
    ) -> bool {
        self.candidate_entities(eval, rng, scratch);
        if scratch.candidates.is_empty() {
            return false;
        }
        self.sample_targets(eval, rng, n_bins, &mut scratch.targets);
        let mut best: Option<(f64, EntityId, BinId)> = None;
        for &e in &scratch.candidates {
            for &t in &scratch.targets {
                stats.evaluated += 1;
                if let Some(delta) = eval.eval_move(e, t) {
                    if delta < -1e-9 && best.map(|(d, _, _)| delta < d).unwrap_or(true) {
                        best = Some((delta, e, t));
                    }
                }
            }
        }
        match best {
            Some((_, e, t)) => {
                eval.apply_move(e, t);
                stats.moves += 1;
                true
            }
            None => false,
        }
    }

    /// Candidate source entities: from the hottest bins (large loads
    /// first, deduplicated by equivalence) plus members of violated
    /// spread groups. Fills `scratch.candidates`.
    fn candidate_entities(&self, eval: &Evaluator, rng: &mut SimRng, scratch: &mut Scratch) {
        scratch.candidates.clear();
        for bin in eval.hot_bins(self.config.hot_bins_per_round) {
            scratch.on_bin.clear();
            scratch.on_bin.extend_from_slice(eval.entities_on(bin));
            // Shuffle first so ties in the ranking rotate across rounds
            // — otherwise unfixable candidates can starve fixable ones.
            rng.shuffle(&mut scratch.on_bin);
            if self.config.use_large_first {
                // Rank by how much the entity's own violations hurt the
                // objective (affinity/drain misplacement), then by load
                // (§5.3: evaluate large shards earlier). Keys are
                // computed once per entity; the stable sort over the
                // shuffled order matches sorting with per-comparison
                // key recomputation exactly.
                scratch.ranked.clear();
                scratch.ranked.extend(
                    scratch
                        .on_bin
                        .iter()
                        .map(|&e| (eval.entity_misplacement(e), sum_load(eval, e), e)),
                );
                scratch.ranked.sort_by(|a, b| {
                    (b.0, b.1)
                        .partial_cmp(&(a.0, a.1))
                        .expect("loads are finite")
                });
                scratch.on_bin.clear();
                scratch.on_bin.extend(scratch.ranked.iter().map(|r| r.2));
            }
            if self.config.use_equivalence {
                // Keep the first entity of each distinct load vector,
                // stopping as soon as the per-bin quota is filled — the
                // tail never needs its keys computed.
                scratch.seen_keys.clear();
                let mut kept = 0usize;
                for idx in 0..scratch.on_bin.len() {
                    if kept == self.config.entities_per_bin {
                        break;
                    }
                    let e = scratch.on_bin[idx];
                    let key = load_key(eval, e);
                    if scratch.seen_keys.contains(&key) {
                        continue;
                    }
                    scratch.seen_keys.push(key);
                    scratch.on_bin[kept] = e;
                    kept += 1;
                }
                scratch.on_bin.truncate(kept);
            } else {
                scratch.on_bin.truncate(self.config.entities_per_bin);
            }
            scratch.candidates.extend_from_slice(&scratch.on_bin);
        }
        // Replica groups violating a spread goal contribute their
        // members directly — their bins may not be hot.
        let violated = eval.violated_groups();
        for (_, members) in violated.iter().take(self.config.hot_bins_per_round) {
            scratch.candidates.extend(members.iter().copied());
        }
        scratch
            .candidates
            .truncate(self.config.hot_bins_per_round * self.config.entities_per_bin * 2);
    }

    /// Samples destination bins into `out`. With grouped sampling, bins
    /// are grouped by (region, utilization band) and each group
    /// contributes samples, so region-preference and spread goals
    /// always see in-region and out-of-region options; otherwise
    /// sampling is uniform. The group index is maintained incrementally
    /// by the evaluator, keeping the per-round cost O(k) instead of
    /// O(bins).
    fn sample_targets(
        &self,
        eval: &Evaluator,
        rng: &mut SimRng,
        n_bins: usize,
        out: &mut Vec<BinId>,
    ) {
        out.clear();
        let k = self.config.targets_per_entity.min(n_bins);
        if !self.config.use_grouped_sampling {
            out.extend(rng.sample_indices(n_bins, k).into_iter().map(BinId));
            return;
        }
        let groups = eval.target_groups();
        let per_group = (k / groups.len().max(1)).max(1);
        for bins in groups.values() {
            for idx in rng.sample_indices(bins.len(), per_group) {
                out.push(BinId(bins[idx]));
            }
        }
    }

    /// Attempts two-way swaps between entities on hot bins and entities
    /// on sampled other bins. Returns true if a swap was applied.
    fn try_swaps(
        &self,
        eval: &mut Evaluator,
        rng: &mut SimRng,
        stats: &mut SearchStats,
        n_bins: usize,
        scratch: &mut Scratch,
    ) -> bool {
        let hot = eval.hot_bins(4);
        self.sample_targets(eval, rng, n_bins, &mut scratch.targets);
        // Snapshot buffers: `apply_move` below invalidates the
        // evaluator's live entity lists.
        let mut hot_entities: Vec<EntityId> = Vec::with_capacity(4);
        let mut others: Vec<EntityId> = Vec::with_capacity(2);
        for &hot_bin in &hot {
            hot_entities.clear();
            hot_entities.extend(eval.entities_on(hot_bin).iter().take(4));
            for &e1 in &hot_entities {
                for ti in 0..scratch.targets.len().min(8) {
                    let other_bin = scratch.targets[ti];
                    if other_bin == hot_bin {
                        continue;
                    }
                    others.clear();
                    others.extend(eval.entities_on(other_bin).iter().take(2));
                    for &e2 in &others {
                        stats.evaluated += 2;
                        let Some(d1) = eval.eval_move(e1, other_bin) else {
                            continue;
                        };
                        eval.apply_move(e1, other_bin);
                        let d2 = eval.eval_move(e2, hot_bin);
                        match d2 {
                            Some(d2) if d1 + d2 < -1e-9 => {
                                eval.apply_move(e2, hot_bin);
                                stats.moves += 2;
                                return true;
                            }
                            _ => {
                                // Revert the speculative first half.
                                eval.apply_move(e1, hot_bin);
                            }
                        }
                    }
                }
            }
        }
        false
    }
}

fn sum_load(eval: &Evaluator, e: EntityId) -> f64 {
    let load = eval.load_of(e);
    (0..METRIC_COUNT)
        .map(|m| load.get(sm_types::MetricId(m)))
        .sum()
}

fn load_key(eval: &Evaluator, e: EntityId) -> [u64; METRIC_COUNT] {
    let load = eval.load_of(e);
    let mut key = [0u64; METRIC_COUNT];
    for (m, slot) in key.iter_mut().enumerate() {
        *slot = load.get(sm_types::MetricId(m)).to_bits();
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Bin, Entity};
    use crate::specs::{
        AffinitySpec, BalanceSpec, CapacitySpec, ExclusionSpec, Scope, Spec, UtilizationCapSpec,
    };
    use sm_types::{LoadVector, Location, MachineId, Metric, RegionId};

    fn loc(region: u16, machine: u32) -> Location {
        Location {
            region: RegionId(region),
            datacenter: u32::from(region),
            rack: u32::from(region) * 1000 + machine / 2,
            machine: MachineId(machine),
        }
    }

    fn cpu(v: f64) -> LoadVector {
        LoadVector::single(Metric::Cpu.id(), v)
    }

    /// Builds `bins_per_region x regions` bins of CPU capacity 100.
    fn build_bins(p: &mut Problem, regions: u16, bins_per_region: u32) {
        let mut machine = 0;
        for r in 0..regions {
            for _ in 0..bins_per_region {
                p.add_bin(Bin {
                    capacity: cpu(100.0),
                    location: loc(r, machine),
                    draining: false,
                });
                machine += 1;
            }
        }
    }

    #[test]
    fn balances_skewed_load() {
        // 40 entities of load 10 all piled on bin 0 of 8 bins: avg util
        // is 0.5, so the balance band is 60 per bin; search must spread.
        let mut p = Problem::new();
        build_bins(&mut p, 1, 8);
        for _ in 0..40 {
            p.add_entity(
                Entity {
                    load: cpu(10.0),
                    group: None,
                },
                Some(BinId(0)),
            );
        }
        let mut specs = SpecSet::new();
        specs.add_constraint(CapacitySpec {
            metric: Metric::Cpu.id(),
        });
        specs.add_goal(Spec::Balance(BalanceSpec {
            metric: Metric::Cpu.id(),
            tolerance: 0.1,
            weight: 1.0,
            priority: 0,
        }));
        let solver = LocalSearch::new(SearchConfig {
            seed: 7,
            ..Default::default()
        });
        let (assignment, stats) = solver.solve(&p, &specs);
        assert_eq!(stats.final_violations, 0, "all balance violations fixed");
        assert!(stats.final_penalty <= 1e-9);
        assert!(stats.moves > 0);
        // No bin should hold more than 60.
        let mut usage = vec![0.0; 8];
        for (i, b) in assignment.iter().enumerate() {
            let _ = i;
            usage[b.unwrap().0] += 10.0;
        }
        assert!(usage.iter().all(|&u| u <= 60.0 + 1e-9), "usage {usage:?}");
    }

    #[test]
    fn respects_hard_capacity() {
        // Two entities of 80 cannot share a 100-capacity bin.
        let mut p = Problem::new();
        build_bins(&mut p, 1, 2);
        let e0 = p.add_entity(
            Entity {
                load: cpu(80.0),
                group: None,
            },
            Some(BinId(0)),
        );
        let e1 = p.add_entity(
            Entity {
                load: cpu(80.0),
                group: None,
            },
            Some(BinId(0)),
        );
        let mut specs = SpecSet::new();
        specs.add_constraint(CapacitySpec {
            metric: Metric::Cpu.id(),
        });
        specs.add_goal(Spec::UtilizationCap(UtilizationCapSpec {
            metric: Metric::Cpu.id(),
            threshold: 0.9,
            weight: 1.0,
            priority: 0,
        }));
        let solver = LocalSearch::new(SearchConfig {
            seed: 1,
            ..Default::default()
        });
        let (assignment, stats) = solver.solve(&p, &specs);
        assert_ne!(assignment[e0.0], assignment[e1.0]);
        assert_eq!(stats.final_violations, 0);
    }

    #[test]
    fn places_unplaced_entities() {
        let mut p = Problem::new();
        build_bins(&mut p, 1, 4);
        for _ in 0..10 {
            p.add_entity(
                Entity {
                    load: cpu(10.0),
                    group: None,
                },
                None,
            );
        }
        let mut specs = SpecSet::new();
        specs.add_constraint(CapacitySpec {
            metric: Metric::Cpu.id(),
        });
        let solver = LocalSearch::new(SearchConfig {
            seed: 3,
            ..Default::default()
        });
        let (assignment, stats) = solver.solve(&p, &specs);
        assert!(assignment.iter().all(Option::is_some));
        assert_eq!(stats.final_violations, 0);
    }

    #[test]
    fn honors_region_preference() {
        let mut p = Problem::new();
        build_bins(&mut p, 3, 4); // regions 0,1,2
        let mut prefs = Vec::new();
        let mut entities = Vec::new();
        for i in 0..12 {
            let e = p.add_entity(
                Entity {
                    load: cpu(5.0),
                    group: None,
                },
                Some(BinId(0)),
            );
            // All entities prefer region 2.
            prefs.push((e, 2u64, 10.0));
            entities.push(i);
        }
        let mut specs = SpecSet::new();
        specs.add_constraint(CapacitySpec {
            metric: Metric::Cpu.id(),
        });
        specs.add_goal(Spec::Affinity(AffinitySpec {
            scope: Scope::Region,
            affinities: prefs,
            priority: 0,
        }));
        let solver = LocalSearch::new(SearchConfig {
            seed: 5,
            ..Default::default()
        });
        let (assignment, stats) = solver.solve(&p, &specs);
        assert_eq!(stats.final_violations, 0, "every entity reaches region 2");
        for b in assignment.iter().flatten() {
            assert_eq!(p.bin(*b).location.region, RegionId(2));
        }
    }

    #[test]
    fn spreads_replica_groups_across_regions() {
        let mut p = Problem::new();
        build_bins(&mut p, 3, 2);
        let mut groups = Vec::new();
        for _ in 0..6 {
            let g = p.new_group();
            groups.push(g);
            // Both replicas start in region 0.
            p.add_entity(
                Entity {
                    load: cpu(5.0),
                    group: Some(g),
                },
                Some(BinId(0)),
            );
            p.add_entity(
                Entity {
                    load: cpu(5.0),
                    group: Some(g),
                },
                Some(BinId(1)),
            );
        }
        let mut specs = SpecSet::new();
        specs.add_constraint(CapacitySpec {
            metric: Metric::Cpu.id(),
        });
        specs.add_goal(Spec::Exclusion(ExclusionSpec {
            scope: Scope::Region,
            groups: groups.clone(),
            weight: 5.0,
            priority: 0,
        }));
        let solver = LocalSearch::new(SearchConfig {
            seed: 11,
            ..Default::default()
        });
        let (assignment, stats) = solver.solve(&p, &specs);
        assert_eq!(stats.final_violations, 0);
        // Each group's two replicas are in different regions.
        for gi in 0..6 {
            let b0 = assignment[gi * 2].unwrap();
            let b1 = assignment[gi * 2 + 1].unwrap();
            assert_ne!(p.bin(b0).location.region, p.bin(b1).location.region);
        }
    }

    #[test]
    fn move_budget_caps_work() {
        let mut p = Problem::new();
        build_bins(&mut p, 1, 8);
        for _ in 0..40 {
            p.add_entity(
                Entity {
                    load: cpu(10.0),
                    group: None,
                },
                Some(BinId(0)),
            );
        }
        let mut specs = SpecSet::new();
        specs.add_goal(Spec::Balance(BalanceSpec {
            metric: Metric::Cpu.id(),
            tolerance: 0.1,
            weight: 1.0,
            priority: 0,
        }));
        let solver = LocalSearch::new(SearchConfig {
            seed: 2,
            max_moves: 5,
            ..Default::default()
        });
        let (_, stats) = solver.solve(&p, &specs);
        assert!(stats.moves <= 5);
        assert!(stats.final_penalty < stats.initial_penalty);
    }

    #[test]
    fn baseline_config_disables_optimizations() {
        let cfg = SearchConfig::baseline(9);
        assert!(!cfg.use_grouped_sampling);
        assert!(!cfg.use_equivalence);
        assert!(!cfg.use_large_first);
        assert!(!cfg.use_swaps);
        assert!(!cfg.use_batching);
    }

    #[test]
    fn baseline_still_solves_simple_problems() {
        let mut p = Problem::new();
        build_bins(&mut p, 1, 4);
        for _ in 0..20 {
            p.add_entity(
                Entity {
                    load: cpu(10.0),
                    group: None,
                },
                Some(BinId(0)),
            );
        }
        let mut specs = SpecSet::new();
        specs.add_goal(Spec::Balance(BalanceSpec {
            metric: Metric::Cpu.id(),
            tolerance: 0.1,
            weight: 1.0,
            priority: 0,
        }));
        let solver = LocalSearch::new(SearchConfig::baseline(4));
        let (_, stats) = solver.solve(&p, &specs);
        assert_eq!(stats.final_violations, 0);
    }

    #[test]
    fn batching_processes_priorities_in_order() {
        // Priority 0: utilization cap; priority 1: affinity. Both must
        // end satisfied; batching must not undo earlier work.
        let mut p = Problem::new();
        build_bins(&mut p, 2, 3);
        let mut prefs = Vec::new();
        for _ in 0..12 {
            let e = p.add_entity(
                Entity {
                    load: cpu(10.0),
                    group: None,
                },
                Some(BinId(0)),
            );
            prefs.push((e, 1u64, 1.0));
        }
        let mut specs = SpecSet::new();
        specs.add_constraint(CapacitySpec {
            metric: Metric::Cpu.id(),
        });
        specs.add_goal(Spec::UtilizationCap(UtilizationCapSpec {
            metric: Metric::Cpu.id(),
            threshold: 0.9,
            weight: 10.0,
            priority: 0,
        }));
        specs.add_goal(Spec::Affinity(AffinitySpec {
            scope: Scope::Region,
            affinities: prefs,
            priority: 1,
        }));
        let solver = LocalSearch::new(SearchConfig {
            seed: 13,
            ..Default::default()
        });
        let (assignment, stats) = solver.solve(&p, &specs);
        assert_eq!(stats.final_violations, 0);
        // Region 1 has 3 bins x 100 capacity; 120 load fits under 90%.
        for b in assignment.iter().flatten() {
            assert_eq!(p.bin(*b).location.region, RegionId(1));
        }
    }

    #[test]
    fn timeline_is_recorded() {
        let mut p = Problem::new();
        build_bins(&mut p, 1, 8);
        for _ in 0..64 {
            p.add_entity(
                Entity {
                    load: cpu(5.0),
                    group: None,
                },
                Some(BinId(0)),
            );
        }
        let mut specs = SpecSet::new();
        specs.add_goal(Spec::Balance(BalanceSpec {
            metric: Metric::Cpu.id(),
            tolerance: 0.05,
            weight: 1.0,
            priority: 0,
        }));
        let solver = LocalSearch::new(SearchConfig {
            seed: 17,
            sample_every: 8,
            ..Default::default()
        });
        let (_, stats) = solver.solve(&p, &specs);
        assert!(!stats.timeline.is_empty());
        let (_, final_viol, final_pen) = *stats.timeline.last().unwrap();
        assert_eq!(final_viol, stats.final_violations);
        assert!((final_pen - stats.final_penalty).abs() < 1e-9);
    }
}
