//! Baseline solvers used as comparison points.
//!
//! - [`greedy_place`] — first-fit-decreasing onto the least-utilized
//!   feasible bin; the kind of hand-crafted heuristic the paper's
//!   allocator used before switching to a constraint solver (§5.2).
//! - [`optimal_tiny`] — exhaustive enumeration for tiny problems; the
//!   test oracle that local search reaches the global optimum where one
//!   can be computed.

use crate::eval::Evaluator;
use crate::problem::{BinId, EntityId, Problem};
use crate::specs::SpecSet;
use sm_types::{MetricId, METRIC_COUNT};

/// Greedily assigns every entity (placed or not) from scratch:
/// descending by total load, each onto the feasible bin with the lowest
/// maximum utilization. Returns `None` placements where no bin fits.
pub fn greedy_place(problem: &Problem, specs: &SpecSet) -> Vec<Option<BinId>> {
    // Start from an empty assignment.
    let empty = vec![None; problem.entity_count()];
    let mut eval = Evaluator::with_assignment(problem, specs, u8::MAX, &empty);

    let mut order: Vec<usize> = (0..problem.entity_count()).collect();
    let total_load = |e: usize| -> f64 {
        let load = &problem.entities()[e].load;
        (0..METRIC_COUNT).map(|m| load.get(MetricId(m))).sum()
    };
    order.sort_by(|&a, &b| {
        total_load(b)
            .partial_cmp(&total_load(a))
            .expect("loads are finite")
    });

    for e in order {
        let entity = EntityId(e);
        let mut best: Option<(f64, BinId)> = None;
        for b in 0..problem.bin_count() {
            let bin = BinId(b);
            if eval.violates_hard(entity, bin) {
                continue;
            }
            let util = eval
                .usage_of(bin)
                .max_utilization(&problem.bin(bin).capacity);
            if best.map(|(u, _)| util < u).unwrap_or(true) {
                best = Some((util, bin));
            }
        }
        if let Some((_, bin)) = best {
            eval.apply_move(entity, bin);
        }
    }
    eval.assignment()
}

/// Exhaustively finds the minimum-penalty assignment for a tiny problem.
///
/// Returns `(assignment, penalty)`. Intended for test oracles only.
///
/// # Panics
///
/// Panics if `bins^entities` exceeds one million combinations.
pub fn optimal_tiny(problem: &Problem, specs: &SpecSet) -> (Vec<Option<BinId>>, f64) {
    let n_e = problem.entity_count();
    let n_b = problem.bin_count();
    let combos = (n_b as f64).powi(n_e as i32);
    assert!(
        combos <= 1e6,
        "optimal_tiny is for tiny problems only ({combos} combos)"
    );
    let mut best_pen = f64::INFINITY;
    let mut best: Vec<Option<BinId>> = vec![None; n_e];
    let mut counter = vec![0usize; n_e];
    loop {
        let assignment: Vec<Option<BinId>> = counter.iter().map(|&b| Some(BinId(b))).collect();
        let eval = Evaluator::with_assignment(problem, specs, u8::MAX, &assignment);
        // Hard constraints: skip infeasible assignments.
        if eval.violations().capacity == 0 {
            let pen = eval.total_penalty();
            if pen < best_pen {
                best_pen = pen;
                best = assignment;
            }
        }
        // Increment the mixed-radix counter.
        let mut i = 0;
        loop {
            if i == n_e {
                return (best, best_pen);
            }
            counter[i] += 1;
            if counter[i] < n_b {
                break;
            }
            counter[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Bin, Entity};
    use crate::search::{LocalSearch, SearchConfig};
    use crate::specs::{BalanceSpec, CapacitySpec, ExclusionSpec, Scope, Spec};
    use sm_types::{LoadVector, Location, MachineId, Metric, RegionId};

    fn cpu(v: f64) -> LoadVector {
        LoadVector::single(Metric::Cpu.id(), v)
    }

    fn loc(region: u16, machine: u32) -> Location {
        Location {
            region: RegionId(region),
            datacenter: u32::from(region),
            rack: machine,
            machine: MachineId(machine),
        }
    }

    fn small_problem() -> (Problem, SpecSet) {
        let mut p = Problem::new();
        for m in 0..3 {
            p.add_bin(Bin {
                capacity: cpu(10.0),
                location: loc(m as u16 % 2, m),
                draining: false,
            });
        }
        let g = p.new_group();
        p.add_entity(
            Entity {
                load: cpu(6.0),
                group: Some(g),
            },
            None,
        );
        p.add_entity(
            Entity {
                load: cpu(6.0),
                group: Some(g),
            },
            None,
        );
        p.add_entity(
            Entity {
                load: cpu(3.0),
                group: None,
            },
            None,
        );
        p.add_entity(
            Entity {
                load: cpu(3.0),
                group: None,
            },
            None,
        );
        let mut specs = SpecSet::new();
        specs.add_constraint(CapacitySpec {
            metric: Metric::Cpu.id(),
        });
        specs.add_goal(Spec::Balance(BalanceSpec {
            metric: Metric::Cpu.id(),
            tolerance: 0.1,
            weight: 1.0,
            priority: 0,
        }));
        specs.add_goal(Spec::Exclusion(ExclusionSpec {
            scope: Scope::Region,
            groups: vec![g],
            weight: 3.0,
            priority: 0,
        }));
        (p, specs)
    }

    #[test]
    fn greedy_respects_hard_constraints() {
        let (p, specs) = small_problem();
        let assignment = greedy_place(&p, &specs);
        assert!(assignment.iter().all(Option::is_some));
        let eval = Evaluator::with_assignment(&p, &specs, u8::MAX, &assignment);
        assert_eq!(eval.violations().capacity, 0);
    }

    #[test]
    fn greedy_leaves_oversized_entities_unplaced() {
        let mut p = Problem::new();
        p.add_bin(Bin {
            capacity: cpu(5.0),
            location: loc(0, 0),
            draining: false,
        });
        p.add_entity(
            Entity {
                load: cpu(9.0),
                group: None,
            },
            None,
        );
        let mut specs = SpecSet::new();
        specs.add_constraint(CapacitySpec {
            metric: Metric::Cpu.id(),
        });
        let assignment = greedy_place(&p, &specs);
        assert_eq!(assignment[0], None);
    }

    #[test]
    fn local_search_matches_brute_force_optimum() {
        let (p, specs) = small_problem();
        let (_, best_pen) = optimal_tiny(&p, &specs);
        let solver = LocalSearch::new(SearchConfig {
            seed: 23,
            ..Default::default()
        });
        let (_, stats) = solver.solve(&p, &specs);
        assert!(
            stats.final_penalty <= best_pen + 1e-9,
            "local search {} vs optimum {best_pen}",
            stats.final_penalty
        );
    }

    #[test]
    fn greedy_is_no_worse_than_random_on_penalty() {
        let (p, specs) = small_problem();
        let greedy = greedy_place(&p, &specs);
        let eval_g = Evaluator::with_assignment(&p, &specs, u8::MAX, &greedy);
        // Random-ish: everything on bin 0 (infeasible load ignored for
        // comparison of soft penalty only).
        let all_zero: Vec<Option<BinId>> = vec![Some(BinId(0)); p.entity_count()];
        let eval_r = Evaluator::with_assignment(&p, &specs, u8::MAX, &all_zero);
        assert!(eval_g.total_penalty() <= eval_r.total_penalty());
    }
}
