//! Incremental objective evaluation.
//!
//! The evaluator maintains, under entity moves:
//!
//! - per-bin usage vectors and entity counts;
//! - a [`PenaltyTree`] whose leaf `b` holds bin `b`'s total attributable
//!   penalty (balance excess + utilization-cap excess + drain penalty +
//!   the affinity penalties of entities it hosts), so the objective
//!   updates in O(log n) per touched bin;
//! - per-group domain-occupancy counts for exclusion (spread) goals,
//!   with the set of currently violated groups exposed to the search so
//!   it can target colocated replicas directly.
//!
//! A key simplification the paper also exploits: moves never change the
//! total load, so per-metric average utilization — and therefore every
//! balance threshold — is a constant of the run.

use crate::penalty_tree::PenaltyTree;
use crate::problem::{BinId, EntityId, GroupId, Problem};
use crate::specs::{Scope, Spec, SpecSet};
use sm_types::{LoadVector, MetricId};
use std::collections::{BTreeMap, BTreeSet};

const UNPLACED: u32 = u32::MAX;

/// Violation counts for reporting (the y-axis of Figures 21–23).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ViolationStats {
    /// Bins over a hard capacity constraint.
    pub capacity: usize,
    /// `(bin, balance-goal)` pairs above the balance band.
    pub balance: usize,
    /// `(bin, cap-goal)` pairs above the utilization threshold.
    pub utilization: usize,
    /// Entities placed outside their preferred domain.
    pub affinity: usize,
    /// `(spec, group)` pairs with colocated replicas.
    pub exclusion: usize,
    /// Draining bins still hosting entities.
    pub drain: usize,
    /// Entities without a placement.
    pub unplaced: usize,
}

impl ViolationStats {
    /// Sum of all violation categories.
    pub fn total(&self) -> usize {
        self.capacity
            + self.balance
            + self.utilization
            + self.affinity
            + self.exclusion
            + self.drain
            + self.unplaced
    }
}

#[derive(Clone, Copy, Debug)]
struct BalanceGoal {
    metric: MetricId,
    weight: f64,
    /// Per-bin threshold = capacity x limit_util.
    limit_util: f64,
}

#[derive(Clone, Copy, Debug)]
struct CapGoal {
    metric: MetricId,
    weight: f64,
    threshold: f64,
}

#[derive(Clone, Debug)]
struct ExclusionGoal {
    scope: Scope,
    weight: f64,
    /// `in_goal[group] == true` if the group participates.
    in_goal: Vec<bool>,
    /// Per-group domain occupancy: domain id -> entity count.
    counts: Vec<BTreeMap<u64, u32>>,
    /// Per-group: placed members and distinct domains.
    placed: Vec<u32>,
    distinct: Vec<u32>,
}

impl ExclusionGoal {
    fn group_penalty(&self, g: usize) -> f64 {
        self.weight * f64::from(self.placed[g].saturating_sub(self.distinct[g]))
    }
}

/// The incremental evaluator over one problem and one active goal set.
pub struct Evaluator {
    // -- static problem data, copied out for dense access --
    entity_load: Vec<LoadVector>,
    entity_group: Vec<u32>, // u32::MAX = no group
    bin_capacity: Vec<LoadVector>,
    /// Per bin: domain id at [host, rack, dc, region].
    bin_domains: Vec<[u64; 4]>,
    bin_draining: Vec<bool>,
    /// Entities per group (for targeting colocated replicas).
    group_members: Vec<Vec<EntityId>>,

    // -- active specs, pre-resolved --
    hard_metrics: Vec<MetricId>,
    forbid_group_colocation: bool,
    balance_goals: Vec<BalanceGoal>,
    cap_goals: Vec<CapGoal>,
    /// Per entity: `(scope index, preferred domain, weight)` preferences.
    entity_prefs: Vec<Vec<(usize, u64, f64)>>,
    exclusion_goals: Vec<ExclusionGoal>,
    drain_weight: f64,

    // -- mutable search state --
    assignment: Vec<u32>,
    bin_usage: Vec<LoadVector>,
    bin_entity_count: Vec<u32>,
    /// Sum of affinity penalties of entities currently on each bin.
    bin_affinity: Vec<f64>,
    /// Entities currently on each bin, maintained incrementally under
    /// moves so [`Self::entities_on`] is O(1) instead of an
    /// O(n_entities) scan. Within-bin order is move-history dependent
    /// (swap-remove) but a pure function of the move sequence.
    bin_entities: Vec<Vec<EntityId>>,
    /// Position of each placed entity within its bin's entity list.
    entity_pos: Vec<u32>,
    /// Cached (region, utilization band) key of each bin.
    bin_group_key: Vec<(u64, u8)>,
    /// Bins grouped by their key, maintained incrementally: a bin moves
    /// between groups only when a move shifts its utilization band.
    target_groups: BTreeMap<(u64, u8), Vec<usize>>,
    /// Position of each bin within its target group's vector.
    bin_group_pos: Vec<u32>,
    tree: PenaltyTree,
    exclusion_total: f64,
    violated_groups: BTreeSet<(usize, GroupId)>,
    unplaced_count: usize,
}

fn scope_index(scope: Scope) -> usize {
    match scope {
        Scope::Host => 0,
        Scope::Rack => 1,
        Scope::DataCenter => 2,
        Scope::Region => 3,
    }
}

impl Evaluator {
    /// Builds an evaluator for `problem` with the goals of priority
    /// `<= max_priority` from `specs` active, seeded with the problem's
    /// initial assignment.
    pub fn new(problem: &Problem, specs: &SpecSet, max_priority: u8) -> Self {
        Self::with_assignment(problem, specs, max_priority, problem.initial_assignment())
    }

    /// Like [`Self::new`] but seeded from an explicit assignment — used
    /// by goal batching (§5.3) to carry the working assignment from one
    /// priority batch into the next.
    // sm-lint: allow(P1) — solver-internal dense ids index parallel vectors sized from the same Problem
    pub fn with_assignment(
        problem: &Problem,
        specs: &SpecSet,
        max_priority: u8,
        assignment: &[Option<BinId>],
    ) -> Self {
        let n_entities = problem.entity_count();
        let n_bins = problem.bin_count();
        let n_groups = problem.group_count();

        let entity_load: Vec<LoadVector> = problem.entities().iter().map(|e| e.load).collect();
        let entity_group: Vec<u32> = problem
            .entities()
            .iter()
            .map(|e| e.group.map(|g| g.0 as u32).unwrap_or(UNPLACED))
            .collect();
        let bin_capacity: Vec<LoadVector> = problem.bins().iter().map(|b| b.capacity).collect();
        let bin_domains: Vec<[u64; 4]> = problem
            .bins()
            .iter()
            .map(|b| {
                [
                    b.location.domain(sm_types::FaultDomain::Machine),
                    b.location.domain(sm_types::FaultDomain::Rack),
                    b.location.domain(sm_types::FaultDomain::DataCenter),
                    b.location.domain(sm_types::FaultDomain::Region),
                ]
            })
            .collect();
        let bin_draining: Vec<bool> = problem.bins().iter().map(|b| b.draining).collect();

        let mut group_members: Vec<Vec<EntityId>> = vec![Vec::new(); n_groups];
        for (i, g) in entity_group.iter().enumerate() {
            if *g != UNPLACED {
                group_members[*g as usize].push(EntityId(i));
            }
        }

        // Average utilization per metric over the whole problem —
        // constant under moves since total load and capacity are fixed.
        let mut total_load = LoadVector::zero();
        for load in &entity_load {
            total_load += *load;
        }
        let mut total_cap = LoadVector::zero();
        for cap in &bin_capacity {
            total_cap += *cap;
        }
        let avg_util = |m: MetricId| -> f64 {
            let cap = total_cap.get(m);
            if cap > 0.0 {
                total_load.get(m) / cap
            } else {
                0.0
            }
        };

        let hard_metrics = specs.constraints.iter().map(|c| c.metric).collect();
        let mut balance_goals = Vec::new();
        let mut cap_goals = Vec::new();
        let mut entity_prefs: Vec<Vec<(usize, u64, f64)>> = vec![Vec::new(); n_entities];
        let mut exclusion_goals = Vec::new();
        let mut drain_weight = 0.0;

        for goal in specs.goals_up_to(max_priority) {
            match goal {
                Spec::Balance(s) => balance_goals.push(BalanceGoal {
                    metric: s.metric,
                    weight: s.weight,
                    limit_util: avg_util(s.metric) + s.tolerance,
                }),
                Spec::UtilizationCap(s) => cap_goals.push(CapGoal {
                    metric: s.metric,
                    weight: s.weight,
                    threshold: s.threshold,
                }),
                Spec::Affinity(s) => {
                    let si = scope_index(s.scope);
                    for (e, dom, w) in &s.affinities {
                        entity_prefs[e.0].push((si, *dom, *w));
                    }
                }
                Spec::Exclusion(s) => {
                    let mut in_goal = vec![false; n_groups];
                    for g in &s.groups {
                        in_goal[g.0] = true;
                    }
                    exclusion_goals.push(ExclusionGoal {
                        scope: s.scope,
                        weight: s.weight,
                        in_goal,
                        counts: vec![BTreeMap::new(); n_groups],
                        placed: vec![0; n_groups],
                        distinct: vec![0; n_groups],
                    });
                }
                Spec::Drain(s) => drain_weight += s.weight,
            }
        }

        let mut eval = Self {
            entity_load,
            entity_group,
            bin_capacity,
            bin_domains,
            bin_draining,
            group_members,
            hard_metrics,
            forbid_group_colocation: specs.forbid_group_colocation,
            balance_goals,
            cap_goals,
            entity_prefs,
            exclusion_goals,
            drain_weight,
            assignment: vec![UNPLACED; n_entities],
            bin_usage: vec![LoadVector::zero(); n_bins],
            bin_entity_count: vec![0; n_bins],
            bin_affinity: vec![0.0; n_bins],
            bin_entities: vec![Vec::new(); n_bins],
            entity_pos: vec![0; n_entities],
            bin_group_key: vec![(0, 0); n_bins],
            target_groups: BTreeMap::new(),
            bin_group_pos: vec![0; n_bins],
            tree: PenaltyTree::new(n_bins),
            exclusion_total: 0.0,
            violated_groups: BTreeSet::new(),
            unplaced_count: n_entities,
        };
        // Bulk seeding: place every entity first without refreshing the
        // per-bin penalty leaf or (region, band) key — then build both
        // in one O(n_bins) pass. Per-entity refreshes would repeat the
        // same penalty/key computation once per hosted entity.
        for (i, maybe_bin) in assignment.iter().enumerate() {
            if let Some(bin) = maybe_bin {
                eval.seed_place(EntityId(i), *bin);
            }
        }
        for b in 0..n_bins {
            eval.refresh_leaf(b);
            let key = eval.compute_group_key(b);
            eval.bin_group_key[b] = key;
            let group = eval.target_groups.entry(key).or_default();
            eval.bin_group_pos[b] = group.len() as u32;
            group.push(b);
        }
        eval
    }

    /// The affinity penalty entity `e` incurs when placed on `bin`.
    fn affinity_penalty(&self, e: EntityId, bin: usize) -> f64 {
        let mut pen = 0.0;
        for &(si, dom, w) in &self.entity_prefs[e.0] {
            if self.bin_domains[bin][si] != dom {
                pen += w;
            }
        }
        pen
    }

    /// The bin-local penalty of `bin` from its current usage.
    fn bin_local_penalty(&self, bin: usize) -> f64 {
        let usage = &self.bin_usage[bin];
        let cap = &self.bin_capacity[bin];
        let mut pen = 0.0;
        for g in &self.balance_goals {
            let limit = cap.get(g.metric) * g.limit_util;
            let over = usage.get(g.metric) - limit;
            if over > 0.0 {
                pen += g.weight * over;
            }
        }
        for g in &self.cap_goals {
            let limit = cap.get(g.metric) * g.threshold;
            let over = usage.get(g.metric) - limit;
            if over > 0.0 {
                pen += g.weight * over;
            }
        }
        if self.bin_draining[bin] {
            pen += self.drain_weight * f64::from(self.bin_entity_count[bin]);
        }
        pen + self.bin_affinity[bin]
    }

    fn refresh_leaf(&mut self, bin: usize) {
        let pen = self.bin_local_penalty(bin);
        self.tree.set(bin, pen);
    }

    /// Recomputes a bin's (region, utilization band) key from scratch.
    fn compute_group_key(&self, bin: usize) -> (u64, u8) {
        let region = self.bin_domains[bin][3];
        let util = self.bin_usage[bin].max_utilization(&self.bin_capacity[bin]);
        let band = (util * 5.0).floor().clamp(0.0, 10.0) as u8;
        (region, band)
    }

    /// Moves `bin` to the target group matching its current utilization
    /// band, if the band shifted. O(log groups) — called once per
    /// touched bin per move.
    fn refresh_group_key(&mut self, bin: usize) {
        let key = self.compute_group_key(bin);
        let old = self.bin_group_key[bin];
        if key == old {
            return;
        }
        let pos = self.bin_group_pos[bin] as usize;
        let group = self
            .target_groups
            .get_mut(&old)
            .expect("bin was indexed under its old key");
        group.swap_remove(pos);
        if pos < group.len() {
            let displaced = group[pos];
            self.bin_group_pos[displaced] = pos as u32;
        }
        if group.is_empty() {
            self.target_groups.remove(&old);
        }
        let group = self.target_groups.entry(key).or_default();
        self.bin_group_pos[bin] = group.len() as u32;
        group.push(bin);
        self.bin_group_key[bin] = key;
    }

    /// Adds `e` to `bin`'s entity list.
    fn index_add(&mut self, e: EntityId, bin: usize) {
        self.entity_pos[e.0] = self.bin_entities[bin].len() as u32;
        self.bin_entities[bin].push(e);
    }

    /// Removes `e` from `bin`'s entity list by swap-remove.
    fn index_remove(&mut self, e: EntityId, bin: usize) {
        let pos = self.entity_pos[e.0] as usize;
        let list = &mut self.bin_entities[bin];
        debug_assert_eq!(list[pos], e, "entity index out of sync");
        list.swap_remove(pos);
        if pos < list.len() {
            let displaced = list[pos];
            self.entity_pos[displaced.0] = pos as u32;
        }
    }

    /// Places an unplaced entity without checking hard constraints
    /// (used for seeding from the initial assignment).
    pub fn force_place(&mut self, e: EntityId, bin: BinId) {
        self.seed_place(e, bin);
        self.refresh_leaf(bin.0);
        self.refresh_group_key(bin.0);
    }

    /// [`Self::force_place`] minus the penalty-leaf and group-key
    /// refresh — the bulk-construction fast path, which refreshes every
    /// bin once at the end instead of once per hosted entity.
    fn seed_place(&mut self, e: EntityId, bin: BinId) {
        debug_assert_eq!(self.assignment[e.0], UNPLACED);
        let b = bin.0;
        self.assignment[e.0] = b as u32;
        self.bin_usage[b] += self.entity_load[e.0];
        self.bin_entity_count[b] += 1;
        self.bin_affinity[b] += self.affinity_penalty(e, b);
        self.index_add(e, b);
        self.unplaced_count -= 1;
        self.exclusion_add(e, b);
    }

    fn exclusion_add(&mut self, e: EntityId, bin: usize) {
        let g = self.entity_group[e.0];
        if g == UNPLACED {
            return;
        }
        let g = g as usize;
        let domains = self.bin_domains[bin];
        for (si, goal) in self.exclusion_goals.iter_mut().enumerate() {
            if !goal.in_goal[g] {
                continue;
            }
            let dom = domains[scope_index(goal.scope)];
            let before = goal.group_penalty(g);
            let count = goal.counts[g].entry(dom).or_insert(0);
            if *count == 0 {
                goal.distinct[g] += 1;
            }
            *count += 1;
            goal.placed[g] += 1;
            let after = goal.group_penalty(g);
            self.exclusion_total += after - before;
            if goal.placed[g] > goal.distinct[g] {
                self.violated_groups.insert((si, GroupId(g)));
            }
        }
    }

    fn exclusion_remove(&mut self, e: EntityId, bin: usize) {
        let g = self.entity_group[e.0];
        if g == UNPLACED {
            return;
        }
        let g = g as usize;
        let domains = self.bin_domains[bin];
        for (si, goal) in self.exclusion_goals.iter_mut().enumerate() {
            if !goal.in_goal[g] {
                continue;
            }
            let dom = domains[scope_index(goal.scope)];
            let before = goal.group_penalty(g);
            let count = goal.counts[g].get_mut(&dom).expect("entity was counted");
            *count -= 1;
            if *count == 0 {
                goal.counts[g].remove(&dom);
                goal.distinct[g] -= 1;
            }
            goal.placed[g] -= 1;
            let after = goal.group_penalty(g);
            self.exclusion_total += after - before;
            if goal.placed[g] <= goal.distinct[g] {
                self.violated_groups.remove(&(si, GroupId(g)));
            }
        }
    }

    /// The exclusion-penalty delta of moving `e` from `from` to `to`,
    /// computed without mutating state.
    fn exclusion_delta(&self, e: EntityId, from: Option<usize>, to: usize) -> f64 {
        let g = self.entity_group[e.0];
        if g == UNPLACED {
            return 0.0;
        }
        let g = g as usize;
        let mut delta = 0.0;
        for goal in &self.exclusion_goals {
            if !goal.in_goal[g] {
                continue;
            }
            let si = scope_index(goal.scope);
            let to_dom = self.bin_domains[to][si];
            let from_dom = from.map(|b| self.bin_domains[b][si]);
            if from_dom == Some(to_dom) {
                continue; // same domain: penalty unchanged
            }
            let mut distinct_delta: i64 = 0;
            let mut placed_delta: i64 = 0;
            if let Some(fd) = from_dom {
                let c = *goal.counts[g].get(&fd).unwrap_or(&0);
                if c == 1 {
                    distinct_delta -= 1;
                }
            } else {
                placed_delta += 1;
            }
            let to_count = *goal.counts[g].get(&to_dom).unwrap_or(&0);
            if to_count == 0 {
                distinct_delta += 1;
            }
            delta += goal.weight * (placed_delta - distinct_delta) as f64;
        }
        delta
    }

    /// Returns true if placing `e` on `bin` would break a hard capacity
    /// constraint.
    pub fn violates_hard(&self, e: EntityId, bin: BinId) -> bool {
        let load = &self.entity_load[e.0];
        let usage = &self.bin_usage[bin.0];
        let cap = &self.bin_capacity[bin.0];
        if self.hard_metrics.iter().any(|&m| {
            let l = load.get(m);
            l > 0.0 && usage.get(m) + l > cap.get(m)
        }) {
            return true;
        }
        if self.forbid_group_colocation {
            let g = self.entity_group[e.0];
            if g != UNPLACED {
                let target = bin.0 as u32;
                return self.group_members[g as usize]
                    .iter()
                    .any(|&m| m != e && self.assignment[m.0] == target);
            }
        }
        false
    }

    /// Evaluates the objective delta of moving `e` to `to`. Returns
    /// `None` if the move is a no-op or breaks a hard constraint.
    /// Negative deltas are improvements.
    pub fn eval_move(&self, e: EntityId, to: BinId) -> Option<f64> {
        let from = self.assignment[e.0];
        if from == to.0 as u32 {
            return None;
        }
        if self.violates_hard(e, to) {
            return None;
        }
        let load = self.entity_load[e.0];
        let aff_to = self.affinity_penalty(e, to.0);

        // Destination leaf after gaining the entity.
        let to_after = {
            let usage = self.bin_usage[to.0] + load;
            let count = self.bin_entity_count[to.0] + 1;
            self.hypothetical_bin_penalty(to.0, &usage, count, self.bin_affinity[to.0] + aff_to)
        };
        let mut delta = to_after - self.tree.get(to.0);

        let from_bin = if from == UNPLACED {
            None
        } else {
            let f = from as usize;
            let aff_from = self.affinity_penalty(e, f);
            let usage = self.bin_usage[f] - load;
            let count = self.bin_entity_count[f] - 1;
            let from_after =
                self.hypothetical_bin_penalty(f, &usage, count, self.bin_affinity[f] - aff_from);
            delta += from_after - self.tree.get(f);
            Some(f)
        };

        delta += self.exclusion_delta(e, from_bin, to.0);
        Some(delta)
    }

    fn hypothetical_bin_penalty(
        &self,
        bin: usize,
        usage: &LoadVector,
        count: u32,
        affinity: f64,
    ) -> f64 {
        let cap = &self.bin_capacity[bin];
        let mut pen = 0.0;
        for g in &self.balance_goals {
            let limit = cap.get(g.metric) * g.limit_util;
            let over = usage.get(g.metric) - limit;
            if over > 0.0 {
                pen += g.weight * over;
            }
        }
        for g in &self.cap_goals {
            let limit = cap.get(g.metric) * g.threshold;
            let over = usage.get(g.metric) - limit;
            if over > 0.0 {
                pen += g.weight * over;
            }
        }
        if self.bin_draining[bin] {
            pen += self.drain_weight * f64::from(count);
        }
        pen + affinity
    }

    /// Applies a move previously vetted by [`Self::eval_move`].
    pub fn apply_move(&mut self, e: EntityId, to: BinId) {
        let from = self.assignment[e.0];
        debug_assert_ne!(from, to.0 as u32, "no-op move");
        let load = self.entity_load[e.0];
        if from != UNPLACED {
            let f = from as usize;
            self.exclusion_remove(e, f);
            self.bin_usage[f] -= load;
            self.bin_usage[f].clamp_non_negative();
            self.bin_entity_count[f] -= 1;
            self.bin_affinity[f] -= self.affinity_penalty(e, f);
            self.index_remove(e, f);
            self.refresh_leaf(f);
            self.refresh_group_key(f);
        } else {
            self.unplaced_count -= 1;
        }
        let b = to.0;
        self.assignment[e.0] = b as u32;
        self.bin_usage[b] += load;
        self.bin_entity_count[b] += 1;
        self.bin_affinity[b] += self.affinity_penalty(e, b);
        self.index_add(e, b);
        self.exclusion_add(e, b);
        self.refresh_leaf(b);
        self.refresh_group_key(b);
    }

    /// Total objective: bin penalties plus exclusion penalties.
    pub fn total_penalty(&self) -> f64 {
        self.tree.total() + self.exclusion_total
    }

    /// Current bin of an entity.
    pub fn bin_of(&self, e: EntityId) -> Option<BinId> {
        let b = self.assignment[e.0];
        (b != UNPLACED).then_some(BinId(b as usize))
    }

    /// Current usage of a bin.
    pub fn usage_of(&self, bin: BinId) -> &LoadVector {
        &self.bin_usage[bin.0]
    }

    /// The hottest `k` bins by attributed penalty.
    pub fn hot_bins(&self, k: usize) -> Vec<BinId> {
        self.tree.top_k(k).into_iter().map(BinId).collect()
    }

    /// Entities currently on `bin`, unordered (within-bin order is a
    /// deterministic function of the move history). O(1): the list is
    /// maintained incrementally under moves.
    pub fn entities_on(&self, bin: BinId) -> &[EntityId] {
        &self.bin_entities[bin.0]
    }

    /// Groups with colocated replicas under some exclusion goal,
    /// along with their member entities.
    pub fn violated_groups(&self) -> Vec<(GroupId, &[EntityId])> {
        self.violated_groups
            .iter()
            .map(|(_, g)| (*g, self.group_members[g.0].as_slice()))
            .collect()
    }

    /// Load of one entity.
    pub fn load_of(&self, e: EntityId) -> &LoadVector {
        &self.entity_load[e.0]
    }

    /// The affinity penalty entity `e` incurs at its current placement —
    /// how much moving it *could* recover. Used by the search to rank
    /// candidates ("prioritizing shards whose constraint or goal
    /// violations impair the optimization objective the most", §5.3).
    pub fn entity_misplacement(&self, e: EntityId) -> f64 {
        let b = self.assignment[e.0];
        if b == UNPLACED {
            return 0.0;
        }
        let mut pen = self.affinity_penalty(e, b as usize);
        if self.bin_draining[b as usize] {
            pen += self.drain_weight;
        }
        pen
    }

    /// Grouping key for grouped target sampling (§5.3 optimization 4):
    /// the bin's region plus a coarse utilization band, so sampling
    /// across keys covers every region and both hot and cold servers.
    /// O(1): cached and refreshed only when a move shifts the band.
    pub fn target_group_key(&self, bin: BinId) -> (u64, u8) {
        self.bin_group_key[bin.0]
    }

    /// All bins grouped by [`Self::target_group_key`], maintained
    /// incrementally so the search never rebuilds the grouping per
    /// round. Within-group order is a deterministic function of the
    /// move history.
    pub fn target_groups(&self) -> &BTreeMap<(u64, u8), Vec<usize>> {
        &self.target_groups
    }

    /// Cross-checks every incremental index against the assignment
    /// vector — test oracle for the O(1) hot-path bookkeeping.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of sync.
    pub fn assert_index_consistent(&self) {
        for (b, list) in self.bin_entities.iter().enumerate() {
            assert_eq!(
                list.len() as u32,
                self.bin_entity_count[b],
                "bin {b}: entity list vs count"
            );
            for &e in list {
                assert_eq!(
                    self.assignment[e.0], b as u32,
                    "bin {b}: stale entity {e:?} in index"
                );
                assert_eq!(
                    list[self.entity_pos[e.0] as usize], e,
                    "entity {e:?}: position index out of sync"
                );
            }
        }
        let placed = self.assignment.iter().filter(|&&a| a != UNPLACED).count();
        let indexed: usize = self.bin_entities.iter().map(Vec::len).sum();
        assert_eq!(placed, indexed, "placed entities vs indexed entities");
        for (b, &key) in self.bin_group_key.iter().enumerate() {
            assert_eq!(key, self.compute_group_key(b), "bin {b}: stale group key");
            let group = self
                .target_groups
                .get(&key)
                .unwrap_or_else(|| panic!("bin {b}: group {key:?} missing"));
            assert_eq!(
                group[self.bin_group_pos[b] as usize], b,
                "bin {b}: group position out of sync"
            );
        }
        let grouped: usize = self.target_groups.values().map(Vec::len).sum();
        assert_eq!(grouped, self.bin_group_key.len(), "bins vs grouped bins");
    }

    /// Snapshot of the current assignment.
    pub fn assignment(&self) -> Vec<Option<BinId>> {
        self.assignment
            .iter()
            .map(|&b| (b != UNPLACED).then_some(BinId(b as usize)))
            .collect()
    }

    /// Discrete violation counts for reporting. O(bins x goals).
    pub fn violations(&self) -> ViolationStats {
        const EPS: f64 = 1e-9;
        let mut stats = ViolationStats {
            unplaced: self.unplaced_count,
            ..Default::default()
        };
        for b in 0..self.bin_usage.len() {
            let usage = &self.bin_usage[b];
            let cap = &self.bin_capacity[b];
            for &m in &self.hard_metrics {
                if usage.get(m) > cap.get(m) + EPS {
                    stats.capacity += 1;
                }
            }
            for g in &self.balance_goals {
                if usage.get(g.metric) > cap.get(g.metric) * g.limit_util + EPS {
                    stats.balance += 1;
                }
            }
            for g in &self.cap_goals {
                if usage.get(g.metric) > cap.get(g.metric) * g.threshold + EPS {
                    stats.utilization += 1;
                }
            }
            if self.bin_draining[b] && self.bin_entity_count[b] > 0 {
                stats.drain += 1;
            }
        }
        for (e, prefs) in self.entity_prefs.iter().enumerate() {
            let b = self.assignment[e];
            if b == UNPLACED {
                continue;
            }
            if prefs
                .iter()
                .any(|&(si, dom, _)| self.bin_domains[b as usize][si] != dom)
            {
                stats.affinity += 1;
            }
        }
        stats.exclusion = self.violated_groups.len();
        stats
    }

    /// Recomputes the objective from scratch — test oracle for the
    /// incremental bookkeeping.
    pub fn recompute_total(&self) -> f64 {
        let mut total = 0.0;
        for b in 0..self.bin_usage.len() {
            total += self.bin_local_penalty(b);
        }
        for goal in &self.exclusion_goals {
            for g in 0..goal.placed.len() {
                total += goal.group_penalty(g);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Bin, Entity};
    use crate::specs::{
        AffinitySpec, BalanceSpec, CapacitySpec, DrainSpec, ExclusionSpec, UtilizationCapSpec,
    };
    use sm_types::{Location, MachineId, Metric, RegionId};

    fn loc(region: u16, machine: u32) -> Location {
        Location {
            region: RegionId(region),
            datacenter: u32::from(region) * 10 + machine / 4,
            rack: u32::from(region) * 100 + machine / 2,
            machine: MachineId(machine),
        }
    }

    /// Two regions x two bins, capacity 10 CPU each.
    fn two_region_problem() -> Problem {
        let mut p = Problem::new();
        for (r, m) in [(0u16, 0u32), (0, 1), (1, 2), (1, 3)] {
            p.add_bin(Bin {
                capacity: LoadVector::single(Metric::Cpu.id(), 10.0),
                location: loc(r, m),
                draining: false,
            });
        }
        p
    }

    fn cpu(v: f64) -> LoadVector {
        LoadVector::single(Metric::Cpu.id(), v)
    }

    #[test]
    fn hard_constraint_rejects_overflow() {
        let mut p = two_region_problem();
        let e0 = p.add_entity(
            Entity {
                load: cpu(8.0),
                group: None,
            },
            Some(BinId(0)),
        );
        let e1 = p.add_entity(
            Entity {
                load: cpu(5.0),
                group: None,
            },
            Some(BinId(1)),
        );
        let mut specs = SpecSet::new();
        specs.add_constraint(CapacitySpec {
            metric: Metric::Cpu.id(),
        });
        let eval = Evaluator::new(&p, &specs, u8::MAX);
        // Moving e1 (5.0) onto bin 0 (8.0/10) would exceed capacity.
        assert!(eval.violates_hard(e1, BinId(0)));
        assert!(eval.eval_move(e1, BinId(0)).is_none());
        // Moving e0 onto bin 1 (5+8 > 10) rejected too.
        assert!(eval.eval_move(e0, BinId(1)).is_none());
        // Empty bins are fine.
        assert!(eval.eval_move(e0, BinId(2)).is_some());
    }

    #[test]
    fn balance_penalty_improves_when_spreading() {
        let mut p = two_region_problem();
        // All load on bin 0: 8.0 of 40 total capacity -> avg util 0.2.
        let entities: Vec<EntityId> = (0..4)
            .map(|_| {
                p.add_entity(
                    Entity {
                        load: cpu(2.0),
                        group: None,
                    },
                    Some(BinId(0)),
                )
            })
            .collect();
        let mut specs = SpecSet::new();
        specs.add_goal(Spec::Balance(BalanceSpec {
            metric: Metric::Cpu.id(),
            tolerance: 0.1,
            weight: 1.0,
            priority: 0,
        }));
        let mut eval = Evaluator::new(&p, &specs, u8::MAX);
        // Bin 0 usage 8.0, limit = 10 * (0.2 + 0.1) = 3.0 -> penalty 5.0.
        assert!((eval.total_penalty() - 5.0).abs() < 1e-9);
        assert_eq!(eval.violations().balance, 1);

        let delta = eval.eval_move(entities[0], BinId(1)).unwrap();
        assert!(
            (delta - (-2.0)).abs() < 1e-9,
            "moving 2.0 off reduces excess"
        );
        eval.apply_move(entities[0], BinId(1));
        assert!((eval.total_penalty() - 3.0).abs() < 1e-9);

        // Spread fully: 2 per bin on two bins -> still above 3.0? 4.0 > 3 -> 1 each.
        eval.apply_move(entities[1], BinId(2));
        eval.apply_move(entities[2], BinId(3));
        // bins: 2,2,2,2 -> usage 2.0 < 3.0 limit -> zero penalty.
        assert!(eval.total_penalty().abs() < 1e-9);
        assert_eq!(eval.violations().total(), 0);
    }

    #[test]
    fn utilization_cap_penalty() {
        let mut p = two_region_problem();
        let e = p.add_entity(
            Entity {
                load: cpu(9.5),
                group: None,
            },
            Some(BinId(0)),
        );
        let mut specs = SpecSet::new();
        specs.add_goal(Spec::UtilizationCap(UtilizationCapSpec {
            metric: Metric::Cpu.id(),
            threshold: 0.9,
            weight: 2.0,
            priority: 0,
        }));
        let mut eval = Evaluator::new(&p, &specs, u8::MAX);
        // 9.5 over the 9.0 threshold -> 0.5 x 2.0 = 1.0.
        assert!((eval.total_penalty() - 1.0).abs() < 1e-9);
        assert_eq!(eval.violations().utilization, 1);
        eval.apply_move(e, BinId(1));
        // Still over on the other bin; unchanged total.
        assert!((eval.total_penalty() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn affinity_penalty_tracks_region() {
        let mut p = two_region_problem();
        let e = p.add_entity(
            Entity {
                load: cpu(1.0),
                group: None,
            },
            Some(BinId(0)),
        );
        let mut specs = SpecSet::new();
        specs.add_goal(Spec::Affinity(AffinitySpec {
            scope: Scope::Region,
            affinities: vec![(e, 1, 3.0)], // prefers region 1
            priority: 0,
        }));
        let mut eval = Evaluator::new(&p, &specs, u8::MAX);
        assert!((eval.total_penalty() - 3.0).abs() < 1e-9);
        assert_eq!(eval.violations().affinity, 1);

        let delta = eval.eval_move(e, BinId(2)).unwrap();
        assert!((delta - (-3.0)).abs() < 1e-9);
        eval.apply_move(e, BinId(2));
        assert!(eval.total_penalty().abs() < 1e-9);
        assert_eq!(eval.violations().affinity, 0);

        // Moving within the preferred region keeps zero penalty.
        let delta = eval.eval_move(e, BinId(3)).unwrap();
        assert!(delta.abs() < 1e-9);
    }

    #[test]
    fn exclusion_penalty_spreads_replicas() {
        let mut p = two_region_problem();
        let g = p.new_group();
        let e0 = p.add_entity(
            Entity {
                load: cpu(1.0),
                group: Some(g),
            },
            Some(BinId(0)),
        );
        let e1 = p.add_entity(
            Entity {
                load: cpu(1.0),
                group: Some(g),
            },
            Some(BinId(1)),
        );
        let mut specs = SpecSet::new();
        specs.add_goal(Spec::Exclusion(ExclusionSpec {
            scope: Scope::Region,
            groups: vec![g],
            weight: 4.0,
            priority: 0,
        }));
        let mut eval = Evaluator::new(&p, &specs, u8::MAX);
        // Both replicas in region 0 -> one colocated pair -> 4.0.
        assert!((eval.total_penalty() - 4.0).abs() < 1e-9);
        assert_eq!(eval.violations().exclusion, 1);
        assert_eq!(eval.violated_groups().len(), 1);

        let delta = eval.eval_move(e1, BinId(2)).unwrap();
        assert!((delta - (-4.0)).abs() < 1e-9);
        eval.apply_move(e1, BinId(2));
        assert!(eval.total_penalty().abs() < 1e-9);
        assert!(eval.violated_groups().is_empty());

        // Moving it back recreates the violation.
        eval.apply_move(e1, BinId(1));
        assert!((eval.total_penalty() - 4.0).abs() < 1e-9);
        let _ = e0;
    }

    #[test]
    fn exclusion_delta_within_same_domain_is_zero() {
        let mut p = two_region_problem();
        let g = p.new_group();
        let _e0 = p.add_entity(
            Entity {
                load: cpu(1.0),
                group: Some(g),
            },
            Some(BinId(0)),
        );
        let e1 = p.add_entity(
            Entity {
                load: cpu(1.0),
                group: Some(g),
            },
            Some(BinId(2)),
        );
        let mut specs = SpecSet::new();
        specs.add_goal(Spec::Exclusion(ExclusionSpec {
            scope: Scope::Region,
            groups: vec![g],
            weight: 4.0,
            priority: 0,
        }));
        let eval = Evaluator::new(&p, &specs, u8::MAX);
        // Moving e1 from bin 2 to bin 3 stays in region 1.
        let delta = eval.eval_move(e1, BinId(3)).unwrap();
        assert!(delta.abs() < 1e-9);
    }

    #[test]
    fn drain_penalty_counts_entities() {
        let mut p = two_region_problem();
        let e0 = p.add_entity(
            Entity {
                load: cpu(1.0),
                group: None,
            },
            Some(BinId(0)),
        );
        let _e1 = p.add_entity(
            Entity {
                load: cpu(1.0),
                group: None,
            },
            Some(BinId(0)),
        );
        p.set_draining(BinId(0), true);
        let mut specs = SpecSet::new();
        specs.add_goal(Spec::Drain(DrainSpec {
            weight: 1.5,
            priority: 0,
        }));
        let mut eval = Evaluator::new(&p, &specs, u8::MAX);
        assert!((eval.total_penalty() - 3.0).abs() < 1e-9);
        assert_eq!(eval.violations().drain, 1);
        eval.apply_move(e0, BinId(1));
        assert!((eval.total_penalty() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn eval_move_matches_apply_delta() {
        // Cross-check: predicted delta == actual total change, across a
        // mixed goal set.
        let mut p = two_region_problem();
        let g = p.new_group();
        let e0 = p.add_entity(
            Entity {
                load: cpu(6.0),
                group: Some(g),
            },
            Some(BinId(0)),
        );
        let e1 = p.add_entity(
            Entity {
                load: cpu(3.0),
                group: Some(g),
            },
            Some(BinId(0)),
        );
        let e2 = p.add_entity(
            Entity {
                load: cpu(2.0),
                group: None,
            },
            Some(BinId(2)),
        );
        let mut specs = SpecSet::new();
        specs.add_constraint(CapacitySpec {
            metric: Metric::Cpu.id(),
        });
        specs.add_goal(Spec::Balance(BalanceSpec {
            metric: Metric::Cpu.id(),
            tolerance: 0.05,
            weight: 1.0,
            priority: 0,
        }));
        specs.add_goal(Spec::Exclusion(ExclusionSpec {
            scope: Scope::Rack,
            groups: vec![g],
            weight: 2.0,
            priority: 0,
        }));
        specs.add_goal(Spec::Affinity(AffinitySpec {
            scope: Scope::Region,
            affinities: vec![(e2, 0, 1.0)],
            priority: 0,
        }));
        let mut eval = Evaluator::new(&p, &specs, u8::MAX);

        for (e, to) in [
            (e1, BinId(3)),
            (e2, BinId(1)),
            (e0, BinId(2)),
            (e1, BinId(0)),
        ] {
            if let Some(delta) = eval.eval_move(e, to) {
                let before = eval.total_penalty();
                eval.apply_move(e, to);
                let after = eval.total_penalty();
                assert!(
                    (after - before - delta).abs() < 1e-9,
                    "delta mismatch for {e:?}->{to:?}: predicted {delta}, actual {}",
                    after - before
                );
                // And the incremental total matches a from-scratch recompute.
                assert!((after - eval.recompute_total()).abs() < 1e-9);
                eval.assert_index_consistent();
            }
        }
    }

    #[test]
    fn unplaced_entities_counted_and_placeable() {
        let mut p = two_region_problem();
        let e = p.add_entity(
            Entity {
                load: cpu(1.0),
                group: None,
            },
            None,
        );
        let specs = SpecSet::new();
        let mut eval = Evaluator::new(&p, &specs, u8::MAX);
        assert_eq!(eval.violations().unplaced, 1);
        assert!(eval.bin_of(e).is_none());
        eval.apply_move(e, BinId(1));
        assert_eq!(eval.violations().unplaced, 0);
        assert_eq!(eval.bin_of(e), Some(BinId(1)));
        assert_eq!(eval.entities_on(BinId(1)), [e]);
        eval.assert_index_consistent();
    }

    #[test]
    fn group_colocation_hard_constraint() {
        let mut p = two_region_problem();
        let g = p.new_group();
        let _e0 = p.add_entity(
            Entity {
                load: cpu(1.0),
                group: Some(g),
            },
            Some(BinId(0)),
        );
        let e1 = p.add_entity(
            Entity {
                load: cpu(1.0),
                group: Some(g),
            },
            Some(BinId(1)),
        );
        let e2 = p.add_entity(
            Entity {
                load: cpu(1.0),
                group: None,
            },
            Some(BinId(1)),
        );
        let mut specs = SpecSet::new();
        specs.forbid_group_colocation = true;
        let eval = Evaluator::new(&p, &specs, u8::MAX);
        // e1 cannot join its sibling on bin 0.
        assert!(eval.violates_hard(e1, BinId(0)));
        assert!(eval.eval_move(e1, BinId(0)).is_none());
        // Ungrouped entities are unaffected.
        assert!(!eval.violates_hard(e2, BinId(0)));
        // And e1 can go anywhere else.
        assert!(eval.eval_move(e1, BinId(2)).is_some());
    }

    #[test]
    fn priority_filter_excludes_later_batches() {
        let mut p = two_region_problem();
        let _e = p.add_entity(
            Entity {
                load: cpu(9.9),
                group: None,
            },
            Some(BinId(0)),
        );
        let mut specs = SpecSet::new();
        specs.add_goal(Spec::UtilizationCap(UtilizationCapSpec {
            metric: Metric::Cpu.id(),
            threshold: 0.5,
            weight: 1.0,
            priority: 3,
        }));
        let eval_p0 = Evaluator::new(&p, &specs, 0);
        assert_eq!(eval_p0.total_penalty(), 0.0, "goal in later batch inactive");
        let eval_p3 = Evaluator::new(&p, &specs, 3);
        assert!(eval_p3.total_penalty() > 0.0);
    }
}
