//! The spec API: hard constraints and prioritized soft goals.
//!
//! This mirrors the ReBalancer interface sketched in Figure 13 of the
//! paper (`addConstraint(CapacitySpec{...})`, `addGoal(BalanceSpec{...},
//! weight)`, affinity and exclusion specs). Systems code expresses
//! *what* a good placement looks like; the search engine decides *how*
//! to find one.

use crate::problem::{EntityId, GroupId};
use sm_types::{FaultDomain, MetricId};

/// The aggregation scope of a constraint or goal.
///
/// `Host` means per-bin; the coarser scopes aggregate over the bins
/// sharing the corresponding fault domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scope {
    /// Per server.
    Host,
    /// Per rack.
    Rack,
    /// Per data center.
    DataCenter,
    /// Per region.
    Region,
}

impl Scope {
    /// The fault-domain level this scope aggregates over.
    pub fn fault_domain(self) -> FaultDomain {
        match self {
            Scope::Host => FaultDomain::Machine,
            Scope::Rack => FaultDomain::Rack,
            Scope::DataCenter => FaultDomain::DataCenter,
            Scope::Region => FaultDomain::Region,
        }
    }
}

/// Hard constraint: per-host usage of `metric` must not exceed capacity
/// (§5.1 hard constraint 2). Moves that would violate it are rejected
/// outright rather than penalized.
#[derive(Clone, Copy, Debug)]
pub struct CapacitySpec {
    /// The constrained metric.
    pub metric: MetricId,
}

/// Soft goal: keep per-host utilization of `metric` within `tolerance`
/// of the fleet-average utilization (§5.1 soft goals 5 & 6).
///
/// The penalty for a bin is the load excess above
/// `capacity x (avg_util + tolerance)`.
#[derive(Clone, Copy, Debug)]
pub struct BalanceSpec {
    /// The balanced metric.
    pub metric: MetricId,
    /// Allowed deviation above average utilization, e.g. 0.1 for 10%.
    pub tolerance: f64,
    /// Penalty weight.
    pub weight: f64,
    /// Goal priority batch (0 = most critical).
    pub priority: u8,
}

/// Soft goal: keep per-host utilization of `metric` below `threshold`
/// (§5.1 soft goal 4, e.g. 90%).
#[derive(Clone, Copy, Debug)]
pub struct UtilizationCapSpec {
    /// The capped metric.
    pub metric: MetricId,
    /// Utilization ceiling in `[0, 1]`.
    pub threshold: f64,
    /// Penalty weight.
    pub weight: f64,
    /// Goal priority batch.
    pub priority: u8,
}

/// Soft goal: place specific entities in specific domains (§5.1 soft
/// goal 1 — per-shard regional placement preference).
#[derive(Clone, Debug)]
pub struct AffinitySpec {
    /// The domain level of the preference (normally [`Scope::Region`]).
    pub scope: Scope,
    /// `(entity, preferred domain id, weight)` triples; the weight is
    /// charged while the entity is placed outside the domain.
    pub affinities: Vec<(EntityId, u64, f64)>,
    /// Goal priority batch.
    pub priority: u8,
}

/// Soft goal: spread each group's entities across distinct domains
/// (§5.1 soft goal 2 — spread of replicas).
///
/// The penalty for a group is `weight x (placed_members - distinct
/// domains)`: zero when every replica sits in its own domain.
#[derive(Clone, Debug)]
pub struct ExclusionSpec {
    /// The domain level to spread across.
    pub scope: Scope,
    /// The groups to spread (normally every shard's replica group).
    pub groups: Vec<GroupId>,
    /// Penalty weight per colocated pair.
    pub weight: f64,
    /// Goal priority batch.
    pub priority: u8,
}

/// Soft goal: move entities off draining bins (§5.1 soft goal 3 —
/// planned maintenance preparation).
#[derive(Clone, Copy, Debug)]
pub struct DrainSpec {
    /// Penalty weight per entity sitting on a draining bin.
    pub weight: f64,
    /// Goal priority batch.
    pub priority: u8,
}

/// Any soft goal.
#[derive(Clone, Debug)]
pub enum Spec {
    /// Balance load across hosts.
    Balance(BalanceSpec),
    /// Cap host utilization.
    UtilizationCap(UtilizationCapSpec),
    /// Regional/domain placement preferences.
    Affinity(AffinitySpec),
    /// Spread replica groups across domains.
    Exclusion(ExclusionSpec),
    /// Evacuate draining bins.
    Drain(DrainSpec),
}

impl Spec {
    /// The goal's priority batch.
    pub fn priority(&self) -> u8 {
        match self {
            Spec::Balance(s) => s.priority,
            Spec::UtilizationCap(s) => s.priority,
            Spec::Affinity(s) => s.priority,
            Spec::Exclusion(s) => s.priority,
            Spec::Drain(s) => s.priority,
        }
    }
}

/// A full problem specification: hard constraints plus soft goals.
#[derive(Clone, Debug, Default)]
pub struct SpecSet {
    /// Hard capacity constraints.
    pub constraints: Vec<CapacitySpec>,
    /// Soft goals in insertion order.
    pub goals: Vec<Spec>,
    /// Hard constraint: no two members of one group may share a bin —
    /// SM's invariant that no two servers host replicas of the same
    /// shard at once.
    pub forbid_group_colocation: bool,
}

impl SpecSet {
    /// Creates an empty spec set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a hard constraint (Figure 13's `addConstraint`).
    pub fn add_constraint(&mut self, spec: CapacitySpec) -> &mut Self {
        self.constraints.push(spec);
        self
    }

    /// Adds a soft goal (Figure 13's `addGoal`).
    pub fn add_goal(&mut self, spec: Spec) -> &mut Self {
        self.goals.push(spec);
        self
    }

    /// The distinct goal priorities present, ascending (the batch
    /// schedule of §5.3).
    pub fn priorities(&self) -> Vec<u8> {
        let mut ps: Vec<u8> = self.goals.iter().map(Spec::priority).collect();
        ps.sort_unstable();
        ps.dedup();
        ps
    }

    /// The goals with priority <= `max_priority` (cumulative batching).
    pub fn goals_up_to(&self, max_priority: u8) -> Vec<&Spec> {
        self.goals
            .iter()
            .filter(|g| g.priority() <= max_priority)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_types::Metric;

    #[test]
    fn priorities_sorted_deduped() {
        let mut set = SpecSet::new();
        set.add_goal(Spec::Drain(DrainSpec {
            weight: 1.0,
            priority: 2,
        }));
        set.add_goal(Spec::Balance(BalanceSpec {
            metric: Metric::Cpu.id(),
            tolerance: 0.1,
            weight: 1.0,
            priority: 0,
        }));
        set.add_goal(Spec::UtilizationCap(UtilizationCapSpec {
            metric: Metric::Cpu.id(),
            threshold: 0.9,
            weight: 1.0,
            priority: 0,
        }));
        assert_eq!(set.priorities(), vec![0, 2]);
        assert_eq!(set.goals_up_to(0).len(), 2);
        assert_eq!(set.goals_up_to(2).len(), 3);
    }

    #[test]
    fn scope_maps_to_fault_domain() {
        assert_eq!(Scope::Host.fault_domain(), FaultDomain::Machine);
        assert_eq!(Scope::Region.fault_domain(), FaultDomain::Region);
        assert_eq!(Scope::Rack.fault_domain(), FaultDomain::Rack);
        assert_eq!(Scope::DataCenter.fault_domain(), FaultDomain::DataCenter);
    }

    #[test]
    fn builder_chains() {
        let mut set = SpecSet::new();
        set.add_constraint(CapacitySpec {
            metric: Metric::Cpu.id(),
        })
        .add_constraint(CapacitySpec {
            metric: Metric::Storage.id(),
        });
        assert_eq!(set.constraints.len(), 2);
    }
}
