//! The optimization problem model: entities, bins, and the assignment.

use sm_types::{LoadVector, Location};

/// Index of an entity (a shard replica) in a [`Problem`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EntityId(pub usize);

/// Index of a bin (a server) in a [`Problem`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BinId(pub usize);

/// A replica group: all replicas of one shard share a group, which is
/// what spread/exclusion goals operate on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroupId(pub usize);

/// An entity to place: one shard replica with its load vector.
#[derive(Clone, Copy, Debug)]
pub struct Entity {
    /// Resource demand, added to whichever bin hosts the entity.
    pub load: LoadVector,
    /// Replica group (the shard), if the entity has siblings to spread.
    pub group: Option<GroupId>,
}

/// A bin that can host entities: one application server.
#[derive(Clone, Copy, Debug)]
pub struct Bin {
    /// Resource capacity.
    pub capacity: LoadVector,
    /// Position in the fault-domain hierarchy (region/DC/rack/machine).
    pub location: Location,
    /// True if the bin is being drained (pending maintenance or
    /// upgrade); soft goal 3 steers entities away from such bins.
    pub draining: bool,
}

/// A placement problem: entities, bins, and an initial assignment.
///
/// `EntityId`/`BinId`/`GroupId` are dense indices minted by the `add_*`
/// methods, so lookups are plain vector indexing on the hot path.
#[derive(Clone, Debug, Default)]
pub struct Problem {
    entities: Vec<Entity>,
    bins: Vec<Bin>,
    initial: Vec<Option<BinId>>,
    group_count: usize,
}

impl Problem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a bin, returning its id.
    pub fn add_bin(&mut self, bin: Bin) -> BinId {
        self.bins.push(bin);
        BinId(self.bins.len() - 1)
    }

    /// Mints a fresh group id for a shard's replicas.
    pub fn new_group(&mut self) -> GroupId {
        self.group_count += 1;
        GroupId(self.group_count - 1)
    }

    /// Adds an entity with its initial placement (or `None` if it needs
    /// emergency placement), returning its id.
    pub fn add_entity(&mut self, entity: Entity, placed_on: Option<BinId>) -> EntityId {
        self.entities.push(entity);
        self.initial.push(placed_on);
        EntityId(self.entities.len() - 1)
    }

    /// Number of entities.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Number of bins.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Number of groups minted.
    pub fn group_count(&self) -> usize {
        self.group_count
    }

    /// Looks up an entity.
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.0]
    }

    /// Looks up a bin.
    pub fn bin(&self, id: BinId) -> &Bin {
        &self.bins[id.0]
    }

    /// All bins.
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// All entities.
    pub fn entities(&self) -> &[Entity] {
        &self.entities
    }

    /// The initial assignment (entity index -> bin).
    pub fn initial_assignment(&self) -> &[Option<BinId>] {
        &self.initial
    }

    /// Marks a bin as draining.
    pub fn set_draining(&mut self, bin: BinId, draining: bool) {
        self.bins[bin.0].draining = draining;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_types::{MachineId, RegionId};

    fn loc(machine: u32) -> Location {
        Location {
            region: RegionId(0),
            datacenter: 0,
            rack: machine / 8,
            machine: MachineId(machine),
        }
    }

    #[test]
    fn ids_are_dense() {
        let mut p = Problem::new();
        let b0 = p.add_bin(Bin {
            capacity: LoadVector::zero(),
            location: loc(0),
            draining: false,
        });
        let b1 = p.add_bin(Bin {
            capacity: LoadVector::zero(),
            location: loc(1),
            draining: false,
        });
        assert_eq!(b0, BinId(0));
        assert_eq!(b1, BinId(1));

        let g = p.new_group();
        let e = p.add_entity(
            Entity {
                load: LoadVector::zero(),
                group: Some(g),
            },
            Some(b1),
        );
        assert_eq!(e, EntityId(0));
        assert_eq!(p.initial_assignment()[0], Some(b1));
        assert_eq!(p.entity_count(), 1);
        assert_eq!(p.bin_count(), 2);
        assert_eq!(p.group_count(), 1);
    }

    #[test]
    fn draining_flag_toggles() {
        let mut p = Problem::new();
        let b = p.add_bin(Bin {
            capacity: LoadVector::zero(),
            location: loc(0),
            draining: false,
        });
        p.set_draining(b, true);
        assert!(p.bin(b).draining);
    }
}
