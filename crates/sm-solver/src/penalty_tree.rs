//! A Fenwick (binary indexed) tree over per-bin penalties.
//!
//! §5.3: ReBalancer "represents an optimization objective as a tree of
//! variables ... When evaluating a shard move, it only traverses tree
//! nodes whose values may change, resulting in O(log(n)) complexity."
//! A move touches two bins; updating their leaves costs O(log n) each,
//! and the total objective is read from the accumulated sums in O(1)
//! (we cache the total) — instead of re-summing all n bins per move.

/// A Fenwick tree of `f64` penalties with a cached total.
#[derive(Clone, Debug)]
pub struct PenaltyTree {
    tree: Vec<f64>,
    leaves: Vec<f64>,
    total: f64,
}

impl PenaltyTree {
    /// Creates a tree of `n` zero leaves.
    pub fn new(n: usize) -> Self {
        Self {
            tree: vec![0.0; n + 1],
            leaves: vec![0.0; n],
            total: 0.0,
        }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// True if the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Current value of leaf `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.leaves[i]
    }

    /// Sets leaf `i` to `value` in O(log n).
    pub fn set(&mut self, i: usize, value: f64) {
        let delta = value - self.leaves[i];
        if delta == 0.0 {
            return;
        }
        self.leaves[i] = value;
        self.total += delta;
        let mut idx = i + 1;
        while idx < self.tree.len() {
            self.tree[idx] += delta;
            idx += idx & idx.wrapping_neg();
        }
    }

    /// Sum of leaves `0..=i` in O(log n).
    pub fn prefix_sum(&self, i: usize) -> f64 {
        let mut idx = i + 1;
        let mut sum = 0.0;
        while idx > 0 {
            sum += self.tree[idx];
            idx -= idx & idx.wrapping_neg();
        }
        sum
    }

    /// Total penalty across all leaves in O(1).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Indices of the `k` largest leaves, descending by value, skipping
    /// zero-penalty leaves. O(n) scan — used once per search round, not
    /// per move evaluation.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut hot: Vec<usize> = (0..self.leaves.len())
            .filter(|&i| self.leaves[i] > 0.0)
            .collect();
        hot.sort_by(|&a, &b| {
            self.leaves[b]
                .partial_cmp(&self.leaves[a])
                .expect("penalties are finite")
        });
        hot.truncate(k);
        hot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_total() {
        let mut t = PenaltyTree::new(8);
        t.set(0, 5.0);
        t.set(3, 2.0);
        t.set(7, 1.0);
        assert_eq!(t.total(), 8.0);
        t.set(3, 0.0);
        assert_eq!(t.total(), 6.0);
        assert_eq!(t.get(0), 5.0);
        assert_eq!(t.get(3), 0.0);
    }

    #[test]
    fn prefix_sums_match_naive() {
        let mut t = PenaltyTree::new(16);
        let mut naive = [0.0; 16];
        // Deterministic pseudo-values.
        for (i, slot) in naive.iter_mut().enumerate() {
            let v = ((i * 7 + 3) % 11) as f64;
            t.set(i, v);
            *slot = v;
        }
        for i in 0..16 {
            let expect: f64 = naive[..=i].iter().sum();
            assert!((t.prefix_sum(i) - expect).abs() < 1e-9, "prefix {i}");
        }
        let total: f64 = naive.iter().sum();
        assert!((t.total() - total).abs() < 1e-9);
    }

    #[test]
    fn top_k_orders_descending_and_skips_zeros() {
        let mut t = PenaltyTree::new(5);
        t.set(0, 1.0);
        t.set(2, 9.0);
        t.set(4, 5.0);
        assert_eq!(t.top_k(2), vec![2, 4]);
        assert_eq!(t.top_k(10), vec![2, 4, 0]);
        assert!(PenaltyTree::new(3).top_k(2).is_empty());
    }

    #[test]
    fn repeated_updates_keep_total_consistent() {
        let mut t = PenaltyTree::new(4);
        for round in 0..100 {
            let i = round % 4;
            t.set(i, round as f64);
        }
        let expect: f64 = (96..100).map(|v| v as f64).sum();
        assert!((t.total() - expect).abs() < 1e-9);
    }

    #[test]
    fn top_k_with_k_at_least_len_returns_all_nonzero() {
        let mut t = PenaltyTree::new(3);
        t.set(0, 2.0);
        t.set(1, 7.0);
        t.set(2, 4.0);
        // k == len and k > len both return every non-zero leaf.
        assert_eq!(t.top_k(3), vec![1, 2, 0]);
        assert_eq!(t.top_k(100), vec![1, 2, 0]);
        t.set(2, 0.0);
        assert_eq!(t.top_k(100), vec![1, 0], "zeroed leaf drops out");
    }

    #[test]
    fn zero_leaf_tree_is_empty_and_inert() {
        let t = PenaltyTree::new(0);
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.total(), 0.0);
        assert!(t.top_k(5).is_empty());
        // A non-empty tree is not `is_empty` even with all-zero leaves.
        let t1 = PenaltyTree::new(1);
        assert_eq!(t1.len(), 1);
        assert!(!t1.is_empty());
        assert_eq!(t1.total(), 0.0);
    }

    #[test]
    fn add_remove_round_trips_keep_cached_total_fresh() {
        // Many add/remove round-trips accumulate float error in the
        // cached total; it must stay within 1e-9 of a from-scratch
        // recompute of the surviving leaves.
        let mut t = PenaltyTree::new(16);
        for round in 0..1_000 {
            let i = (round * 7 + 3) % 16;
            let v = ((round % 13) as f64) * 0.37 + 0.11;
            t.set(i, v); // add
            if round % 3 == 0 {
                t.set(i, 0.0); // remove again
            }
        }
        let fresh: f64 = (0..16).map(|i| t.get(i)).sum();
        assert!(
            (t.total() - fresh).abs() < 1e-9,
            "cached {} vs fresh {}",
            t.total(),
            fresh
        );
        // Drain every leaf: the cached total returns to ~zero.
        for i in 0..16 {
            t.set(i, 0.0);
        }
        assert!(t.total().abs() < 1e-9);
        assert!(t.top_k(16).is_empty());
    }
}
