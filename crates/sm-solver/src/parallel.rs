//! Deterministic n-way parallel local search.
//!
//! [`ParallelSearch`] runs N seeded [`LocalSearch`] workers on
//! `std::thread::scope` (std-only, no work-stealing runtime) in one of
//! two modes selected by [`ParallelMode`]:
//!
//! - **Portfolio** — every worker solves the full problem with a
//!   distinct RNG stream (and lightly diversified knobs); the best
//!   final assignment wins a deterministic `(penalty, worker)` tie
//!   break. More exploration for the same wall clock on multi-core
//!   hardware.
//! - **Region-partition** — bins are striped across N disjoint
//!   partitions (round-robin over the region-sorted bin list, so every
//!   partition spans every region), entities follow their replica
//!   group or their initial bin, and each partition is solved
//!   concurrently on a *narrower* configuration. The merged assignment
//!   is then polished by a short sequential full-problem pass. Because
//!   each worker searches a sub-problem (fewer candidate entities,
//!   fewer target bins, smaller per-round scans), total work shrinks —
//!   this mode is faster even on a single core.
//!
//! Determinism: the result is a pure function of `(problem, specs,
//! seed, threads)`. Worker `i` derives its RNG with
//! [`SimRng::seed_from`]`(seed, i)` — never by ad-hoc seed arithmetic
//! (sm-lint rule D2) — workers share no mutable state, results are
//! collected by joining handles in worker-index order, and every
//! reduction is order-independent. Budgets stay eval-counted, so no
//! wall-clock reading ever influences a decision (rule D1).

use crate::problem::{BinId, Entity, EntityId, GroupId, Problem};
use crate::search::{LocalSearch, ParallelMode, SearchConfig, SearchStats};
use crate::specs::{AffinitySpec, ExclusionSpec, Spec, SpecSet};
use sm_sim::SimRng;

/// Marker for "entity/group not present in this partition".
const ABSENT: u32 = u32::MAX;

/// One disjoint slice of the full problem, with id-remapping tables
/// back to the global index spaces.
struct Partition {
    problem: Problem,
    specs: SpecSet,
    /// Local entity index -> global entity id.
    global_entity: Vec<EntityId>,
    /// Local bin index -> global bin id.
    global_bin: Vec<BinId>,
}

/// The deterministic parallel driver over [`LocalSearch`].
pub struct ParallelSearch {
    config: SearchConfig,
}

impl ParallelSearch {
    /// Creates a driver; `config.threads` and `config.parallel_mode`
    /// select the strategy.
    pub fn new(config: SearchConfig) -> Self {
        Self { config }
    }

    /// Solves the problem. With `threads <= 1` this is byte-identical
    /// to [`LocalSearch::solve`]; otherwise it fans out per
    /// [`ParallelMode`].
    pub fn solve(&self, problem: &Problem, specs: &SpecSet) -> (Vec<Option<BinId>>, SearchStats) {
        let n = self.config.threads.min(problem.bin_count()).max(1);
        if n <= 1 {
            return LocalSearch::new(self.config.clone()).solve(problem, specs);
        }
        match self.config.parallel_mode {
            ParallelMode::Portfolio => self.solve_portfolio(problem, specs, n),
            ParallelMode::RegionPartition => self.solve_partitioned(problem, specs, n),
        }
    }

    /// Portfolio mode: N full-problem solves, best result wins.
    fn solve_portfolio(
        &self,
        problem: &Problem,
        specs: &SpecSet,
        n: usize,
    ) -> (Vec<Option<BinId>>, SearchStats) {
        let seed = self.config.seed;
        let per_worker_budget = self.config.eval_budget.map(|b| b / n as u64);
        let results: Vec<(Vec<Option<BinId>>, SearchStats)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let mut cfg = diversify(&self.config, i);
                    cfg.eval_budget = per_worker_budget;
                    scope.spawn(move || {
                        let mut rng = SimRng::seed_from(seed, i as u64);
                        let initial = problem.initial_assignment().to_vec();
                        LocalSearch::new(cfg).solve_from(problem, specs, initial, &mut rng)
                    })
                })
                .collect();
            // Joining in worker-index order makes the collection order
            // independent of thread scheduling.
            handles
                .into_iter()
                .map(|h| h.join().expect("portfolio worker panicked"))
                .collect()
        });

        // Deterministic reduction: lowest final penalty, then lowest
        // worker index. The comparator is total over distinct indices,
        // so the winner does not depend on iteration internals.
        let winner = results
            .iter()
            .enumerate()
            .min_by(|(i, a), (j, b)| {
                a.1.final_penalty
                    .total_cmp(&b.1.final_penalty)
                    .then(i.cmp(j))
            })
            .expect("at least one worker ran")
            .0;
        let total_evaluated: u64 = results.iter().map(|(_, s)| s.evaluated).sum();
        let total_moves: usize = results.iter().map(|(_, s)| s.moves).sum();
        let (assignment, mut stats) = results.into_iter().nth(winner).expect("winner index valid");
        // Evaluations and moves report the whole portfolio's work; the
        // timeline stays the winner's trajectory.
        stats.evaluated = total_evaluated;
        stats.moves = total_moves;
        (assignment, stats)
    }

    /// Region-partition mode: disjoint sub-problems solved
    /// concurrently, merged, then sequentially polished.
    fn solve_partitioned(
        &self,
        problem: &Problem,
        specs: &SpecSet,
        n: usize,
    ) -> (Vec<Option<BinId>>, SearchStats) {
        let seed = self.config.seed;
        let partitions = build_partitions(problem, specs, n);

        // Workers get half the budget between them; the polish pass
        // gets whatever the workers left over.
        let per_worker_budget = self.config.eval_budget.map(|b| b / (2 * n as u64));
        let results: Vec<(Vec<Option<BinId>>, SearchStats)> = std::thread::scope(|scope| {
            let handles: Vec<_> = partitions
                .iter()
                .enumerate()
                .map(|(i, part)| {
                    let cfg = narrow(&self.config, per_worker_budget);
                    scope.spawn(move || {
                        let mut rng = SimRng::seed_from(seed, i as u64);
                        let initial = part.problem.initial_assignment().to_vec();
                        LocalSearch::new(cfg).solve_from(
                            &part.problem,
                            &part.specs,
                            initial,
                            &mut rng,
                        )
                    })
                })
                .collect();
            // Joining in worker-index order makes the collection order
            // independent of thread scheduling.
            handles
                .into_iter()
                .map(|h| h.join().expect("partition worker panicked"))
                .collect()
        });

        // Merge: partitions own disjoint bin and entity sets, so the
        // merged assignment is a set of independent writes — its value
        // does not depend on merge order.
        let mut merged: Vec<Option<BinId>> = vec![None; problem.entity_count()];
        for (part, (local_assignment, _)) in partitions.iter().zip(&results) {
            for (le, maybe_bin) in local_assignment.iter().enumerate() {
                merged[part.global_entity[le].0] = maybe_bin.map(|lb| part.global_bin[lb.0]);
            }
        }
        let worker_evaluated: u64 = results.iter().map(|(_, s)| s.evaluated).sum();
        let worker_moves: usize = results.iter().map(|(_, s)| s.moves).sum();

        // Sequential cross-partition polish over the full problem,
        // continuing the deterministic eval clock where the workers
        // stopped. The merged assignment is already near-feasible, so
        // the polish runs a single full-goal batch instead of the
        // priority ladder — one evaluator build instead of one per
        // priority level.
        let mut polish_cfg = self.config.clone();
        polish_cfg.use_batching = false;
        polish_cfg.eval_budget = self
            .config
            .eval_budget
            .map(|b| b.saturating_sub(worker_evaluated));
        let mut rng = SimRng::seed_from(seed, n as u64);
        let (assignment, polish_stats) =
            LocalSearch::new(polish_cfg).solve_from(problem, specs, merged, &mut rng);

        let mut stats = polish_stats;
        // Partitions are bin-disjoint and group-disjoint, so every
        // penalty term is partition-local and the global initial
        // penalty is the sum of the per-partition ones (up to each
        // partition's own balance average, which striping keeps within
        // noise of the global average).
        stats.initial_penalty = results.iter().map(|(_, s)| s.initial_penalty).sum();
        stats.moves += worker_moves;
        stats.evaluated += worker_evaluated;
        // Shift the polish timeline onto the combined eval clock.
        for (evals, _, _) in &mut stats.timeline {
            *evals += worker_evaluated;
        }
        (assignment, stats)
    }
}

/// Light per-worker config diversification for portfolio mode, so
/// workers explore differently even beyond their RNG streams.
fn diversify(base: &SearchConfig, worker: usize) -> SearchConfig {
    let mut cfg = base.clone();
    match worker % 4 {
        1 => cfg.targets_per_entity = base.targets_per_entity.saturating_add(8),
        2 => cfg.entities_per_bin = base.entities_per_bin.saturating_add(4),
        3 => cfg.patience = base.patience.saturating_add(8),
        _ => {}
    }
    cfg
}

/// Narrows the per-round search widths for a partition worker: the
/// sub-problem is smaller, so smaller candidate fans reach the same
/// quality with less work.
fn narrow(base: &SearchConfig, budget: Option<u64>) -> SearchConfig {
    SearchConfig {
        hot_bins_per_round: (base.hot_bins_per_round / 4).max(2),
        entities_per_bin: (base.entities_per_bin / 2).max(4),
        targets_per_entity: (base.targets_per_entity / 3).max(8),
        // Workers converge fast and leave fine-tuning to the polish
        // pass, so a long non-improving tail is wasted work.
        patience: (base.patience / 4).max(2),
        eval_budget: budget,
        ..base.clone()
    }
}

/// Splits `problem` into `n` disjoint partitions.
///
/// Bins are sorted by (region domain, index) and striped round-robin,
/// so every partition spans every region — affinity, balance, and
/// spread goals all stay locally satisfiable and each partition's
/// average utilization tracks the global one. Entities follow their
/// replica group (`group % n`, keeping exclusion goals evaluable
/// in-partition), or the partition of their initial bin, or `id % n`
/// when unplaced; a grouped entity whose initial bin landed in another
/// partition enters its partition unplaced and is re-placed there.
fn build_partitions(problem: &Problem, specs: &SpecSet, n: usize) -> Vec<Partition> {
    let n_bins = problem.bin_count();
    let n_entities = problem.entity_count();
    let n_groups = problem.group_count();

    let mut region_sorted: Vec<usize> = (0..n_bins).collect();
    region_sorted.sort_by_key(|&b| {
        (
            problem
                .bin(BinId(b))
                .location
                .domain(sm_types::FaultDomain::Region),
            b,
        )
    });
    let mut part_of_bin = vec![0usize; n_bins];
    for (rank, &b) in region_sorted.iter().enumerate() {
        part_of_bin[b] = rank % n;
    }

    let part_of_group: Vec<usize> = (0..n_groups).map(|g| g % n).collect();
    let part_of_entity: Vec<usize> = (0..n_entities)
        .map(|e| {
            let entity = problem.entity(EntityId(e));
            if let Some(g) = entity.group {
                part_of_group[g.0]
            } else if let Some(bin) = problem.initial_assignment()[e] {
                part_of_bin[bin.0]
            } else {
                e % n
            }
        })
        .collect();

    // Global -> local id tables, shared across partitions (each slot
    // is only meaningful for the owning partition). Bins, groups, and
    // entities are distributed in one pass each — ascending global
    // order, so local ids are ascending within every partition.
    let mut local_bin = vec![ABSENT; n_bins];
    let mut local_entity = vec![ABSENT; n_entities];
    let mut local_group = vec![ABSENT; n_groups];

    let mut subs: Vec<Problem> = (0..n).map(|_| Problem::new()).collect();
    let mut global_bins: Vec<Vec<BinId>> = vec![Vec::new(); n];
    let mut global_entities: Vec<Vec<EntityId>> = vec![Vec::new(); n];
    for b in 0..n_bins {
        let p = part_of_bin[b];
        local_bin[b] = subs[p].add_bin(*problem.bin(BinId(b))).0 as u32;
        global_bins[p].push(BinId(b));
    }
    for g in 0..n_groups {
        let p = part_of_group[g];
        local_group[g] = subs[p].new_group().0 as u32;
    }
    for e in 0..n_entities {
        let p = part_of_entity[e];
        let entity = problem.entity(EntityId(e));
        let initial = problem.initial_assignment()[e]
            .and_then(|bin| (part_of_bin[bin.0] == p).then(|| BinId(local_bin[bin.0] as usize)));
        let id = subs[p].add_entity(
            Entity {
                load: entity.load,
                group: entity.group.map(|g| GroupId(local_group[g.0] as usize)),
            },
            initial,
        );
        local_entity[e] = id.0 as u32;
        global_entities[p].push(EntityId(e));
    }

    subs.into_iter()
        .zip(global_bins)
        .zip(global_entities)
        .enumerate()
        .map(|(p, ((sub, global_bin), global_entity))| Partition {
            specs: remap_specs(
                specs,
                &local_entity,
                &local_group,
                &part_of_entity,
                &part_of_group,
                p,
            ),
            problem: sub,
            global_entity,
            global_bin,
        })
        .collect()
}

/// Projects `specs` onto one partition: constraints and bin-local goals
/// copy through unchanged; affinity and exclusion goals keep only the
/// entities/groups owned by the partition, remapped to local ids.
fn remap_specs(
    specs: &SpecSet,
    local_entity: &[u32],
    local_group: &[u32],
    part_of_entity: &[usize],
    part_of_group: &[usize],
    p: usize,
) -> SpecSet {
    let mut out = SpecSet::new();
    out.constraints = specs.constraints.clone();
    out.forbid_group_colocation = specs.forbid_group_colocation;
    for goal in &specs.goals {
        match goal {
            Spec::Affinity(s) => {
                let affinities: Vec<(EntityId, u64, f64)> = s
                    .affinities
                    .iter()
                    .filter(|(e, _, _)| part_of_entity[e.0] == p)
                    .map(|(e, dom, w)| (EntityId(local_entity[e.0] as usize), *dom, *w))
                    .collect();
                if !affinities.is_empty() {
                    out.add_goal(Spec::Affinity(AffinitySpec {
                        scope: s.scope,
                        affinities,
                        priority: s.priority,
                    }));
                }
            }
            Spec::Exclusion(s) => {
                let groups: Vec<GroupId> = s
                    .groups
                    .iter()
                    .filter(|g| part_of_group[g.0] == p)
                    .map(|g| GroupId(local_group[g.0] as usize))
                    .collect();
                if !groups.is_empty() {
                    out.add_goal(Spec::Exclusion(ExclusionSpec {
                        scope: s.scope,
                        groups,
                        weight: s.weight,
                        priority: s.priority,
                    }));
                }
            }
            other => {
                out.add_goal(other.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Bin;
    use crate::specs::{BalanceSpec, CapacitySpec, Scope};
    use sm_types::{LoadVector, Location, MachineId, Metric, RegionId};

    fn loc(region: u16, machine: u32) -> Location {
        Location {
            region: RegionId(region),
            datacenter: u32::from(region),
            rack: u32::from(region) * 1000 + machine / 2,
            machine: MachineId(machine),
        }
    }

    fn cpu(v: f64) -> LoadVector {
        LoadVector::single(Metric::Cpu.id(), v)
    }

    /// A skewed problem: several regions, all load piled on few bins.
    fn skewed_problem(regions: u16, bins_per_region: u32, entities: usize) -> (Problem, SpecSet) {
        let mut p = Problem::new();
        let mut machine = 0;
        for r in 0..regions {
            for _ in 0..bins_per_region {
                p.add_bin(Bin {
                    capacity: cpu(100.0),
                    location: loc(r, machine),
                    draining: false,
                });
                machine += 1;
            }
        }
        let pile = p.bin_count().min(4);
        for i in 0..entities {
            p.add_entity(
                Entity {
                    load: cpu(4.0),
                    group: None,
                },
                Some(BinId(i % pile)),
            );
        }
        let mut specs = SpecSet::new();
        specs.add_constraint(CapacitySpec {
            metric: Metric::Cpu.id(),
        });
        specs.add_goal(Spec::Balance(BalanceSpec {
            metric: Metric::Cpu.id(),
            tolerance: 0.1,
            weight: 1.0,
            priority: 0,
        }));
        (p, specs)
    }

    fn run(mode: ParallelMode, threads: usize, seed: u64) -> (Vec<Option<BinId>>, SearchStats) {
        let (p, specs) = skewed_problem(3, 8, 120);
        let solver = ParallelSearch::new(SearchConfig {
            seed,
            threads,
            parallel_mode: mode,
            ..Default::default()
        });
        solver.solve(&p, &specs)
    }

    #[test]
    fn single_thread_matches_local_search() {
        let (p, specs) = skewed_problem(3, 8, 120);
        let cfg = SearchConfig {
            seed: 5,
            threads: 1,
            ..Default::default()
        };
        let (a1, s1) = ParallelSearch::new(cfg.clone()).solve(&p, &specs);
        let (a2, s2) = LocalSearch::new(cfg).solve(&p, &specs);
        assert_eq!(a1, a2);
        assert_eq!(s1.timeline, s2.timeline);
        assert_eq!(s1.evaluated, s2.evaluated);
    }

    #[test]
    fn portfolio_is_deterministic_and_feasible() {
        for threads in [2, 4] {
            let (a1, s1) = run(ParallelMode::Portfolio, threads, 9);
            let (a2, s2) = run(ParallelMode::Portfolio, threads, 9);
            assert_eq!(a1, a2, "portfolio threads={threads}");
            assert_eq!(s1.timeline, s2.timeline);
            assert_eq!(s1.final_violations, 0);
            assert!(a1.iter().all(Option::is_some));
        }
    }

    #[test]
    fn region_partition_is_deterministic_and_feasible() {
        for threads in [2, 4] {
            let (a1, s1) = run(ParallelMode::RegionPartition, threads, 9);
            let (a2, s2) = run(ParallelMode::RegionPartition, threads, 9);
            assert_eq!(a1, a2, "partition threads={threads}");
            assert_eq!(s1.timeline, s2.timeline);
            assert_eq!(s1.final_violations, 0);
            assert!(a1.iter().all(Option::is_some));
        }
    }

    #[test]
    fn partitions_cover_problem_disjointly() {
        let (p, specs) = skewed_problem(3, 8, 120);
        let parts = build_partitions(&p, &specs, 4);
        assert_eq!(parts.len(), 4);
        let mut bin_seen = vec![false; p.bin_count()];
        let mut entity_seen = vec![false; p.entity_count()];
        for part in &parts {
            // Every partition spans all three regions.
            let regions: std::collections::BTreeSet<u16> = part
                .problem
                .bins()
                .iter()
                .map(|b| b.location.region.0)
                .collect();
            assert_eq!(regions.len(), 3, "striping must cover every region");
            for b in &part.global_bin {
                assert!(!bin_seen[b.0], "bin {b:?} in two partitions");
                bin_seen[b.0] = true;
            }
            for e in &part.global_entity {
                assert!(!entity_seen[e.0], "entity {e:?} in two partitions");
                entity_seen[e.0] = true;
            }
        }
        assert!(bin_seen.iter().all(|&s| s));
        assert!(entity_seen.iter().all(|&s| s));
    }

    #[test]
    fn grouped_entities_stay_with_their_group() {
        let mut p = Problem::new();
        let mut machine = 0;
        for r in 0..3u16 {
            for _ in 0..4 {
                p.add_bin(Bin {
                    capacity: cpu(100.0),
                    location: loc(r, machine),
                    draining: false,
                });
                machine += 1;
            }
        }
        let mut groups = Vec::new();
        for i in 0..6 {
            let g = p.new_group();
            groups.push(g);
            for r in 0..2 {
                p.add_entity(
                    Entity {
                        load: cpu(2.0),
                        group: Some(g),
                    },
                    Some(BinId((i + r) % 12)),
                );
            }
        }
        let mut specs = SpecSet::new();
        specs.add_goal(Spec::Exclusion(ExclusionSpec {
            scope: Scope::Region,
            groups,
            weight: 5.0,
            priority: 0,
        }));
        let parts = build_partitions(&p, &specs, 3);
        for part in &parts {
            // Each local group's members must all live in this
            // partition, so the exclusion goal can see them together.
            for e in &part.global_entity {
                if let Some(g) = p.entity(*e).group {
                    assert_eq!(
                        g.0 % 3,
                        parts.iter().position(|q| std::ptr::eq(q, part)).unwrap()
                    );
                }
            }
            // Remapped exclusion goals reference only local groups.
            for goal in &part.specs.goals {
                if let Spec::Exclusion(s) = goal {
                    for g in &s.groups {
                        assert!(g.0 < part.problem.group_count());
                    }
                }
            }
        }
    }

    #[test]
    fn more_threads_than_bins_clamps() {
        let (p, specs) = skewed_problem(1, 2, 10);
        let solver = ParallelSearch::new(SearchConfig {
            seed: 1,
            threads: 8,
            parallel_mode: ParallelMode::RegionPartition,
            ..Default::default()
        });
        let (a, s) = solver.solve(&p, &specs);
        assert!(a.iter().all(Option::is_some));
        assert_eq!(s.final_violations, 0);
    }
}
