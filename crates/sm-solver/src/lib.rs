#![warn(missing_docs)]
//! A ReBalancer-like generic constraint solver (§5.2–§5.3).
//!
//! The solver assigns *entities* (shard replicas) to *bins* (servers)
//! subject to hard capacity constraints and a prioritized list of soft
//! goals, expressed through a high-level spec API mirroring Figure 13 of
//! the paper. Internally it runs local search: starting from the current
//! assignment, it repeatedly moves entities off the bins whose
//! constraint/goal violations hurt the objective most, keeping the best
//! evaluated move each round.
//!
//! The scalability techniques of §5.3 are all implemented, each behind a
//! switch so the Figure 22 ablation can toggle them:
//!
//! - **Equivalence classes** — entities with identical loads and
//!   placement preferences are deduplicated when enumerating candidate
//!   moves ("reuses the computation for equivalent shards").
//! - **Incremental objective tree** — per-bin penalties live in a
//!   Fenwick tree, so a move re-evaluates only the touched bins and the
//!   total objective updates in O(log n) ("a tree of variables ...
//!   O(log(n)) complexity").
//! - **Swap moves** — two-way swaps are considered when single moves
//!   stall.
//! - **Grouped target sampling** — candidate destination bins are
//!   sampled across property groups (region × utilization band) instead
//!   of uniformly at random, which finds feasible targets for region
//!   preference and spread goals much faster.
//! - **Goal batching** — goals are activated in priority batches,
//!   earlier batches getting longer search budgets.
//! - **Large-shards-first** — entities on a hot bin are evaluated in
//!   decreasing load order.
//!
//! [`baseline`] additionally provides a greedy first-fit-decreasing
//! placer and a brute-force optimal assignment for tiny problems, used
//! as comparison points in tests and benches.

pub mod baseline;
pub mod eval;
pub mod parallel;
pub mod penalty_tree;
pub mod problem;
pub mod search;
pub mod specs;

pub use eval::{Evaluator, ViolationStats};
pub use parallel::ParallelSearch;
pub use problem::{Bin, BinId, Entity, EntityId, GroupId, Problem};
pub use search::{LocalSearch, ParallelMode, SearchConfig, SearchStats};
pub use specs::{
    AffinitySpec, BalanceSpec, CapacitySpec, DrainSpec, ExclusionSpec, Scope, Spec, SpecSet,
    UtilizationCapSpec,
};
