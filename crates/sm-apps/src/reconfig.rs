//! Reconfiguration chaos: a seeded discrete-event world that keeps the
//! control plane continuously migrating [`ReplStoreServer`] replicas —
//! the 5-step protocol driving joint-consensus membership changes in
//! every shard's [`ReplicationGroup`] — while a fault plan
//! ([`FaultProfile::ReconfigChaos`]) crashes nodes, expires sessions,
//! and partitions islands specifically during in-flight
//! reconfigurations.
//!
//! The world wires a bare [`Orchestrator`] (no ZooKeeper: the HA layer
//! is exercised by [`crate::chaos`]; this world isolates the
//! replication safety argument) to a fleet of replicated-store servers
//! sharing per-shard [`ReplicationGroup`]s. Control-plane RPCs travel
//! through a [`SimNet`] with correlation ids and give-up timers, so a
//! partitioned or crashed server produces genuine nacks and timeouts —
//! which abort migrations mid-flight, exactly the interruptions the
//! joint-consensus protocol must survive. Network partitions are
//! mirrored into every group's link gates, so replication and elections
//! see the same islands the RPC plane does.
//!
//! Safety is judged by the [`Oracle`]:
//!
//! - **ReplicaSetAgreement** — every shard's committed configuration
//!   chain is audited on every scan: adjacent configurations must share
//!   a pair of voter sets whose quorums always intersect (the joint
//!   bridge), and at quiescence every replica must hold the same view
//!   of the committed configuration.
//! - **Acked-then-lost** — a client write is acked only once its log
//!   position commits under the group's quorum rule; at quiescence
//!   every acked `(shard, index)` must still hold its exact payload at
//!   the authoritative replica, checked through the oracle's
//!   write-tag machinery (a lost write surfaces as a stale read).
//!
//! The documented mutation switch ([`ReconfigConfig::single_step`])
//! replaces joint changes with unsafe single-step membership swaps;
//! `tests/reconfig.rs` proves the oracle catches the corruption. The
//! whole run is a pure function of `(config, plan)`: same seed and
//! plan, identical verdict and stats.

use crate::dst::{fault_from_json, fault_to_json, shrink_plan, Json, Parser};
use crate::replication::ReplicationGroup;
use crate::replstore::{shared_groups, ReplStoreServer, SharedGroups};
use sm_allocator::{AllocConfig, MoveCaps};
use sm_core::{OrchCommand, Orchestrator, OrchestratorConfig, ServerRpc};
use sm_sim::faults::{fault_plan, Fault, FaultProfile};
use sm_sim::net::{Endpoint, NetStats, SimNet};
use sm_sim::oracle::{InvariantKind, Oracle, OracleViolation};
use sm_sim::{Ctx, LatencyModel, QueueKind, SimDuration, SimTime, Simulation, TraceLog, World};
use sm_types::{
    AppId, AppPolicy, LoadVector, Location, MachineId, Metric, RegionId, ServerId, ShardId,
};
use std::collections::{BTreeMap, BTreeSet};

/// Shape of one reconfiguration-chaos run. The fault schedule derives
/// from `(seed, profile)`, so the run reproduces from this config
/// alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconfigConfig {
    /// Seed for traffic, churn, fault schedule, and network draws.
    pub seed: u64,
    /// Application servers (ids `0..servers`).
    pub servers: u32,
    /// Replicated shards (ids `0..shards`), each a 3-replica group.
    pub shards: u64,
    /// Concurrent write generators.
    pub clients: u32,
    /// Gap between one client's writes.
    pub write_interval: SimDuration,
    /// Background replication cadence (stand-in for the leader's
    /// heartbeat-driven append stream).
    pub replicate_interval: SimDuration,
    /// Churn cadence: every tick alternately drains a random server
    /// (starting graceful 5-step migrations) or welcomes the previous
    /// one back, so reconfigurations are in flight essentially all the
    /// time.
    pub churn_interval: SimDuration,
    /// One-way network latency.
    pub rpc_latency: SimDuration,
    /// The control plane gives up on an unanswered RPC after this.
    pub rpc_timeout: SimDuration,
    /// An unacked write still uncommitted after this long is written
    /// off as (legally) lost.
    pub write_deadline: SimDuration,
    /// Clients and churn stop here; in-flight work drains.
    pub traffic_end: SimTime,
    /// Periodic scans stop here; must be past the last recovery.
    pub end: SimTime,
    /// Fault-plan profile.
    pub profile: FaultProfile,
    /// DST mutation switch: replace joint membership changes with
    /// unsafe single-step swaps. Never set outside `tests/reconfig.rs`
    /// — it exists to prove `ReplicaSetAgreement` has teeth.
    pub single_step: bool,
}

impl ReconfigConfig {
    /// The compact shape the swarm and the tier-1 gate run: a small
    /// fleet, dense churn, and a one-minute fault window.
    pub fn dst(seed: u64, profile: FaultProfile) -> Self {
        Self {
            seed,
            servers: 6,
            shards: 8,
            clients: 2,
            write_interval: SimDuration::from_millis(150),
            replicate_interval: SimDuration::from_millis(100),
            churn_interval: SimDuration::from_secs(6),
            rpc_latency: SimDuration::from_millis(10),
            rpc_timeout: SimDuration::from_secs(2),
            write_deadline: SimDuration::from_secs(20),
            traffic_end: SimTime::from_secs(110),
            end: SimTime::from_secs(130),
            profile,
            single_step: false,
        }
    }
}

/// Event alphabet of the reconfiguration world.
#[derive(Debug)]
pub enum ReconfigEvent {
    /// Client `i` issues its next write.
    WriteTick(u32),
    /// Background replication round across all groups.
    ReplicateTick,
    /// Drain a random server or welcome the previous one back.
    ChurnTick,
    /// A control-plane RPC reaches its server.
    RpcSend {
        /// Correlation id for timeout/duplicate handling.
        id: u64,
        /// Target server.
        server: ServerId,
        /// The RPC payload.
        rpc: ServerRpc,
    },
    /// The server's ack (or failure) reaches the control plane.
    RpcResult {
        /// Correlation id; late or duplicate results are ignored.
        id: u64,
        /// Answering server.
        server: ServerId,
        /// The RPC being answered.
        rpc: ServerRpc,
        /// Whether the server applied it.
        ok: bool,
    },
    /// The control plane gives up on an unanswered RPC.
    RpcTimeout {
        /// Correlation id; a no-op if the result already arrived.
        id: u64,
    },
    /// The control plane's failure detector declares an islanded
    /// server dead (fires a few seconds into a partition).
    DetectDown(u32),
    /// The i-th entry of the fault plan fires.
    FaultHit(usize),
    /// Retry pacemaker: re-issue nacked or timed-out migration steps
    /// and plan replacements on a fixed 500ms backoff. (The invariant
    /// audit itself is an engine-scheduled sweep, not an event.)
    RetryTick,
}

/// Counters accumulated over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReconfigStats {
    /// Writes that reached a live primary and appended.
    pub writes_attempted: u64,
    /// Writes whose log position committed — the acked set the oracle
    /// defends.
    pub writes_acked: u64,
    /// Writes rejected at the primary (role raced a migration).
    pub writes_rejected: u64,
    /// Unacked writes written off (never committed, or replaced before
    /// commit) — legal losses, never acked to a client.
    pub writes_lost_unacked: u64,
    /// Committed configuration entries across all groups — each joint
    /// or stable config entry that reached commit.
    pub reconfigs_completed: u64,
    /// Migration-step RPCs (add/drop/change-role/handover) nacked or
    /// timed out while a fault was active — reconfigurations genuinely
    /// interrupted by the plan.
    pub reconfigs_interrupted: u64,
    /// Of those, interruptions that landed while the shard's group had
    /// a joint configuration literally in flight.
    pub joint_interruptions: u64,
    /// Drain migrations started by the churn driver.
    pub drains_started: u64,
    /// Control-plane RPCs that timed out unanswered.
    pub rpc_timeouts: u64,
    /// Control-plane RPCs the server answered with a failure.
    pub rpc_nacks: u64,
    /// Server container crashes injected.
    pub server_crashes: u64,
    /// Session expiries injected.
    pub session_expiries: u64,
    /// Network partitions injected.
    pub net_partitions: u64,
}

/// One application server process: the replicated store plus process
/// liveness (its logs — durable storage — live in the shared groups
/// and survive a crash).
struct ReplHost {
    server: ReplStoreServer,
    up: bool,
}

/// A write appended at a primary, awaiting its commit before the
/// client may be acked.
#[derive(Clone, Copy, Debug)]
struct PendingWrite {
    shard: ShardId,
    idx: usize,
    tag: u64,
    issued: SimTime,
}

/// What the authoritative replica says about a pending write's slot.
enum Probe {
    /// The slot has not committed yet.
    NotYet,
    /// The slot committed holding this tag.
    Tag(u64),
    /// The slot committed holding something that is not a data tag
    /// (the entry was replaced by a config entry before commit).
    Gone,
}

fn loc(s: u32) -> Location {
    Location {
        region: RegionId(0),
        datacenter: 0,
        rack: s,
        machine: MachineId(s),
    }
}

fn orch_config() -> OrchestratorConfig {
    OrchestratorConfig {
        graceful_migration: true,
        move_caps: MoveCaps {
            max_total: 1000,
            max_per_server: 1000,
            max_per_shard: 1,
        },
        alloc: AllocConfig::new(vec![Metric::ShardCount.id()]),
        skip_cutover_ack: false,
    }
}

/// The reconfiguration-chaos simulation world.
pub struct ReconfigWorld {
    cfg: ReconfigConfig,
    cp: Orchestrator,
    groups: SharedGroups,
    hosts: BTreeMap<ServerId, ReplHost>,
    net: SimNet,
    oracle: Oracle,
    plan: Vec<(SimTime, Fault)>,
    /// Correlation ids of control-plane RPCs awaiting an answer.
    outstanding: BTreeMap<u64, (ServerId, ServerRpc)>,
    /// Correlation ids already executed at a server, with the recorded
    /// outcome: duplicated request copies answer from here instead of
    /// re-running the migration step (see the chaos world's twin field).
    rpc_applied: BTreeMap<u64, bool>,
    next_rpc: u64,
    /// Monotone write counter: the payload of every write and the tag
    /// the oracle checks the acked set against.
    write_tag: u64,
    pending: Vec<PendingWrite>,
    /// Every acked write, for the quiescent acked-then-lost audit.
    acked: Vec<PendingWrite>,
    acked_keys: BTreeSet<u64>,
    /// Per-shard committed-config-chain length at the last scan.
    chain_lens: BTreeMap<ShardId, usize>,
    /// Server currently being drained by the churn driver.
    draining: Option<ServerId>,
    /// Servers the failure detector declared down behind a partition.
    partitioned: BTreeSet<ServerId>,
    /// True during a lossy-net window.
    degraded: bool,
    /// Sum of every group's commit watermark at the last replication
    /// round — cheap change detection for the oracle sweep.
    committed_sum: u64,
    /// Counters.
    pub stats: ReconfigStats,
    /// Recorded time series (writes, reconfigurations, interruptions).
    pub trace: TraceLog,
}

impl ReconfigWorld {
    /// Builds the world with its plan derived from `(seed, profile)`.
    pub fn new(cfg: ReconfigConfig) -> Self {
        let mut world = Self::bootstrap(cfg);
        // No mini-SMs in this world: the plan covers servers and the
        // network only.
        world.plan = fault_plan(&cfg.profile.config(cfg.seed, cfg.servers, 0));
        world
    }

    /// Builds the world with an explicit fault plan — the replay and
    /// shrink path.
    pub fn new_with_plan(cfg: ReconfigConfig, plan: Vec<(SimTime, Fault)>) -> Self {
        let mut world = Self::bootstrap(cfg);
        world.plan = plan;
        world
    }

    /// Registers the fleet, places every shard, and settles the initial
    /// migration storm synchronously (the experiment starts from a
    /// fully replicated steady state).
    fn bootstrap(cfg: ReconfigConfig) -> Self {
        let mut cp = Orchestrator::new(AppId(0), AppPolicy::primary_secondary(2), orch_config());
        let groups = shared_groups();
        let mut hosts = BTreeMap::new();
        for i in 0..cfg.servers {
            let id = ServerId(i);
            cp.register_server(
                id,
                loc(i),
                LoadVector::single(Metric::ShardCount.id(), 1000.0),
            );
            hosts.insert(
                id,
                ReplHost {
                    server: ReplStoreServer::new(id, groups.clone()),
                    up: true,
                },
            );
        }
        cp.register_shards((0..cfg.shards).map(ShardId));
        cp.run_emergency();
        // Settle: dispatch every command synchronously against the
        // healthy fleet until the orchestrator goes quiet.
        for _round in 0..200 {
            let cmds = cp.take_commands();
            if cmds.is_empty() {
                break;
            }
            for cmd in cmds {
                if let OrchCommand::Rpc { server, rpc } = cmd {
                    let ok = hosts
                        .get_mut(&server)
                        .map(|h| rpc.dispatch(&mut h.server).is_ok())
                        .unwrap_or(false);
                    if ok {
                        cp.rpc_acked(server, rpc);
                    } else {
                        cp.rpc_failed(server, rpc);
                    }
                }
            }
        }
        if cfg.single_step {
            for g in groups.borrow_mut().values_mut() {
                g.set_single_step(true);
            }
        }
        let latency_ms = cfg.rpc_latency.as_millis_f64();
        Self {
            cfg,
            cp,
            groups,
            hosts,
            net: SimNet::new(LatencyModel::uniform(1, latency_ms, latency_ms), cfg.seed),
            oracle: Oracle::new(),
            plan: Vec::new(),
            outstanding: BTreeMap::new(),
            rpc_applied: BTreeMap::new(),
            next_rpc: 0,
            write_tag: 0,
            pending: Vec::new(),
            acked: Vec::new(),
            acked_keys: BTreeSet::new(),
            chain_lens: BTreeMap::new(),
            draining: None,
            partitioned: BTreeSet::new(),
            degraded: false,
            committed_sum: 0,
            stats: ReconfigStats::default(),
            trace: TraceLog::new(),
        }
    }

    /// The invariant oracle's current state.
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// True when every shard has a primary and no migration is stuck.
    pub fn converged(&self) -> bool {
        self.cp.in_flight_migrations() == 0
            && (0..self.cfg.shards).all(|s| self.cp.assignment().primary_of(ShardId(s)).is_some())
    }

    /// One line of group + assignment state per shard (diagnostics).
    pub fn debug_dump(&self) -> String {
        let mut out = String::new();
        for (shard, g) in self.groups.borrow().iter() {
            let assigned: Vec<String> = self
                .cp
                .assignment()
                .replicas(*shard)
                .iter()
                .map(|r| format!("{}:{:?}", r.server.raw(), r.role))
                .collect();
            let logs: Vec<String> = (0..self.cfg.servers)
                .map(ServerId)
                .filter_map(|s| {
                    g.log(s).map(|l| {
                        format!(
                            "{}:c{}/l{}{}{}",
                            s.raw(),
                            l.committed(),
                            l.len(),
                            if g.is_down(s) { "!down" } else { "" },
                            match self.hosts.get(&s).and_then(|h| h.server.role_of(*shard)) {
                                Some(r) => format!("@{r:?}"),
                                None => String::new(),
                            }
                        )
                    })
                })
                .collect();
            out.push_str(&format!(
                "{shard:?} epoch={:?} leader={:?} voters={:?} joint={:?} pending={:?} members={:?} assigned={assigned:?} logs={logs:?}\n",
                g.epoch(),
                g.leader(),
                g.voters(),
                g.joint_old(),
                g.pending_reconfig(),
                g.members(),
            ));
        }
        out.push_str(&format!(
            "in_flight={} draining={:?}\n",
            self.cp.in_flight_migrations(),
            self.draining
        ));
        out
    }

    /// Shards currently missing a primary (diagnostics).
    pub fn unplaced_count(&self) -> usize {
        (0..self.cfg.shards)
            .filter(|&s| self.cp.assignment().primary_of(ShardId(s)).is_none())
            .count()
    }

    /// The oracle key for one write's log slot.
    fn write_key(shard: ShardId, idx: usize) -> u64 {
        shard.raw() * 1_000_000 + idx as u64
    }

    /// True while the plan has something actively broken — the window
    /// in which a nacked migration step counts as fault-interrupted.
    fn fault_active(&self) -> bool {
        self.degraded || self.net.partition().is_some() || self.hosts.values().any(|h| !h.up)
    }

    /// The replica whose log is authoritative for `group` right now:
    /// the leader if it has a log, else the most-committed replica.
    fn authoritative(&self, group: &ReplicationGroup<ServerId>) -> Option<ServerId> {
        if let Some(l) = group.leader() {
            if group.log(l).is_some() {
                return Some(l);
            }
        }
        (0..self.cfg.servers)
            .map(ServerId)
            .filter(|&s| group.log(s).is_some())
            .max_by_key(|&s| {
                group
                    .log(s)
                    .map(|l| (l.committed(), l.len()))
                    .unwrap_or((0, 0))
            })
    }

    fn probe_write(&self, shard: ShardId, idx: usize) -> Probe {
        let groups = self.groups.borrow();
        let Some(group) = groups.get(&shard) else {
            return Probe::Gone;
        };
        let Some(auth) = self.authoritative(group) else {
            return Probe::NotYet;
        };
        let committed = group.log(auth).map(|l| l.committed()).unwrap_or(0);
        if committed <= idx {
            return Probe::NotYet;
        }
        match group
            .data_at(auth, idx)
            .and_then(|d| <[u8; 8]>::try_from(d).ok())
        {
            Some(bytes) => Probe::Tag(u64::from_be_bytes(bytes)),
            None => Probe::Gone,
        }
    }

    /// Acks every pending write whose slot committed with its payload
    /// intact; writes off slots that were replaced or stalled past the
    /// deadline (legal: those clients were never acked).
    fn check_pending(&mut self, now: SimTime) {
        let pending = std::mem::take(&mut self.pending);
        for w in pending {
            match self.probe_write(w.shard, w.idx) {
                Probe::Tag(tag) if tag == w.tag => {
                    let key = Self::write_key(w.shard, w.idx);
                    if self.acked_keys.insert(key) {
                        self.oracle.write_acked(key, w.tag);
                        self.acked.push(w);
                        self.stats.writes_acked += 1;
                    }
                }
                Probe::Tag(_) | Probe::Gone => self.stats.writes_lost_unacked += 1,
                Probe::NotYet if now.since(w.issued) > self.cfg.write_deadline => {
                    self.stats.writes_lost_unacked += 1
                }
                Probe::NotYet => self.pending.push(w),
            }
        }
    }

    /// Sends freshly minted orchestrator commands out as RPCs through
    /// the net, each with a correlation id and a give-up timer.
    fn flush_commands(&mut self, ctx: &mut Ctx<'_, ReconfigEvent>) {
        for cmd in self.cp.take_commands() {
            if let OrchCommand::Rpc { server, rpc } = cmd {
                self.next_rpc += 1;
                let id = self.next_rpc;
                self.outstanding.insert(id, (server, rpc));
                let t = self
                    .net
                    .transmit(Endpoint::ControlPlane, Endpoint::Server(server.raw()));
                for d in t.copies {
                    ctx.schedule_in(d, ReconfigEvent::RpcSend { id, server, rpc });
                }
                ctx.schedule_in(self.cfg.rpc_timeout, ReconfigEvent::RpcTimeout { id });
            }
        }
    }

    fn rpc_send(
        &mut self,
        id: u64,
        server: ServerId,
        rpc: ServerRpc,
        ctx: &mut Ctx<'_, ReconfigEvent>,
    ) {
        // A dead process never answers — the control plane's give-up
        // timer reaps the RPC. A live one runs the real migration step,
        // which fails honestly (bounded replication pump) when the
        // group cannot commit the membership change. A duplicated copy
        // of an already-executed step answers with the recorded outcome
        // instead of re-dispatching (a late duplicate re-running a
        // promotion after a later drop would resurrect a zombie).
        let ok = if let Some(&ok) = self.rpc_applied.get(&id) {
            ok
        } else {
            let ok = match self.hosts.get_mut(&server) {
                Some(h) if h.up => rpc.dispatch(&mut h.server).is_ok(),
                _ => return,
            };
            self.rpc_applied.insert(id, ok);
            if ok {
                // A migration step just ran at the server: group
                // membership or roles changed — audit at this instant.
                ctx.state_changed();
            }
            ok
        };
        let t = self
            .net
            .transmit(Endpoint::Server(server.raw()), Endpoint::ControlPlane);
        for d in t.copies {
            ctx.schedule_in(
                d,
                ReconfigEvent::RpcResult {
                    id,
                    server,
                    rpc,
                    ok,
                },
            );
        }
    }

    /// Books a nacked or timed-out migration step as fault-interrupted
    /// when the plan has something actively broken.
    fn note_interrupted(&mut self, rpc: ServerRpc) {
        if !self.fault_active() {
            return;
        }
        match rpc {
            ServerRpc::AddShard { .. }
            | ServerRpc::DropShard { .. }
            | ServerRpc::ChangeRole { .. }
            | ServerRpc::PrepareDropShard { .. } => {
                self.stats.reconfigs_interrupted += 1;
                let joint = self
                    .groups
                    .borrow()
                    .get(&rpc.shard())
                    .is_some_and(|g| g.reconfig_in_flight());
                if joint {
                    self.stats.joint_interruptions += 1;
                }
            }
            // The reconfig world's orchestrator never splits or merges.
            ServerRpc::PrepareAddShard { .. }
            | ServerRpc::SplitForward { .. }
            | ServerRpc::MergeForward { .. } => {}
        }
    }

    fn rpc_result(
        &mut self,
        id: u64,
        server: ServerId,
        rpc: ServerRpc,
        ok: bool,
        ctx: &mut Ctx<'_, ReconfigEvent>,
    ) {
        if self.outstanding.remove(&id).is_none() {
            return; // duplicate copy or a result the timeout already reaped
        }
        if ok {
            self.cp.rpc_acked(server, rpc);
            self.flush_commands(ctx);
        } else {
            self.stats.rpc_nacks += 1;
            self.note_interrupted(rpc);
            self.cp.rpc_failed(server, rpc);
            // No immediate flush: the re-issued command leaves with the
            // next retry tick, so a persistently failing step retries on
            // a 500ms backoff instead of melting into a 2×RTT storm.
        }
        ctx.state_changed();
    }

    fn rpc_timeout(&mut self, id: u64, ctx: &mut Ctx<'_, ReconfigEvent>) {
        let Some((server, rpc)) = self.outstanding.remove(&id) else {
            return; // answered in time
        };
        self.stats.rpc_timeouts += 1;
        self.note_interrupted(rpc);
        self.cp.rpc_failed(server, rpc);
        // Retry leaves with the next retry tick (see `rpc_result`).
        ctx.state_changed();
    }

    fn write_tick(&mut self, client: u32, ctx: &mut Ctx<'_, ReconfigEvent>) {
        if ctx.now() < self.cfg.traffic_end {
            ctx.schedule_in(self.cfg.write_interval, ReconfigEvent::WriteTick(client));
        }
        let shard = ShardId(ctx.rng().range_u64(0, self.cfg.shards));
        let Some(primary) = self.cp.assignment().primary_of(shard) else {
            return;
        };
        let Some(host) = self.hosts.get_mut(&primary) else {
            return;
        };
        if !host.up {
            return;
        }
        self.write_tag += 1;
        let tag = self.write_tag;
        match host.server.write(shard, tag.to_be_bytes().to_vec()) {
            Ok(idx) => {
                self.stats.writes_attempted += 1;
                self.pending.push(PendingWrite {
                    shard,
                    idx,
                    tag,
                    issued: ctx.now(),
                });
            }
            Err(_) => self.stats.writes_rejected += 1,
        }
        self.check_pending(ctx.now());
    }

    fn replicate_tick(&mut self, ctx: &mut Ctx<'_, ReconfigEvent>) {
        if ctx.now() < self.cfg.end {
            ctx.schedule_in(self.cfg.replicate_interval, ReconfigEvent::ReplicateTick);
        }
        let mut committed_sum = 0u64;
        for g in self.groups.borrow_mut().values_mut() {
            g.pump();
            committed_sum += g.committed() as u64;
        }
        // Most replication rounds move nothing; only a commit-watermark
        // advance (a config or data entry just committed somewhere) is
        // worth an oracle sweep.
        if committed_sum != self.committed_sum {
            self.committed_sum = committed_sum;
            ctx.state_changed();
        }
        self.check_pending(ctx.now());
    }

    /// The churn driver: alternately drain a random live server (every
    /// replica it hosts starts a graceful 5-step migration) and welcome
    /// the previous one back, so membership changes stay in flight for
    /// the whole run.
    fn churn_tick(&mut self, ctx: &mut Ctx<'_, ReconfigEvent>) {
        if ctx.now() < self.cfg.traffic_end {
            ctx.schedule_in(self.cfg.churn_interval, ReconfigEvent::ChurnTick);
        }
        match self.draining.take() {
            Some(s) => {
                self.cp.server_up(s);
                self.cp.run_periodic();
            }
            None => {
                let candidates: Vec<ServerId> = self
                    .hosts
                    .iter()
                    .filter(|(s, h)| h.up && !self.partitioned.contains(s))
                    .map(|(s, _)| *s)
                    .collect();
                if !candidates.is_empty() {
                    let pick = candidates[ctx.rng().index(candidates.len())];
                    let started = self.cp.drain_server(pick);
                    self.stats.drains_started += started as u64;
                    self.draining = Some(pick);
                }
            }
        }
        self.flush_commands(ctx);
        ctx.state_changed();
    }

    /// Marks a server crashed in every group: it stops voting and
    /// receiving replication, and loses any leadership. Its logs —
    /// durable storage — survive.
    fn set_server_down(&mut self, s: ServerId) {
        for g in self.groups.borrow_mut().values_mut() {
            g.set_down(s, true);
            if g.leader() == Some(s) {
                g.step_down(s);
            }
        }
    }

    fn set_server_up(&mut self, s: ServerId) {
        for g in self.groups.borrow_mut().values_mut() {
            g.set_down(s, false);
        }
    }

    fn apply_fault(&mut self, fault: Fault, ctx: &mut Ctx<'_, ReconfigEvent>) {
        match fault {
            Fault::ServerCrash(i) | Fault::SessionExpiry(i) => {
                let s = ServerId(i);
                let up = self.hosts.get(&s).map(|h| h.up).unwrap_or(false);
                if !up {
                    return;
                }
                if matches!(fault, Fault::ServerCrash(_)) {
                    self.stats.server_crashes += 1;
                } else {
                    self.stats.session_expiries += 1;
                }
                if let Some(h) = self.hosts.get_mut(&s) {
                    h.up = false;
                }
                self.set_server_down(s);
                // The control plane only learns of the death once its
                // failure detector fires; until then, RPCs to the dead
                // server time out and migrations stall mid-step.
                ctx.schedule_in(SimDuration::from_secs(3), ReconfigEvent::DetectDown(i));
            }
            Fault::ServerRestart(i) | Fault::SessionRestore(i) => {
                let s = ServerId(i);
                let up = self.hosts.get(&s).map(|h| h.up).unwrap_or(true);
                if up {
                    return;
                }
                if let Some(h) = self.hosts.get_mut(&s) {
                    h.up = true;
                }
                self.set_server_up(s);
                self.cp.server_up(s);
                self.cp.reconcile_server(s);
            }
            Fault::PartitionStart(spec) => {
                self.net.start_partition(spec);
                self.stats.net_partitions += 1;
                // Mirror the partition into every group's link gates so
                // replication and elections see the same islands the
                // RPC plane does.
                let mut groups = self.groups.borrow_mut();
                for a in 0..self.cfg.servers {
                    for b in 0..self.cfg.servers {
                        if a != b && spec.blocks(Endpoint::Server(a), Endpoint::Server(b)) {
                            for g in groups.values_mut() {
                                g.block_link(ServerId(a), ServerId(b));
                            }
                        }
                    }
                }
                drop(groups);
                // The failure detector takes a few seconds to declare
                // islanded servers dead.
                for i in 0..self.cfg.servers {
                    if spec.contains(Endpoint::Server(i)) {
                        ctx.schedule_in(SimDuration::from_secs(3), ReconfigEvent::DetectDown(i));
                    }
                }
            }
            Fault::PartitionHeal => {
                self.net.heal_partition();
                for g in self.groups.borrow_mut().values_mut() {
                    g.clear_blocked_links();
                }
                let healed = std::mem::take(&mut self.partitioned);
                for s in healed {
                    if self.hosts.get(&s).map(|h| h.up).unwrap_or(false) {
                        self.cp.server_up(s);
                        self.cp.reconcile_server(s);
                    }
                }
            }
            Fault::NetDegrade { drop_pct, dup_pct } => {
                self.degraded = true;
                self.net
                    .set_degradation(f64::from(drop_pct) / 100.0, f64::from(dup_pct) / 100.0);
            }
            Fault::NetHeal => {
                self.degraded = false;
                self.net.heal_degradation();
            }
            // No mini-SMs in this world.
            Fault::MiniSmCrash(_) | Fault::MiniSmRestart(_) => {}
        }
    }

    /// The failure detector fires: a server that is (still) dead or
    /// (still) islanded is declared down, aborting its migrations and
    /// failing its primaries over.
    fn detect_down(&mut self, i: u32, ctx: &mut Ctx<'_, ReconfigEvent>) {
        let s = ServerId(i);
        let host_up = self.hosts.get(&s).map(|h| h.up).unwrap_or(false);
        let islanded = self
            .net
            .partition()
            .is_some_and(|spec| spec.contains(Endpoint::Server(i)));
        if host_up && !islanded {
            return; // recovered before detection
        }
        if host_up && islanded {
            // Alive but unreachable: remember to welcome it back when
            // the partition heals.
            self.partitioned.insert(s);
        }
        if self.draining == Some(s) {
            self.draining = None;
        }
        self.cp.server_down(s);
        self.flush_commands(ctx);
        ctx.state_changed();
    }

    /// One shard's committed configuration chain with ids flattened for
    /// the oracle.
    fn u64_chain(group: &ReplicationGroup<ServerId>) -> Vec<Vec<BTreeSet<u64>>> {
        group
            .committed_config_chain()
            .into_iter()
            .map(|config| {
                config
                    .into_iter()
                    .map(|set| set.into_iter().map(|id| u64::from(id.raw())).collect())
                    .collect()
            })
            .collect()
    }

    /// The retry pacemaker. Nacked and timed-out migration steps are
    /// deliberately *not* re-flushed inline (see `rpc_result`): they
    /// leave here, on a fixed 500ms backoff, alongside replacement
    /// planning for failed-over shards.
    fn retry_tick(&mut self, ctx: &mut Ctx<'_, ReconfigEvent>) {
        let now = ctx.now();
        if now < self.cfg.end {
            ctx.schedule_in(SimDuration::from_millis(500), ReconfigEvent::RetryTick);
        }
        self.check_pending(now);
        self.cp.run_emergency();
        self.flush_commands(ctx);
    }

    /// The oracle sweep body, run by the engine (change-driven plus a
    /// coarse safety net): audit every shard's committed configuration
    /// chain, count newly committed configuration entries, and record
    /// trace points.
    fn scan(&mut self, ctx: &mut Ctx<'_, ReconfigEvent>) {
        let now = ctx.now();
        if now > self.cfg.end {
            return;
        }
        // The mutation switch must also corrupt groups (re)created
        // after bootstrap.
        if self.cfg.single_step {
            for g in self.groups.borrow_mut().values_mut() {
                g.set_single_step(true);
            }
        }
        let chains: Vec<(ShardId, Vec<Vec<BTreeSet<u64>>>)> = self
            .groups
            .borrow()
            .iter()
            .map(|(shard, g)| (*shard, Self::u64_chain(g)))
            .collect();
        for (shard, chain) in chains {
            let prev = self.chain_lens.insert(shard, chain.len()).unwrap_or(1);
            self.stats.reconfigs_completed += chain.len().saturating_sub(prev) as u64;
            self.oracle.replica_config_chain(now, shard.raw(), &chain);
        }
        self.trace
            .record("pending_writes", now, self.pending.len() as f64);
        self.trace
            .record("acked_total", now, self.stats.writes_acked as f64);
        self.trace.record(
            "reconfigs_completed",
            now,
            self.stats.reconfigs_completed as f64,
        );
        self.trace
            .record("rpc_nacks", now, self.stats.rpc_nacks as f64);
        self.trace.record(
            "in_flight_migrations",
            now,
            self.cp.in_flight_migrations() as f64,
        );
    }

    /// Quiescence: heal everything, settle the control plane against a
    /// healthy fleet, replicate to convergence, then run the final
    /// audits — config-chain safety, per-replica view agreement, and
    /// the acked-then-lost sweep over every acked write.
    fn finalize(&mut self) {
        let at = self.cfg.end;
        // Defensive heal (the plan pairs every fault with a recovery,
        // but a shrunk plan may have dropped one).
        self.net.heal_partition();
        self.net.heal_degradation();
        let ids: Vec<ServerId> = self.hosts.keys().copied().collect();
        for s in &ids {
            if let Some(h) = self.hosts.get_mut(s) {
                h.up = true;
            }
        }
        for g in self.groups.borrow_mut().values_mut() {
            g.clear_blocked_links();
            for s in &ids {
                g.set_down(*s, false);
            }
        }
        for s in std::mem::take(&mut self.partitioned) {
            self.cp.server_up(s);
        }
        if let Some(s) = self.draining.take() {
            self.cp.server_up(s);
        }
        for s in &ids {
            self.cp.server_up(*s);
        }
        // Settle the control plane synchronously: every command runs
        // against the healthy fleet until the orchestrator goes quiet.
        for round in 0..200 {
            let cmds = self.cp.take_commands();
            if cmds.is_empty() {
                if self.cp.run_emergency() == 0 && (round > 0 || self.cp.run_periodic() == 0) {
                    break;
                }
                continue;
            }
            for cmd in cmds {
                if let OrchCommand::Rpc { server, rpc } = cmd {
                    let ok = self
                        .hosts
                        .get_mut(&server)
                        .map(|h| rpc.dispatch(&mut h.server).is_ok())
                        .unwrap_or(false);
                    if ok {
                        self.cp.rpc_acked(server, rpc);
                    } else {
                        self.cp.rpc_failed(server, rpc);
                    }
                }
            }
        }
        // Replicate to convergence.
        for _ in 0..8 {
            for g in self.groups.borrow_mut().values_mut() {
                g.pump();
            }
        }
        self.check_pending(at);
        // Final audits.
        let shards: Vec<ShardId> = self.groups.borrow().keys().copied().collect();
        for shard in shards {
            let (chain, views) = {
                let groups = self.groups.borrow();
                let g = &groups[&shard];
                let chain = Self::u64_chain(g);
                let views: Vec<Vec<BTreeSet<u64>>> = (0..self.cfg.servers)
                    .map(ServerId)
                    .filter_map(|s| g.committed_config_view(s))
                    .map(|view| {
                        view.into_iter()
                            .map(|set| set.into_iter().map(|id| u64::from(id.raw())).collect())
                            .collect()
                    })
                    .collect();
                (chain, views)
            };
            let prev = self.chain_lens.insert(shard, chain.len()).unwrap_or(1);
            self.stats.reconfigs_completed += chain.len().saturating_sub(prev) as u64;
            self.oracle.replica_config_chain(at, shard.raw(), &chain);
            self.oracle.replica_views_converged(at, shard.raw(), &views);
        }
        // Acked-then-lost: every acked write must still hold its exact
        // payload at the authoritative replica.
        let acked = std::mem::take(&mut self.acked);
        for w in &acked {
            let observed = match self.probe_write(w.shard, w.idx) {
                Probe::Tag(tag) => Some(tag),
                Probe::NotYet | Probe::Gone => None,
            };
            self.oracle
                .read_served(at, Self::write_key(w.shard, w.idx), observed);
        }
        self.acked = acked;
    }
}

impl World for ReconfigWorld {
    type Event = ReconfigEvent;

    fn handle(&mut self, ctx: &mut Ctx<'_, ReconfigEvent>, event: ReconfigEvent) {
        match event {
            ReconfigEvent::WriteTick(c) => self.write_tick(c, ctx),
            ReconfigEvent::ReplicateTick => self.replicate_tick(ctx),
            ReconfigEvent::ChurnTick => self.churn_tick(ctx),
            ReconfigEvent::RpcSend { id, server, rpc } => self.rpc_send(id, server, rpc, ctx),
            ReconfigEvent::RpcResult {
                id,
                server,
                rpc,
                ok,
            } => self.rpc_result(id, server, rpc, ok, ctx),
            ReconfigEvent::RpcTimeout { id } => self.rpc_timeout(id, ctx),
            ReconfigEvent::DetectDown(i) => self.detect_down(i, ctx),
            ReconfigEvent::FaultHit(i) => {
                if let Some((_, fault)) = self.plan.get(i).copied() {
                    self.apply_fault(fault, ctx);
                    self.flush_commands(ctx);
                    ctx.state_changed();
                }
            }
            ReconfigEvent::RetryTick => self.retry_tick(ctx),
        }
    }

    fn sweep(&mut self, ctx: &mut Ctx<'_, ReconfigEvent>) {
        self.scan(ctx);
    }

    fn sweep_interval(&self) -> Option<SimDuration> {
        Some(SimDuration::from_secs(1))
    }
}

/// Outcome of one reconfiguration-chaos run.
#[derive(Debug)]
pub struct ReconfigReport {
    /// Traffic, churn, and fault counters.
    pub stats: ReconfigStats,
    /// Network delivery counters.
    pub net: NetStats,
    /// Invariant violations the oracle observed (empty on a safe run).
    pub violations: Vec<OracleViolation>,
    /// Total violations, uncapped (the list above is capped).
    pub total_violations: u64,
    /// True when, at the end, every shard had a primary and no
    /// migration was stuck.
    pub converged: bool,
    /// Shards lacking a primary at the end (diagnostics; 0 expected).
    pub unplaced: usize,
    /// The fault plan the run executed (replay/shrink input).
    pub plan: Vec<(SimTime, Fault)>,
    /// The run's time-series trace, rendered as CSV (5 s buckets) —
    /// byte-identical across reruns of the same seed and plan.
    pub trace_csv: String,
}

impl ReconfigReport {
    /// True when the oracle observed at least one invariant violation.
    pub fn failed(&self) -> bool {
        self.total_violations > 0
    }

    /// The distinct invariant kinds violated.
    pub fn violated_kinds(&self) -> BTreeSet<InvariantKind> {
        self.violations.iter().map(|v| v.kind).collect()
    }

    /// A canonical one-line-per-violation rendering — two runs have
    /// identical oracle verdicts iff these strings are equal.
    pub fn verdict(&self) -> String {
        let mut out = format!("total={}\n", self.total_violations);
        for v in &self.violations {
            out.push_str(&format!("{} {} {}\n", v.at.0, v.kind.name(), v.detail));
        }
        out
    }
}

/// Runs one seeded reconfiguration-chaos experiment to completion.
pub fn run_reconfig(cfg: ReconfigConfig) -> ReconfigReport {
    run_reconfig_queued(cfg, QueueKind::default())
}

/// [`run_reconfig`] on an explicit engine queue implementation — the
/// differential-testing entry point.
pub fn run_reconfig_queued(cfg: ReconfigConfig, kind: QueueKind) -> ReconfigReport {
    run_world(ReconfigWorld::new(cfg), cfg, kind)
}

/// Runs a reconfiguration experiment with an explicit fault plan — the
/// replay and shrink path. The plan must be time-sorted.
pub fn run_reconfig_with_plan(cfg: ReconfigConfig, plan: Vec<(SimTime, Fault)>) -> ReconfigReport {
    run_world(
        ReconfigWorld::new_with_plan(cfg, plan),
        cfg,
        QueueKind::default(),
    )
}

/// Shrinks a failing reconfiguration fault plan to a minimal
/// reproducer, reusing the chaos shrinker's ddmin core: a candidate
/// counts as still-failing when it violates one of the originally
/// observed invariant kinds.
pub fn shrink_reconfig(
    cfg: ReconfigConfig,
    plan: &[(SimTime, Fault)],
) -> Option<Vec<(SimTime, Fault)>> {
    let kinds = run_reconfig_with_plan(cfg, plan.to_vec()).violated_kinds();
    if kinds.is_empty() {
        return None;
    }
    shrink_plan(plan, |candidate| {
        run_reconfig_with_plan(cfg, candidate.to_vec())
            .violations
            .iter()
            .any(|v| kinds.contains(&v.kind))
    })
}

fn run_world(world: ReconfigWorld, cfg: ReconfigConfig, kind: QueueKind) -> ReconfigReport {
    let plan_times: Vec<SimTime> = world.plan.iter().map(|(at, _)| *at).collect();
    let mut sim = Simulation::with_queue(world, cfg.seed, kind);
    for (i, at) in plan_times.iter().enumerate() {
        sim.schedule_at(*at, ReconfigEvent::FaultHit(i));
    }
    for c in 0..cfg.clients {
        sim.schedule_at(
            SimTime::from_millis(5_000 + 37 * u64::from(c)),
            ReconfigEvent::WriteTick(c),
        );
    }
    sim.schedule_at(SimTime::from_secs(1), ReconfigEvent::ReplicateTick);
    sim.schedule_at(SimTime::from_secs(1), ReconfigEvent::RetryTick);
    sim.schedule_at(SimTime::from_secs(10), ReconfigEvent::ChurnTick);
    sim.run_until(cfg.end);
    // Whatever is still in flight at `end` (unanswered RPCs, retry
    // chains) is abandoned; `finalize` settles the control plane
    // synchronously against the healed fleet.
    let mut world = sim.into_world();
    world.finalize();
    let converged = world.converged();
    let unplaced = world.unplaced_count();
    ReconfigReport {
        stats: world.stats,
        net: world.net.stats(),
        violations: world.oracle.violations().to_vec(),
        total_violations: world.oracle.total_violations(),
        converged,
        unplaced,
        plan: world.plan.clone(),
        trace_csv: world.trace.to_csv(5),
    }
}

// ---------------------------------------------------------------------
// Replayable reproducer JSON (shares the fault codec with `dst`).
// ---------------------------------------------------------------------

/// Serializes a reconfiguration reproducer — the config knobs that
/// matter plus its (possibly shrunk) fault plan — as a self-contained
/// JSON document.
pub fn reconfig_repro_to_json(cfg: &ReconfigConfig, plan: &[(SimTime, Fault)]) -> String {
    let events: Vec<String> = plan
        .iter()
        .map(|(at, f)| format!("    {{\"at_us\":{},\"fault\":{}}}", at.0, fault_to_json(*f)))
        .collect();
    format!(
        "{{\n  \"seed\": {},\n  \"profile\": \"{}\",\n  \"single_step\": {},\n  \"plan\": [\n{}\n  ]\n}}\n",
        cfg.seed,
        cfg.profile.name(),
        cfg.single_step,
        events.join(",\n")
    )
}

/// Parses a reproducer produced by [`reconfig_repro_to_json`] back into
/// the standard DST-shaped config plus its plan. Returns `None` on any
/// malformed input (never panics).
pub fn reconfig_repro_from_json(text: &str) -> Option<(ReconfigConfig, Vec<(SimTime, Fault)>)> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let doc = parser.value()?;
    let mut cfg = ReconfigConfig::dst(
        doc.get("seed")?.as_u64()?,
        FaultProfile::parse(doc.get("profile")?.as_str()?)?,
    );
    cfg.single_step = doc.get("single_step")?.as_bool()?;
    let Json::Arr(events) = doc.get("plan")? else {
        return None;
    };
    let mut plan = Vec::with_capacity(events.len());
    for e in events {
        let at = SimTime(e.get("at_us")?.as_u64()?);
        plan.push((at, fault_from_json(e.get("fault")?)?));
    }
    Some((cfg, plan))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_bootstraps_with_replicated_groups() {
        let w = ReconfigWorld::new(ReconfigConfig::dst(1, FaultProfile::ReconfigChaos));
        assert_eq!(w.unplaced_count(), 0, "every shard gets a primary");
        assert!(w.converged());
        let groups = w.groups.borrow();
        assert_eq!(groups.len(), w.cfg.shards as usize);
        for (shard, g) in groups.iter() {
            assert_eq!(g.voters().len(), 3, "{shard} is 3-way replicated");
            assert_eq!(
                g.leader(),
                w.cp.assignment().primary_of(*shard),
                "log leader matches the SM primary for {shard}"
            );
        }
        assert!(!w.plan.is_empty(), "profile derives a fault schedule");
    }

    #[test]
    fn quiet_run_completes_reconfigs_and_stays_clean() {
        // No faults at all: churn alone must drive real joint
        // reconfigurations through the 5-step protocol, commit them,
        // and lose nothing.
        let cfg = ReconfigConfig::dst(7, FaultProfile::ReconfigChaos);
        let r = run_reconfig_with_plan(cfg, Vec::new());
        assert_eq!(r.total_violations, 0, "oracle: {:?}", r.violations);
        assert!(r.converged, "{} unplaced", r.unplaced);
        assert!(
            r.stats.reconfigs_completed >= 10,
            "churn must commit membership changes: {:?}",
            r.stats
        );
        assert!(r.stats.writes_acked > 100, "{:?}", r.stats);
        assert_eq!(r.stats.writes_lost_unacked, 0, "{:?}", r.stats);
    }

    #[test]
    fn reconfig_repro_json_round_trips() {
        let mut cfg = ReconfigConfig::dst(9, FaultProfile::ReconfigChaos);
        cfg.single_step = true;
        let plan = vec![
            (SimTime::from_secs(21), Fault::ServerCrash(2)),
            (SimTime::from_secs(31), Fault::ServerRestart(2)),
        ];
        let json = reconfig_repro_to_json(&cfg, &plan);
        let (cfg2, plan2) = reconfig_repro_from_json(&json).expect("own output parses");
        assert_eq!(cfg, cfg2);
        assert_eq!(plan, plan2);
    }
}
