//! A Kafka-like data bus (§2.4, §2.5).
//!
//! Standard-materialized-state applications (option 3) obtain data
//! updates through "a Kafka-like data bus"; the AdEvents stream
//! processors consume it directly. The bus is an append-only log per
//! (topic, partition) with consumer-managed offsets — enough surface
//! for a consumer to replay from any offset after a shard moves.

use sm_types::SmError;
use std::collections::BTreeMap;

/// A topic partition's append-only log.
#[derive(Clone, Debug, Default)]
struct PartitionLog {
    records: Vec<Vec<u8>>,
}

/// The data bus: topics × partitions of durable records.
#[derive(Clone, Debug, Default)]
pub struct DataBus {
    partitions: BTreeMap<(String, u32), PartitionLog>,
}

impl DataBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a topic with `partitions` partitions.
    pub fn create_topic(&mut self, topic: &str, partitions: u32) {
        for p in 0..partitions {
            self.partitions.entry((topic.to_string(), p)).or_default();
        }
    }

    /// Number of partitions of `topic`.
    pub fn partition_count(&self, topic: &str) -> u32 {
        self.partitions.keys().filter(|(t, _)| t == topic).count() as u32
    }

    /// Appends a record, returning its offset.
    pub fn publish(
        &mut self,
        topic: &str,
        partition: u32,
        record: Vec<u8>,
    ) -> Result<u64, SmError> {
        let log = self
            .partitions
            .get_mut(&(topic.to_string(), partition))
            .ok_or_else(|| SmError::not_found(format!("{topic}/{partition}")))?;
        log.records.push(record);
        Ok(log.records.len() as u64 - 1)
    }

    /// Reads up to `max` records starting at `offset`.
    pub fn consume(
        &self,
        topic: &str,
        partition: u32,
        offset: u64,
        max: usize,
    ) -> Result<Vec<(u64, &[u8])>, SmError> {
        let log = self
            .partitions
            .get(&(topic.to_string(), partition))
            .ok_or_else(|| SmError::not_found(format!("{topic}/{partition}")))?;
        Ok(log
            .records
            .iter()
            .enumerate()
            .skip(offset as usize)
            .take(max)
            .map(|(i, r)| (i as u64, r.as_slice()))
            .collect())
    }

    /// The end offset (next offset to be written) of a partition.
    pub fn end_offset(&self, topic: &str, partition: u32) -> Result<u64, SmError> {
        self.partitions
            .get(&(topic.to_string(), partition))
            .map(|l| l.records.len() as u64)
            .ok_or_else(|| SmError::not_found(format!("{topic}/{partition}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_consume_round_trip() {
        let mut bus = DataBus::new();
        bus.create_topic("events", 2);
        assert_eq!(bus.publish("events", 0, b"a".to_vec()).unwrap(), 0);
        assert_eq!(bus.publish("events", 0, b"b".to_vec()).unwrap(), 1);
        assert_eq!(bus.publish("events", 1, b"c".to_vec()).unwrap(), 0);

        let got = bus.consume("events", 0, 0, 10).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (0, b"a".as_slice()));
        assert_eq!(got[1], (1, b"b".as_slice()));
        assert_eq!(bus.end_offset("events", 0).unwrap(), 2);
    }

    #[test]
    fn consume_from_offset_replays_suffix() {
        let mut bus = DataBus::new();
        bus.create_topic("t", 1);
        for i in 0..5u8 {
            bus.publish("t", 0, vec![i]).unwrap();
        }
        let got = bus.consume("t", 0, 3, 10).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 3);
    }

    #[test]
    fn max_limits_batch() {
        let mut bus = DataBus::new();
        bus.create_topic("t", 1);
        for i in 0..10u8 {
            bus.publish("t", 0, vec![i]).unwrap();
        }
        assert_eq!(bus.consume("t", 0, 0, 4).unwrap().len(), 4);
    }

    #[test]
    fn unknown_partition_errors() {
        let bus = DataBus::new();
        assert!(bus.consume("nope", 0, 0, 1).is_err());
        assert!(bus.end_offset("nope", 0).is_err());
    }

    #[test]
    fn partition_count() {
        let mut bus = DataBus::new();
        bus.create_topic("t", 8);
        assert_eq!(bus.partition_count("t"), 8);
        assert_eq!(bus.partition_count("other"), 0);
    }
}
