#![warn(missing_docs)]
//! Example applications built on the SM programming model, plus the
//! integrated simulation harness that powers the paper's experiments.
//!
//! The applications mirror the workloads the paper names:
//!
//! - [`kv`] — a Laser-like soft-state key-value store with prefix scans
//!   (§3.1), data rebuilt from an external store on `add_shard`.
//! - [`queue`] — a primary-only queue service guaranteeing in-order
//!   delivery (§8.2's production example).
//! - [`replstore`] — a ZippyDB-like primary-secondary store over a
//!   compact replicated log ([`replication`]).
//! - [`stream`] — an AdEvents-like stream processor consuming a
//!   Kafka-like data bus ([`databus`]) and keeping materialized state
//!   (§2.4 option 3).
//!
//! [`forwarding`] implements the server-side states of the graceful
//! primary migration protocol (§4.3) shared by all of them, and
//! [`harness`] wires applications, the cluster manager, ZooKeeper,
//! the orchestrator, the TaskController, and service discovery into one
//! deterministic simulation world.

pub mod chaos;
pub mod databus;
pub mod dst;
pub mod forwarding;
pub mod harness;
pub mod kv;
pub mod queue;
pub mod reconfig;
pub mod replication;
pub mod replstore;
pub mod split;
pub mod stream;

pub use chaos::{
    run_chaos, run_chaos_queued, run_chaos_with_plan, run_chaos_with_plan_queued, ChaosConfig,
    ChaosReport, ChaosStats, ChaosWorld,
};
pub use dst::{
    repro_from_json, repro_to_json, run_dst, run_dst_queued, run_dst_with_plan, run_swarm, shrink,
    shrink_plan, DstConfig, DstReport,
};
pub use forwarding::{AppResponse, ShardHost};
pub use harness::{ExperimentConfig, SimWorld, WorldEvent, WorldStats};
pub use kv::{ExternalStore, KvServer};
pub use queue::QueueServer;
pub use reconfig::{
    reconfig_repro_from_json, reconfig_repro_to_json, run_reconfig, run_reconfig_queued,
    run_reconfig_with_plan, shrink_reconfig, ReconfigConfig, ReconfigReport, ReconfigStats,
    ReconfigWorld,
};
pub use replstore::ReplStoreServer;
pub use split::{
    run_split, run_split_queued, run_split_swarm, run_split_with_plan, shrink_split,
    split_repro_from_json, split_repro_to_json, SplitConfig, SplitReport, SplitStats, SplitWorld,
};
pub use stream::StreamServer;
