//! A compact replicated log for primary-secondary stores.
//!
//! ZippyDB (§2.5) runs a Paxos group per shard: the primary is the
//! leader/proposer, secondaries are acceptors/learners. This module
//! implements the steady-state (single-leader) portion of that
//! machinery: the leader appends entries, replicates them to followers,
//! and commits once a majority acknowledges. Leader changes are driven
//! externally by SM's `change_role` — the paper's point is precisely
//! that SM elects primaries, so the log does not need its own election.
//!
//! Safety invariants maintained and tested here:
//! - the commit index never exceeds the match index of a quorum;
//! - followers' logs are always prefixes of the leader's log;
//! - committed entries are never lost across a failover to any follower
//!   whose ack was counted toward a quorum.

use sm_types::SmError;
use std::collections::BTreeMap;

/// A log entry: opaque payload plus the term-like epoch of the leader
/// that appended it (epochs bump on failover).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LogEntry {
    /// Leadership epoch at append time.
    pub epoch: u64,
    /// Payload.
    pub data: Vec<u8>,
}

/// One replica's log state.
#[derive(Clone, Debug, Default)]
pub struct ReplicaLog {
    entries: Vec<LogEntry>,
    committed: usize,
}

impl ReplicaLog {
    /// Entries appended so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry exists.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of committed entries.
    pub fn committed(&self) -> usize {
        self.committed
    }

    /// The committed prefix.
    pub fn committed_entries(&self) -> &[LogEntry] {
        &self.entries[..self.committed]
    }

    /// All entries, committed or not.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }
}

/// The shard's replication group, driven by the leader.
#[derive(Clone, Debug)]
pub struct ReplicationGroup<Id: Ord + Copy> {
    epoch: u64,
    leader: Option<Id>,
    logs: BTreeMap<Id, ReplicaLog>,
    /// How many entries each follower has acknowledged.
    acked: BTreeMap<Id, usize>,
}

impl<Id: Ord + Copy + std::fmt::Debug> ReplicationGroup<Id> {
    /// Creates a group over the given members with no leader yet.
    pub fn new(members: impl IntoIterator<Item = Id>) -> Self {
        let logs: BTreeMap<Id, ReplicaLog> = members
            .into_iter()
            .map(|m| (m, ReplicaLog::default()))
            .collect();
        let acked = logs.keys().map(|&m| (m, 0)).collect();
        Self {
            epoch: 0,
            leader: None,
            logs,
            acked,
        }
    }

    /// Current leader.
    pub fn leader(&self) -> Option<Id> {
        self.leader
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Group size.
    pub fn members(&self) -> usize {
        self.logs.len()
    }

    fn quorum(&self) -> usize {
        self.logs.len() / 2 + 1
    }

    /// A member's election key: Raft's up-to-date comparison, (epoch of
    /// the last entry, log length).
    fn election_key(&self, id: Id) -> (u64, usize) {
        let log = &self.logs[&id];
        let last_epoch = log.entries.last().map(|e| e.epoch).unwrap_or(0);
        (last_epoch, log.len())
    }

    /// Makes `id` the leader (SM `change_role` to primary). Bumps the
    /// epoch. The candidate's log must be at least as up-to-date as a
    /// majority of members (Raft's election rule) — that majority
    /// intersects every commit quorum, so every committed entry is in
    /// the new leader's log.
    pub fn elect(&mut self, id: Id) -> Result<(), SmError> {
        if !self.logs.contains_key(&id) {
            return Err(SmError::not_found(format!("{id:?}")));
        }
        let candidate_key = self.election_key(id);
        let supporters = self
            .logs
            .keys()
            .filter(|&&m| candidate_key >= self.election_key(m))
            .count();
        if supporters < self.quorum() {
            return Err(SmError::conflict(format!(
                "{id:?} is not up-to-date ({supporters} of a needed {} supporters)",
                self.quorum()
            )));
        }
        self.epoch += 1;
        self.leader = Some(id);
        // Ack state from earlier epochs is stale (followers may hold
        // divergent suffixes); it resets and rebuilds via replication.
        let leader_len = self.logs[&id].len();
        for (m, ack) in self.acked.iter_mut() {
            *ack = if *m == id { leader_len } else { 0 };
        }
        Ok(())
    }

    /// Removes a member (its server died permanently).
    pub fn remove_member(&mut self, id: Id) {
        self.logs.remove(&id);
        self.acked.remove(&id);
        if self.leader == Some(id) {
            self.leader = None;
        }
    }

    /// Adds a new empty member (a replacement replica); it catches up on
    /// the next replication round.
    pub fn add_member(&mut self, id: Id) {
        self.logs.entry(id).or_default();
        self.acked.entry(id).or_insert(0);
    }

    /// Leader appends an entry to its own log. Not yet committed.
    pub fn append(&mut self, leader: Id, data: Vec<u8>) -> Result<usize, SmError> {
        if self.leader != Some(leader) {
            return Err(SmError::Rejected(format!("{leader:?} is not leader")));
        }
        let epoch = self.epoch;
        let log = self.logs.get_mut(&leader).expect("leader is a member");
        log.entries.push(LogEntry { epoch, data });
        self.acked.insert(leader, log.len());
        Ok(log.len() - 1)
    }

    /// Replicates the leader's log to one follower (one message
    /// exchange): the follower truncates divergence, appends missing
    /// entries, and acks its new length.
    pub fn replicate_to(&mut self, follower: Id) -> Result<usize, SmError> {
        let leader = self
            .leader
            .ok_or_else(|| SmError::Unavailable("no leader".into()))?;
        if follower == leader {
            return Ok(self.logs[&leader].len());
        }
        let leader_entries = self.logs[&leader].entries.clone();
        let log = self
            .logs
            .get_mut(&follower)
            .ok_or_else(|| SmError::not_found(format!("{follower:?}")))?;
        // Truncate divergence (entries from a deposed leader). Safe
        // elections guarantee the committed prefix is shared, so the
        // truncation point never cuts committed entries.
        let mut common = 0;
        while common < log.entries.len()
            && common < leader_entries.len()
            && log.entries[common] == leader_entries[common]
        {
            common += 1;
        }
        debug_assert!(common >= log.committed, "truncating a committed entry");
        log.entries.truncate(common);
        log.entries.extend_from_slice(&leader_entries[common..]);
        let n = log.entries.len();
        self.acked.insert(follower, n);
        Ok(n)
    }

    /// Advances the commit index to the largest index acknowledged by a
    /// quorum, and propagates it to every member's view — but only up to
    /// what each member has actually acknowledged this epoch, so a
    /// diverged follower never marks unsynced entries committed.
    pub fn advance_commit(&mut self) -> usize {
        let mut acks: Vec<usize> = self.acked.values().copied().collect();
        acks.sort_unstable_by(|a, b| b.cmp(a));
        let commit = acks.get(self.quorum() - 1).copied().unwrap_or(0);
        for (m, log) in self.logs.iter_mut() {
            let acked = self.acked.get(m).copied().unwrap_or(0);
            log.committed = commit.min(acked).min(log.entries.len()).max(log.committed);
        }
        commit
    }

    /// The group-wide commit index.
    pub fn committed(&self) -> usize {
        self.logs.values().map(|l| l.committed).max().unwrap_or(0)
    }

    /// A member's log (reads).
    pub fn log(&self, id: Id) -> Option<&ReplicaLog> {
        self.logs.get(&id)
    }

    /// All members except the leader — the replication targets.
    pub fn follower_ids(&self) -> Vec<Id> {
        self.logs
            .keys()
            .copied()
            .filter(|id| Some(*id) != self.leader)
            .collect()
    }

    /// Members that could win an election right now — the safe
    /// candidates for promotion after the leader fails (their logs are
    /// at least as up-to-date as a majority's, so they hold every
    /// committed entry).
    pub fn safe_successors(&self) -> Vec<Id> {
        self.logs
            .keys()
            .filter(|&&id| {
                if Some(id) == self.leader {
                    return false;
                }
                let key = self.election_key(id);
                let supporters = self
                    .logs
                    .keys()
                    .filter(|&&m| key >= self.election_key(m))
                    .count();
                supporters >= self.quorum()
            })
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group3() -> ReplicationGroup<u32> {
        let mut g = ReplicationGroup::new([1u32, 2, 3]);
        g.elect(1).unwrap();
        g
    }

    #[test]
    fn append_replicate_commit() {
        let mut g = group3();
        g.append(1, b"a".to_vec()).unwrap();
        g.append(1, b"b".to_vec()).unwrap();
        assert_eq!(g.advance_commit(), 0, "no follower acked yet");
        g.replicate_to(2).unwrap();
        assert_eq!(g.advance_commit(), 2, "leader + one follower = quorum of 3");
        assert_eq!(g.log(2).unwrap().committed(), 2);
        // Third replica still behind but commit holds.
        assert_eq!(g.log(3).unwrap().len(), 0);
        g.replicate_to(3).unwrap();
        g.advance_commit();
        assert_eq!(g.log(3).unwrap().committed(), 2);
    }

    #[test]
    fn non_leader_append_rejected() {
        let mut g = group3();
        assert!(matches!(
            g.append(2, b"x".to_vec()),
            Err(SmError::Rejected(_))
        ));
    }

    #[test]
    fn committed_entries_survive_failover() {
        let mut g = group3();
        g.append(1, b"committed".to_vec()).unwrap();
        g.replicate_to(2).unwrap();
        g.advance_commit();
        // Leader 1 also has an uncommitted entry that reached nobody.
        g.append(1, b"uncommitted".to_vec()).unwrap();

        // Leader dies. Only replica 2 holds the committed entry; 3 is
        // empty and must not be elected.
        g.remove_member(1);
        let safe = g.safe_successors();
        assert_eq!(safe, vec![2]);
        assert!(g.elect(3).is_err(), "stale replica cannot lead");
        g.elect(2).unwrap();
        assert_eq!(g.epoch(), 2);

        // The committed entry is intact; the uncommitted one is gone.
        g.replicate_to(3).unwrap();
        g.advance_commit();
        let log3 = g.log(3).unwrap();
        assert_eq!(log3.committed_entries().len(), 1);
        assert_eq!(log3.committed_entries()[0].data, b"committed");
    }

    #[test]
    fn divergent_follower_truncates() {
        let mut g = group3();
        g.append(1, b"a".to_vec()).unwrap();
        g.replicate_to(2).unwrap();
        g.replicate_to(3).unwrap();
        g.advance_commit();
        // Leader 1 appends an entry that never replicates, then dies.
        g.append(1, b"lost".to_vec()).unwrap();
        g.remove_member(1);
        g.elect(2).unwrap();
        // New leader writes a different entry at the same index.
        g.append(2, b"winner".to_vec()).unwrap();
        g.replicate_to(3).unwrap();
        g.advance_commit();
        let log3 = g.log(3).unwrap();
        assert_eq!(log3.len(), 2);
        assert_eq!(log3.entries[1].data, b"winner");
        assert_eq!(log3.entries[1].epoch, 2);
    }

    #[test]
    fn replacement_member_catches_up() {
        let mut g = group3();
        for i in 0..10u8 {
            g.append(1, vec![i]).unwrap();
        }
        g.replicate_to(2).unwrap();
        g.advance_commit();
        g.remove_member(3);
        g.add_member(4);
        assert_eq!(g.members(), 3);
        g.replicate_to(4).unwrap();
        g.advance_commit();
        assert_eq!(g.log(4).unwrap().committed(), 10);
    }

    #[test]
    fn commit_requires_majority_of_current_members() {
        // 5 members: quorum is 3.
        let mut g = ReplicationGroup::new([1u32, 2, 3, 4, 5]);
        g.elect(1).unwrap();
        g.append(1, b"x".to_vec()).unwrap();
        g.replicate_to(2).unwrap();
        assert_eq!(g.advance_commit(), 0, "2 of 5 acked");
        g.replicate_to(3).unwrap();
        assert_eq!(g.advance_commit(), 1, "3 of 5 acked");
    }
}
