//! A compact replicated log with safe dynamic reconfiguration.
//!
//! ZippyDB (§2.5) runs a Paxos group per shard: the primary is the
//! leader/proposer, secondaries are acceptors/learners. This module
//! implements the steady-state (single-leader) portion of that
//! machinery — the leader appends entries, replicates them to
//! followers, and commits once a quorum acknowledges — plus the piece a
//! migration-driven system cannot live without: **joint-consensus
//! membership changes** (Raft §6 style). A reconfiguration from voter
//! set `C_old` to `C_new` goes through an intermediate `Joint` log
//! entry; while it is in flight, commits and elections require quorums
//! in *both* sets, so no two disjoint quorums can ever both commit and
//! no election can lose a committed entry, no matter where a crash or
//! partition lands mid-change. See DESIGN.md "Reconfigurable
//! replication" for the protocol choice and failure matrix.
//!
//! New replicas join as non-voting **learners** first (`add_learner`):
//! they receive the log but count toward no quorum, so a slow catch-up
//! never stalls commits. Once caught up, a `begin_reconfig` promotes
//! them to voters.
//!
//! Safety invariants maintained and tested here:
//! - the commit index never exceeds what a quorum of *every* active
//!   voter set has acknowledged;
//! - followers' logs are always prefixes of the leader's log;
//! - committed entries are never lost across failovers or
//!   reconfigurations;
//! - adjacent committed configurations always share an intersecting
//!   quorum pair (the [`Self::committed_config_chain`] the DST oracle
//!   audits).
//!
//! For deterministic simulation the group carries link gates
//! ([`Self::set_down`], [`Self::block_link`]): the chaos world mirrors
//! its `SimNet` partitions into them so this shared-state group behaves
//! asynchronously under faults while unit tests stay synchronous.

use sm_types::SmError;
use std::collections::{BTreeMap, BTreeSet};

/// A configuration log entry: either the joint phase (quorums required
/// in both sets) or the final stable set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConfigEntry<Id: Ord + Copy> {
    /// `C_old,new`: both sets must supply a quorum for commits and
    /// elections until this entry commits.
    Joint {
        /// The outgoing voter set.
        old: BTreeSet<Id>,
        /// The incoming voter set.
        new: BTreeSet<Id>,
    },
    /// `C_new`: the single voter set after the joint phase.
    Stable(BTreeSet<Id>),
}

impl<Id: Ord + Copy> ConfigEntry<Id> {
    /// The quorum-set list this configuration requires (one set for
    /// stable, two for joint).
    pub fn quorum_sets(&self) -> Vec<BTreeSet<Id>> {
        match self {
            ConfigEntry::Joint { old, new } => vec![old.clone(), new.clone()],
            ConfigEntry::Stable(s) => vec![s.clone()],
        }
    }
}

/// An entry's payload: client data or a configuration change.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Payload<Id: Ord + Copy> {
    /// Opaque application bytes.
    Data(Vec<u8>),
    /// A membership change, replicated and committed like data.
    Config(ConfigEntry<Id>),
}

/// A log entry: payload plus the term-like epoch of the leader that
/// appended it (epochs bump on failover).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LogEntry<Id: Ord + Copy> {
    /// Leadership epoch at append time.
    pub epoch: u64,
    /// Payload.
    pub payload: Payload<Id>,
}

impl<Id: Ord + Copy> LogEntry<Id> {
    /// The application bytes, if this is a data entry.
    pub fn data(&self) -> Option<&[u8]> {
        match &self.payload {
            Payload::Data(d) => Some(d),
            Payload::Config(_) => None,
        }
    }

    /// True for configuration entries.
    pub fn is_config(&self) -> bool {
        matches!(self.payload, Payload::Config(_))
    }
}

/// One replica's log state.
#[derive(Clone, Debug)]
pub struct ReplicaLog<Id: Ord + Copy> {
    entries: Vec<LogEntry<Id>>,
    committed: usize,
}

impl<Id: Ord + Copy> Default for ReplicaLog<Id> {
    fn default() -> Self {
        Self {
            entries: Vec::new(),
            committed: 0,
        }
    }
}

impl<Id: Ord + Copy> ReplicaLog<Id> {
    /// Entries appended so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry exists.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of committed entries.
    pub fn committed(&self) -> usize {
        self.committed
    }

    /// The committed prefix.
    pub fn committed_entries(&self) -> &[LogEntry<Id>] {
        self.entries.get(..self.committed).unwrap_or(&[])
    }

    /// All entries, committed or not.
    pub fn entries(&self) -> &[LogEntry<Id>] {
        &self.entries
    }

    /// Number of committed *data* entries (configuration entries are
    /// bookkeeping, not application writes).
    pub fn committed_data_len(&self) -> usize {
        self.committed_entries()
            .iter()
            .filter(|e| !e.is_config())
            .count()
    }
}

/// The shard's replication group, driven by the leader.
#[derive(Clone, Debug)]
pub struct ReplicationGroup<Id: Ord + Copy> {
    epoch: u64,
    leader: Option<Id>,
    /// Every hosted replica's log — voters and learners alike.
    logs: BTreeMap<Id, ReplicaLog<Id>>,
    /// How many entries each replica has acknowledged this epoch. Also
    /// the leader's per-follower match-index hint: within an epoch it is
    /// a true match index (acks reset on election), so replication ships
    /// only the suffix past it.
    acked: BTreeMap<Id, usize>,
    /// The current voter set (the `new` side while a joint change is in
    /// flight — configurations take effect on append).
    voters: BTreeSet<Id>,
    /// The outgoing voter set while a joint change is in flight.
    joint_old: Option<BTreeSet<Id>>,
    /// Log index of the in-flight configuration entry, if any.
    pending_config: Option<usize>,
    /// Membership before any log entry existed — the configuration a
    /// log with no config entries implies.
    bootstrap: BTreeSet<Id>,
    /// DST mutation switch: when true, `begin_reconfig` swaps the voter
    /// set in one unsafe step (no joint phase). Exists only to prove
    /// the oracle catches the resulting violations.
    single_step: bool,
    /// Entries shipped by `replicate_to` (perf regression counter: a
    /// full catch-up must be O(log length), not quadratic).
    replication_work: u64,
    /// Crashed replicas: they cannot vote, append, or receive entries.
    down: BTreeSet<Id>,
    /// Directed blocked links mirrored from the simulated network; a
    /// blocked link in either direction kills the RPC round trip.
    blocked: BTreeSet<(Id, Id)>,
}

impl<Id: Ord + Copy + std::fmt::Debug> ReplicationGroup<Id> {
    /// Creates a group over the given bootstrap members with no leader.
    pub fn new(members: impl IntoIterator<Item = Id>) -> Self {
        let logs: BTreeMap<Id, ReplicaLog<Id>> = members
            .into_iter()
            .map(|m| (m, ReplicaLog::default()))
            .collect();
        let acked = logs.keys().map(|&m| (m, 0)).collect();
        let voters: BTreeSet<Id> = logs.keys().copied().collect();
        Self {
            epoch: 0,
            leader: None,
            logs,
            acked,
            bootstrap: voters.clone(),
            voters,
            joint_old: None,
            pending_config: None,
            single_step: false,
            replication_work: 0,
            down: BTreeSet::new(),
            blocked: BTreeSet::new(),
        }
    }

    /// Current leader.
    pub fn leader(&self) -> Option<Id> {
        self.leader
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of hosted replicas (voters and learners).
    pub fn members(&self) -> usize {
        self.logs.len()
    }

    /// True when `id` hosts a replica (voter or learner).
    pub fn is_hosted(&self, id: Id) -> bool {
        self.logs.contains_key(&id)
    }

    /// The current voter set.
    pub fn voters(&self) -> &BTreeSet<Id> {
        &self.voters
    }

    /// The outgoing voter set while a joint change is in flight.
    pub fn joint_old(&self) -> Option<&BTreeSet<Id>> {
        self.joint_old.as_ref()
    }

    /// True when `id` is a voter in the effective configuration (either
    /// side of an in-flight joint change).
    pub fn is_voter(&self, id: Id) -> bool {
        self.voters.contains(&id) || self.joint_old.as_ref().is_some_and(|o| o.contains(&id))
    }

    /// Log index of the in-flight configuration entry, if any.
    pub fn pending_reconfig(&self) -> Option<usize> {
        self.pending_config
    }

    /// True while a membership change has not yet fully committed.
    pub fn reconfig_in_flight(&self) -> bool {
        self.pending_config.is_some()
    }

    /// Entries shipped by replication so far (perf counter).
    pub fn replication_work(&self) -> u64 {
        self.replication_work
    }

    /// DST mutation switch: single-step (joint-free) membership swaps.
    pub fn set_single_step(&mut self, on: bool) {
        self.single_step = on;
    }

    // ---- Simulation link gates ----

    /// Marks a replica crashed (true) or recovered (false). A down
    /// replica cannot vote, append, or receive replication; its log —
    /// durable storage — survives.
    pub fn set_down(&mut self, id: Id, down: bool) {
        if down {
            self.down.insert(id);
        } else {
            self.down.remove(&id);
        }
    }

    /// True when `id` is marked crashed.
    pub fn is_down(&self, id: Id) -> bool {
        self.down.contains(&id)
    }

    /// Blocks the directed link `a → b` (mirrors a network partition).
    pub fn block_link(&mut self, a: Id, b: Id) {
        self.blocked.insert((a, b));
    }

    /// Clears every blocked link (partition healed).
    pub fn clear_blocked_links(&mut self) {
        self.blocked.clear();
    }

    /// True when `a` and `b` can complete an RPC round trip: both up
    /// and neither direction blocked.
    fn linked(&self, a: Id, b: Id) -> bool {
        a == b
            || (!self.down.contains(&a)
                && !self.down.contains(&b)
                && !self.blocked.contains(&(a, b))
                && !self.blocked.contains(&(b, a)))
    }

    // ---- Elections ----

    /// A replica's election key: Raft's up-to-date comparison, (epoch
    /// of the last entry, log length).
    fn election_key(&self, id: &Id) -> (u64, usize) {
        self.logs
            .get(id)
            .map(|log| (log.entries.last().map(|e| e.epoch).unwrap_or(0), log.len()))
            .unwrap_or((0, 0))
    }

    /// Majority size of one voter set.
    fn quorum_of(set: &BTreeSet<Id>) -> usize {
        set.len() / 2 + 1
    }

    /// Votes `candidate` can gather within `set`: reachable members
    /// whose logs are no more up-to-date than the candidate's.
    fn supporters_in(&self, candidate: Id, key: (u64, usize), set: &BTreeSet<Id>) -> usize {
        set.iter()
            .filter(|&&m| {
                m == candidate || (self.linked(candidate, m) && key >= self.election_key(&m))
            })
            .count()
    }

    /// True when `id` could win an election right now.
    fn can_win(&self, id: Id) -> bool {
        if !self.is_voter(id) || self.down.contains(&id) || !self.logs.contains_key(&id) {
            return false;
        }
        let key = self.election_key(&id);
        if self.supporters_in(id, key, &self.voters) < Self::quorum_of(&self.voters) {
            return false;
        }
        match &self.joint_old {
            Some(old) => self.supporters_in(id, key, old) >= Self::quorum_of(old),
            None => true,
        }
    }

    /// Makes `id` the leader (SM `change_role` to primary). Bumps the
    /// epoch. The candidate must be a voter in the effective
    /// configuration and its log at least as up-to-date as a quorum of
    /// *every* active voter set (both sets while a joint change is in
    /// flight) — those quorums intersect every commit quorum, so every
    /// committed entry is in the new leader's log.
    pub fn elect(&mut self, id: Id) -> Result<(), SmError> {
        if !self.logs.contains_key(&id) {
            return Err(SmError::not_found(format!("{id:?}")));
        }
        if !self.is_voter(id) {
            return Err(SmError::Rejected(format!("{id:?} is not a voter")));
        }
        if self.down.contains(&id) {
            return Err(SmError::Unavailable(format!("{id:?} is down")));
        }
        if !self.can_win(id) {
            return Err(SmError::conflict(format!(
                "{id:?} cannot gather a quorum of every active voter set"
            )));
        }
        self.epoch += 1;
        self.leader = Some(id);
        // Ack state from earlier epochs is stale (followers may hold
        // divergent suffixes); it resets and rebuilds via replication.
        let leader_len = self.logs.get(&id).map(|l| l.len()).unwrap_or(0);
        for (m, ack) in self.acked.iter_mut() {
            *ack = if *m == id { leader_len } else { 0 };
        }
        // The new leader's log decides the effective configuration: an
        // uncommitted config entry a quorum never saw rolls back here,
        // exactly like any other uncommitted entry.
        self.adopt_config_from(id);
        // A still-pending config entry from an older epoch cannot commit
        // by counting (Raft's current-term rule), so re-propose it under
        // the new epoch to keep the reconfiguration moving.
        if let Some(idx) = self.pending_config {
            let pending = self
                .logs
                .get(&id)
                .and_then(|l| l.entries.get(idx))
                .filter(|e| e.epoch < self.epoch && e.is_config())
                .cloned();
            if let Some(entry) = pending {
                if let Ok(new_idx) = self.append_payload(id, entry.payload) {
                    self.pending_config = Some(new_idx);
                }
            }
        }
        Ok(())
    }

    /// Re-derives (voters, joint_old, pending_config) from the last
    /// configuration entry in `id`'s log, falling back to the bootstrap
    /// membership.
    fn adopt_config_from(&mut self, id: Id) {
        let Some(log) = self.logs.get(&id) else {
            return;
        };
        let found = log
            .entries
            .iter()
            .enumerate()
            .rev()
            .find_map(|(i, e)| match &e.payload {
                Payload::Config(c) => Some((i, c.clone())),
                Payload::Data(_) => None,
            });
        match found {
            Some((i, ConfigEntry::Joint { old, new })) => {
                self.voters = new;
                self.joint_old = Some(old);
                self.pending_config = Some(i);
            }
            Some((i, ConfigEntry::Stable(s))) => {
                self.voters = s;
                self.joint_old = None;
                self.pending_config = if i < log.committed { None } else { Some(i) };
            }
            None => {
                self.voters = self.bootstrap.clone();
                self.joint_old = None;
                self.pending_config = None;
            }
        }
    }

    /// The leader steps down (demotion or graceful drop); no new leader
    /// until the next election.
    pub fn step_down(&mut self, id: Id) {
        if self.leader == Some(id) {
            self.leader = None;
        }
    }

    // ---- Membership ----

    /// Adds a bootstrap voter. Only legal while the group's log is
    /// empty — once any entry exists, membership changes must go
    /// through [`Self::add_learner`] + [`Self::begin_reconfig`].
    pub fn add_member(&mut self, id: Id) -> Result<(), SmError> {
        if self.logs.values().any(|l| !l.is_empty()) {
            return Err(SmError::Rejected(
                "group is live; use add_learner + begin_reconfig".into(),
            ));
        }
        self.logs.entry(id).or_default();
        self.acked.entry(id).or_insert(0);
        self.voters.insert(id);
        self.bootstrap.insert(id);
        Ok(())
    }

    /// Adds a non-voting learner: it receives the log via replication
    /// but counts toward no quorum. Idempotent; a later
    /// [`Self::begin_reconfig`] promotes it to a voter.
    pub fn add_learner(&mut self, id: Id) {
        self.logs.entry(id).or_default();
        self.acked.entry(id).or_insert(0);
    }

    /// Removes a hosted replica. Refused while `id` is still a voter of
    /// a live group — callers must first commit a reconfiguration that
    /// excludes it (the §4.3 `drop_shard` discipline: leave the config,
    /// then the group).
    pub fn remove_member(&mut self, id: Id) -> Result<(), SmError> {
        let live = self.logs.values().any(|l| !l.is_empty());
        if self.is_voter(id) {
            if live {
                return Err(SmError::Rejected(format!(
                    "{id:?} is still a voter; commit a reconfiguration first"
                )));
            }
            // Bootstrap-phase removal (nothing logged yet).
            self.voters.remove(&id);
            self.bootstrap.remove(&id);
        }
        self.logs.remove(&id);
        self.acked.remove(&id);
        self.down.remove(&id);
        if self.leader == Some(id) {
            self.leader = None;
        }
        Ok(())
    }

    /// Starts a membership change to voter set `new` by appending a
    /// joint configuration entry (`C_old,new`). The change takes effect
    /// immediately (configurations are active on append): commits and
    /// elections now require quorums in both sets. When the joint entry
    /// commits, the leader automatically appends the stable `C_new`
    /// entry; when *that* commits, the change is complete
    /// ([`Self::reconfig_in_flight`] turns false).
    ///
    /// Every member of `new` must already host a replica (use
    /// [`Self::add_learner`] to start catch-up first). A change to the
    /// current voter set is a no-op; a second change while one is in
    /// flight is rejected.
    pub fn begin_reconfig(&mut self, leader: Id, new: BTreeSet<Id>) -> Result<(), SmError> {
        if self.leader != Some(leader) {
            return Err(SmError::Rejected(format!("{leader:?} is not leader")));
        }
        if new.is_empty() {
            return Err(SmError::InvalidArgument("empty voter set".into()));
        }
        for m in &new {
            if !self.logs.contains_key(m) {
                return Err(SmError::not_found(format!(
                    "{m:?} hosts no replica; add_learner first"
                )));
            }
        }
        if new == self.voters && self.joint_old.is_none() && self.pending_config.is_none() {
            return Ok(());
        }
        if self.pending_config.is_some() {
            return Err(SmError::conflict("a reconfiguration is already in flight"));
        }
        if self.single_step {
            // Unsafe mutation path: swap the voter set in one step with
            // no joint phase. Kept only so the DST oracle can prove it
            // catches the resulting split-brain/lost-write violations.
            let idx =
                self.append_payload(leader, Payload::Config(ConfigEntry::Stable(new.clone())))?;
            self.voters = new;
            self.joint_old = None;
            self.pending_config = Some(idx);
            return Ok(());
        }
        let old = self.voters.clone();
        let idx = self.append_payload(
            leader,
            Payload::Config(ConfigEntry::Joint {
                old: old.clone(),
                new: new.clone(),
            }),
        )?;
        self.joint_old = Some(old);
        self.voters = new;
        self.pending_config = Some(idx);
        Ok(())
    }

    // ---- The log ----

    /// Leader appends a data entry to its own log. Not yet committed.
    pub fn append(&mut self, leader: Id, data: Vec<u8>) -> Result<usize, SmError> {
        self.append_payload(leader, Payload::Data(data))
    }

    fn append_payload(&mut self, leader: Id, payload: Payload<Id>) -> Result<usize, SmError> {
        if self.leader != Some(leader) {
            return Err(SmError::Rejected(format!("{leader:?} is not leader")));
        }
        if self.down.contains(&leader) {
            return Err(SmError::Unavailable(format!("{leader:?} is down")));
        }
        let epoch = self.epoch;
        // A leader whose log was removed is a control-plane bug upstream,
        // but it must surface as an error, not a panic.
        let log = self
            .logs
            .get_mut(&leader)
            .ok_or_else(|| SmError::not_found(format!("{leader:?} hosts no replica")))?;
        log.entries.push(LogEntry { epoch, payload });
        let n = log.len();
        self.acked.insert(leader, n);
        Ok(n - 1)
    }

    /// Replicates the leader's log to one follower (one message
    /// exchange): the follower truncates divergence, appends missing
    /// entries, and acks its new length. Ships only the suffix past the
    /// follower's match-index hint — within an epoch the recorded ack
    /// is a true match index (acks reset on election), so steady-state
    /// rounds are O(new entries), not O(log length).
    pub fn replicate_to(&mut self, follower: Id) -> Result<usize, SmError> {
        let leader = self
            .leader
            .ok_or_else(|| SmError::Unavailable("no leader".into()))?;
        if follower == leader {
            return Ok(self.logs.get(&leader).map(|l| l.len()).unwrap_or(0));
        }
        if !self.linked(leader, follower) {
            return Err(SmError::Unavailable(format!(
                "{leader:?} cannot reach {follower:?}"
            )));
        }
        let leader_log = self
            .logs
            .get(&leader)
            .ok_or_else(|| SmError::not_found(format!("{leader:?} hosts no replica")))?;
        let leader_len = leader_log.len();
        let follower_len = self
            .logs
            .get(&follower)
            .ok_or_else(|| SmError::not_found(format!("{follower:?}")))?
            .len();
        // Match-index hint, validated by one boundary compare (O(1)).
        let mut common = self
            .acked
            .get(&follower)
            .copied()
            .unwrap_or(0)
            .min(follower_len)
            .min(leader_len);
        if common > 0 {
            let boundary_matches = match (
                self.logs
                    .get(&leader)
                    .and_then(|l| l.entries.get(common - 1)),
                self.logs
                    .get(&follower)
                    .and_then(|l| l.entries.get(common - 1)),
            ) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            };
            debug_assert!(boundary_matches, "match hint out of sync with logs");
            if !boundary_matches {
                common = 0;
            }
        }
        // Extend the common prefix past the hint (right after an
        // election the hint is 0 and this is the one full scan).
        while common < follower_len && common < leader_len {
            let same = match (
                self.logs.get(&leader).and_then(|l| l.entries.get(common)),
                self.logs.get(&follower).and_then(|l| l.entries.get(common)),
            ) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            };
            if !same {
                break;
            }
            common += 1;
        }
        let suffix: Vec<LogEntry<Id>> = self
            .logs
            .get(&leader)
            .map(|l| l.entries.iter().skip(common).cloned().collect())
            .unwrap_or_default();
        self.replication_work += suffix.len() as u64;
        let log = self
            .logs
            .get_mut(&follower)
            .ok_or_else(|| SmError::not_found(format!("{follower:?}")))?;
        // Truncate divergence (entries from a deposed leader). Safe
        // elections guarantee the committed prefix is shared, so the
        // truncation point never cuts committed entries — except under
        // the deliberate single-step mutation, whose whole point is
        // that this invariant breaks (the DST oracle must catch it).
        debug_assert!(
            self.single_step || common >= log.committed,
            "truncating a committed entry"
        );
        log.entries.truncate(common);
        log.entries.extend(suffix);
        let n = log.entries.len();
        self.acked.insert(follower, n);
        Ok(n)
    }

    /// One replication round: ship the log to every reachable hosted
    /// replica, then advance the commit index. Unreachable followers
    /// are skipped (they catch up after the fault heals).
    pub fn pump(&mut self) {
        for f in self.follower_ids() {
            let _unreachable = self.replicate_to(f);
        }
        self.advance_commit();
    }

    /// Pumps up to `rounds` replication rounds, stopping early once no
    /// reconfiguration is in flight. Returns true when the change (if
    /// any) fully committed.
    pub fn pump_until_config_commits(&mut self, rounds: usize) -> bool {
        for _ in 0..rounds {
            if !self.reconfig_in_flight() {
                return true;
            }
            self.pump();
        }
        !self.reconfig_in_flight()
    }

    /// The largest index acknowledged by a quorum of one voter set.
    fn quorum_ack(&self, set: &BTreeSet<Id>) -> usize {
        let mut acks: Vec<usize> = set
            .iter()
            .map(|m| self.acked.get(m).copied().unwrap_or(0))
            .collect();
        acks.sort_unstable_by(|a, b| b.cmp(a));
        acks.get(Self::quorum_of(set) - 1).copied().unwrap_or(0)
    }

    /// Advances the commit index to the largest index acknowledged by a
    /// quorum of **every** active voter set (both sets during a joint
    /// change), restricted to entries of the current epoch (Raft's
    /// current-term commit rule), and propagates it to every replica's
    /// view — but only up to what each has actually acknowledged this
    /// epoch, so a diverged follower never marks unsynced entries
    /// committed. Completes configuration changes whose entries commit.
    pub fn advance_commit(&mut self) -> usize {
        let Some(leader) = self.leader else {
            return self.committed();
        };
        let mut commit = self.quorum_ack(&self.voters);
        if let Some(old) = &self.joint_old {
            commit = commit.min(self.quorum_ack(old));
        }
        let (leader_len, leader_committed) = self
            .logs
            .get(&leader)
            .map(|l| (l.len(), l.committed))
            .unwrap_or((0, 0));
        commit = commit.min(leader_len);
        // Current-epoch rule: an entry from an older epoch only commits
        // once an entry of the current epoch is committed past it —
        // otherwise a later, more up-to-date leader could still
        // overwrite it (Raft figure 8).
        if let Some(log) = self.logs.get(&leader) {
            while commit > leader_committed
                && log.entries.get(commit - 1).map(|e| e.epoch) != Some(self.epoch)
            {
                commit -= 1;
            }
        }
        commit = commit.max(leader_committed);
        for (m, log) in self.logs.iter_mut() {
            let acked = self.acked.get(m).copied().unwrap_or(0);
            log.committed = commit.min(acked).min(log.entries.len()).max(log.committed);
        }
        self.finish_config_commits();
        commit
    }

    /// Drives the two-phase change forward: when the joint entry
    /// commits, append the stable `C_new` entry; when that commits, the
    /// change is complete.
    fn finish_config_commits(&mut self) {
        let Some(leader) = self.leader else { return };
        loop {
            let Some(idx) = self.pending_config else {
                return;
            };
            let Some(log) = self.logs.get(&leader) else {
                return;
            };
            if log.committed <= idx {
                return;
            }
            let entry = log.entries.get(idx).cloned();
            match entry.map(|e| e.payload) {
                Some(Payload::Config(ConfigEntry::Joint { new, .. })) => {
                    match self.append_payload(leader, Payload::Config(ConfigEntry::Stable(new))) {
                        Ok(idx2) => {
                            self.joint_old = None;
                            self.pending_config = Some(idx2);
                        }
                        Err(_) => return,
                    }
                }
                Some(Payload::Config(ConfigEntry::Stable(s))) => {
                    self.voters = s;
                    self.joint_old = None;
                    self.pending_config = None;
                }
                _ => {
                    self.pending_config = None;
                }
            }
        }
    }

    /// The group-wide commit index.
    pub fn committed(&self) -> usize {
        self.logs.values().map(|l| l.committed).max().unwrap_or(0)
    }

    /// A replica's log (reads).
    pub fn log(&self, id: Id) -> Option<&ReplicaLog<Id>> {
        self.logs.get(&id)
    }

    /// The data entry at log position `idx` of `id`'s log, if present.
    pub fn data_at(&self, id: Id, idx: usize) -> Option<&[u8]> {
        self.logs
            .get(&id)
            .and_then(|l| l.entries.get(idx))
            .and_then(|e| e.data())
    }

    /// All hosted replicas except the leader — the replication targets.
    pub fn follower_ids(&self) -> Vec<Id> {
        self.logs
            .keys()
            .copied()
            .filter(|id| Some(*id) != self.leader)
            .collect()
    }

    /// True when `id`'s acknowledged log covers everything committed —
    /// the promotion-readiness check for a caught-up learner.
    pub fn is_caught_up(&self, id: Id) -> bool {
        self.acked.get(&id).copied().unwrap_or(0) >= self.committed()
    }

    /// Voters that could win an election right now — the safe
    /// candidates for promotion after the leader fails (their logs are
    /// at least as up-to-date as a quorum of every active voter set, so
    /// they hold every committed entry).
    pub fn safe_successors(&self) -> Vec<Id> {
        self.logs
            .keys()
            .filter(|&&id| Some(id) != self.leader && self.can_win(id))
            .copied()
            .collect()
    }

    // ---- Configuration auditing (the DST oracle's raw material) ----

    /// The configuration `id` believes committed: the quorum sets of
    /// the last configuration entry in its committed prefix, falling
    /// back to the bootstrap membership. `None` when `id` hosts no
    /// replica.
    pub fn committed_config_view(&self, id: Id) -> Option<Vec<BTreeSet<Id>>> {
        let log = self.logs.get(&id)?;
        let view = log
            .committed_entries()
            .iter()
            .rev()
            .find_map(|e| match &e.payload {
                Payload::Config(c) => Some(c.quorum_sets()),
                Payload::Data(_) => None,
            })
            .unwrap_or_else(|| vec![self.bootstrap.clone()]);
        Some(view)
    }

    /// The full committed configuration history: the bootstrap
    /// membership followed by every configuration entry in the
    /// committed prefix of the most-advanced log. The DST oracle checks
    /// that adjacent configurations always share an intersecting quorum
    /// pair — the property a single-step membership swap violates.
    pub fn committed_config_chain(&self) -> Vec<Vec<BTreeSet<Id>>> {
        let mut chain = vec![vec![self.bootstrap.clone()]];
        let best = self.logs.values().max_by_key(|l| l.committed);
        if let Some(log) = best {
            for e in log.committed_entries() {
                if let Payload::Config(c) = &e.payload {
                    chain.push(c.quorum_sets());
                }
            }
        }
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_sim::SimRng;

    fn set(ids: &[u32]) -> BTreeSet<u32> {
        ids.iter().copied().collect()
    }

    fn group3() -> ReplicationGroup<u32> {
        let mut g = ReplicationGroup::new([1u32, 2, 3]);
        g.elect(1).unwrap();
        g
    }

    #[test]
    fn append_replicate_commit() {
        let mut g = group3();
        g.append(1, b"a".to_vec()).unwrap();
        g.append(1, b"b".to_vec()).unwrap();
        assert_eq!(g.advance_commit(), 0, "no follower acked yet");
        g.replicate_to(2).unwrap();
        assert_eq!(g.advance_commit(), 2, "leader + one follower = quorum of 3");
        assert_eq!(g.log(2).unwrap().committed(), 2);
        // Third replica still behind but commit holds.
        assert_eq!(g.log(3).unwrap().len(), 0);
        g.replicate_to(3).unwrap();
        g.advance_commit();
        assert_eq!(g.log(3).unwrap().committed(), 2);
    }

    #[test]
    fn non_leader_append_rejected() {
        let mut g = group3();
        assert!(matches!(
            g.append(2, b"x".to_vec()),
            Err(SmError::Rejected(_))
        ));
    }

    #[test]
    fn append_with_missing_leader_log_errors_not_panics() {
        // Force the inconsistent state via a fresh group whose "leader"
        // never hosted a log: elect on an empty bootstrap is impossible,
        // so exercise the guard through the public API by removing the
        // leader's log in the only legal window (empty logs).
        let mut g: ReplicationGroup<u32> = ReplicationGroup::new([1u32, 2, 3]);
        g.elect(1).unwrap();
        g.remove_member(1).unwrap(); // log still empty: legal, clears leader
        assert!(g.append(1, b"x".to_vec()).is_err());
    }

    #[test]
    fn committed_entries_survive_failover() {
        let mut g = group3();
        g.append(1, b"committed".to_vec()).unwrap();
        g.replicate_to(2).unwrap();
        g.advance_commit();
        // Leader 1 also has an uncommitted entry that reached nobody.
        g.append(1, b"uncommitted".to_vec()).unwrap();

        // Leader crashes. Only replica 2 holds the committed entry; 3
        // is empty and must not be electable.
        g.set_down(1, true);
        g.step_down(1);
        let safe = g.safe_successors();
        assert_eq!(safe, vec![2]);
        assert!(g.elect(3).is_err(), "stale replica cannot lead");
        g.elect(2).unwrap();
        assert_eq!(g.epoch(), 2);

        // The committed entry is intact at the new leader; replication
        // to 3 carries it over. The uncommitted entry stays only on the
        // crashed node until it returns and truncates.
        g.replicate_to(3).unwrap();
        g.append(2, b"next".to_vec()).unwrap();
        g.replicate_to(3).unwrap();
        g.advance_commit();
        let log3 = g.log(3).unwrap();
        assert!(log3.committed() >= 1);
        assert_eq!(log3.committed_entries()[0].data(), Some(&b"committed"[..]));
    }

    #[test]
    fn divergent_follower_truncates() {
        let mut g = group3();
        g.append(1, b"a".to_vec()).unwrap();
        g.replicate_to(2).unwrap();
        g.replicate_to(3).unwrap();
        g.advance_commit();
        // Leader 1 appends an entry that never replicates, then dies.
        g.append(1, b"lost".to_vec()).unwrap();
        g.set_down(1, true);
        g.step_down(1);
        g.elect(2).unwrap();
        // New leader writes a different entry at the same index.
        g.append(2, b"winner".to_vec()).unwrap();
        g.replicate_to(3).unwrap();
        g.advance_commit();
        let log3 = g.log(3).unwrap();
        assert_eq!(log3.len(), 2);
        assert_eq!(log3.entries()[1].data(), Some(&b"winner"[..]));
        assert_eq!(log3.entries()[1].epoch, 2);
        // The deposed leader returns; replication truncates its
        // divergent suffix.
        g.set_down(1, false);
        g.replicate_to(1).unwrap();
        assert_eq!(g.log(1).unwrap().entries()[1].data(), Some(&b"winner"[..]));
    }

    #[test]
    fn commit_requires_majority_of_current_members() {
        // 5 members: quorum is 3.
        let mut g = ReplicationGroup::new([1u32, 2, 3, 4, 5]);
        g.elect(1).unwrap();
        g.append(1, b"x".to_vec()).unwrap();
        g.replicate_to(2).unwrap();
        assert_eq!(g.advance_commit(), 0, "2 of 5 acked");
        g.replicate_to(3).unwrap();
        assert_eq!(g.advance_commit(), 1, "3 of 5 acked");
    }

    // ---- Learners ----

    #[test]
    fn learner_replicates_but_counts_toward_no_quorum() {
        let mut g = group3();
        g.add_learner(9);
        g.append(1, b"a".to_vec()).unwrap();
        g.replicate_to(9).unwrap();
        // Leader + learner acked, but the learner is no voter: 1 of 3.
        assert_eq!(g.advance_commit(), 0);
        g.replicate_to(2).unwrap();
        assert_eq!(g.advance_commit(), 1);
        assert_eq!(g.log(9).unwrap().committed(), 1, "learner learns commits");
        assert!(!g.is_voter(9));
        assert!(g.is_caught_up(9));
    }

    #[test]
    fn live_group_rejects_raw_membership_mutation() {
        let mut g = group3();
        g.append(1, b"x".to_vec()).unwrap();
        assert!(matches!(g.add_member(4), Err(SmError::Rejected(_))));
        assert!(matches!(g.remove_member(2), Err(SmError::Rejected(_))));
        assert_eq!(g.members(), 3);
        assert!(g.is_voter(2));
    }

    // ---- Joint reconfiguration ----

    /// Drives a healthy group's pending reconfiguration to completion.
    fn settle(g: &mut ReplicationGroup<u32>) {
        assert!(g.pump_until_config_commits(8), "healthy group settles");
    }

    #[test]
    fn reconfig_moves_one_voter_without_losing_commits() {
        let mut g = group3();
        for i in 0..5u8 {
            g.append(1, vec![i]).unwrap();
        }
        g.pump();
        assert_eq!(g.committed(), 5);

        // Move voter 3 → 4: learner catch-up, then the two-phase swap.
        g.add_learner(4);
        g.replicate_to(4).unwrap();
        g.begin_reconfig(1, set(&[1, 2, 4])).unwrap();
        assert!(g.reconfig_in_flight());
        settle(&mut g);
        assert_eq!(g.voters(), &set(&[1, 2, 4]));
        assert!(g.joint_old().is_none());
        // 3 is no longer a voter; it can now be removed.
        g.remove_member(3).unwrap();
        assert_eq!(g.log(4).unwrap().committed_data_len(), 5);
        // The chain records bootstrap → joint → stable.
        let chain = g.committed_config_chain();
        assert_eq!(chain.len(), 3);
        assert_eq!(chain[1].len(), 2, "joint phase has two quorum sets");
    }

    #[test]
    fn joint_commit_requires_quorums_in_both_sets() {
        // 1,2,3 → 3,4,5: disjoint-leaning change.
        let mut g = group3();
        g.append(1, b"seed".to_vec()).unwrap();
        g.pump();
        for m in [4u32, 5] {
            g.add_learner(m);
            g.replicate_to(m).unwrap();
        }
        g.begin_reconfig(1, set(&[3, 4, 5])).unwrap();
        // Partition the old majority away: 2 and 3 unreachable.
        g.block_link(1, 2);
        g.block_link(1, 3);
        let before = g.committed();
        g.append(1, b"joint-blocked".to_vec()).unwrap();
        for _ in 0..4 {
            g.pump();
        }
        // New set {3,4,5} has a quorum (4,5 reachable) but old set
        // {1,2,3} only has the leader: no commit may advance.
        assert_eq!(g.committed(), before, "old-set quorum still required");
        assert!(g.reconfig_in_flight());
        // Heal; the change completes.
        g.clear_blocked_links();
        settle(&mut g);
        assert_eq!(g.voters(), &set(&[3, 4, 5]));
    }

    #[test]
    fn joint_election_requires_quorums_in_both_sets() {
        let mut g = group3();
        g.append(1, b"seed".to_vec()).unwrap();
        g.pump();
        for m in [4u32, 5] {
            g.add_learner(m);
        }
        g.begin_reconfig(1, set(&[3, 4, 5])).unwrap();
        // Replicate the joint entry everywhere WITHOUT advancing the
        // commit index, so the joint phase is still open at the crash.
        for m in [2u32, 3, 4, 5] {
            g.replicate_to(m).unwrap();
        }
        // Leader crashes mid-joint.
        g.set_down(1, true);
        g.step_down(1);
        // 4 can reach a quorum of the NEW set {3,4,5} (itself + 5) but
        // none of the old set {1,2,3}: 1 is down, 2 and 3 partitioned
        // away. A new-set quorum alone must not elect.
        g.block_link(4, 2);
        g.block_link(4, 3);
        assert!(g.elect(4).is_err(), "needs the old-set quorum too");
        // Heal: now 2 and 3 grant their votes and both quorums hold.
        g.clear_blocked_links();
        g.elect(4).unwrap();
        assert!(g.reconfig_in_flight(), "new leader adopts the change");
        settle(&mut g);
        assert_eq!(g.voters(), &set(&[3, 4, 5]));
        assert_eq!(g.log(4).unwrap().committed_data_len(), 1);
    }

    #[test]
    fn overlapping_reconfigurations_rejected() {
        let mut g = group3();
        g.append(1, b"x".to_vec()).unwrap();
        g.add_learner(4);
        g.add_learner(5);
        g.begin_reconfig(1, set(&[1, 2, 4])).unwrap();
        let second = g.begin_reconfig(1, set(&[1, 2, 5]));
        assert!(matches!(second, Err(SmError::Conflict(_))));
        // Re-requesting the in-flight change is also rejected (it is
        // not yet committed), but the no-op form — requesting the
        // *current* committed set with nothing in flight — is Ok.
        settle(&mut g);
        g.begin_reconfig(1, set(&[1, 2, 4])).unwrap();
        assert!(!g.reconfig_in_flight());
    }

    #[test]
    fn leader_removed_from_new_config_keeps_leading_until_commit_then_hands_off() {
        let mut g = group3();
        for i in 0..3u8 {
            g.append(1, vec![i]).unwrap();
        }
        g.pump();
        // The leader reconfigures itself out: 1,2,3 → 2,3.
        g.begin_reconfig(1, set(&[2, 3])).unwrap();
        assert!(!g.voters().contains(&1), "config effective on append");
        // It keeps leading as a pure proposer until the change commits.
        settle(&mut g);
        assert_eq!(g.leader(), Some(1), "proposer-only leader still in charge");
        g.append(1, b"still-serving".to_vec()).unwrap();
        g.pump();
        assert_eq!(g.log(2).unwrap().committed_data_len(), 4);
        // Commit counting excluded the leader: quorum came from {2,3}.
        // The handoff: elect a member of the new set, then remove 1.
        g.elect(2).unwrap();
        g.remove_member(1).unwrap();
        assert_eq!(g.members(), 2);
        g.append(2, b"after".to_vec()).unwrap();
        g.pump();
        assert_eq!(g.log(3).unwrap().committed_data_len(), 5);
    }

    #[test]
    fn add_then_remove_same_node_round_trips() {
        let mut g = group3();
        g.append(1, b"x".to_vec()).unwrap();
        g.pump();
        g.add_learner(4);
        g.replicate_to(4).unwrap();
        g.begin_reconfig(1, set(&[1, 2, 3, 4])).unwrap();
        settle(&mut g);
        assert!(g.is_voter(4));
        g.begin_reconfig(1, set(&[1, 2, 3])).unwrap();
        settle(&mut g);
        assert!(!g.is_voter(4));
        g.remove_member(4).unwrap();
        assert_eq!(g.members(), 3);
        assert_eq!(g.log(1).unwrap().committed_data_len(), 1);
    }

    #[test]
    fn learner_crash_during_catch_up_stalls_nothing() {
        let mut g = group3();
        for i in 0..4u8 {
            g.append(1, vec![i]).unwrap();
        }
        g.pump();
        g.add_learner(4);
        g.replicate_to(4).unwrap();
        // The learner crashes mid-catch-up; commits keep flowing.
        g.set_down(4, true);
        g.append(1, b"while-down".to_vec()).unwrap();
        g.pump();
        assert_eq!(g.log(1).unwrap().committed_data_len(), 5);
        // Reconfiguring it in while it is down is allowed (it is hosted)
        // but cannot finish until it recovers if its ack is needed —
        // here {1,2,3,4} still has quorum 3 without it, so the change
        // commits; the learner-turned-voter catches up on recovery.
        g.begin_reconfig(1, set(&[1, 2, 3, 4])).unwrap();
        settle(&mut g);
        g.set_down(4, false);
        g.pump();
        assert_eq!(g.log(4).unwrap().committed_data_len(), 5);
        assert!(g.is_caught_up(4));
    }

    #[test]
    fn reelection_mid_joint_adopts_and_completes_the_change() {
        let mut g = group3();
        g.append(1, b"x".to_vec()).unwrap();
        g.pump();
        g.add_learner(4);
        g.replicate_to(4).unwrap();
        g.begin_reconfig(1, set(&[2, 3, 4])).unwrap();
        g.pump(); // joint replicated everywhere
                  // Leader crashes before the stable entry commits.
        g.set_down(1, true);
        g.step_down(1);
        g.elect(2).unwrap();
        assert!(g.reconfig_in_flight(), "new leader adopts the change");
        settle(&mut g);
        assert_eq!(g.voters(), &set(&[2, 3, 4]));
        assert_eq!(g.log(2).unwrap().committed_data_len(), 1);
    }

    #[test]
    fn uncommitted_joint_rolls_back_on_election_without_it() {
        let mut g = group3();
        g.append(1, b"committed".to_vec()).unwrap();
        g.pump();
        g.add_learner(4);
        g.replicate_to(4).unwrap();
        // The joint entry reaches nobody: links to 2 and 3 are blocked.
        g.block_link(1, 2);
        g.block_link(1, 3);
        g.block_link(1, 4);
        g.begin_reconfig(1, set(&[1, 2, 4])).unwrap();
        assert!(g.reconfig_in_flight());
        // Leader crashes; heal the others.
        g.set_down(1, true);
        g.step_down(1);
        g.clear_blocked_links();
        g.elect(2).unwrap();
        // 2 never saw the joint entry: the change rolled back.
        assert!(!g.reconfig_in_flight());
        assert_eq!(
            g.voters(),
            &set(&[1, 2, 3]),
            "uncommitted config rolled back"
        );
        assert_eq!(g.log(2).unwrap().committed_data_len(), 1);
    }

    #[test]
    fn single_step_mutation_loses_an_acked_write() {
        // The documented unsafety the joint phase exists to prevent —
        // and the scenario the DST oracle must catch when the mutation
        // switch is on. 1,2,3 swaps straight to 3,4,5.
        let mut g = group3();
        for m in [4u32, 5] {
            g.add_learner(m);
        }
        // The write commits with acks from {1,2} — a quorum of the OLD
        // set — while 3, 4, 5 are partitioned away from the leader.
        g.append(1, b"acked".to_vec()).unwrap();
        g.block_link(1, 3);
        g.block_link(1, 4);
        g.block_link(1, 5);
        g.pump();
        assert_eq!(g.log(1).unwrap().committed_data_len(), 1, "write was acked");
        // Single-step swap straight to {3,4,5}: no joint phase.
        g.set_single_step(true);
        g.begin_reconfig(1, set(&[3, 4, 5])).unwrap();
        // The old leader crashes; the new set elects 3, which never saw
        // the write — yet gathers a quorum of {3,4,5} effortlessly.
        g.set_down(1, true);
        g.step_down(1);
        g.clear_blocked_links();
        g.elect(3).unwrap();
        g.append(3, b"overwrite".to_vec()).unwrap();
        g.pump();
        // The acked write is gone: with the joint phase this election
        // would have been impossible (no quorum of {1,2,3} supports 3),
        // and even replica 2's committed copy gets truncated over.
        assert_eq!(g.data_at(3, 0), Some(&b"overwrite"[..]));
        assert_ne!(g.data_at(2, 0), Some(&b"acked"[..]), "committed write lost");
    }

    // ---- Match-index hint (perf) ----

    #[test]
    fn catch_up_ships_each_entry_once() {
        let mut g = group3();
        const N: usize = 10_000;
        for i in 0..N {
            g.append(1, vec![(i % 251) as u8]).unwrap();
            g.replicate_to(2).unwrap();
            g.replicate_to(3).unwrap();
        }
        g.advance_commit();
        assert_eq!(g.committed(), N);
        // Every round ships exactly the one new entry per follower: the
        // total is 2N, not the quadratic ~N² of a full-log clone.
        assert_eq!(g.replication_work(), 2 * N as u64);
        // A fresh learner catches up in one O(N) shipment.
        g.add_learner(4);
        g.replicate_to(4).unwrap();
        assert_eq!(g.replication_work(), 3 * N as u64);
        // Steady-state rounds with nothing new ship nothing.
        g.replicate_to(2).unwrap();
        g.replicate_to(4).unwrap();
        assert_eq!(g.replication_work(), 3 * N as u64);
    }

    // ---- Seeded interleaving sweep ----

    /// Acked (committed) writes survive 1000 random interleavings of
    /// appends, replication, reconfigurations, crashes, restarts, and
    /// elections.
    #[test]
    fn acked_never_lost_across_random_reconfigure_crash_elect_interleavings() {
        let mut rng = SimRng::seeded(0x4EC0_4F16);
        for case in 0..1000u32 {
            let mut g: ReplicationGroup<u32> = ReplicationGroup::new([0u32, 1, 2]);
            g.elect(0).unwrap();
            let mut next_byte = 0u8;
            // (log index, payload) of every write whose commit was
            // observed — the client saw an ack.
            let mut acked: Vec<(usize, u8)> = Vec::new();
            let mut pending: Vec<(usize, u8)> = Vec::new();
            let observe_commits = |g: &ReplicationGroup<u32>,
                                   pending: &mut Vec<(usize, u8)>,
                                   acked: &mut Vec<(usize, u8)>| {
                if let Some(leader) = g.leader() {
                    let committed = g.log(leader).map(|l| l.committed()).unwrap_or(0);
                    let mut i = 0;
                    while i < pending.len() {
                        if pending[i].0 < committed {
                            acked.push(pending.swap_remove(i));
                        } else {
                            i += 1;
                        }
                    }
                }
            };
            for _step in 0..40 {
                match rng.index(10) {
                    0..=3 => {
                        if let Some(leader) = g.leader() {
                            next_byte = next_byte.wrapping_add(1);
                            if let Ok(idx) = g.append(leader, vec![next_byte]) {
                                pending.push((idx, next_byte));
                            }
                            g.pump();
                            observe_commits(&g, &mut pending, &mut acked);
                        }
                    }
                    4 | 5 => {
                        g.pump();
                        observe_commits(&g, &mut pending, &mut acked);
                    }
                    6 => {
                        // Reconfigure: swap one voter for a fresh node,
                        // or re-admit a removed one.
                        if let Some(leader) = g.leader() {
                            if !g.reconfig_in_flight() {
                                let voters = g.voters().clone();
                                let candidates: Vec<u32> =
                                    (0..8u32).filter(|m| !voters.contains(m)).collect();
                                let incoming = candidates[rng.index(candidates.len())];
                                let outgoing = *voters.iter().nth(rng.index(voters.len())).unwrap();
                                if outgoing != leader {
                                    g.add_learner(incoming);
                                    let mut target = voters.clone();
                                    target.remove(&outgoing);
                                    target.insert(incoming);
                                    let _busy = g.begin_reconfig(leader, target);
                                }
                            }
                        }
                    }
                    7 => {
                        // Crash a random hosted replica (at most one
                        // down at a time so progress stays possible).
                        let hosted: Vec<u32> =
                            g.follower_ids().into_iter().chain(g.leader()).collect();
                        let victim = hosted[rng.index(hosted.len())];
                        if !g.is_down(victim) && (0..8u32).filter(|&m| g.is_down(m)).count() < 1 {
                            g.set_down(victim, true);
                            g.step_down(victim);
                        }
                    }
                    8 => {
                        for m in 0..8u32 {
                            if g.is_down(m) {
                                g.set_down(m, false);
                                break;
                            }
                        }
                    }
                    _ => {
                        let hosted: Vec<u32> =
                            g.follower_ids().into_iter().chain(g.leader()).collect();
                        let candidate = hosted[rng.index(hosted.len())];
                        let _outcome = g.elect(candidate);
                    }
                }
                // The invariant: every acked write is still present,
                // byte for byte, at its log position in the current
                // leader's log.
                if let Some(leader) = g.leader() {
                    for &(idx, byte) in &acked {
                        assert_eq!(
                            g.data_at(leader, idx),
                            Some(&[byte][..]),
                            "case {case}: acked write at {idx} lost or rewritten"
                        );
                    }
                }
            }
            // Quiesce: revive everyone, elect if needed, settle.
            for m in 0..8u32 {
                g.set_down(m, false);
            }
            if g.leader().is_none() {
                let succ = g.safe_successors();
                if let Some(&id) = succ.first() {
                    g.elect(id).unwrap();
                }
            }
            for _ in 0..6 {
                g.pump();
            }
            if let Some(leader) = g.leader() {
                for &(idx, byte) in &acked {
                    assert_eq!(
                        g.data_at(leader, idx),
                        Some(&[byte][..]),
                        "case {case}: acked write at {idx} lost after quiescence"
                    );
                }
            }
        }
    }
}
