//! The integrated simulation world.
//!
//! Wires every substrate into one deterministic discrete-event world:
//! regional cluster managers (`sm-cluster`), ZooKeeper failure detection
//! (`sm-zk`), the orchestrator and TaskController (`sm-core`), service
//! discovery and client routers (`sm-routing`), application servers
//! (this crate), and geo latencies (`sm-sim`). The paper's experiment
//! figures (17–20) and the runnable examples are all thin drivers over
//! this world: configure, inject events (rolling upgrades, region
//! failures, preference changes), run, and read the trace.

use crate::forwarding::AppResponse;
use crate::kv::{ExternalStore, KvServer};
use crate::queue::QueueServer;
use sm_cluster::{ClusterManager, Machine, MaintenanceImpact, OpId, OpKind};
use sm_core::ha::{ensure_base, paths, ZkLease};
use sm_core::{
    AvailabilityView, OrchCommand, Orchestrator, OrchestratorConfig, ServerRpc, ShardServer,
    TaskController,
};
use sm_routing::{DiscoveryService, ServiceRouter, SubscriberId};
use sm_sim::{Ctx, LatencyModel, SimDuration, SimTime, TraceLog, World};
use sm_types::{
    AppId, AppKey, AppPolicy, ContainerId, LoadVector, Location, MachineId, Metric, RegionId,
    ServerId, ShardId, ShardMap, ShardingSpec, SmError,
};
use sm_zk::{CreateMode, SessionId, WatchEvent, WatchKind, ZkStore};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Which application logic the servers run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AppKind {
    /// Laser-like key-value store.
    Kv,
    /// In-order queue service.
    Queue,
}

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// RNG seed.
    pub seed: u64,
    /// `(region, servers in that region)`.
    pub regions: Vec<(RegionId, u32)>,
    /// Shard count (uniform u64 key ranges).
    pub shards: u64,
    /// Application policy.
    pub policy: AppPolicy,
    /// Application logic.
    pub app: AppKind,
    /// Use the §4.3 graceful protocol for primary moves.
    pub graceful_migration: bool,
    /// Use the TaskController; when false, pending container ops are
    /// executed blindly up to `no_tc_concurrency`.
    pub use_taskcontroller: bool,
    /// Concurrency of blind execution when the TaskController is off.
    pub no_tc_concurrency: usize,
    /// Region-pair latencies.
    pub latency: LatencyModel,
    /// Client request rate, per client, per second.
    pub request_rate: f64,
    /// Clients per region.
    pub clients_per_region: u32,
    /// Retries before a request counts as failed.
    pub retries: u32,
    /// Pause before a retry.
    pub retry_delay: SimDuration,
    /// Container restart downtime.
    pub restart_duration: SimDuration,
    /// ZooKeeper session timeout (failure-detection latency).
    pub failure_detection: SimDuration,
    /// TaskControl negotiation interval.
    pub tc_review_interval: SimDuration,
    /// Load-report pull interval.
    pub load_report_interval: SimDuration,
    /// Periodic allocator interval.
    pub periodic_alloc_interval: SimDuration,
    /// Discovery-tree per-hop delay.
    pub map_hop_delay: SimDuration,
    /// Debounce window for coalescing shard-map publications.
    pub map_debounce: SimDuration,
    /// Time a server needs to (re)build a shard's state from the
    /// external store when it was not warmed beforehand. Graceful
    /// migration's `prepare_add_shard` warms the destination (§4.3), so
    /// only abrupt moves and failovers pay this.
    pub shard_load_time: SimDuration,
    /// Shard-count capacity per server (for the balance band).
    pub shard_capacity: f64,
    /// Route reads to the nearest replica (geo experiments) instead of
    /// the primary.
    pub route_nearest: bool,
    /// Diurnal modulation of the client request rate: amplitude in
    /// `[0, 1]` over a 24 h period (0 disables).
    pub diurnal_amplitude: f64,
    /// Restrict client keys to this contiguous shard range (e.g. the
    /// east-coast shards of §8.3). `None` = whole key space.
    pub target_shards: Option<std::ops::Range<u64>>,
    /// Place clients only in these regions; `None` = all regions.
    pub client_regions: Option<Vec<RegionId>>,
    /// Delay before clients start issuing requests, letting the
    /// bootstrap placement finish.
    pub client_start: SimDuration,
}

impl ExperimentConfig {
    /// A single-region primary-only KV deployment — the Figure 17 shape.
    pub fn single_region(servers: u32, shards: u64) -> Self {
        Self {
            seed: 42,
            regions: vec![(RegionId(0), servers)],
            shards,
            policy: AppPolicy::primary_only(),
            app: AppKind::Kv,
            graceful_migration: true,
            use_taskcontroller: true,
            no_tc_concurrency: (servers as usize / 10).max(1),
            latency: LatencyModel::uniform(1, 1.0, 1.0),
            request_rate: 20.0,
            clients_per_region: 10,
            retries: 5,
            retry_delay: SimDuration::from_millis(150),
            restart_duration: SimDuration::from_secs(30),
            failure_detection: SimDuration::from_secs(20),
            tc_review_interval: SimDuration::from_secs(5),
            load_report_interval: SimDuration::from_secs(10),
            periodic_alloc_interval: SimDuration::from_secs(60),
            map_hop_delay: SimDuration::from_millis(100),
            map_debounce: SimDuration::from_millis(200),
            shard_load_time: SimDuration::from_secs(10),
            shard_capacity: 0.0,
            route_nearest: false,
            diurnal_amplitude: 0.0,
            target_shards: None,
            client_regions: None,
            client_start: SimDuration::from_secs(30),
        }
    }

    /// The three-region geo deployment of §8.3.
    pub fn three_region_geo(servers_per_region: u32, shards: u64) -> Self {
        let mut cfg = Self::single_region(servers_per_region, shards);
        cfg.regions = vec![
            (RegionId(0), servers_per_region),
            (RegionId(1), servers_per_region),
            (RegionId(2), servers_per_region),
        ];
        cfg.latency = LatencyModel::frc_prn_odn();
        cfg.route_nearest = true;
        cfg
    }
}

/// Outcome counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorldStats {
    /// Requests answered successfully.
    pub ok: u64,
    /// Requests that exhausted retries.
    pub failed: u64,
    /// Forward hops taken (graceful migrations at work).
    pub forwarded: u64,
    /// Requests bounced off a server that no longer owns the shard.
    pub not_mine: u64,
    /// Retry attempts.
    pub retries: u64,
    /// Failures whose final attempt died at routing (no map / no entry).
    pub failed_route: u64,
    /// Failures whose final attempt hit a non-serving server.
    pub failed_refused: u64,
    /// Failures whose final attempt exceeded the forward-hop limit.
    pub failed_hops: u64,
}

impl WorldStats {
    /// Success fraction over everything completed so far.
    pub fn success_rate(&self) -> f64 {
        let total = self.ok + self.failed;
        if total == 0 {
            1.0
        } else {
            self.ok as f64 / total as f64
        }
    }
}

/// An in-flight client request.
#[derive(Clone, Debug)]
pub struct Request {
    client: usize,
    key: AppKey,
    shard: ShardId,
    target: ServerId,
    forwarded_from: Option<ServerId>,
    sent_at: SimTime,
    attempts: u32,
    hops: u32,
}

/// World events.
#[derive(Clone, Debug)]
pub enum WorldEvent {
    /// A client issues its next request.
    ClientTick(usize),
    /// Retry a failed request.
    Retry {
        /// Issuing client index.
        client: usize,
        /// The key being retried.
        key: AppKey,
        /// Attempts so far.
        attempts: u32,
        /// Original send time (latency is end-to-end).
        sent_at: SimTime,
    },
    /// A request arrives at a server.
    Deliver(Request),
    /// A response (ok or not) arrives back at the client.
    Respond {
        /// The request being answered.
        req: Request,
        /// Whether it was served.
        ok: bool,
    },
    /// An orchestrator RPC arrives at a server.
    OrchDeliver {
        /// Destination server.
        server: ServerId,
        /// The call.
        rpc: ServerRpc,
    },
    /// The server's ack arrives back at the orchestrator.
    OrchAck {
        /// Acking server.
        server: ServerId,
        /// The call being acknowledged.
        rpc: ServerRpc,
        /// Whether the server applied it.
        ok: bool,
    },
    /// A shard-map update reaches a subscriber.
    MapDeliver {
        /// Destination subscriber.
        subscriber: SubscriberId,
        /// The shared map snapshot.
        map: Rc<ShardMap>,
    },
    /// Publish the orchestrator's current map (debounced).
    MapFlush,
    /// Initial placement of all shards at t=0.
    Bootstrap,
    /// TaskControl negotiation round.
    TcReview,
    /// An approved container operation finished.
    OpDone {
        /// The cluster manager's region.
        region: RegionId,
        /// The completed operation.
        op: OpId,
    },
    /// ZooKeeper session-expiry check for a down server.
    SessionCheck {
        /// The server whose session is checked.
        server: ServerId,
        /// When it went down (stale checks are ignored).
        down_since: SimTime,
    },
    /// A ZooKeeper watch notification reaches its watcher. Failure
    /// detection is watch-driven: session expiry deletes the server's
    /// ephemeral, and the control plane reacts to the delivered
    /// `Deleted` event rather than being told directly.
    ZkNotify(WatchEvent),
    /// Servers report load.
    LoadReport,
    /// Periodic allocation runs.
    PeriodicAlloc,
    /// Start a rolling upgrade in one region.
    StartUpgrade {
        /// Target region.
        region: RegionId,
        /// New binary version.
        version: u32,
    },
    /// Restart the first `count` containers of a region (a small-scale
    /// canary wave, §8.2).
    CanaryRestart {
        /// Target region.
        region: RegionId,
        /// Containers to restart.
        count: usize,
    },
    /// A whole region fails (§8.3).
    RegionFail(RegionId),
    /// The failed region recovers.
    RegionRecover(RegionId),
    /// Crash one server (unplanned).
    ServerCrash(ServerId),
    /// Update a shard's regional placement preference (Figure 20).
    SetPreference {
        /// The shard.
        shard: ShardId,
        /// Newly preferred region.
        region: RegionId,
        /// Preference weight.
        weight: f64,
    },
    /// Advance notice of non-negotiable maintenance (§4.2): demote
    /// primaries off the affected servers ahead of time.
    MaintenancePrepare {
        /// Servers in the blast radius.
        servers: Vec<ServerId>,
    },
    /// The maintenance window opens: affected servers stop serving.
    MaintenanceStart {
        /// Region of the affected servers.
        region: RegionId,
        /// Servers going down.
        servers: Vec<ServerId>,
        /// What the event costs the machines.
        impact: MaintenanceImpact,
    },
    /// The maintenance window closes: servers resume (except after full
    /// machine loss).
    MaintenanceEnd {
        /// Region of the affected servers.
        region: RegionId,
        /// Servers coming back.
        servers: Vec<ServerId>,
        /// The event's impact class.
        impact: MaintenanceImpact,
    },
    /// The active control-plane replica dies; a standby takes over by
    /// restoring the ZooKeeper-persisted state (§6.2).
    ControlPlaneFailover,
    /// Record a trace sample of current success rate and move counts.
    Sample,
}

enum AppLogic {
    Kv(KvServer),
    Queue(QueueServer),
}

impl AppLogic {
    fn as_shard_server(&mut self) -> &mut dyn ShardServer {
        match self {
            AppLogic::Kv(s) => s,
            AppLogic::Queue(s) => s,
        }
    }
    /// Admission for this app's request class: under a policy with a
    /// primary, requests are primary-type (only the primary serves);
    /// under a secondary-only policy every replica serves reads.
    fn admit(&self, shard: ShardId, forwarded: bool, primary_type: bool) -> AppResponse {
        match (self, primary_type) {
            (AppLogic::Kv(s), true) => s.admit(shard, forwarded),
            (AppLogic::Kv(s), false) => s.admit_secondary(shard, forwarded),
            (AppLogic::Queue(s), true) => s.admit(shard, forwarded),
            (AppLogic::Queue(s), false) => s.admit_secondary(shard, forwarded),
        }
    }
    fn serve(&mut self, shard: ShardId, key: &AppKey) {
        match self {
            AppLogic::Kv(s) => {
                let _response = s.get(shard, key);
            }
            AppLogic::Queue(s) => {
                let _response = s.enqueue(shard, key.0.clone());
            }
        }
    }
    fn restart(&mut self) {
        match self {
            AppLogic::Kv(s) => s.restart(),
            AppLogic::Queue(s) => *s = QueueServer::new(),
        }
    }
    /// Whether the shard's state is already materialized here (warmed by
    /// a prior `prepare_add_shard` or still cached).
    fn is_warm(&self, shard: ShardId) -> bool {
        match self {
            AppLogic::Kv(s) => s.is_warm(shard),
            AppLogic::Queue(s) => s.is_warm(shard),
        }
    }
}

struct Host {
    logic: AppLogic,
    region: RegionId,
    location: Location,
    capacity: LoadVector,
    serving: bool,
    down_since: Option<SimTime>,
    zk_session: SessionId,
}

struct Client {
    router: ServiceRouter,
    region: RegionId,
    subscriber: SubscriberId,
}

/// The simulation world. Implements [`World`] for `sm-sim`.
pub struct SimWorld {
    /// Configuration (read-only after construction).
    pub cfg: ExperimentConfig,
    app: AppId,
    spec: Rc<ShardingSpec>,
    external: Rc<RefCell<ExternalStore>>,
    cms: BTreeMap<RegionId, ClusterManager>,
    tc: TaskController,
    orch: Orchestrator,
    orch_cfg: OrchestratorConfig,
    discovery: DiscoveryService,
    zk: ZkStore,
    /// Fenced writer for the control plane's durable state znode; its
    /// session also holds the server liveness watches.
    state_lease: ZkLease,
    /// Fenced `/sm/state` writes refused (stale control plane).
    pub fenced_writes: u64,
    servers: BTreeMap<ServerId, Host>,
    clients: Vec<Client>,
    /// Subscriber -> index into `clients`, so each map delivery is a
    /// lookup instead of a scan over every client.
    client_by_subscriber: BTreeMap<SubscriberId, usize>,
    /// Outcome counters.
    pub stats: WorldStats,
    /// Recorded series: `success_rate`, `latency_ms`, `moves`,
    /// `err_rate`.
    pub trace: TraceLog,
    /// Success/total in the current sampling window.
    window_ok: u64,
    window_total: u64,
    map_flush_scheduled: bool,
    moves_at_last_sample: u64,
    orch_region: RegionId,
    /// Stop issuing client ticks after this time (None = forever).
    pub client_deadline: Option<SimTime>,
    /// Sampling interval for the `Sample` event.
    pub sample_interval: SimDuration,
}

impl SimWorld {
    /// Builds the world and performs the synchronous setup: machines,
    /// containers, servers, bootstrap placement, and initial map
    /// publication all happen at t=0 when the first events run.
    pub fn new(cfg: ExperimentConfig) -> Self {
        let app = AppId(0);
        let spec = Rc::new(ShardingSpec::uniform_u64(cfg.shards));
        let external = Rc::new(RefCell::new(ExternalStore::new()));
        let mut zk = ZkStore::new();
        let state_lease = ZkLease::new(&mut zk);
        // Base-znode creation fires no watches yet (nobody is watching).
        ensure_base(&mut zk, state_lease.session).expect("zk base znodes");

        // Orchestrator configuration.
        let mut alloc = sm_allocator_config(&cfg);
        alloc.search.seed = cfg.seed;
        let orch_cfg = OrchestratorConfig {
            graceful_migration: cfg.graceful_migration,
            // Generous caps: a server loads many shards in parallel
            // (cold-load time is per shard, not serialized), so the
            // stability cap sits well above the bootstrap fan-out.
            move_caps: sm_allocator::MoveCaps {
                max_total: 4096,
                max_per_server: 256,
                max_per_shard: 1,
            },
            alloc,
            skip_cutover_ack: false,
        };
        let mut orch = Orchestrator::new(app, cfg.policy.clone(), orch_cfg.clone());
        orch.register_shards((0..cfg.shards).map(ShardId));

        let mut cms = BTreeMap::new();
        let mut servers = BTreeMap::new();
        let mut next_server = 0u32;
        let mut next_rack = 0u32;
        // Default shard-count capacity: 4x the fair share, so the
        // capacity hard constraint exists but only the balance band
        // normally binds.
        let total_servers: u32 = cfg.regions.iter().map(|(_, n)| *n).sum();
        let replicas = cfg.policy.replication.replicas_per_shard() as f64;
        let fair_share = cfg.shards as f64 * replicas / f64::from(total_servers.max(1));
        let cap_value = if cfg.shard_capacity > 0.0 {
            cfg.shard_capacity
        } else {
            (fair_share * 4.0).max(4.0)
        };
        for &(region, count) in &cfg.regions {
            let mut cm = ClusterManager::new(region, cfg.restart_duration);
            for _ in 0..count {
                let id = next_server;
                next_server += 1;
                let location = Location {
                    region,
                    datacenter: u32::from(region.raw()),
                    rack: {
                        // Two servers per rack.
                        if id.is_multiple_of(2) {
                            next_rack += 1;
                        }
                        next_rack
                    },
                    machine: MachineId(id),
                };
                let capacity = LoadVector::single(Metric::ShardCount.id(), cap_value);
                cm.add_machine(Machine::new(location, capacity, false));
                cm.deploy(ContainerId(id), app, MachineId(id), 1)
                    .expect("deploy");
                orch.register_server(ServerId(id), location, capacity);

                let session = zk.connect();
                zk.create(
                    session,
                    &paths::server_node(ServerId(id)),
                    Vec::new(),
                    CreateMode::Ephemeral,
                )
                .expect("ephemeral");
                // Liveness is watch-driven: the control plane holds an
                // exists watch on every server's ephemeral node.
                zk.watch_exists(state_lease.session, &paths::server_node(ServerId(id)));
                let logic = match cfg.app {
                    AppKind::Kv => {
                        AppLogic::Kv(KvServer::new(ServerId(id), spec.clone(), external.clone()))
                    }
                    AppKind::Queue => AppLogic::Queue(QueueServer::new()),
                };
                servers.insert(
                    ServerId(id),
                    Host {
                        logic,
                        region,
                        location,
                        capacity,
                        serving: true,
                        down_since: None,
                        zk_session: session,
                    },
                );
            }
            cms.insert(region, cm);
        }

        let mut discovery = DiscoveryService::new(4, cfg.map_hop_delay);
        let mut clients = Vec::new();
        for &(region, _) in &cfg.regions {
            if let Some(only) = &cfg.client_regions {
                if !only.contains(&region) {
                    continue;
                }
            }
            for _ in 0..cfg.clients_per_region {
                let subscriber = discovery.subscribe();
                let mut router = ServiceRouter::new();
                router.register_app(app, (*spec).clone());
                for (&sid, host) in &servers {
                    router.set_server_region(sid, host.region);
                }
                clients.push(Client {
                    router,
                    region,
                    subscriber,
                });
            }
        }
        let client_by_subscriber = clients
            .iter()
            .enumerate()
            .map(|(i, c)| (c.subscriber, i))
            .collect();

        let tc = TaskController::new(cfg.policy.clone());
        let orch_region = cfg.regions[0].0;
        Self {
            cfg,
            app,
            spec,
            external,
            cms,
            tc,
            orch,
            orch_cfg,
            discovery,
            zk,
            state_lease,
            fenced_writes: 0,
            servers,
            clients,
            client_by_subscriber,
            stats: WorldStats::default(),
            trace: TraceLog::new(),
            window_ok: 0,
            window_total: 0,
            map_flush_scheduled: false,
            moves_at_last_sample: 0,
            orch_region,
            client_deadline: None,
            sample_interval: SimDuration::from_secs(10),
        }
    }

    /// The application's sharding spec.
    pub fn spec(&self) -> &ShardingSpec {
        &self.spec
    }

    /// The cluster manager of `region` (inspection).
    pub fn cluster_manager(&self, region: RegionId) -> Option<&ClusterManager> {
        self.cms.get(&region)
    }

    /// The TaskController (inspection).
    pub fn taskcontroller(&self) -> &TaskController {
        &self.tc
    }

    /// Servers currently serving.
    pub fn serving_count(&self) -> usize {
        self.servers.values().filter(|h| h.serving).count()
    }

    /// The region a server lives in.
    pub fn server_region(&self, server: ServerId) -> Option<RegionId> {
        self.servers.get(&server).map(|h| h.region)
    }

    /// The orchestrator (for assertions in tests/examples).
    pub fn orchestrator(&self) -> &Orchestrator {
        &self.orch
    }

    /// The external store shared by KV servers.
    pub fn external(&self) -> Rc<RefCell<ExternalStore>> {
        self.external.clone()
    }

    /// Builds a primed simulation: bootstrap placement at t=0, recurring
    /// control loops, and client ticks scheduled.
    pub fn primed(cfg: ExperimentConfig) -> sm_sim::Simulation<SimWorld> {
        let world = SimWorld::new(cfg);
        let n_clients = world.clients.len();
        let cfg2 = world.cfg.clone();
        let mut sim = sm_sim::Simulation::new(world, cfg2.seed);
        sim.schedule_at(SimTime::ZERO, WorldEvent::Bootstrap);
        sim.schedule_at(SimTime::ZERO, WorldEvent::TcReview);
        sim.schedule_in(cfg2.load_report_interval, WorldEvent::LoadReport);
        sim.schedule_in(cfg2.periodic_alloc_interval, WorldEvent::PeriodicAlloc);
        sim.schedule_in(SimDuration::from_secs(1), WorldEvent::Sample);
        for c in 0..n_clients {
            // Stagger client starts over one second after the warm-up.
            let offset = SimDuration::from_millis(((c as u64) * 997) % 1000);
            sim.schedule_at(
                SimTime::ZERO + cfg2.client_start + offset,
                WorldEvent::ClientTick(c),
            );
        }
        sim
    }

    fn flush_orch(&mut self, ctx: &mut Ctx<'_, WorldEvent>) {
        let cmds = self.orch.take_commands();
        for c in cmds {
            match c {
                OrchCommand::Rpc { server, rpc } => {
                    let delay = self.rpc_latency(server, ctx);
                    ctx.schedule_in(delay, WorldEvent::OrchDeliver { server, rpc });
                }
                OrchCommand::MapChanged { .. } => {
                    // Debounce: bursts of assignment changes coalesce
                    // into one publication per window.
                    if !self.map_flush_scheduled {
                        self.map_flush_scheduled = true;
                        ctx.schedule_in(self.cfg.map_debounce, WorldEvent::MapFlush);
                    }
                }
            }
        }
    }

    fn publish_current_map(&mut self, ctx: &mut Ctx<'_, WorldEvent>) {
        let map = Rc::new(self.orch.current_map());
        if let Ok(deliveries) = self.discovery.publish(self.app, map.clone(), ctx.rng()) {
            for (subscriber, delay) in deliveries {
                ctx.schedule_in(
                    delay,
                    WorldEvent::MapDeliver {
                        subscriber,
                        map: map.clone(),
                    },
                );
            }
        }
    }

    fn rpc_latency(&mut self, server: ServerId, ctx: &mut Ctx<'_, WorldEvent>) -> SimDuration {
        let to = self
            .servers
            .get(&server)
            .map(|h| h.region)
            .unwrap_or(self.orch_region);
        let from = self.orch_region;
        self.cfg.latency.sample(from, to, ctx.rng())
    }

    fn region_of_client(&self, client: usize) -> RegionId {
        self.clients[client].region
    }

    fn client_server_latency(
        &mut self,
        client_region: RegionId,
        server: ServerId,
        ctx: &mut Ctx<'_, WorldEvent>,
    ) -> SimDuration {
        let server_region = self
            .servers
            .get(&server)
            .map(|h| h.region)
            .unwrap_or(client_region);
        self.cfg
            .latency
            .sample(client_region, server_region, ctx.rng())
    }

    fn server_serving(&self, server: ServerId) -> bool {
        self.servers
            .get(&server)
            .map(|h| h.serving)
            .unwrap_or(false)
    }

    /// Marks a server down and schedules ZooKeeper session expiry.
    fn take_server_down(&mut self, server: ServerId, now: SimTime, ctx: &mut Ctx<'_, WorldEvent>) {
        if let Some(host) = self.servers.get_mut(&server) {
            if host.serving {
                host.serving = false;
                host.down_since = Some(now);
                host.logic.restart();
                ctx.schedule_in(
                    self.cfg.failure_detection,
                    WorldEvent::SessionCheck {
                        server,
                        down_since: now,
                    },
                );
            }
        }
    }

    /// Schedules delivery of ZooKeeper watch notifications. The fixed
    /// small delay models the client-notification hop and keeps failure
    /// detection asynchronous, as in real ZooKeeper.
    fn dispatch_zk_events(&mut self, events: Vec<WatchEvent>, ctx: &mut Ctx<'_, WorldEvent>) {
        for event in events {
            ctx.schedule_in(SimDuration::from_millis(10), WorldEvent::ZkNotify(event));
        }
    }

    /// Reacts to a delivered watch notification. Only events addressed
    /// to the current control-plane session count — a failed-over
    /// predecessor's stragglers are ignored. Watches are one-shot and
    /// advisory: re-arm first, then re-check actual state before
    /// acting, so a server that already re-registered is not marked
    /// down by stale news.
    fn handle_zk_event(&mut self, event: &WatchEvent, ctx: &mut Ctx<'_, WorldEvent>) {
        if event.watcher != self.state_lease.session {
            return;
        }
        let Some(server) = paths::parse_server(&event.path) else {
            return;
        };
        self.zk.watch_exists(self.state_lease.session, &event.path);
        if event.kind == WatchKind::Deleted && !self.zk.exists(&event.path) {
            // A dead server's drain can never finish; discard it.
            self.tc.server_lost(server);
            self.orch.server_down(server);
            self.flush_orch(ctx);
        }
        // Created events need no orchestrator action here: the
        // cluster-manager recovery path reconciles the server when the
        // container comes back.
    }

    fn bring_server_up(
        &mut self,
        server: ServerId,
        detected_down: bool,
        ctx: &mut Ctx<'_, WorldEvent>,
    ) {
        let Some(host) = self.servers.get_mut(&server) else {
            return;
        };
        host.serving = true;
        host.down_since = None;
        let mut events = Vec::new();
        if !self.zk.session_alive(host.zk_session) {
            let session = self.zk.connect();
            host.zk_session = session;
            if let Ok((_, ev)) = self.zk.create(
                session,
                &paths::server_node(server),
                Vec::new(),
                CreateMode::Ephemeral,
            ) {
                events = ev;
            }
        }
        self.dispatch_zk_events(events, ctx);
        if detected_down {
            self.orch.server_up(server);
            self.orch.run_emergency();
        } else {
            // Restarted before detection: the orchestrator still thinks
            // the shards are here — reconcile re-adds them.
            self.orch.reconcile_server(server);
        }
        self.flush_orch(ctx);
    }

    fn route(&mut self, client: usize, key: &AppKey) -> Result<(ShardId, ServerId), SmError> {
        let region = self.clients[client].region;
        if self.cfg.route_nearest {
            let c = &self.clients[client];
            c.router
                .route_nearest(self.app, key, region, &self.cfg.latency)
                .map(|d| (d.shard, d.server))
        } else {
            self.clients[client]
                .router
                .route(self.app, key)
                .map(|d| (d.shard, d.server))
        }
    }

    fn try_send(
        &mut self,
        client: usize,
        key: AppKey,
        attempts: u32,
        sent_at: SimTime,
        ctx: &mut Ctx<'_, WorldEvent>,
    ) {
        match self.route(client, &key) {
            Ok((shard, server)) => {
                let region = self.region_of_client(client);
                let delay = self.client_server_latency(region, server, ctx);
                ctx.schedule_in(
                    delay,
                    WorldEvent::Deliver(Request {
                        client,
                        key,
                        shard,
                        target: server,
                        forwarded_from: None,
                        sent_at,
                        attempts,
                        hops: 0,
                    }),
                );
            }
            Err(_) => {
                self.stats.failed_route += u64::from(attempts >= self.cfg.retries);
                self.fail_or_retry(client, key, attempts, sent_at, ctx)
            }
        }
    }

    fn fail_or_retry(
        &mut self,
        client: usize,
        key: AppKey,
        attempts: u32,
        sent_at: SimTime,
        ctx: &mut Ctx<'_, WorldEvent>,
    ) {
        if attempts < self.cfg.retries {
            self.stats.retries += 1;
            ctx.schedule_in(
                self.cfg.retry_delay,
                WorldEvent::Retry {
                    client,
                    key,
                    attempts: attempts + 1,
                    sent_at,
                },
            );
        } else {
            self.stats.failed += 1;
            self.window_total += 1;
            self.trace.record("success", ctx.now(), 0.0);
        }
    }

    fn complete_ok(&mut self, req: &Request, ctx: &mut Ctx<'_, WorldEvent>) {
        self.stats.ok += 1;
        self.window_ok += 1;
        self.window_total += 1;
        let latency = ctx.now().since(req.sent_at);
        self.trace.record("success", ctx.now(), 1.0);
        self.trace
            .record("latency_ms", ctx.now(), latency.as_millis_f64());
    }

    /// Builds the TaskController's availability view from the current
    /// orchestrator assignment and server liveness.
    fn availability_view(&self) -> AvailabilityView {
        let mut view = AvailabilityView::default();
        for (&sid, host) in &self.servers {
            let container = ContainerId(sid.raw());
            let shards = self.orch.shards_on(sid);
            if !host.serving {
                view.containers_down += 1;
                for (shard, _) in &shards {
                    *view.failed_replicas.entry(*shard).or_insert(0) += 1;
                }
            }
            view.shards_on.insert(container, shards);
        }
        view
    }

    fn tc_review(&mut self, now: SimTime, ctx: &mut Ctx<'_, WorldEvent>) {
        // Release any drains that have completed; re-issue drains that
        // stalled (e.g. their moves were superseded by a periodic plan).
        for server in self.tc.pending_drains() {
            if self.orch.is_drained(server) {
                self.tc.drain_complete(server);
            } else {
                self.orch.drain_server(server);
                self.flush_orch(ctx);
            }
        }
        let regions: Vec<RegionId> = self.cms.keys().copied().collect();
        for region in regions {
            let ops = self.cms.get(&region).expect("region exists").pending_ops();
            if ops.is_empty() {
                continue;
            }
            let (approved, drains) = if self.cfg.use_taskcontroller {
                let view = self.availability_view();
                let review = self.tc.review(region, &ops, &view);
                (review.approved, review.drains_needed)
            } else {
                // Blind execution: take ops up to the concurrency limit.
                let executing = self.cms[&region].executing_count();
                let budget = self.cfg.no_tc_concurrency.saturating_sub(executing);
                (ops.iter().take(budget).map(|o| o.id).collect(), Vec::new())
            };
            for server in drains {
                self.orch.drain_server(server);
                self.flush_orch(ctx);
            }
            for op_id in approved {
                let cm = self.cms.get_mut(&region).expect("region exists");
                if let Ok(started) = cm.begin_op(op_id, now) {
                    // The container is down for the restart window.
                    if let OpKind::Restart | OpKind::Move { .. } | OpKind::Stop = started.op.kind {
                        self.take_server_down(ServerId(started.op.container.raw()), now, ctx);
                    }
                    if let Some(resume) = started.resume_at {
                        ctx.schedule_at(resume, WorldEvent::OpDone { region, op: op_id });
                    }
                }
            }
        }
        ctx.schedule_in(self.cfg.tc_review_interval, WorldEvent::TcReview);
    }
}

fn sm_allocator_config(cfg: &ExperimentConfig) -> sm_allocator::AllocConfig {
    let mut alloc = sm_allocator::AllocConfig::new(vec![Metric::ShardCount.id()]);
    alloc.region_preferences = cfg.policy.region_preferences.clone();
    alloc
}

impl World for SimWorld {
    type Event = WorldEvent;

    fn handle(&mut self, ctx: &mut Ctx<'_, WorldEvent>, event: WorldEvent) {
        let now = ctx.now();
        match event {
            WorldEvent::ClientTick(client) => {
                if self.client_deadline.map(|d| now >= d).unwrap_or(false) {
                    return;
                }
                let key = match &self.cfg.target_shards {
                    Some(range) => {
                        // Pick a shard in the range, then a key inside
                        // its slice of the uniform key space.
                        let shard = ctx.rng().range_u64(range.start, range.end);
                        let step = u64::MAX / self.cfg.shards;
                        AppKey::from_u64(shard * step + ctx.rng().range_u64(0, step))
                    }
                    None => AppKey::from_u64(ctx.rng().range_u64(0, u64::MAX)),
                };
                self.try_send(client, key, 0, now, ctx);
                let mut rate = self.cfg.request_rate.max(1e-9);
                if self.cfg.diurnal_amplitude > 0.0 {
                    let x = now.as_secs_f64() / 86_400.0;
                    rate *=
                        1.0 + self.cfg.diurnal_amplitude * (2.0 * std::f64::consts::PI * x).sin();
                    rate = rate.max(self.cfg.request_rate * 0.05);
                }
                let gap = ctx.rng().exponential(1.0 / rate);
                ctx.schedule_in(
                    SimDuration::from_millis_f64(gap * 1000.0),
                    WorldEvent::ClientTick(client),
                );
            }
            WorldEvent::Retry {
                client,
                key,
                attempts,
                sent_at,
            } => self.try_send(client, key, attempts, sent_at, ctx),
            WorldEvent::Deliver(mut req) => {
                if req.hops > 4 {
                    let key = req.key.clone();
                    self.stats.failed_hops += u64::from(req.attempts >= self.cfg.retries);
                    self.fail_or_retry(req.client, key, req.attempts, req.sent_at, ctx);
                    return;
                }
                if !self.server_serving(req.target) {
                    // Connection refused: the client learns after the RTT.
                    let region = self.region_of_client(req.client);
                    let delay = self.client_server_latency(region, req.target, ctx);
                    ctx.schedule_in(delay, WorldEvent::Respond { req, ok: false });
                    return;
                }
                let host = self.servers.get_mut(&req.target).expect("serving server");
                let primary_type = self.cfg.policy.replication.has_primary();
                match host
                    .logic
                    .admit(req.shard, req.forwarded_from.is_some(), primary_type)
                {
                    AppResponse::Serve => {
                        host.logic.serve(req.shard, &req.key);
                        let region = self.region_of_client(req.client);
                        let delay = self.client_server_latency(region, req.target, ctx);
                        ctx.schedule_in(delay, WorldEvent::Respond { req, ok: true });
                    }
                    AppResponse::Forward(next) => {
                        self.stats.forwarded += 1;
                        let from_region = self.servers[&req.target].region;
                        let to_region = self
                            .servers
                            .get(&next)
                            .map(|h| h.region)
                            .unwrap_or(from_region);
                        let delay = self.cfg.latency.sample(from_region, to_region, ctx.rng());
                        req.forwarded_from = Some(req.target);
                        req.target = next;
                        req.hops += 1;
                        ctx.schedule_in(delay, WorldEvent::Deliver(req));
                    }
                    AppResponse::NotMine => {
                        self.stats.not_mine += 1;
                        let region = self.region_of_client(req.client);
                        let delay = self.client_server_latency(region, req.target, ctx);
                        ctx.schedule_in(delay, WorldEvent::Respond { req, ok: false });
                    }
                }
            }
            WorldEvent::Respond { req, ok } => {
                if ok {
                    self.complete_ok(&req, ctx);
                } else {
                    let key = req.key.clone();
                    self.stats.failed_refused += u64::from(req.attempts >= self.cfg.retries);
                    self.fail_or_retry(req.client, key, req.attempts, req.sent_at, ctx);
                }
            }
            WorldEvent::OrchDeliver { server, rpc } => {
                if !self.server_serving(server) {
                    let delay = self.rpc_latency(server, ctx);
                    ctx.schedule_in(
                        delay,
                        WorldEvent::OrchAck {
                            server,
                            rpc,
                            ok: false,
                        },
                    );
                    return;
                }
                let host = self.servers.get_mut(&server).expect("serving");
                // A cold add must rebuild the shard's state from the
                // external store before acknowledging; a destination
                // warmed by prepare_add_shard acknowledges immediately.
                let cold =
                    matches!(rpc, ServerRpc::AddShard { shard, .. } if !host.logic.is_warm(shard));
                let result = rpc.dispatch(host.logic.as_shard_server());
                // Dropping a shard the server no longer has is a
                // success from the control plane's perspective.
                let ok = matches!(
                    (&rpc, &result),
                    (_, Ok(())) | (ServerRpc::DropShard { .. }, Err(SmError::NotFound(_)))
                );
                let mut delay = self.rpc_latency(server, ctx);
                if cold && ok {
                    delay = delay + self.cfg.shard_load_time;
                }
                ctx.schedule_in(delay, WorldEvent::OrchAck { server, rpc, ok });
            }
            WorldEvent::OrchAck { server, rpc, ok } => {
                if ok {
                    self.orch.rpc_acked(server, rpc);
                } else {
                    self.orch.rpc_failed(server, rpc);
                }
                self.flush_orch(ctx);
            }
            WorldEvent::MapDeliver { subscriber, map } => {
                if let Some(&idx) = self.client_by_subscriber.get(&subscriber) {
                    if let Some(client) = self.clients.get_mut(idx) {
                        client.router.install_map(self.app, map);
                    }
                }
            }
            WorldEvent::MapFlush => {
                self.map_flush_scheduled = false;
                // Persist the orchestrator's durable state to ZooKeeper
                // (§3.2), fenced by the znode version (§6.2): a control
                // plane that lost its session or was superseded gets an
                // error and degrades instead of clobbering the new
                // incumbent's state.
                let snap = self.orch.snapshot();
                match self.state_lease.write(&mut self.zk, "/sm/state", snap) {
                    Ok(events) => self.dispatch_zk_events(events, ctx),
                    Err(_) => self.fenced_writes += 1,
                }
                if std::env::var("SM_DEBUG_MAP").is_ok() {
                    let map = self.orch.current_map();
                    if (map.entries.len() as u64) < self.cfg.shards {
                        eprintln!(
                            "{}: map v{} has {} entries (missing {})",
                            now,
                            map.version,
                            map.entries.len(),
                            self.cfg.shards - map.entries.len() as u64
                        );
                    }
                }
                self.publish_current_map(ctx);
            }
            WorldEvent::Bootstrap => {
                self.orch.run_emergency();
                self.flush_orch(ctx);
            }
            WorldEvent::TcReview => self.tc_review(now, ctx),
            WorldEvent::OpDone { region, op } => {
                let cm = self.cms.get_mut(&region).expect("region exists");
                if let Ok(ev) = cm.complete_op(op) {
                    if let sm_cluster::CmEvent::ContainerUp { container } = ev {
                        let server = ServerId(container.raw());
                        let detected = !self.orch.server_alive(server);
                        self.orch.drain_finished(server);
                        self.tc.op_finished(region, op);
                        self.bring_server_up(server, detected, ctx);
                    } else {
                        self.tc.op_finished(region, op);
                    }
                }
            }
            WorldEvent::SessionCheck { server, down_since } => {
                let still_down = self
                    .servers
                    .get(&server)
                    .map(|h| !h.serving && h.down_since == Some(down_since))
                    .unwrap_or(false);
                if still_down {
                    // Expire the session; the ephemeral's deletion
                    // notifies the control plane's watch, and the
                    // delivered event — not this code — marks the
                    // server down.
                    let session = self.servers[&server].zk_session;
                    let events = self.zk.expire_session(session);
                    self.dispatch_zk_events(events, ctx);
                }
            }
            WorldEvent::ZkNotify(event) => self.handle_zk_event(&event, ctx),
            WorldEvent::LoadReport => {
                let reports: Vec<(ServerId, Vec<(ShardId, LoadVector)>)> = self
                    .servers
                    .iter()
                    .filter(|(_, h)| h.serving)
                    .map(|(&sid, h)| {
                        let loads = match &h.logic {
                            AppLogic::Kv(s) => s.report_load(),
                            AppLogic::Queue(s) => s.report_load(),
                        };
                        (sid, loads)
                    })
                    .collect();
                for (sid, loads) in reports {
                    self.orch.report_load(sid, loads);
                }
                ctx.schedule_in(self.cfg.load_report_interval, WorldEvent::LoadReport);
            }
            WorldEvent::PeriodicAlloc => {
                self.orch.run_periodic();
                self.flush_orch(ctx);
                ctx.schedule_in(self.cfg.periodic_alloc_interval, WorldEvent::PeriodicAlloc);
            }
            WorldEvent::StartUpgrade { region, version } => {
                if let Some(cm) = self.cms.get_mut(&region) {
                    cm.start_rolling_upgrade(self.app, version);
                }
            }
            WorldEvent::CanaryRestart { region, count } => {
                let targets: Vec<ContainerId> = self
                    .servers
                    .iter()
                    .filter(|(_, h)| h.region == region)
                    .take(count)
                    .map(|(&s, _)| ContainerId(s.raw()))
                    .collect();
                if let Some(cm) = self.cms.get_mut(&region) {
                    for c in targets {
                        let _outcome =
                            cm.request_op(c, OpKind::Restart, sm_cluster::OpReason::Upgrade);
                    }
                }
            }
            WorldEvent::RegionFail(region) => {
                let affected: Vec<ServerId> = self
                    .servers
                    .iter()
                    .filter(|(_, h)| h.region == region)
                    .map(|(&s, _)| s)
                    .collect();
                if let Some(cm) = self.cms.get_mut(&region) {
                    cm.fail_all_machines();
                }
                for s in affected {
                    self.take_server_down(s, now, ctx);
                }
            }
            WorldEvent::RegionRecover(region) => {
                let affected: Vec<ServerId> = self
                    .servers
                    .iter()
                    .filter(|(_, h)| h.region == region)
                    .map(|(&s, _)| s)
                    .collect();
                if let Some(cm) = self.cms.get_mut(&region) {
                    cm.recover_all_machines();
                }
                for s in affected {
                    self.bring_server_up(s, true, ctx);
                }
                // Rebalance soon to move preferred shards home.
                ctx.schedule_in(SimDuration::from_secs(5), WorldEvent::PeriodicAlloc);
            }
            WorldEvent::ServerCrash(server) => {
                let region = self.servers.get(&server).map(|h| h.region);
                if let Some(region) = region {
                    if let Some(cm) = self.cms.get_mut(&region) {
                        let _outcome = cm.crash_container(ContainerId(server.raw()));
                    }
                }
                self.take_server_down(server, now, ctx);
            }
            WorldEvent::SetPreference {
                shard,
                region,
                weight,
            } => {
                self.orch.set_region_preference(shard, region, weight);
            }
            WorldEvent::MaintenancePrepare { servers } => {
                self.orch.prepare_for_maintenance(&servers);
                self.flush_orch(ctx);
            }
            WorldEvent::MaintenanceStart {
                region,
                servers,
                impact,
            } => {
                let machines: Vec<MachineId> = servers.iter().map(|s| MachineId(s.raw())).collect();
                if let Some(cm) = self.cms.get_mut(&region) {
                    cm.begin_maintenance(&machines, impact);
                }
                for s in servers {
                    self.take_server_down(s, now, ctx);
                }
            }
            WorldEvent::MaintenanceEnd {
                region,
                servers,
                impact,
            } => {
                let machines: Vec<MachineId> = servers.iter().map(|s| MachineId(s.raw())).collect();
                if let Some(cm) = self.cms.get_mut(&region) {
                    cm.end_maintenance(&machines, impact);
                }
                if impact != MaintenanceImpact::FullMachineLoss {
                    for s in servers {
                        let detected = !self.orch.server_alive(s);
                        self.bring_server_up(s, detected, ctx);
                    }
                }
            }
            WorldEvent::ControlPlaneFailover => {
                // The incumbent dies: expire its session (dropping its
                // watches — an expired control plane hears nothing) and
                // start the standby on a fresh lease. The standby's
                // first fenced write adopts the znode's current
                // version, which permanently fences the incumbent.
                let events = self.zk.expire_session(self.state_lease.session);
                self.dispatch_zk_events(events, ctx);
                self.state_lease = ZkLease::new(&mut self.zk);
                let watch_session = self.state_lease.session;
                for &sid in self.servers.keys() {
                    self.zk
                        .watch_exists(watch_session, &paths::server_node(sid));
                }
                let mut standby =
                    Orchestrator::new(self.app, self.cfg.policy.clone(), self.orch_cfg.clone());
                for (&sid, host) in &self.servers {
                    standby.register_server(sid, host.location, host.capacity);
                }
                let restored = match self.zk.get("/sm/state") {
                    Ok((snap, _)) => standby.restore(&snap).is_ok(),
                    Err(_) => false,
                };
                if !restored {
                    // Nothing (or garbage) persisted: rebuild the shard
                    // list from configuration and re-place from scratch
                    // rather than dying on a corrupt snapshot.
                    standby.register_shards((0..self.cfg.shards).map(ShardId));
                }
                // Reconcile reality: servers that died while (or before)
                // the takeover are processed like fresh failures.
                let dead: Vec<ServerId> = self
                    .servers
                    .iter()
                    .filter(|(_, h)| !h.serving)
                    .map(|(&s, _)| s)
                    .collect();
                for s in dead {
                    standby.server_down(s);
                }
                self.orch = standby;
                // A fresh emergency run places anything the old
                // incumbent still had in flight.
                self.orch.run_emergency();
                self.flush_orch(ctx);
            }
            WorldEvent::Sample => {
                let rate = if self.window_total == 0 {
                    1.0
                } else {
                    self.window_ok as f64 / self.window_total as f64
                };
                self.trace.record("success_rate", now, rate);
                self.trace.record("err_rate", now, 1.0 - rate);
                // A control-plane failover resets the counter, so the
                // delta saturates rather than underflows.
                let moves = self.orch.stats().completed_moves;
                self.trace.record(
                    "moves",
                    now,
                    moves.saturating_sub(self.moves_at_last_sample) as f64,
                );
                self.moves_at_last_sample = moves;
                self.window_ok = 0;
                self.window_total = 0;
                ctx.schedule_in(self.sample_interval, WorldEvent::Sample);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(cfg: &mut ExperimentConfig) {
        cfg.request_rate = 5.0;
        cfg.clients_per_region = 4;
    }

    #[test]
    fn bootstrap_serves_requests() {
        let mut cfg = ExperimentConfig::single_region(6, 50);
        quiet(&mut cfg);
        let mut sim = SimWorld::primed(cfg);
        sim.run_until(SimTime::from_secs(60));
        let w = sim.world();
        assert!(w.stats.ok > 100, "requests flowing: {:?}", w.stats);
        assert!(
            w.stats.success_rate() > 0.95,
            "steady state is healthy: {:?}",
            w.stats
        );
        assert_eq!(w.orchestrator().assignment().shard_count(), 50);
    }

    #[test]
    fn rolling_upgrade_with_full_sm_keeps_availability() {
        let mut cfg = ExperimentConfig::single_region(10, 100);
        quiet(&mut cfg);
        let mut sim = SimWorld::primed(cfg);
        sim.run_until(SimTime::from_secs(30));
        let before = sim.world().stats;
        sim.schedule_at(
            SimTime::from_secs(31),
            WorldEvent::StartUpgrade {
                region: RegionId(0),
                version: 2,
            },
        );
        sim.run_until(SimTime::from_secs(600));
        let w = sim.world();
        let after_ok = w.stats.ok - before.ok;
        let after_failed = w.stats.failed - before.failed;
        let rate = after_ok as f64 / (after_ok + after_failed).max(1) as f64;
        assert!(rate > 0.995, "graceful upgrade success rate {rate}");
        // Upgrade actually converged.
        let cm = &w.cms[&RegionId(0)];
        assert!(cm.upgrade_finished(AppId(0)), "upgrade done");
        assert!(w.stats.forwarded > 0, "graceful forwarding exercised");
    }

    #[test]
    fn upgrade_without_taskcontroller_drops_requests() {
        let mut cfg = ExperimentConfig::single_region(10, 100);
        quiet(&mut cfg);
        cfg.use_taskcontroller = false;
        cfg.graceful_migration = false;
        let mut sim = SimWorld::primed(cfg);
        sim.run_until(SimTime::from_secs(30));
        let before = sim.world().stats;
        sim.schedule_at(
            SimTime::from_secs(31),
            WorldEvent::StartUpgrade {
                region: RegionId(0),
                version: 2,
            },
        );
        sim.run_until(SimTime::from_secs(600));
        let w = sim.world();
        let after_ok = w.stats.ok - before.ok;
        let after_failed = w.stats.failed - before.failed;
        let rate = after_ok as f64 / (after_ok + after_failed).max(1) as f64;
        assert!(
            rate < 0.99,
            "blind upgrade must visibly hurt availability, got {rate}"
        );
    }

    #[test]
    fn server_crash_triggers_failover() {
        let mut cfg = ExperimentConfig::single_region(6, 30);
        quiet(&mut cfg);
        cfg.failure_detection = SimDuration::from_secs(5);
        let mut sim = SimWorld::primed(cfg);
        sim.run_until(SimTime::from_secs(20));
        sim.schedule_at(SimTime::from_secs(21), WorldEvent::ServerCrash(ServerId(0)));
        sim.run_until(SimTime::from_secs(120));
        let w = sim.world();
        // All shards placed, none on the dead server.
        assert_eq!(w.orchestrator().assignment().shard_count(), 30);
        assert!(w.orchestrator().shards_on(ServerId(0)).is_empty());
    }

    #[test]
    fn geo_world_routes_locally() {
        let mut cfg = ExperimentConfig::three_region_geo(4, 30);
        cfg.policy = AppPolicy::secondary_only(2);
        quiet(&mut cfg);
        let mut sim = SimWorld::primed(cfg);
        sim.run_until(SimTime::from_secs(120));
        let w = sim.world();
        assert!(w.stats.ok > 0);
        // Latencies should mostly be local (~2 ms RTT), far below the
        // 70+ ms cross-region RTT.
        let lat = w.trace.series("latency_ms").expect("latency recorded");
        let median = sm_sim::percentile(
            &lat.points().iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            50.0,
        )
        .unwrap();
        assert!(median < 20.0, "median latency {median} ms too high");
    }
}
