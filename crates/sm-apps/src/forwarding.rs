//! Server-side shard hosting with the §4.3 forwarding states.
//!
//! [`ShardHost`] is the bookkeeping every SM application server needs:
//! which shards it holds in which role, plus the three migration states
//! of the graceful primary handover —
//!
//! - **prepare-add** (new primary, step 1): requests are accepted only
//!   when forwarded from the current owner;
//! - **prepare-drop** (old primary, step 2): every request is forwarded
//!   to the new owner;
//! - **tombstone** (old primary, step 5): after `drop_shard` the server
//!   keeps forwarding stragglers to the new owner, so no request that
//!   reached it under a stale routing table is ever dropped.

use sm_types::{ReplicaRole, ServerId, ShardId, SmError};
use std::collections::BTreeMap;

/// What to do with a request that reached this server.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AppResponse {
    /// Serve it here.
    Serve,
    /// Forward to the server now responsible (graceful migration).
    Forward(ServerId),
    /// Reject: this server does not (or no longer) host the shard and
    /// has nowhere to forward — the client saw a stale map.
    NotMine,
}

/// Shard-hosting state for one application server.
#[derive(Clone, Debug, Default)]
pub struct ShardHost {
    shards: BTreeMap<ShardId, ReplicaRole>,
    /// Step-1 state: shard -> current owner we expect forwards from.
    pre_add: BTreeMap<ShardId, ServerId>,
    /// Step-2 state: shard -> new owner we forward to (replica kept).
    forward_to: BTreeMap<ShardId, ServerId>,
    /// Step-5 state: dropped shards that still forward stragglers.
    tombstones: BTreeMap<ShardId, ServerId>,
}

impl ShardHost {
    /// Creates an empty host.
    pub fn new() -> Self {
        Self::default()
    }

    /// The role held for `shard`, if hosted.
    pub fn role_of(&self, shard: ShardId) -> Option<ReplicaRole> {
        self.shards.get(&shard).copied()
    }

    /// Number of hosted shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Hosted shards with roles.
    pub fn shards(&self) -> impl Iterator<Item = (&ShardId, &ReplicaRole)> {
        self.shards.iter()
    }

    /// Implements `add_shard` (also step 3 of graceful migration).
    pub fn add_shard(&mut self, shard: ShardId, role: ReplicaRole) -> Result<(), SmError> {
        self.pre_add.remove(&shard);
        self.tombstones.remove(&shard);
        self.shards.insert(shard, role);
        Ok(())
    }

    /// Implements `drop_shard` (also step 5). If the shard was in the
    /// forwarding state, the forward target is kept as a tombstone.
    ///
    /// Idempotent: dropping a shard this host does not hold is a no-op
    /// success. The orchestrator retries drops whose ack a lossy
    /// network may have eaten (reclaiming suspect copies), so "ensure
    /// not hosting" must converge rather than error on the second
    /// delivery.
    pub fn drop_shard(&mut self, shard: ShardId) -> Result<(), SmError> {
        self.shards.remove(&shard);
        self.pre_add.remove(&shard);
        if let Some(target) = self.forward_to.remove(&shard) {
            self.tombstones.insert(shard, target);
        }
        Ok(())
    }

    /// Implements `change_role`.
    pub fn change_role(
        &mut self,
        shard: ShardId,
        current: ReplicaRole,
        new: ReplicaRole,
    ) -> Result<(), SmError> {
        let role = self
            .shards
            .get_mut(&shard)
            .ok_or_else(|| SmError::not_found(shard))?;
        if *role != current {
            return Err(SmError::conflict(format!(
                "{shard} role is {role}, not {current}"
            )));
        }
        *role = new;
        Ok(())
    }

    /// Implements `prepare_add_shard` (step 1).
    pub fn prepare_add_shard(
        &mut self,
        shard: ShardId,
        current_owner: ServerId,
        _role: ReplicaRole,
    ) -> Result<(), SmError> {
        self.pre_add.insert(shard, current_owner);
        self.tombstones.remove(&shard);
        Ok(())
    }

    /// Implements `prepare_drop_shard` (step 2).
    pub fn prepare_drop_shard(
        &mut self,
        shard: ShardId,
        new_owner: ServerId,
        _role: ReplicaRole,
    ) -> Result<(), SmError> {
        if !self.shards.contains_key(&shard) {
            return Err(SmError::not_found(shard));
        }
        self.forward_to.insert(shard, new_owner);
        Ok(())
    }

    /// Decides what to do with a **primary-type** request for `shard` —
    /// one only the shard's single primary may serve. `forwarded` is
    /// true when the request came from the shard's previous owner rather
    /// than directly from a client.
    pub fn admit(&self, shard: ShardId, forwarded: bool) -> AppResponse {
        self.admit_class(shard, forwarded, true)
    }

    /// Decides what to do with a **secondary-type** request — one any
    /// replica of the shard may serve (reads under a secondary-only
    /// replication policy, §2's read-only applications).
    pub fn admit_secondary(&self, shard: ShardId, forwarded: bool) -> AppResponse {
        self.admit_class(shard, forwarded, false)
    }

    fn admit_class(&self, shard: ShardId, forwarded: bool, needs_primary: bool) -> AppResponse {
        // Step-2/-5 forwarding takes precedence: the handover is in
        // progress or completed and the new owner serves.
        if let Some(&target) = self.forward_to.get(&shard) {
            return AppResponse::Forward(target);
        }
        if let Some(&target) = self.tombstones.get(&shard) {
            return AppResponse::Forward(target);
        }
        if self.pre_add.contains_key(&shard) {
            // Step 1: only the old owner's forwards are accepted.
            return if forwarded {
                AppResponse::Serve
            } else {
                AppResponse::NotMine
            };
        }
        match self.shards.get(&shard) {
            Some(role) if !needs_primary || role.is_primary() => AppResponse::Serve,
            // A secondary replica holds the data but must never admit a
            // primary-type request: after a failover rebuilds
            // replication, the demoted server may be re-added as a
            // secondary of the very shard it used to lead, and a
            // role-blind Serve here is a permanent dual primary (found
            // by the 1000-seed swarm, `lossy_net` seed 809). The
            // client's retry goes back through the router, which points
            // at the real primary.
            Some(_) => AppResponse::NotMine,
            None => AppResponse::NotMine,
        }
    }

    /// Clears everything — a process restart losing soft state.
    pub fn wipe(&mut self) {
        self.shards.clear();
        self.pre_add.clear();
        self.forward_to.clear();
        self.tombstones.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: ShardId = ShardId(1);
    const OLD: ServerId = ServerId(10);
    const NEW: ServerId = ServerId(20);

    #[test]
    fn plain_hosting() {
        let mut h = ShardHost::new();
        assert_eq!(h.admit(S, false), AppResponse::NotMine);
        h.add_shard(S, ReplicaRole::Primary).unwrap();
        assert_eq!(h.admit(S, false), AppResponse::Serve);
        assert_eq!(h.role_of(S), Some(ReplicaRole::Primary));
        h.drop_shard(S).unwrap();
        assert_eq!(h.admit(S, false), AppResponse::NotMine);
        h.drop_shard(S)
            .expect("drop is idempotent: retried drops converge");
        assert_eq!(h.admit(S, false), AppResponse::NotMine);
    }

    #[test]
    fn graceful_handover_never_rejects() {
        // Walk both sides of the §4.3 protocol and check admission at
        // every step.
        let mut old = ShardHost::new();
        let mut new = ShardHost::new();
        old.add_shard(S, ReplicaRole::Primary).unwrap();

        // Step 1: new primary prepared; direct requests rejected there,
        // forwarded ones accepted.
        new.prepare_add_shard(S, OLD, ReplicaRole::Primary).unwrap();
        assert_eq!(new.admit(S, false), AppResponse::NotMine);
        assert_eq!(new.admit(S, true), AppResponse::Serve);
        // Clients still reach the old primary directly.
        assert_eq!(old.admit(S, false), AppResponse::Serve);

        // Step 2: old primary forwards everything.
        old.prepare_drop_shard(S, NEW, ReplicaRole::Primary)
            .unwrap();
        assert_eq!(old.admit(S, false), AppResponse::Forward(NEW));

        // Step 3: new primary officially owns the shard.
        new.add_shard(S, ReplicaRole::Primary).unwrap();
        assert_eq!(new.admit(S, false), AppResponse::Serve);
        assert_eq!(new.admit(S, true), AppResponse::Serve);

        // Step 5: old primary dropped the replica but keeps forwarding
        // stragglers via the tombstone.
        old.drop_shard(S).unwrap();
        assert_eq!(old.admit(S, false), AppResponse::Forward(NEW));
        assert_eq!(old.shard_count(), 0);
    }

    #[test]
    fn secondary_replica_never_admits_primary_requests() {
        // Failover aftermath: the old primary is wiped and re-added as
        // a secondary of its former shard. It holds the data, but a
        // direct request must bounce to the router (and thence the real
        // primary) — a role-blind Serve here is a permanent dual
        // primary (1000-seed swarm, lossy_net seed 809).
        let mut h = ShardHost::new();
        h.add_shard(S, ReplicaRole::Secondary).unwrap();
        assert_eq!(h.admit(S, false), AppResponse::NotMine);
        assert_eq!(h.admit(S, true), AppResponse::NotMine);
        // Promotion makes it servable.
        h.change_role(S, ReplicaRole::Secondary, ReplicaRole::Primary)
            .unwrap();
        assert_eq!(h.admit(S, false), AppResponse::Serve);
    }

    #[test]
    fn abrupt_drop_rejects_stale_requests() {
        let mut h = ShardHost::new();
        h.add_shard(S, ReplicaRole::Primary).unwrap();
        // No prepare_drop first: nothing to forward to.
        h.drop_shard(S).unwrap();
        assert_eq!(h.admit(S, false), AppResponse::NotMine);
    }

    #[test]
    fn change_role_validates() {
        let mut h = ShardHost::new();
        h.add_shard(S, ReplicaRole::Secondary).unwrap();
        assert!(h
            .change_role(S, ReplicaRole::Primary, ReplicaRole::Secondary)
            .is_err());
        h.change_role(S, ReplicaRole::Secondary, ReplicaRole::Primary)
            .unwrap();
        assert_eq!(h.role_of(S), Some(ReplicaRole::Primary));
        assert!(h
            .change_role(ShardId(99), ReplicaRole::Primary, ReplicaRole::Secondary)
            .is_err());
    }

    #[test]
    fn prepare_drop_requires_hosting() {
        let mut h = ShardHost::new();
        assert!(h.prepare_drop_shard(S, NEW, ReplicaRole::Primary).is_err());
    }

    #[test]
    fn readd_clears_tombstone() {
        let mut h = ShardHost::new();
        h.add_shard(S, ReplicaRole::Primary).unwrap();
        h.prepare_drop_shard(S, NEW, ReplicaRole::Primary).unwrap();
        h.drop_shard(S).unwrap();
        assert_eq!(h.admit(S, false), AppResponse::Forward(NEW));
        // The shard migrates back later.
        h.add_shard(S, ReplicaRole::Primary).unwrap();
        assert_eq!(h.admit(S, false), AppResponse::Serve);
    }

    #[test]
    fn wipe_models_process_restart() {
        let mut h = ShardHost::new();
        h.add_shard(S, ReplicaRole::Primary).unwrap();
        h.wipe();
        assert_eq!(h.shard_count(), 0);
        assert_eq!(h.admit(S, false), AppResponse::NotMine);
    }
}
