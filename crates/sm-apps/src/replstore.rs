//! A ZippyDB-like primary-secondary replicated store (§2.5).
//!
//! Each shard is a [`ReplicationGroup`]:
//! the SM-elected primary is the log leader handling writes; secondaries
//! replicate and serve eventually-consistent reads. The store exists to
//! exercise SM's primary-secondary machinery end to end — role changes
//! arriving through `change_role` drive leader elections in the log.
//!
//! Membership follows the log, not the RPC: the 5-step migration (§3.2)
//! maps onto joint-consensus reconfiguration so a replica can move
//! between servers without losing an acked write:
//!
//! - `prepare_add_shard` joins the group as a non-voting **learner**
//!   and starts catch-up (step 1: new owner warms up while the old one
//!   still serves);
//! - `prepare_drop_shard` on the primary runs the **handover**
//!   reconfiguration (old voters − self + new owner) and only succeeds
//!   once the new configuration has committed;
//! - `add_shard` promotes the (caught-up) replica to voter via a joint
//!   change if the handover has not already done so, and for a primary
//!   role elects it — a safe joint election that requires quorums in
//!   every active voter set;
//! - `drop_shard` leaves the group only after a committed
//!   reconfiguration excludes this replica; a voter that cannot get the
//!   change through (no leader reachable) steps down and stays as a
//!   non-serving zombie for the control plane to clean up later, rather
//!   than tearing a hole in the quorum.
//!
//! The group state is shared between the replicas of a shard via
//! `Rc<RefCell<...>>`: in the real system that shared state *is* the
//! network protocol; in this deterministic simulation a shared cell is
//! the faithful single-threaded equivalent.

use crate::forwarding::ShardHost;
use crate::replication::ReplicationGroup;
use crate::AppResponse;
use sm_core::ShardServer;
use sm_types::{LoadVector, Metric, ReplicaRole, ServerId, ShardId, SmError};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Replication rounds a membership-changing RPC may pump before giving
/// up and reporting `Unavailable` (each change needs at most two
/// entries — joint + stable — to commit; under faults the rounds fail
/// fast and the RPC nacks so the orchestrator aborts the migration).
const RECONFIG_PUMP_ROUNDS: usize = 8;

/// The shared replication groups of one deployment, one per shard.
pub type SharedGroups = Rc<RefCell<BTreeMap<ShardId, ReplicationGroup<ServerId>>>>;

/// Creates an empty shared group table.
pub fn shared_groups() -> SharedGroups {
    Rc::new(RefCell::new(BTreeMap::new()))
}

/// One replicated-store application server.
#[derive(Debug)]
pub struct ReplStoreServer {
    /// This server's id.
    pub id: ServerId,
    host: ShardHost,
    groups: SharedGroups,
}

impl ReplStoreServer {
    /// Creates a server over the deployment's shared groups.
    pub fn new(id: ServerId, groups: SharedGroups) -> Self {
        Self {
            id,
            host: ShardHost::new(),
            groups,
        }
    }

    /// Routing decision for a request on `shard`.
    pub fn admit(&self, shard: ShardId, forwarded: bool) -> AppResponse {
        self.host.admit(shard, forwarded)
    }

    /// The role this server believes it holds for `shard` (`None` when
    /// not hosted here).
    pub fn role_of(&self, shard: ShardId) -> Option<ReplicaRole> {
        self.host.role_of(shard)
    }

    /// Writes through the shard's log (primary only): appends,
    /// replicates to every reachable member, and advances the commit
    /// index. Returns the log position of the write.
    pub fn write(&mut self, shard: ShardId, data: Vec<u8>) -> Result<usize, SmError> {
        if self.host.role_of(shard) != Some(ReplicaRole::Primary) {
            return Err(SmError::Rejected(format!("{shard} not primary here")));
        }
        let mut groups = self.groups.borrow_mut();
        let group = groups
            .get_mut(&shard)
            .ok_or_else(|| SmError::not_found(shard))?;
        let idx = group.append(self.id, data)?;
        // Replicate to all followers; in the simulation replication is a
        // synchronous round (latency is charged by the harness).
        group.pump();
        Ok(idx)
    }

    /// True when this write's log position has committed at this
    /// replica — the point at which the client may be acked.
    pub fn is_write_committed(&self, shard: ShardId, idx: usize) -> bool {
        self.groups
            .borrow()
            .get(&shard)
            .and_then(|g| g.log(self.id))
            .is_some_and(|l| l.committed() > idx)
    }

    /// Reads the number of committed application writes at this replica
    /// (an eventually-consistent read; configuration entries are not
    /// counted).
    pub fn committed_len(&self, shard: ShardId) -> usize {
        self.groups
            .borrow()
            .get(&shard)
            .and_then(|g| g.log(self.id).map(|l| l.committed_data_len()))
            .unwrap_or(0)
    }
}

impl ShardServer for ReplStoreServer {
    /// Step 3 of the migration: officially own the replica. A fresh
    /// group bootstraps; joining a live group promotes this replica
    /// (learner or new) to voter through a joint reconfiguration that
    /// must commit before the RPC succeeds. A primary role additionally
    /// runs a safe election.
    fn add_shard(&mut self, shard: ShardId, role: ReplicaRole) -> Result<(), SmError> {
        self.host.add_shard(shard, role)?;
        let outcome = (|| {
            let mut groups = self.groups.borrow_mut();
            let group = groups
                .entry(shard)
                .or_insert_with(|| ReplicationGroup::new([]));
            if !group.is_voter(self.id) {
                let live = group
                    .voters()
                    .iter()
                    .chain(group.joint_old().into_iter().flatten())
                    .any(|&m| group.log(m).is_some_and(|l| !l.is_empty()));
                if !live {
                    group.add_member(self.id)?;
                } else {
                    // Live group: learner catch-up, then the two-phase
                    // voter promotion.
                    group.add_learner(self.id);
                    let _catching_up = group.replicate_to(self.id);
                    group.advance_commit();
                    let leader = group
                        .leader()
                        .ok_or_else(|| SmError::Unavailable(format!("{shard} has no leader")))?;
                    let mut target = group.voters().clone();
                    target.insert(self.id);
                    group.begin_reconfig(leader, target)?;
                    if !group.pump_until_config_commits(RECONFIG_PUMP_ROUNDS) {
                        return Err(SmError::Unavailable(format!(
                            "{shard} reconfiguration could not commit"
                        )));
                    }
                }
            }
            if role.is_primary() {
                // A caught-up voter wins immediately; a stale one needs
                // one replication round first.
                if group.elect(self.id).is_err() {
                    group.pump();
                    group.elect(self.id)?;
                }
            }
            Ok(())
        })();
        if outcome.is_err() {
            // Roll the host registration back so a nacked RPC leaves no
            // half-added replica serving traffic.
            let _rollback = self.host.drop_shard(shard);
        }
        outcome
    }

    /// Step 5 of the migration: leave. A voter leaves the configuration
    /// *before* it leaves the group — via a committed reconfiguration —
    /// so the quorum never silently shrinks. When no leader is
    /// reachable to drive the change, the replica stops serving (the
    /// host drop) but stays in the group as a zombie voter; its log —
    /// durable storage — keeps counting toward quorums until the
    /// control plane re-places it.
    fn drop_shard(&mut self, shard: ShardId) -> Result<(), SmError> {
        self.host.drop_shard(shard)?;
        let mut groups = self.groups.borrow_mut();
        let Some(group) = groups.get_mut(&shard) else {
            return Ok(());
        };
        if !group.is_hosted(self.id) {
            return Ok(());
        }
        if !group.is_voter(self.id) {
            // Learner (or already reconfigured out): safe to remove.
            group.remove_member(self.id)?;
            return Ok(());
        }
        let leader = group.leader();
        let can_drive = match leader {
            Some(l) => l == self.id || !group.is_down(l),
            None => false,
        };
        if can_drive {
            let l = leader.unwrap_or(self.id);
            let mut target = group.voters().clone();
            target.remove(&self.id);
            if !target.is_empty()
                && group.begin_reconfig(l, target).is_ok()
                && group.pump_until_config_commits(RECONFIG_PUMP_ROUNDS)
                && !group.is_voter(self.id)
            {
                group.step_down(self.id);
                group.remove_member(self.id)?;
                return Ok(());
            }
        }
        // Zombie-stay: no safe way out right now. The replica no longer
        // serves (host dropped) but its vote and log remain.
        group.step_down(self.id);
        Ok(())
    }

    /// SM role switch. Promotion to primary is a safe joint election —
    /// it fails (and the RPC nacks) unless this replica's log covers
    /// every committed entry and quorums of every active voter set are
    /// reachable.
    fn change_role(
        &mut self,
        shard: ShardId,
        _current: ReplicaRole,
        new: ReplicaRole,
    ) -> Result<(), SmError> {
        // `current` is the control plane's *belief*, which can lag
        // reality: if this replica's previous ChangeRole was applied
        // but its ack was eaten by the network, the control plane
        // retries from the stale role. Converge to the target role
        // instead of nacking forever on the mismatch — the group's
        // epoch (not host-side bookkeeping) is what makes leadership
        // changes safe.
        let actual = self
            .host
            .role_of(shard)
            .ok_or_else(|| SmError::not_found(shard))?;
        let mut groups = self.groups.borrow_mut();
        let group = groups
            .get_mut(&shard)
            .ok_or_else(|| SmError::not_found(shard))?;
        // Election before the host-side flip, so a nack leaves no
        // half-applied role behind for the retry to trip over.
        if new.is_primary() {
            if group.elect(self.id).is_err() {
                // One catch-up round, then retry; a genuinely stale or
                // partitioned candidate still fails and the RPC nacks.
                group.pump();
                group.elect(self.id)?;
            }
        } else if group.leader() == Some(self.id) {
            group.step_down(self.id);
        }
        if actual != new {
            self.host.change_role(shard, actual, new)?;
        }
        Ok(())
    }

    /// Step 1 of the migration: start catch-up on the new owner while
    /// the old owner keeps serving. Joins as a non-voting learner, so a
    /// slow catch-up never stalls the group's commits.
    fn prepare_add_shard(
        &mut self,
        shard: ShardId,
        current_owner: ServerId,
        role: ReplicaRole,
    ) -> Result<(), SmError> {
        self.host.prepare_add_shard(shard, current_owner, role)?;
        let mut groups = self.groups.borrow_mut();
        if let Some(group) = groups.get_mut(&shard) {
            group.add_learner(self.id);
            let _catching_up = group.replicate_to(self.id);
            group.advance_commit();
        }
        Ok(())
    }

    /// Step 2 of the migration: the old owner hands over. For a primary
    /// move this runs the handover reconfiguration (the old voters
    /// minus self, plus the new owner) and succeeds only once the new
    /// configuration has
    /// committed; the old primary keeps leading as a pure proposer
    /// until `change_role`/`add_shard` elects the new owner.
    fn prepare_drop_shard(
        &mut self,
        shard: ShardId,
        new_owner: ServerId,
        role: ReplicaRole,
    ) -> Result<(), SmError> {
        self.host.prepare_drop_shard(shard, new_owner, role)?;
        if !role.is_primary() {
            return Ok(());
        }
        let mut groups = self.groups.borrow_mut();
        let group = groups
            .get_mut(&shard)
            .ok_or_else(|| SmError::not_found(shard))?;
        if group.leader() != Some(self.id) {
            // Not the log leader (e.g. already handed over): nothing to
            // reconfigure here.
            return Ok(());
        }
        group.add_learner(new_owner);
        let _catching_up = group.replicate_to(new_owner);
        group.advance_commit();
        let mut target = group.voters().clone();
        target.remove(&self.id);
        target.insert(new_owner);
        group.begin_reconfig(self.id, target)?;
        if !group.pump_until_config_commits(RECONFIG_PUMP_ROUNDS) {
            return Err(SmError::Unavailable(format!(
                "{shard} handover reconfiguration could not commit"
            )));
        }
        Ok(())
    }

    fn report_load(&self) -> Vec<(ShardId, LoadVector)> {
        self.host
            .shards()
            .map(|(shard, _)| {
                let storage = self
                    .groups
                    .borrow()
                    .get(shard)
                    .and_then(|g| g.log(self.id).map(|l| l.len() as f64))
                    .unwrap_or(0.0);
                let mut v = LoadVector::zero();
                v.set(Metric::ShardCount.id(), 1.0);
                v.set(Metric::Storage.id(), storage);
                (*shard, v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: ShardId = ShardId(0);

    fn deployment() -> (ReplStoreServer, ReplStoreServer, ReplStoreServer) {
        let groups = shared_groups();
        let mut a = ReplStoreServer::new(ServerId(1), groups.clone());
        let mut b = ReplStoreServer::new(ServerId(2), groups.clone());
        let mut c = ReplStoreServer::new(ServerId(3), groups);
        a.add_shard(S, ReplicaRole::Primary).unwrap();
        b.add_shard(S, ReplicaRole::Secondary).unwrap();
        c.add_shard(S, ReplicaRole::Secondary).unwrap();
        (a, b, c)
    }

    #[test]
    fn writes_replicate_and_commit() {
        let (mut a, b, c) = deployment();
        a.write(S, b"hello".to_vec()).unwrap();
        a.write(S, b"world".to_vec()).unwrap();
        assert_eq!(a.committed_len(S), 2);
        assert_eq!(b.committed_len(S), 2);
        assert_eq!(c.committed_len(S), 2);
    }

    #[test]
    fn secondary_write_rejected() {
        let (_a, mut b, _c) = deployment();
        assert!(matches!(
            b.write(S, b"x".to_vec()),
            Err(SmError::Rejected(_))
        ));
    }

    #[test]
    fn sm_driven_failover_preserves_commits() {
        let (mut a, mut b, _c) = deployment();
        a.write(S, b"durable".to_vec()).unwrap();
        // Primary's server drains; SM promotes b via change_role. The
        // drop commits a reconfiguration to {b, c} first.
        a.drop_shard(S).unwrap();
        b.change_role(S, ReplicaRole::Secondary, ReplicaRole::Primary)
            .unwrap();
        assert_eq!(b.committed_len(S), 1);
        b.write(S, b"after".to_vec()).unwrap();
        assert_eq!(b.committed_len(S), 2);
        // The departed replica really left the configuration.
        let groups = b.groups.borrow();
        assert!(!groups[&S].is_voter(ServerId(1)));
        assert!(!groups[&S].is_hosted(ServerId(1)));
    }

    #[test]
    fn graceful_takeover_catches_up_first() {
        let (mut a, _b, _c) = deployment();
        a.write(S, b"x".to_vec()).unwrap();
        let groups = a.groups.clone();
        let mut d = ReplStoreServer::new(ServerId(4), groups);
        // Step 1 of migration joins the group as a learner and catches
        // up — without touching the voter set.
        d.prepare_add_shard(S, ServerId(1), ReplicaRole::Primary)
            .unwrap();
        assert_eq!(d.committed_len(S), 1);
        {
            let groups = d.groups.borrow();
            assert!(!groups[&S].is_voter(ServerId(4)));
        }
        // Step 3: official takeover promotes to voter and elects it.
        d.add_shard(S, ReplicaRole::Primary).unwrap();
        assert!(d.write(S, b"y".to_vec()).is_ok());
        assert_eq!(d.committed_len(S), 2);
    }

    #[test]
    fn five_step_primary_move_loses_no_acked_write() {
        let (mut a, b, c) = deployment();
        for i in 0..5u8 {
            a.write(S, vec![i]).unwrap();
        }
        let mut d = ReplStoreServer::new(ServerId(4), a.groups.clone());
        // Step 1: new owner starts catch-up (learner).
        d.prepare_add_shard(S, ServerId(1), ReplicaRole::Primary)
            .unwrap();
        // Step 2: old owner hands over — commits voters {2,3,4}.
        a.prepare_drop_shard(S, ServerId(4), ReplicaRole::Primary)
            .unwrap();
        {
            let groups = a.groups.borrow();
            assert!(!groups[&S].is_voter(ServerId(1)));
            assert!(groups[&S].is_voter(ServerId(4)));
        }
        // Step 3: new owner takes over (safe election).
        d.add_shard(S, ReplicaRole::Primary).unwrap();
        // Step 4 happens at the routing layer; step 5: old owner leaves.
        a.drop_shard(S).unwrap();
        assert_eq!(d.committed_len(S), 5);
        assert_eq!(b.committed_len(S), 5);
        assert_eq!(c.committed_len(S), 5);
        d.write(S, b"after-move".to_vec()).unwrap();
        assert_eq!(d.committed_len(S), 6);
        let groups = d.groups.borrow();
        assert!(!groups[&S].is_hosted(ServerId(1)));
    }

    #[test]
    fn secondary_move_runs_two_reconfigs() {
        let (mut a, _b, mut c) = deployment();
        a.write(S, b"x".to_vec()).unwrap();
        let mut d = ReplStoreServer::new(ServerId(4), a.groups.clone());
        // Secondary moves use add-then-drop with no prepare phase.
        d.add_shard(S, ReplicaRole::Secondary).unwrap();
        {
            let groups = d.groups.borrow();
            assert!(groups[&S].is_voter(ServerId(4)));
            assert_eq!(groups[&S].voters().len(), 4);
        }
        c.drop_shard(S).unwrap();
        let groups = d.groups.borrow();
        assert!(!groups[&S].is_hosted(ServerId(3)));
        assert_eq!(groups[&S].voters().len(), 3);
        assert_eq!(groups[&S].log(ServerId(4)).unwrap().committed_data_len(), 1);
    }

    #[test]
    fn drop_without_reachable_leader_stays_zombie() {
        let (mut a, mut b, _c) = deployment();
        a.write(S, b"x".to_vec()).unwrap();
        // The leader's node crashes (network-level, not via SM).
        {
            let mut groups = b.groups.borrow_mut();
            let g = groups.get_mut(&S).unwrap();
            g.set_down(ServerId(1), true);
            g.step_down(ServerId(1));
        }
        // b is told to drop while the group is leaderless: it cannot
        // commit a reconfiguration, so it stops serving but stays a
        // voter — the quorum does not silently shrink.
        b.drop_shard(S).unwrap();
        let groups = b.groups.borrow();
        assert!(groups[&S].is_voter(ServerId(2)), "zombie keeps its vote");
        assert!(groups[&S].is_hosted(ServerId(2)));
    }

    #[test]
    fn load_report_includes_storage() {
        let (mut a, _b, _c) = deployment();
        a.write(S, b"abc".to_vec()).unwrap();
        let report = a.report_load();
        assert_eq!(report[0].1.get(Metric::Storage.id()), 1.0);
    }
}
