//! A ZippyDB-like primary-secondary replicated store (§2.5).
//!
//! Each shard is a [`ReplicationGroup`]:
//! the SM-elected primary is the log leader handling writes; secondaries
//! replicate and serve eventually-consistent reads. The store exists to
//! exercise SM's primary-secondary machinery end to end — role changes
//! arriving through `change_role` drive leader elections in the log.
//!
//! The group state is shared between the replicas of a shard via
//! `Rc<RefCell<...>>`: in the real system that shared state *is* the
//! network protocol; in this deterministic simulation a shared cell is
//! the faithful single-threaded equivalent.

use crate::forwarding::ShardHost;
use crate::replication::ReplicationGroup;
use crate::AppResponse;
use sm_core::ShardServer;
use sm_types::{LoadVector, Metric, ReplicaRole, ServerId, ShardId, SmError};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// The shared replication groups of one deployment, one per shard.
pub type SharedGroups = Rc<RefCell<BTreeMap<ShardId, ReplicationGroup<ServerId>>>>;

/// Creates an empty shared group table.
pub fn shared_groups() -> SharedGroups {
    Rc::new(RefCell::new(BTreeMap::new()))
}

/// One replicated-store application server.
#[derive(Debug)]
pub struct ReplStoreServer {
    /// This server's id.
    pub id: ServerId,
    host: ShardHost,
    groups: SharedGroups,
}

impl ReplStoreServer {
    /// Creates a server over the deployment's shared groups.
    pub fn new(id: ServerId, groups: SharedGroups) -> Self {
        Self {
            id,
            host: ShardHost::new(),
            groups,
        }
    }

    /// Routing decision for a request on `shard`.
    pub fn admit(&self, shard: ShardId, forwarded: bool) -> AppResponse {
        self.host.admit(shard, forwarded)
    }

    /// Writes through the shard's log (primary only): appends,
    /// replicates to every live member, and advances the commit index.
    pub fn write(&mut self, shard: ShardId, data: Vec<u8>) -> Result<usize, SmError> {
        if self.host.role_of(shard) != Some(ReplicaRole::Primary) {
            return Err(SmError::Rejected(format!("{shard} not primary here")));
        }
        let mut groups = self.groups.borrow_mut();
        let group = groups
            .get_mut(&shard)
            .ok_or_else(|| SmError::not_found(shard))?;
        let idx = group.append(self.id, data)?;
        // Replicate to all followers; in the simulation replication is a
        // synchronous round (latency is charged by the harness).
        for f in group.follower_ids() {
            let _acked = group.replicate_to(f);
        }
        group.advance_commit();
        Ok(idx)
    }

    /// Reads the committed length at this replica (an eventually-
    /// consistent read).
    pub fn committed_len(&self, shard: ShardId) -> usize {
        self.groups
            .borrow()
            .get(&shard)
            .and_then(|g| g.log(self.id).map(|l| l.committed()))
            .unwrap_or(0)
    }
}

impl ShardServer for ReplStoreServer {
    fn add_shard(&mut self, shard: ShardId, role: ReplicaRole) -> Result<(), SmError> {
        self.host.add_shard(shard, role)?;
        let mut groups = self.groups.borrow_mut();
        let group = groups
            .entry(shard)
            .or_insert_with(|| ReplicationGroup::new([]));
        group.add_member(self.id);
        if role.is_primary() {
            group.elect(self.id)?;
        }
        Ok(())
    }

    fn drop_shard(&mut self, shard: ShardId) -> Result<(), SmError> {
        self.host.drop_shard(shard)?;
        if let Some(group) = self.groups.borrow_mut().get_mut(&shard) {
            group.remove_member(self.id);
        }
        Ok(())
    }

    fn change_role(
        &mut self,
        shard: ShardId,
        current: ReplicaRole,
        new: ReplicaRole,
    ) -> Result<(), SmError> {
        self.host.change_role(shard, current, new)?;
        if new.is_primary() {
            self.groups
                .borrow_mut()
                .get_mut(&shard)
                .ok_or_else(|| SmError::not_found(shard))?
                .elect(self.id)?;
        }
        Ok(())
    }

    fn prepare_add_shard(
        &mut self,
        shard: ShardId,
        current_owner: ServerId,
        role: ReplicaRole,
    ) -> Result<(), SmError> {
        self.host.prepare_add_shard(shard, current_owner, role)?;
        // Join the group early so the log is caught up before takeover.
        let mut groups = self.groups.borrow_mut();
        if let Some(group) = groups.get_mut(&shard) {
            group.add_member(self.id);
            let _acked = group.replicate_to(self.id);
            group.advance_commit();
        }
        Ok(())
    }

    fn prepare_drop_shard(
        &mut self,
        shard: ShardId,
        new_owner: ServerId,
        role: ReplicaRole,
    ) -> Result<(), SmError> {
        self.host.prepare_drop_shard(shard, new_owner, role)
    }

    fn report_load(&self) -> Vec<(ShardId, LoadVector)> {
        self.host
            .shards()
            .map(|(shard, _)| {
                let storage = self
                    .groups
                    .borrow()
                    .get(shard)
                    .and_then(|g| g.log(self.id).map(|l| l.len() as f64))
                    .unwrap_or(0.0);
                let mut v = LoadVector::zero();
                v.set(Metric::ShardCount.id(), 1.0);
                v.set(Metric::Storage.id(), storage);
                (*shard, v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: ShardId = ShardId(0);

    fn deployment() -> (ReplStoreServer, ReplStoreServer, ReplStoreServer) {
        let groups = shared_groups();
        let mut a = ReplStoreServer::new(ServerId(1), groups.clone());
        let mut b = ReplStoreServer::new(ServerId(2), groups.clone());
        let mut c = ReplStoreServer::new(ServerId(3), groups);
        a.add_shard(S, ReplicaRole::Primary).unwrap();
        b.add_shard(S, ReplicaRole::Secondary).unwrap();
        c.add_shard(S, ReplicaRole::Secondary).unwrap();
        (a, b, c)
    }

    #[test]
    fn writes_replicate_and_commit() {
        let (mut a, b, c) = deployment();
        a.write(S, b"hello".to_vec()).unwrap();
        a.write(S, b"world".to_vec()).unwrap();
        assert_eq!(a.committed_len(S), 2);
        assert_eq!(b.committed_len(S), 2);
        assert_eq!(c.committed_len(S), 2);
    }

    #[test]
    fn secondary_write_rejected() {
        let (_a, mut b, _c) = deployment();
        assert!(matches!(
            b.write(S, b"x".to_vec()),
            Err(SmError::Rejected(_))
        ));
    }

    #[test]
    fn sm_driven_failover_preserves_commits() {
        let (mut a, mut b, _c) = deployment();
        a.write(S, b"durable".to_vec()).unwrap();
        // Primary's server dies; SM promotes b via change_role.
        a.drop_shard(S).unwrap();
        b.change_role(S, ReplicaRole::Secondary, ReplicaRole::Primary)
            .unwrap();
        assert_eq!(b.committed_len(S), 1);
        b.write(S, b"after".to_vec()).unwrap();
        assert_eq!(b.committed_len(S), 2);
    }

    #[test]
    fn graceful_takeover_catches_up_first() {
        let (mut a, _b, _c) = deployment();
        a.write(S, b"x".to_vec()).unwrap();
        let groups = a.groups.clone();
        let mut d = ReplStoreServer::new(ServerId(4), groups);
        // Step 1 of migration joins the group and catches up.
        d.prepare_add_shard(S, ServerId(1), ReplicaRole::Primary)
            .unwrap();
        assert_eq!(d.committed_len(S), 1);
        // Step 3: official takeover elects it.
        d.add_shard(S, ReplicaRole::Primary).unwrap();
        assert!(d.write(S, b"y".to_vec()).is_ok());
    }

    #[test]
    fn load_report_includes_storage() {
        let (mut a, _b, _c) = deployment();
        a.write(S, b"abc".to_vec()).unwrap();
        let report = a.report_load();
        assert_eq!(report[0].1.get(Metric::Storage.id()), 1.0);
    }
}
