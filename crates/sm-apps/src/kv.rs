//! A Laser-like soft-state key-value store (§2.4 option 2/3, §3.1).
//!
//! Data durably lives in an [`ExternalStore`] (standing in for an
//! external database plus a Kafka-like update feed). A [`KvServer`]
//! caches the key range of each shard it hosts; `add_shard` rebuilds the
//! shard's data from the external store, which is exactly why soft-state
//! apps tolerate shard moves cheaply. Because sharding is app-key based,
//! the store supports prefix scans — the operation the paper calls out
//! as impossible under hashed (UUID-key) sharding.

use crate::forwarding::ShardHost;
use crate::AppResponse;
use sm_core::ShardServer;
use sm_types::{AppKey, LoadVector, Metric, ReplicaRole, ServerId, ShardId, ShardingSpec, SmError};
use std::collections::BTreeMap;
use std::rc::Rc;

/// The durable source of truth shared by all servers of the app.
#[derive(Debug, Default)]
pub struct ExternalStore {
    data: BTreeMap<AppKey, Vec<u8>>,
}

impl ExternalStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a key durably.
    pub fn put(&mut self, key: AppKey, value: Vec<u8>) {
        self.data.insert(key, value);
    }

    /// Reads a key.
    pub fn get(&self, key: &AppKey) -> Option<&Vec<u8>> {
        self.data.get(key)
    }

    /// All pairs within `range`, for shard rebuilds.
    pub fn scan_range(&self, range: &sm_types::KeyRange) -> Vec<(AppKey, Vec<u8>)> {
        self.data
            .iter()
            .filter(|(k, _)| range.contains(k))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Total keys stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// One KV application server.
#[derive(Debug)]
pub struct KvServer {
    /// This server's id (used in forwarding decisions).
    pub id: ServerId,
    host: ShardHost,
    spec: Rc<ShardingSpec>,
    external: Rc<std::cell::RefCell<ExternalStore>>,
    /// Cached data per hosted shard.
    data: BTreeMap<ShardId, BTreeMap<AppKey, Vec<u8>>>,
    /// Requests served (for synthetic load reporting).
    served: u64,
}

impl KvServer {
    /// Creates a server over the app's sharding spec and external store.
    pub fn new(
        id: ServerId,
        spec: Rc<ShardingSpec>,
        external: Rc<std::cell::RefCell<ExternalStore>>,
    ) -> Self {
        Self {
            id,
            host: ShardHost::new(),
            spec,
            external,
            data: BTreeMap::new(),
            served: 0,
        }
    }

    /// Routing decision for a primary-type request on `shard`.
    pub fn admit(&self, shard: ShardId, forwarded: bool) -> AppResponse {
        self.host.admit(shard, forwarded)
    }

    /// Routing decision for a secondary-type request (any replica
    /// serves — secondary-only replication policies).
    pub fn admit_secondary(&self, shard: ShardId, forwarded: bool) -> AppResponse {
        self.host.admit_secondary(shard, forwarded)
    }

    /// Shards currently hosted.
    pub fn shard_count(&self) -> usize {
        self.host.shard_count()
    }

    /// Serves a get; the caller must have admitted the request.
    pub fn get(&mut self, shard: ShardId, key: &AppKey) -> Option<Vec<u8>> {
        self.served += 1;
        self.data.get(&shard).and_then(|m| m.get(key).cloned())
    }

    /// Serves a put: writes through to the external store and the cache.
    pub fn put(&mut self, shard: ShardId, key: AppKey, value: Vec<u8>) {
        self.served += 1;
        self.external.borrow_mut().put(key.clone(), value.clone());
        self.data.entry(shard).or_default().insert(key, value);
    }

    /// Serves a prefix scan over one hosted shard, returning matching
    /// pairs in key order.
    pub fn prefix_scan(&mut self, shard: ShardId, prefix: &[u8]) -> Vec<(AppKey, Vec<u8>)> {
        self.served += 1;
        self.data
            .get(&shard)
            .map(|m| {
                m.iter()
                    .filter(|(k, _)| k.has_prefix(prefix))
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// True if the shard's data is already materialized locally.
    pub fn is_warm(&self, shard: ShardId) -> bool {
        self.data.contains_key(&shard)
    }

    /// Simulates a process restart: all soft state is lost.
    pub fn restart(&mut self) {
        self.host.wipe();
        self.data.clear();
    }
}

impl ShardServer for KvServer {
    fn add_shard(&mut self, shard: ShardId, role: ReplicaRole) -> Result<(), SmError> {
        self.host.add_shard(shard, role)?;
        // Rebuild the shard's soft state from the external store.
        let rebuilt = match self.spec.range_of(shard) {
            Some(range) => self.external.borrow().scan_range(range),
            None => Vec::new(),
        };
        self.data.insert(shard, rebuilt.into_iter().collect());
        Ok(())
    }

    fn drop_shard(&mut self, shard: ShardId) -> Result<(), SmError> {
        self.host.drop_shard(shard)?;
        self.data.remove(&shard);
        Ok(())
    }

    fn change_role(
        &mut self,
        shard: ShardId,
        current: ReplicaRole,
        new: ReplicaRole,
    ) -> Result<(), SmError> {
        self.host.change_role(shard, current, new)
    }

    fn prepare_add_shard(
        &mut self,
        shard: ShardId,
        current_owner: ServerId,
        role: ReplicaRole,
    ) -> Result<(), SmError> {
        self.host.prepare_add_shard(shard, current_owner, role)?;
        // Warm the cache ahead of the handover.
        let rebuilt = match self.spec.range_of(shard) {
            Some(range) => self.external.borrow().scan_range(range),
            None => Vec::new(),
        };
        self.data.insert(shard, rebuilt.into_iter().collect());
        Ok(())
    }

    fn prepare_drop_shard(
        &mut self,
        shard: ShardId,
        new_owner: ServerId,
        role: ReplicaRole,
    ) -> Result<(), SmError> {
        self.host.prepare_drop_shard(shard, new_owner, role)
    }

    fn report_load(&self) -> Vec<(ShardId, LoadVector)> {
        self.host
            .shards()
            .map(|(shard, _)| {
                let mut v = LoadVector::zero();
                v.set(Metric::ShardCount.id(), 1.0);
                v.set(
                    Metric::Storage.id(),
                    self.data.get(shard).map(|m| m.len() as f64).unwrap_or(0.0),
                );
                (*shard, v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    fn setup() -> (KvServer, Rc<RefCell<ExternalStore>>, Rc<ShardingSpec>) {
        let spec = Rc::new(ShardingSpec::uniform_u64(4));
        let external = Rc::new(RefCell::new(ExternalStore::new()));
        let server = KvServer::new(ServerId(1), spec.clone(), external.clone());
        (server, external, spec)
    }

    #[test]
    fn add_shard_rebuilds_from_external() {
        let (mut srv, external, spec) = setup();
        let key = AppKey::from_u64(42);
        external.borrow_mut().put(key.clone(), b"v".to_vec());
        let shard = spec.shard_for(&key).unwrap();
        srv.add_shard(shard, ReplicaRole::Primary).unwrap();
        assert_eq!(srv.get(shard, &key), Some(b"v".to_vec()));
    }

    #[test]
    fn puts_write_through() {
        let (mut srv, external, spec) = setup();
        let key = AppKey::from_u64(7);
        let shard = spec.shard_for(&key).unwrap();
        srv.add_shard(shard, ReplicaRole::Primary).unwrap();
        srv.put(shard, key.clone(), b"x".to_vec());
        assert_eq!(external.borrow().get(&key), Some(&b"x".to_vec()));
        // A fresh server rebuilding the shard sees the write.
        let mut srv2 = KvServer::new(ServerId(2), spec.clone(), external.clone());
        srv2.add_shard(shard, ReplicaRole::Primary).unwrap();
        assert_eq!(srv2.get(shard, &key), Some(b"x".to_vec()));
    }

    #[test]
    fn prefix_scan_within_shard() {
        let spec =
            Rc::new(ShardingSpec::new(vec![(sm_types::KeyRange::full(), ShardId(0))]).unwrap());
        let external = Rc::new(RefCell::new(ExternalStore::new()));
        let mut srv = KvServer::new(ServerId(1), spec, external);
        srv.add_shard(ShardId(0), ReplicaRole::Primary).unwrap();
        srv.put(ShardId(0), AppKey::from("user:1"), b"a".to_vec());
        srv.put(ShardId(0), AppKey::from("user:2"), b"b".to_vec());
        srv.put(ShardId(0), AppKey::from("item:1"), b"c".to_vec());
        let hits = srv.prefix_scan(ShardId(0), b"user:");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, AppKey::from("user:1"));
        assert_eq!(hits[1].0, AppKey::from("user:2"));
    }

    #[test]
    fn drop_frees_cache_but_data_survives_externally() {
        let (mut srv, external, spec) = setup();
        let key = AppKey::from_u64(9);
        let shard = spec.shard_for(&key).unwrap();
        srv.add_shard(shard, ReplicaRole::Primary).unwrap();
        srv.put(shard, key.clone(), b"kept".to_vec());
        srv.drop_shard(shard).unwrap();
        assert_eq!(srv.shard_count(), 0);
        assert_eq!(external.borrow().get(&key), Some(&b"kept".to_vec()));
    }

    #[test]
    fn restart_loses_soft_state_only() {
        let (mut srv, external, spec) = setup();
        let key = AppKey::from_u64(3);
        let shard = spec.shard_for(&key).unwrap();
        srv.add_shard(shard, ReplicaRole::Primary).unwrap();
        srv.put(shard, key.clone(), b"v".to_vec());
        srv.restart();
        assert_eq!(srv.shard_count(), 0);
        // Re-adding restores from the external store.
        srv.add_shard(shard, ReplicaRole::Primary).unwrap();
        assert_eq!(srv.get(shard, &key), Some(b"v".to_vec()));
        let _ = external;
    }

    #[test]
    fn load_report_covers_hosted_shards() {
        let (mut srv, _external, spec) = setup();
        srv.add_shard(ShardId(0), ReplicaRole::Primary).unwrap();
        srv.add_shard(ShardId(1), ReplicaRole::Secondary).unwrap();
        let report = srv.report_load();
        assert_eq!(report.len(), 2);
        for (_, load) in report {
            assert_eq!(load.get(Metric::ShardCount.id()), 1.0);
        }
        let _ = spec;
    }
}
