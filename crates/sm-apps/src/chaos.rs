//! Seeded chaos harness over the ZooKeeper-backed control plane.
//!
//! A [`ChaosWorld`] wires the HA control plane ([`HaControlPlane`]),
//! leased KV application servers, and live client traffic into one
//! discrete-event simulation, then injects a seeded fault schedule
//! ([`sm_sim::faults::fault_plan`]): mini-SM crashes, server crashes,
//! and bare ZK session expiries, each with a paired recovery. The run
//! checks the §6 fault-tolerance story end to end:
//!
//! - **No dual primary** — a periodic scan counts, per shard, the
//!   servers that would serve an unforwarded request. Self-fencing
//!   (§3.2) makes a session-expired server wipe its hosting state
//!   immediately, before the control plane even notices the expiry.
//! - **No dropped requests** — clients retry with a bounded budget
//!   sized well past the longest injected outage; every request must
//!   eventually be served.
//! - **Convergence** — after the last recovery, every shard is placed
//!   (primary present) and no migration is stuck in flight.
//! - **Reproducibility** — the whole run is a pure function of its
//!   seed: same seed, byte-identical trace.
//!
//! Fault indices map directly to ids (`Fault::MiniSmCrash(i)` targets
//! `MiniSmId(i)`); mini-SM ids are assigned densely from zero at
//! deployment, so the plan's every-mini-SM coverage guarantee carries
//! over to ids.

use crate::kv::{ExternalStore, KvServer};
use crate::AppResponse;
use sm_allocator::{AllocConfig, MoveCaps};
use sm_core::ha::{HaControlPlane, HaStats, ServerLease};
use sm_core::{ApplicationManager, OrchCommand, OrchestratorConfig, Partition, ServerRpc};
use sm_sim::faults::{fault_plan, Fault, FaultPlanConfig};
use sm_sim::{Ctx, SimDuration, SimTime, Simulation, TraceLog, World};
use sm_types::{
    AppId, AppKey, AppPolicy, LoadVector, Location, MachineId, Metric, MiniSmId, RegionId,
    ServerId, ShardId, ShardingSpec,
};
use sm_zk::{WatchEvent, ZkStore};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Shape of one chaos run. The fault schedule is derived from `seed`
/// via [`FaultPlanConfig::covering`], so the whole run is reproducible
/// from this config alone.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed for traffic, fault schedule, and every other random draw.
    pub seed: u64,
    /// Application servers (ids `0..servers`).
    pub servers: u32,
    /// Shards across the whole app.
    pub shards: u64,
    /// Concurrent request generators.
    pub clients: u32,
    /// Gap between one client's requests.
    pub request_interval: SimDuration,
    /// One-way latency for control-plane RPCs and watch delivery.
    pub rpc_latency: SimDuration,
    /// Client retry backoff.
    pub retry_delay: SimDuration,
    /// Retry budget per request; must outlast the longest outage.
    pub max_attempts: u32,
    /// Clients stop issuing new requests here (in-flight ones drain).
    pub traffic_end: SimTime,
    /// Periodic scans and router refreshes stop here; must be past the
    /// last scheduled recovery so the final scan sees quiescence.
    pub end: SimTime,
}

impl ChaosConfig {
    /// A run sized to meet the chaos acceptance floors while staying
    /// fast enough for the test gate.
    pub fn covering(seed: u64) -> Self {
        Self {
            seed,
            servers: 20,
            shards: 64,
            clients: 4,
            request_interval: SimDuration::from_millis(100),
            rpc_latency: SimDuration::from_millis(10),
            retry_delay: SimDuration::from_millis(500),
            max_attempts: 120,
            traffic_end: SimTime::from_secs(365),
            end: SimTime::from_secs(400),
        }
    }
}

/// Event alphabet of the chaos world.
#[derive(Debug)]
pub enum ChaosEvent {
    /// Client `i` issues its next request.
    ClientTick(u32),
    /// A request arrives at a server.
    Deliver {
        /// Key being read/written (as its u64 seed).
        key: u64,
        /// True for a put, false for a get.
        write: bool,
        /// Shard the key maps to.
        shard: ShardId,
        /// Server the client (or a forwarder) picked.
        target: ServerId,
        /// Delivery attempts so far, this one included.
        attempts: u32,
        /// Forwarding hops on this attempt.
        hops: u8,
        /// When the request was first issued.
        sent_at: SimTime,
    },
    /// A failed attempt backs off and re-routes.
    Retry {
        /// Key being retried.
        key: u64,
        /// True for a put.
        write: bool,
        /// Shard the key maps to.
        shard: ShardId,
        /// Attempts so far.
        attempts: u32,
        /// Original issue time.
        sent_at: SimTime,
    },
    /// A control-plane RPC reaches its server.
    RpcSend {
        /// Target server.
        server: ServerId,
        /// The RPC payload.
        rpc: ServerRpc,
    },
    /// The server's ack (or failure) reaches the control plane.
    RpcResult {
        /// Acking server.
        server: ServerId,
        /// The RPC being answered.
        rpc: ServerRpc,
        /// Whether the server applied it.
        ok: bool,
    },
    /// A ZooKeeper watch notification is delivered.
    ZkNotify(WatchEvent),
    /// The i-th entry of the fault plan fires.
    FaultHit(usize),
    /// Clients re-read the shard map (service discovery refresh).
    RouterRefresh,
    /// Invariant scan: dual-primary check, placement, trace points.
    Scan,
}

/// Counters accumulated over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Requests served successfully.
    pub served: u64,
    /// Requests that exhausted their retry budget.
    pub dropped: u64,
    /// Retry attempts across all requests.
    pub retries: u64,
    /// Forwarding hops taken (graceful migration in action).
    pub forwards: u64,
    /// Shard-scans that found more than one willing primary.
    pub dual_primary: u64,
    /// Server container crashes injected.
    pub server_crashes: u64,
    /// Bare session expiries injected.
    pub session_expiries: u64,
    /// Mini-SM crashes injected.
    pub minism_crashes: u64,
}

/// One application server process plus its ZK liveness lease.
struct Host {
    kv: KvServer,
    lease: Option<ServerLease>,
    process_up: bool,
}

/// The chaos simulation world.
pub struct ChaosWorld {
    cfg: ChaosConfig,
    zk: ZkStore,
    cp: HaControlPlane,
    spec: Rc<ShardingSpec>,
    hosts: BTreeMap<ServerId, Host>,
    partitions: Vec<Partition>,
    plan: Vec<(SimTime, Fault)>,
    /// Client-visible shard→primary map, refreshed periodically.
    router: BTreeMap<ShardId, ServerId>,
    /// Counters.
    pub stats: ChaosStats,
    /// Recorded time series (placement, traffic, failures).
    pub trace: TraceLog,
    /// Mini-SM ids crashed at least once.
    pub crashed_minisms: BTreeSet<u32>,
    /// Server ids whose bare session expiry was injected.
    pub expired_sessions: BTreeSet<u32>,
    /// Completed control-plane recoveries, in milliseconds.
    pub recoveries_ms: Vec<f64>,
    /// Start of the oldest unfinished recovery, if any.
    recovering_since: Option<SimTime>,
}

fn loc(s: u32) -> Location {
    Location {
        region: RegionId(0),
        datacenter: 0,
        rack: s,
        machine: MachineId(s),
    }
}

fn orch_config() -> OrchestratorConfig {
    OrchestratorConfig {
        graceful_migration: true,
        move_caps: MoveCaps::default(),
        alloc: AllocConfig::new(vec![Metric::ShardCount.id()]),
    }
}

impl ChaosWorld {
    /// Builds the world: control plane, leased servers, deployed
    /// partitions, and the seeded fault plan. Watch events raised
    /// during setup are delivered synchronously (the world is not
    /// running yet, so there is no one to race with).
    pub fn new(cfg: ChaosConfig) -> Self {
        let mut zk = ZkStore::new();
        let (mut cp, setup_events) = HaControlPlane::new(
            &mut zk,
            orch_config(),
            LoadVector::single(Metric::ShardCount.id(), 1000.0),
            4,
        )
        .expect("fresh ZK accepts the base znodes");
        let app = AppId(0);
        cp.register_app(app, AppPolicy::primary_only());

        let spec = Rc::new(ShardingSpec::uniform_u64(cfg.shards));
        let external = Rc::new(RefCell::new(ExternalStore::new()));
        let mut hosts = BTreeMap::new();
        let mut pending = setup_events;
        let server_ids: Vec<ServerId> = (0..cfg.servers).map(ServerId).collect();
        for &s in &server_ids {
            cp.register_server(&mut zk, s, loc(s.raw()));
            let (lease, events) =
                ServerLease::register(&mut zk, s).expect("fresh session registers");
            pending.extend(events);
            hosts.insert(
                s,
                Host {
                    kv: KvServer::new(s, spec.clone(), external.clone()),
                    lease: Some(lease),
                    process_up: true,
                },
            );
        }

        let shard_ids: Vec<ShardId> = (0..cfg.shards).map(ShardId).collect();
        let mut mgr = ApplicationManager::new(4);
        let partitions = mgr.partition_app(app, &server_ids, &shard_ids);
        for p in &partitions {
            let events = cp
                .deploy_partition(&mut zk, p)
                .expect("deploy on a healthy fleet");
            pending.extend(events);
        }
        // Drain setup watches synchronously so every one-shot watch is
        // re-armed before the event loop starts, then settle the
        // initial placement (deploy completes before the experiment).
        let mut guard = 0;
        while let Some(e) = pending.pop() {
            guard += 1;
            assert!(guard < 10_000, "setup watch storm");
            pending.extend(cp.handle_event(&mut zk, &e));
        }
        for _round in 0..200 {
            let cmds = cp.take_commands();
            if cmds.is_empty() {
                break;
            }
            for (_pid, cmd) in cmds {
                if let OrchCommand::Rpc { server, rpc } = cmd {
                    let ok = hosts
                        .get_mut(&server)
                        .map(|h| rpc.dispatch(&mut h.kv).is_ok())
                        .unwrap_or(false);
                    let acks = if ok {
                        cp.rpc_acked(&mut zk, server, rpc)
                    } else {
                        cp.rpc_failed(&mut zk, server, rpc)
                    };
                    pending.extend(acks);
                }
            }
            while let Some(e) = pending.pop() {
                guard += 1;
                assert!(guard < 10_000, "setup watch storm");
                pending.extend(cp.handle_event(&mut zk, &e));
            }
        }

        let n_minisms = cp.running_minisms().len() as u32;
        let plan = fault_plan(&FaultPlanConfig::covering(cfg.seed, cfg.servers, n_minisms));

        let mut world = Self {
            cfg,
            zk,
            cp,
            spec,
            hosts,
            partitions,
            plan,
            router: BTreeMap::new(),
            stats: ChaosStats::default(),
            trace: TraceLog::new(),
            crashed_minisms: BTreeSet::new(),
            expired_sessions: BTreeSet::new(),
            recoveries_ms: Vec::new(),
            recovering_since: None,
        };
        world.refresh_router();
        world
    }

    /// Number of mini-SM processes currently running.
    pub fn running_minisms(&self) -> usize {
        self.cp.running_minisms().len()
    }

    /// Control-plane activity counters.
    pub fn ha_stats(&self) -> HaStats {
        self.cp.stats()
    }

    /// True when every shard has a primary and no migration is stuck.
    pub fn converged(&mut self) -> bool {
        self.cp.fully_placed() && self.cp.in_flight_total() == 0
    }

    /// Shards currently missing a primary (diagnostics).
    pub fn unplaced_count(&mut self) -> usize {
        self.cp.unplaced().len()
    }

    fn refresh_router(&mut self) {
        let partitions = self.partitions.clone();
        for p in &partitions {
            if let Some(orch) = self.cp.orchestrator(p.id) {
                for &shard in &p.shards {
                    match orch.assignment().primary_of(shard) {
                        Some(server) => {
                            self.router.insert(shard, server);
                        }
                        None => {
                            self.router.remove(&shard);
                        }
                    }
                }
            }
        }
    }

    /// Queues watch notifications for delayed delivery, like a real ZK
    /// client's event thread.
    fn dispatch_zk(&mut self, events: Vec<WatchEvent>, ctx: &mut Ctx<'_, ChaosEvent>) {
        let latency = self.cfg.rpc_latency;
        for event in events {
            ctx.schedule_in(latency, ChaosEvent::ZkNotify(event));
        }
    }

    /// Sends freshly minted orchestrator commands out as RPCs.
    fn flush_commands(&mut self, ctx: &mut Ctx<'_, ChaosEvent>) {
        for (_pid, cmd) in self.cp.take_commands() {
            if let OrchCommand::Rpc { server, rpc } = cmd {
                ctx.schedule_in(self.cfg.rpc_latency, ChaosEvent::RpcSend { server, rpc });
            }
        }
    }

    fn client_tick(&mut self, client: u32, ctx: &mut Ctx<'_, ChaosEvent>) {
        if ctx.now() < self.cfg.traffic_end {
            ctx.schedule_in(self.cfg.request_interval, ChaosEvent::ClientTick(client));
        }
        let key = ctx.rng().next_u64();
        let write = ctx.rng().chance(0.5);
        let Some(shard) = self.spec.shard_for(&AppKey::from_u64(key)) else {
            return;
        };
        let sent_at = ctx.now();
        self.route(key, write, shard, 1, sent_at, ctx);
    }

    /// Routes (or re-routes) a request via the client-visible map.
    fn route(
        &mut self,
        key: u64,
        write: bool,
        shard: ShardId,
        attempts: u32,
        sent_at: SimTime,
        ctx: &mut Ctx<'_, ChaosEvent>,
    ) {
        match self.router.get(&shard).copied() {
            Some(target) => ctx.schedule_in(
                self.cfg.rpc_latency,
                ChaosEvent::Deliver {
                    key,
                    write,
                    shard,
                    target,
                    attempts,
                    hops: 0,
                    sent_at,
                },
            ),
            None => self.fail_or_retry(key, write, shard, attempts, sent_at, ctx),
        }
    }

    fn fail_or_retry(
        &mut self,
        key: u64,
        write: bool,
        shard: ShardId,
        attempts: u32,
        sent_at: SimTime,
        ctx: &mut Ctx<'_, ChaosEvent>,
    ) {
        if attempts < self.cfg.max_attempts {
            self.stats.retries += 1;
            ctx.schedule_in(
                self.cfg.retry_delay,
                ChaosEvent::Retry {
                    key,
                    write,
                    shard,
                    attempts: attempts + 1,
                    sent_at,
                },
            );
        } else {
            self.stats.dropped += 1;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn deliver(
        &mut self,
        key: u64,
        write: bool,
        shard: ShardId,
        target: ServerId,
        attempts: u32,
        hops: u8,
        sent_at: SimTime,
        ctx: &mut Ctx<'_, ChaosEvent>,
    ) {
        let serving = self
            .hosts
            .get(&target)
            .map(|h| h.process_up && h.lease.is_some())
            .unwrap_or(false);
        if !serving {
            self.fail_or_retry(key, write, shard, attempts, sent_at, ctx);
            return;
        }
        let response = self
            .hosts
            .get(&target)
            .map(|h| h.kv.admit(shard, hops > 0))
            .unwrap_or(AppResponse::NotMine);
        match response {
            AppResponse::Serve => {
                if let Some(host) = self.hosts.get_mut(&target) {
                    let app_key = AppKey::from_u64(key);
                    if write {
                        host.kv.put(shard, app_key, key.to_be_bytes().to_vec());
                    } else {
                        host.kv.get(shard, &app_key);
                    }
                }
                self.stats.served += 1;
                let latency_ms = ctx.now().since(sent_at).as_millis_f64();
                self.trace.record("latency_ms", ctx.now(), latency_ms);
            }
            AppResponse::Forward(next) if hops < 4 => {
                self.stats.forwards += 1;
                ctx.schedule_in(
                    self.cfg.rpc_latency,
                    ChaosEvent::Deliver {
                        key,
                        write,
                        shard,
                        target: next,
                        attempts,
                        hops: hops + 1,
                        sent_at,
                    },
                );
            }
            AppResponse::Forward(_) | AppResponse::NotMine => {
                self.fail_or_retry(key, write, shard, attempts, sent_at, ctx);
            }
        }
    }

    fn rpc_send(&mut self, server: ServerId, rpc: ServerRpc, ctx: &mut Ctx<'_, ChaosEvent>) {
        // A dead process never answers; a live process that lost its
        // session refuses shard placements (§3.2 self-fencing).
        let ok = match self.hosts.get_mut(&server) {
            Some(h) if h.process_up && h.lease.is_some() => rpc.dispatch(&mut h.kv).is_ok(),
            _ => false,
        };
        ctx.schedule_in(
            self.cfg.rpc_latency,
            ChaosEvent::RpcResult { server, rpc, ok },
        );
    }

    fn rpc_result(
        &mut self,
        server: ServerId,
        rpc: ServerRpc,
        ok: bool,
        ctx: &mut Ctx<'_, ChaosEvent>,
    ) {
        let events = if ok {
            self.cp.rpc_acked(&mut self.zk, server, rpc)
        } else {
            self.cp.rpc_failed(&mut self.zk, server, rpc)
        };
        self.dispatch_zk(events, ctx);
        self.flush_commands(ctx);
    }

    fn apply_fault(&mut self, fault: Fault, ctx: &mut Ctx<'_, ChaosEvent>) {
        match fault {
            Fault::ServerCrash(i) => {
                let s = ServerId(i);
                let Some(host) = self.hosts.get_mut(&s) else {
                    return;
                };
                if !host.process_up {
                    return;
                }
                host.process_up = false;
                host.kv.restart();
                let expired = host.lease.take();
                self.stats.server_crashes += 1;
                if let Some(lease) = expired {
                    let events = lease.expire(&mut self.zk);
                    self.dispatch_zk(events, ctx);
                }
            }
            Fault::ServerRestart(i) => {
                let s = ServerId(i);
                let up = self.hosts.get(&s).map(|h| h.process_up).unwrap_or(true);
                if up {
                    return;
                }
                match ServerLease::register(&mut self.zk, s) {
                    Ok((lease, events)) => {
                        if let Some(host) = self.hosts.get_mut(&s) {
                            host.process_up = true;
                            host.lease = Some(lease);
                        }
                        self.dispatch_zk(events, ctx);
                    }
                    Err(_) => {
                        // Old session still registered; the restart
                        // retries on the next plan entry (none in the
                        // covering plan — expiry always precedes this).
                    }
                }
            }
            Fault::SessionExpiry(i) => {
                let s = ServerId(i);
                let Some(host) = self.hosts.get_mut(&s) else {
                    return;
                };
                if !host.process_up || host.lease.is_none() {
                    return;
                }
                // §3.2: the server self-fences — wipes its hosting
                // state immediately, before the control plane has any
                // chance to observe the expiry — so it can never serve
                // as a stale primary.
                host.kv.restart();
                let expired = host.lease.take();
                self.stats.session_expiries += 1;
                self.expired_sessions.insert(i);
                if let Some(lease) = expired {
                    let events = lease.expire(&mut self.zk);
                    self.dispatch_zk(events, ctx);
                }
            }
            Fault::SessionRestore(i) => {
                let s = ServerId(i);
                let needs = self
                    .hosts
                    .get(&s)
                    .map(|h| h.process_up && h.lease.is_none())
                    .unwrap_or(false);
                if !needs {
                    return;
                }
                if let Ok((lease, events)) = ServerLease::register(&mut self.zk, s) {
                    if let Some(host) = self.hosts.get_mut(&s) {
                        host.lease = Some(lease);
                    }
                    self.dispatch_zk(events, ctx);
                }
            }
            Fault::MiniSmCrash(i) => {
                let id = MiniSmId(i);
                if !self.cp.running_minisms().contains(&id) {
                    return;
                }
                self.stats.minism_crashes += 1;
                self.crashed_minisms.insert(i);
                if self.recovering_since.is_none() {
                    self.recovering_since = Some(ctx.now());
                }
                let events = self.cp.crash_minism(&mut self.zk, id);
                self.dispatch_zk(events, ctx);
            }
            Fault::MiniSmRestart(i) => {
                let id = MiniSmId(i);
                if let Ok(events) = self.cp.restart_minism(&mut self.zk, id) {
                    self.dispatch_zk(events, ctx);
                }
            }
        }
    }

    fn scan(&mut self, ctx: &mut Ctx<'_, ChaosEvent>) {
        let now = ctx.now();
        if now < self.cfg.end {
            ctx.schedule_in(SimDuration::from_millis(500), ChaosEvent::Scan);
        }
        // Dual-primary check: a shard must never have two servers that
        // would both serve an unforwarded request. Process-up is the
        // only qualifier — a zombie with an expired session still
        // counts, which is exactly what self-fencing must prevent.
        for shard in (0..self.cfg.shards).map(ShardId) {
            let willing = self
                .hosts
                .values()
                .filter(|h| h.process_up && h.kv.admit(shard, false) == AppResponse::Serve)
                .count();
            if willing > 1 {
                self.stats.dual_primary += 1;
            }
        }
        let unplaced = self.cp.unplaced().len();
        let in_flight = self.cp.in_flight_total();
        if let Some(started) = self.recovering_since {
            if unplaced == 0 && in_flight == 0 {
                self.recoveries_ms.push(now.since(started).as_millis_f64());
                self.recovering_since = None;
            }
        }
        let down = self
            .hosts
            .values()
            .filter(|h| !h.process_up || h.lease.is_none())
            .count();
        self.trace.record("unplaced", now, unplaced as f64);
        self.trace.record("in_flight", now, in_flight as f64);
        self.trace.record("down_servers", now, down as f64);
        self.trace
            .record("served_total", now, self.stats.served as f64);
        self.trace
            .record("dropped_total", now, self.stats.dropped as f64);
        self.trace
            .record("minisms_up", now, self.cp.running_minisms().len() as f64);
    }
}

impl World for ChaosWorld {
    type Event = ChaosEvent;

    fn handle(&mut self, ctx: &mut Ctx<'_, ChaosEvent>, event: ChaosEvent) {
        match event {
            ChaosEvent::ClientTick(c) => self.client_tick(c, ctx),
            ChaosEvent::Deliver {
                key,
                write,
                shard,
                target,
                attempts,
                hops,
                sent_at,
            } => self.deliver(key, write, shard, target, attempts, hops, sent_at, ctx),
            ChaosEvent::Retry {
                key,
                write,
                shard,
                attempts,
                sent_at,
            } => {
                // Re-route via the freshest map the client can see.
                self.refresh_router();
                self.route(key, write, shard, attempts, sent_at, ctx);
            }
            ChaosEvent::RpcSend { server, rpc } => self.rpc_send(server, rpc, ctx),
            ChaosEvent::RpcResult { server, rpc, ok } => self.rpc_result(server, rpc, ok, ctx),
            ChaosEvent::ZkNotify(watch) => {
                let events = self.cp.handle_event(&mut self.zk, &watch);
                self.dispatch_zk(events, ctx);
                self.flush_commands(ctx);
            }
            ChaosEvent::FaultHit(i) => {
                if let Some((_, fault)) = self.plan.get(i).copied() {
                    self.apply_fault(fault, ctx);
                    self.flush_commands(ctx);
                }
            }
            ChaosEvent::RouterRefresh => {
                if ctx.now() < self.cfg.end {
                    ctx.schedule_in(SimDuration::from_millis(1000), ChaosEvent::RouterRefresh);
                }
                self.refresh_router();
            }
            ChaosEvent::Scan => self.scan(ctx),
        }
    }
}

/// Outcome of one chaos run — everything the acceptance checks need.
#[derive(Debug)]
pub struct ChaosReport {
    /// Traffic and fault counters.
    pub stats: ChaosStats,
    /// Control-plane counters (failovers, restores, fenced writes).
    pub ha: HaStats,
    /// Mini-SM ids crashed at least once.
    pub crashed_minisms: BTreeSet<u32>,
    /// Servers whose bare session expiry was injected.
    pub expired_sessions: BTreeSet<u32>,
    /// Completed control-plane recoveries, milliseconds each.
    pub recoveries_ms: Vec<f64>,
    /// Mini-SMs that existed at deployment (coverage denominator).
    pub initial_minisms: usize,
    /// True when, at the end, every shard was placed with no stuck
    /// migrations.
    pub converged: bool,
    /// Shards lacking a primary at the end (diagnostics; 0 expected).
    pub unplaced: usize,
    /// The run's time-series trace, rendered as CSV (5 s buckets) —
    /// byte-identical across reruns of the same seed.
    pub trace_csv: String,
}

/// Runs one seeded chaos experiment to completion and reports.
pub fn run_chaos(cfg: ChaosConfig) -> ChaosReport {
    let world = ChaosWorld::new(cfg);
    let plan_times: Vec<SimTime> = world.plan.iter().map(|(at, _)| *at).collect();
    let mut sim = Simulation::new(world, cfg.seed);
    for (i, at) in plan_times.iter().enumerate() {
        sim.schedule_at(*at, ChaosEvent::FaultHit(i));
    }
    for c in 0..cfg.clients {
        sim.schedule_at(SimTime::from_secs(5), ChaosEvent::ClientTick(c));
    }
    sim.schedule_at(SimTime::from_secs(1), ChaosEvent::Scan);
    sim.schedule_at(SimTime::from_secs(1), ChaosEvent::RouterRefresh);
    sim.run_until(cfg.end);
    // Periodic events stop at `end`; whatever remains is in-flight
    // requests draining against a healthy fleet.
    sim.run();
    let mut world = sim.into_world();
    let converged = world.converged();
    ChaosReport {
        stats: world.stats,
        ha: world.ha_stats(),
        crashed_minisms: world.crashed_minisms.clone(),
        expired_sessions: world.expired_sessions.clone(),
        recoveries_ms: world.recoveries_ms.clone(),
        initial_minisms: world
            .plan
            .iter()
            .filter_map(|(_, f)| match f {
                Fault::MiniSmCrash(m) => Some(*m),
                _ => None,
            })
            .collect::<BTreeSet<u32>>()
            .len(),
        converged,
        unplaced: world.unplaced_count(),
        trace_csv: world.trace.to_csv(5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_bootstraps_fully_placed() {
        let mut w = ChaosWorld::new(ChaosConfig::covering(1));
        // Initial placement happens synchronously at deploy; commands
        // are still in flight but every shard has an assignment.
        assert!(w.cp.fully_placed(), "unplaced: {:?}", w.cp.unplaced());
        assert!(w.running_minisms() >= 2, "want several mini-SMs");
        assert_eq!(w.router.len(), w.cfg.shards as usize);
    }

    #[test]
    fn plan_targets_every_initial_minism() {
        let w = ChaosWorld::new(ChaosConfig::covering(7));
        let targeted: BTreeSet<u32> = w
            .plan
            .iter()
            .filter_map(|(_, f)| match f {
                Fault::MiniSmCrash(m) => Some(*m),
                _ => None,
            })
            .collect();
        let running: BTreeSet<u32> = w.cp.running_minisms().iter().map(|m| m.raw()).collect();
        assert_eq!(targeted, running, "dense ids let the plan cover all");
    }
}
