//! Seeded chaos harness over the ZooKeeper-backed control plane.
//!
//! A [`ChaosWorld`] wires the HA control plane ([`HaControlPlane`]),
//! leased KV application servers, and live client traffic into one
//! discrete-event simulation, then injects a seeded fault schedule
//! ([`sm_sim::faults::fault_plan`]): mini-SM crashes, server crashes,
//! bare ZK session expiries, network partitions (symmetric and
//! asymmetric), and lossy-net windows, each with a paired recovery.
//!
//! Every inter-process message travels through a [`SimNet`]: client
//! requests, forwards, control-plane RPCs and their acks, server
//! heartbeats and registrations. A partitioned server therefore
//! experiences real silence — its heartbeats stop arriving, ZooKeeper
//! times its session out, and the control plane fails its shards over —
//! while the server itself only learns of trouble the way a real one
//! does: heartbeat acks stop coming back, and the §3.2 self-fence timer
//! ([`SelfFenceTimer`]) forces it to wipe *before* ZK's session timeout
//! can promote a replacement. The safety rule is
//! `self_fence_timeout + heartbeat_interval < zk_session_timeout`.
//!
//! The paper's safety claims are checked continuously by an
//! [`Oracle`]: at most one unfenced willing primary per shard (checked
//! at every served request and on periodic sweeps), no
//! acknowledged-then-lost request or stale read (every write is tagged
//! with a monotone counter; every read must observe its key's latest
//! acknowledged tag), registry/ZK snapshot agreement at quiescence, and
//! router/assignment convergence after the last heal.
//!
//! Fault indices map directly to ids (`Fault::MiniSmCrash(i)` targets
//! `MiniSmId(i)`); mini-SM ids are assigned densely from zero at
//! deployment, so the plan's every-mini-SM coverage guarantee carries
//! over to ids. The whole run is a pure function of `(config, plan)`:
//! same seed and plan, byte-identical trace.

use crate::kv::{ExternalStore, KvServer};
use crate::AppResponse;
use sm_allocator::{AllocConfig, MoveCaps};
use sm_core::ha::{paths, HaControlPlane, HaStats, SelfFenceTimer, ServerLease};
use sm_core::{ApplicationManager, OrchCommand, OrchestratorConfig, Partition, ServerRpc};
use sm_sim::faults::{fault_plan, Fault, FaultPlanConfig, FaultProfile};
use sm_sim::net::{Endpoint, NetStats, SimNet};
use sm_sim::oracle::{Oracle, OracleViolation};
use sm_sim::{Ctx, LatencyModel, QueueKind, SimDuration, SimTime, Simulation, TraceLog, World};
use sm_types::{
    AppId, AppKey, AppPolicy, LoadVector, Location, MachineId, Metric, MiniSmId, RegionId,
    ServerId, ShardId, ShardingSpec,
};
use sm_zk::{WatchEvent, ZkStore};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Shape of one chaos run. The fault schedule is derived from `seed`
/// (via [`FaultPlanConfig::covering`] or `profile`), so the whole run
/// is reproducible from this config alone.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed for traffic, fault schedule, and every other random draw.
    pub seed: u64,
    /// Application servers (ids `0..servers`).
    pub servers: u32,
    /// Shards across the whole app.
    pub shards: u64,
    /// Concurrent request generators.
    pub clients: u32,
    /// Gap between one client's requests.
    pub request_interval: SimDuration,
    /// Base one-way latency of the simulated network (jitter on top).
    pub rpc_latency: SimDuration,
    /// Client retry backoff (doubles as the request timeout when the
    /// net eats a message).
    pub retry_delay: SimDuration,
    /// Retry budget per request; must outlast the longest outage.
    pub max_attempts: u32,
    /// Clients stop issuing new requests here (in-flight ones drain).
    pub traffic_end: SimTime,
    /// Periodic scans and router refreshes stop here; must be past the
    /// last scheduled recovery so the final scan sees quiescence.
    pub end: SimTime,
    /// Fault-plan shape: `None` replays the PR 3 covering plan
    /// (crashes and expiries only); `Some(p)` uses the DST profile.
    pub profile: Option<FaultProfile>,
    /// How often each server heartbeats ZooKeeper.
    pub heartbeat_interval: SimDuration,
    /// §3.2: a server wipes itself after this long without a heartbeat
    /// ack. Must be safely below `zk_session_timeout` minus one
    /// heartbeat interval.
    pub self_fence_timeout: SimDuration,
    /// ZooKeeper expires a session after this long without heartbeats.
    pub zk_session_timeout: SimDuration,
    /// The control plane gives up on an unanswered RPC after this long
    /// and treats it as failed.
    pub rpc_timeout: SimDuration,
    /// Client keys are drawn from `0..key_space` so reads exercise
    /// previously-written keys; `0` means the full u64 space (the PR 3
    /// traffic shape).
    pub key_space: u64,
    /// DST mutation switch: disables §3.2 self-fencing so the oracle
    /// can demonstrate it catches the resulting dual primaries and
    /// stale reads. Never set outside `tests/dst.rs`.
    pub disable_self_fencing: bool,
}

impl ChaosConfig {
    /// A run sized to meet the chaos acceptance floors while staying
    /// fast enough for the test gate.
    pub fn covering(seed: u64) -> Self {
        Self {
            seed,
            servers: 20,
            shards: 64,
            clients: 4,
            request_interval: SimDuration::from_millis(100),
            rpc_latency: SimDuration::from_millis(10),
            retry_delay: SimDuration::from_millis(500),
            max_attempts: 120,
            traffic_end: SimTime::from_secs(365),
            end: SimTime::from_secs(400),
            profile: None,
            heartbeat_interval: SimDuration::from_secs(1),
            self_fence_timeout: SimDuration::from_secs(5),
            zk_session_timeout: SimDuration::from_secs(8),
            rpc_timeout: SimDuration::from_secs(2),
            key_space: 0,
            disable_self_fencing: false,
        }
    }

    /// The compact shape the DST swarm sweeps: a smaller fleet and a
    /// one-minute fault window keep a single seeded run cheap enough
    /// to explore many seeds per profile.
    pub fn dst(seed: u64, profile: FaultProfile) -> Self {
        Self {
            seed,
            servers: 10,
            shards: 32,
            clients: 3,
            request_interval: SimDuration::from_millis(100),
            rpc_latency: SimDuration::from_millis(10),
            retry_delay: SimDuration::from_millis(500),
            max_attempts: 120,
            traffic_end: SimTime::from_secs(140),
            end: SimTime::from_secs(160),
            profile: Some(profile),
            heartbeat_interval: SimDuration::from_secs(1),
            self_fence_timeout: SimDuration::from_secs(5),
            zk_session_timeout: SimDuration::from_secs(8),
            rpc_timeout: SimDuration::from_secs(2),
            key_space: 512,
            disable_self_fencing: false,
        }
    }
}

/// One client request's identity and routing state, carried through
/// deliveries, forwards, and retries.
#[derive(Clone, Copy, Debug)]
pub struct Req {
    /// Unique request id (oracle bookkeeping and duplicate detection).
    pub id: u64,
    /// Issuing client (the network source endpoint).
    pub client: u32,
    /// Key being read/written (as its u64 seed).
    pub key: u64,
    /// True for a put, false for a get.
    pub write: bool,
    /// Shard the key maps to.
    pub shard: ShardId,
    /// Delivery attempts so far, this one included.
    pub attempts: u32,
    /// When the request was first issued.
    pub sent_at: SimTime,
}

/// Event alphabet of the chaos world.
#[derive(Debug)]
pub enum ChaosEvent {
    /// Client `i` issues its next request.
    ClientTick(u32),
    /// A request (or one duplicated copy of it) arrives at a server.
    Deliver {
        /// The request.
        req: Req,
        /// Server this copy was addressed to.
        target: ServerId,
        /// Forwarding hops on this attempt.
        hops: u8,
    },
    /// A failed attempt backs off and re-routes.
    Retry {
        /// The request, attempts already incremented.
        req: Req,
    },
    /// A control-plane RPC reaches its server.
    RpcSend {
        /// Correlation id for timeout/duplicate handling.
        id: u64,
        /// Target server.
        server: ServerId,
        /// The RPC payload.
        rpc: ServerRpc,
    },
    /// The server's ack (or failure) reaches the control plane.
    RpcResult {
        /// Correlation id; late or duplicate results are ignored.
        id: u64,
        /// Answering server.
        server: ServerId,
        /// The RPC being answered.
        rpc: ServerRpc,
        /// Whether the server applied it.
        ok: bool,
    },
    /// The control plane gives up on an unanswered RPC.
    RpcTimeout {
        /// Correlation id; a no-op if the result already arrived.
        id: u64,
    },
    /// A ZooKeeper watch notification is delivered (ordered session
    /// channel: never dropped, never reordered).
    ZkNotify(WatchEvent),
    /// The i-th entry of the fault plan fires.
    FaultHit(usize),
    /// Clients re-read the shard map (service discovery refresh).
    RouterRefresh,
    /// Server `i` runs its heartbeat step: self-fence check, beat,
    /// resignation, or re-registration.
    HeartbeatTick(u32),
    /// Server `i`'s heartbeat arrives at ZooKeeper.
    BeatArrive(u32),
    /// ZooKeeper's heartbeat ack arrives back at server `i`.
    BeatAck(u32),
    /// Server `i`'s resignation (it self-fenced with a live session)
    /// arrives at ZooKeeper.
    ResignArrive(u32),
    /// Server `i`'s re-registration attempt arrives at ZooKeeper.
    RegisterArrive(u32),
}

/// Counters accumulated over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Requests served successfully.
    pub served: u64,
    /// Requests that exhausted their retry budget.
    pub dropped: u64,
    /// Retry attempts across all requests.
    pub retries: u64,
    /// Forwarding hops taken (graceful migration in action).
    pub forwards: u64,
    /// Shard-scans that found more than one willing primary.
    pub dual_primary: u64,
    /// Server container crashes injected.
    pub server_crashes: u64,
    /// Bare session expiries injected.
    pub session_expiries: u64,
    /// Mini-SM crashes injected.
    pub minism_crashes: u64,
    /// Servers that wiped themselves via the §3.2 self-fence timer.
    pub self_fences: u64,
    /// Sessions ZooKeeper expired for missing heartbeats (partitions).
    pub zk_expiries: u64,
    /// Network partitions injected.
    pub net_partitions: u64,
    /// Control-plane RPCs that timed out unanswered.
    pub rpc_timeouts: u64,
}

/// One application server process: its KV state, its ZK liveness
/// session, and its *server-side* view of the fencing contract.
///
/// `lease` is ZooKeeper's side (the ephemeral session object) — the
/// world holds it here for convenience, but the server never reads it.
/// What the server knows is `fenced` plus the [`SelfFenceTimer`]: it
/// stops serving when heartbeat acks stop, not when ZK says so.
struct Host {
    kv: KvServer,
    lease: Option<ServerLease>,
    process_up: bool,
    fenced: bool,
    fence: SelfFenceTimer,
}

impl Host {
    /// Whether the server would accept work right now, *by its own
    /// lights*: the process is up and it has not self-fenced. A server
    /// whose ZK session quietly expired behind a partition still says
    /// yes — that is the §3.2 hazard self-fencing exists to close.
    fn serving(&self) -> bool {
        self.process_up && !self.fenced
    }
}

/// The chaos simulation world.
pub struct ChaosWorld {
    cfg: ChaosConfig,
    zk: ZkStore,
    cp: HaControlPlane,
    spec: Rc<ShardingSpec>,
    hosts: BTreeMap<ServerId, Host>,
    partitions: Vec<Partition>,
    plan: Vec<(SimTime, Fault)>,
    net: SimNet,
    oracle: Oracle,
    /// Client-visible shard→primary map, refreshed periodically.
    router: BTreeMap<ShardId, ServerId>,
    /// ZooKeeper's view of each server's last heartbeat.
    last_beat: BTreeMap<ServerId, SimTime>,
    /// Correlation ids of control-plane RPCs awaiting an answer.
    outstanding: BTreeMap<u64, (ServerId, ServerRpc)>,
    /// Correlation ids already executed at a server, with the recorded
    /// outcome. A duplicated request copy must answer from here instead
    /// of re-dispatching (exactly-once apply per command attempt): a
    /// late duplicate of an `AddShard` landing after a subsequent
    /// `DropShard` would otherwise re-create hosting state the
    /// orchestrator believes is gone.
    rpc_applied: BTreeMap<u64, bool>,
    next_rpc: u64,
    next_req: u64,
    /// Monotone write counter: the value stored for every put and the
    /// tag the oracle checks reads against.
    write_tag: u64,
    /// Counters.
    pub stats: ChaosStats,
    /// Recorded time series (placement, traffic, failures).
    pub trace: TraceLog,
    /// Mini-SM ids crashed at least once.
    pub crashed_minisms: BTreeSet<u32>,
    /// Server ids whose bare session expiry was injected.
    pub expired_sessions: BTreeSet<u32>,
    /// Completed control-plane recoveries, in milliseconds.
    pub recoveries_ms: Vec<f64>,
    /// Start of the oldest unfinished recovery, if any.
    recovering_since: Option<SimTime>,
}

fn loc(s: u32) -> Location {
    Location {
        region: RegionId(0),
        datacenter: 0,
        rack: s,
        machine: MachineId(s),
    }
}

fn orch_config() -> OrchestratorConfig {
    OrchestratorConfig {
        graceful_migration: true,
        move_caps: MoveCaps::default(),
        alloc: AllocConfig::new(vec![Metric::ShardCount.id()]),
        skip_cutover_ack: false,
    }
}

impl ChaosWorld {
    /// Builds the world with its plan derived from the config: the
    /// covering plan when `cfg.profile` is `None`, the profile's DST
    /// plan otherwise.
    pub fn new(cfg: ChaosConfig) -> Self {
        let mut world = Self::bootstrap(cfg);
        let n_minisms = world.cp.running_minisms().len() as u32;
        world.plan = match cfg.profile {
            None => fault_plan(&FaultPlanConfig::covering(cfg.seed, cfg.servers, n_minisms)),
            Some(p) => fault_plan(&p.config(cfg.seed, cfg.servers, n_minisms)),
        };
        world
    }

    /// Builds the world with an explicit fault plan — the replay/shrink
    /// path, where the plan is an edited copy rather than a fresh
    /// derivation from the seed.
    pub fn new_with_plan(cfg: ChaosConfig, plan: Vec<(SimTime, Fault)>) -> Self {
        let mut world = Self::bootstrap(cfg);
        world.plan = plan;
        world
    }

    /// Control plane, leased servers, deployed partitions. Watch events
    /// raised during setup are delivered synchronously (the world is
    /// not running yet, so there is no one to race with).
    fn bootstrap(cfg: ChaosConfig) -> Self {
        let mut zk = ZkStore::new();
        let (mut cp, setup_events) = HaControlPlane::new(
            &mut zk,
            orch_config(),
            LoadVector::single(Metric::ShardCount.id(), 1000.0),
            4,
        )
        .expect("fresh ZK accepts the base znodes");
        let app = AppId(0);
        cp.register_app(app, AppPolicy::primary_only());

        let spec = Rc::new(ShardingSpec::uniform_u64(cfg.shards));
        let external = Rc::new(RefCell::new(ExternalStore::new()));
        let mut hosts = BTreeMap::new();
        let mut pending = setup_events;
        let server_ids: Vec<ServerId> = (0..cfg.servers).map(ServerId).collect();
        for &s in &server_ids {
            cp.register_server(&mut zk, s, loc(s.raw()));
            let (lease, events) =
                ServerLease::register(&mut zk, s).expect("fresh session registers");
            pending.extend(events);
            hosts.insert(
                s,
                Host {
                    kv: KvServer::new(s, spec.clone(), external.clone()),
                    lease: Some(lease),
                    process_up: true,
                    fenced: false,
                    fence: SelfFenceTimer::new(SimTime::ZERO, cfg.self_fence_timeout),
                },
            );
        }

        let shard_ids: Vec<ShardId> = (0..cfg.shards).map(ShardId).collect();
        let mut mgr = ApplicationManager::new(4);
        let partitions = mgr.partition_app(app, &server_ids, &shard_ids);
        for p in &partitions {
            let events = cp
                .deploy_partition(&mut zk, p)
                .expect("deploy on a healthy fleet");
            pending.extend(events);
        }
        // Drain setup watches synchronously so every one-shot watch is
        // re-armed before the event loop starts, then settle the
        // initial placement (deploy completes before the experiment).
        let mut guard = 0;
        while let Some(e) = pending.pop() {
            guard += 1;
            assert!(guard < 10_000, "setup watch storm");
            pending.extend(cp.handle_event(&mut zk, &e));
        }
        for _round in 0..200 {
            let cmds = cp.take_commands();
            if cmds.is_empty() {
                break;
            }
            for (_pid, cmd) in cmds {
                if let OrchCommand::Rpc { server, rpc } = cmd {
                    let ok = hosts
                        .get_mut(&server)
                        .map(|h| rpc.dispatch(&mut h.kv).is_ok())
                        .unwrap_or(false);
                    let acks = if ok {
                        cp.rpc_acked(&mut zk, server, rpc)
                    } else {
                        cp.rpc_failed(&mut zk, server, rpc)
                    };
                    pending.extend(acks);
                }
            }
            while let Some(e) = pending.pop() {
                guard += 1;
                assert!(guard < 10_000, "setup watch storm");
                pending.extend(cp.handle_event(&mut zk, &e));
            }
        }

        let latency_ms = cfg.rpc_latency.as_millis_f64();
        let last_beat = server_ids.iter().map(|&s| (s, SimTime::ZERO)).collect();
        let mut world = Self {
            cfg,
            zk,
            cp,
            spec,
            hosts,
            partitions,
            plan: Vec::new(),
            net: SimNet::new(LatencyModel::uniform(1, latency_ms, latency_ms), cfg.seed),
            oracle: Oracle::new(),
            router: BTreeMap::new(),
            last_beat,
            outstanding: BTreeMap::new(),
            rpc_applied: BTreeMap::new(),
            next_rpc: 0,
            next_req: 0,
            write_tag: 0,
            stats: ChaosStats::default(),
            trace: TraceLog::new(),
            crashed_minisms: BTreeSet::new(),
            expired_sessions: BTreeSet::new(),
            recoveries_ms: Vec::new(),
            recovering_since: None,
        };
        world.refresh_router();
        world
    }

    /// Number of mini-SM processes currently running.
    pub fn running_minisms(&self) -> usize {
        self.cp.running_minisms().len()
    }

    /// Control-plane activity counters.
    pub fn ha_stats(&self) -> HaStats {
        self.cp.stats()
    }

    /// The invariant oracle's current state.
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// True when every shard has a primary and no migration is stuck.
    pub fn converged(&mut self) -> bool {
        self.cp.fully_placed() && self.cp.in_flight_total() == 0
    }

    /// Shards currently missing a primary (diagnostics).
    pub fn unplaced_count(&mut self) -> usize {
        self.cp.unplaced().len()
    }

    fn refresh_router(&mut self) {
        let partitions = self.partitions.clone();
        for p in &partitions {
            if let Some(orch) = self.cp.orchestrator(p.id) {
                for &shard in &p.shards {
                    match orch.assignment().primary_of(shard) {
                        Some(server) => {
                            self.router.insert(shard, server);
                        }
                        None => {
                            self.router.remove(&shard);
                        }
                    }
                }
            }
        }
    }

    /// Queues watch notifications for delivery over the ordered session
    /// channel — a real ZK client's event thread never drops or
    /// reorders notifications while the session lives.
    fn dispatch_zk(&mut self, events: Vec<WatchEvent>, ctx: &mut Ctx<'_, ChaosEvent>) {
        let delay = self.net.ordered_delay(Endpoint::Zk, Endpoint::ControlPlane);
        for event in events {
            ctx.schedule_in(delay, ChaosEvent::ZkNotify(event));
        }
    }

    /// Sends freshly minted orchestrator commands out as RPCs through
    /// the net, each with a correlation id and a give-up timer.
    fn flush_commands(&mut self, ctx: &mut Ctx<'_, ChaosEvent>) {
        for (_pid, cmd) in self.cp.take_commands() {
            if let OrchCommand::Rpc { server, rpc } = cmd {
                self.next_rpc += 1;
                let id = self.next_rpc;
                self.outstanding.insert(id, (server, rpc));
                let t = self
                    .net
                    .transmit(Endpoint::ControlPlane, Endpoint::Server(server.raw()));
                for d in t.copies {
                    ctx.schedule_in(d, ChaosEvent::RpcSend { id, server, rpc });
                }
                ctx.schedule_in(self.cfg.rpc_timeout, ChaosEvent::RpcTimeout { id });
            }
        }
    }

    fn client_tick(&mut self, client: u32, ctx: &mut Ctx<'_, ChaosEvent>) {
        if ctx.now() < self.cfg.traffic_end {
            ctx.schedule_in(self.cfg.request_interval, ChaosEvent::ClientTick(client));
        }
        let key = if self.cfg.key_space > 0 {
            ctx.rng().range_u64(0, self.cfg.key_space)
        } else {
            ctx.rng().next_u64()
        };
        let write = ctx.rng().chance(0.5);
        let Some(shard) = self.spec.shard_for(&AppKey::from_u64(key)) else {
            return;
        };
        self.next_req += 1;
        let req = Req {
            id: self.next_req,
            client,
            key,
            write,
            shard,
            attempts: 1,
            sent_at: ctx.now(),
        };
        self.oracle.request_issued(req.id);
        self.route(req, ctx);
    }

    /// Routes (or re-routes) a request via the client-visible map and
    /// transmits it; a message the net eats surfaces as a client-side
    /// timeout and retry.
    fn route(&mut self, req: Req, ctx: &mut Ctx<'_, ChaosEvent>) {
        if self.oracle.already_served(req.id) {
            return; // a duplicated copy already completed this request
        }
        let Some(target) = self.router.get(&req.shard).copied() else {
            self.fail_or_retry(req, ctx);
            return;
        };
        let t = self
            .net
            .transmit(Endpoint::Client(req.client), Endpoint::Server(target.raw()));
        if t.copies.is_empty() {
            self.fail_or_retry(req, ctx);
            return;
        }
        for d in t.copies {
            ctx.schedule_in(
                d,
                ChaosEvent::Deliver {
                    req,
                    target,
                    hops: 0,
                },
            );
        }
    }

    fn fail_or_retry(&mut self, req: Req, ctx: &mut Ctx<'_, ChaosEvent>) {
        if self.oracle.already_served(req.id) {
            return;
        }
        if req.attempts < self.cfg.max_attempts {
            self.stats.retries += 1;
            ctx.schedule_in(
                self.cfg.retry_delay,
                ChaosEvent::Retry {
                    req: Req {
                        attempts: req.attempts + 1,
                        ..req
                    },
                },
            );
        } else {
            self.stats.dropped += 1;
            self.oracle.request_dropped(ctx.now(), req.id);
        }
    }

    /// Servers that would serve an unforwarded request for `shard`
    /// right now. Process-up is the only qualifier — a zombie whose ZK
    /// session expired behind a partition still counts, which is
    /// exactly what self-fencing must prevent.
    fn willing_count(&self, shard: ShardId) -> usize {
        self.hosts
            .values()
            .filter(|h| h.process_up && h.kv.admit(shard, false) == AppResponse::Serve)
            .count()
    }

    fn deliver(&mut self, req: Req, target: ServerId, hops: u8, ctx: &mut Ctx<'_, ChaosEvent>) {
        if self.oracle.already_served(req.id) {
            return;
        }
        let serving = self.hosts.get(&target).map(Host::serving).unwrap_or(false);
        if !serving {
            self.fail_or_retry(req, ctx);
            return;
        }
        let response = self
            .hosts
            .get(&target)
            .map(|h| h.kv.admit(req.shard, hops > 0))
            .unwrap_or(AppResponse::NotMine);
        match response {
            AppResponse::Serve => self.serve(req, target, ctx),
            AppResponse::Forward(next) if hops < 4 => {
                self.stats.forwards += 1;
                let t = self
                    .net
                    .transmit(Endpoint::Server(target.raw()), Endpoint::Server(next.raw()));
                if t.copies.is_empty() {
                    self.fail_or_retry(req, ctx);
                    return;
                }
                for d in t.copies {
                    ctx.schedule_in(
                        d,
                        ChaosEvent::Deliver {
                            req,
                            target: next,
                            hops: hops + 1,
                        },
                    );
                }
            }
            AppResponse::Forward(_) | AppResponse::NotMine => {
                self.fail_or_retry(req, ctx);
            }
        }
    }

    fn serve(&mut self, req: Req, target: ServerId, ctx: &mut Ctx<'_, ChaosEvent>) {
        let now = ctx.now();
        // The §3.2 invariant is checked at the moment it matters: when
        // a request is actually served.
        let willing = self.willing_count(req.shard);
        self.oracle
            .primaries_observed(now, req.shard.raw(), willing);
        let app_key = AppKey::from_u64(req.key);
        if req.write {
            self.write_tag += 1;
            let tag = self.write_tag;
            if let Some(host) = self.hosts.get_mut(&target) {
                host.kv.put(req.shard, app_key, tag.to_be_bytes().to_vec());
            }
            self.oracle.write_acked(req.key, tag);
        } else {
            let observed = self
                .hosts
                .get_mut(&target)
                .and_then(|h| h.kv.get(req.shard, &app_key))
                .and_then(|v| <[u8; 8]>::try_from(v.as_slice()).ok())
                .map(u64::from_be_bytes);
            self.oracle.read_served(now, req.key, observed);
        }
        self.oracle.request_served(req.id);
        self.stats.served += 1;
        let latency_ms = now.since(req.sent_at).as_millis_f64();
        self.trace.record("latency_ms", now, latency_ms);
    }

    fn rpc_send(
        &mut self,
        id: u64,
        server: ServerId,
        rpc: ServerRpc,
        ctx: &mut Ctx<'_, ChaosEvent>,
    ) {
        // A dead process never applies anything; a self-fenced server
        // refuses shard placements (§3.2) until it re-registers. Either
        // way the connection attempt fails fast and the failure travels
        // back through the net like any other message. A duplicated
        // copy of an already-executed command answers with the recorded
        // outcome instead of re-dispatching (exactly-once apply per
        // command attempt, as a request id gives a real RPC layer).
        let ok = if let Some(&ok) = self.rpc_applied.get(&id) {
            ok
        } else {
            let ok = match self.hosts.get_mut(&server) {
                Some(h) if h.serving() => rpc.dispatch(&mut h.kv).is_ok(),
                _ => false,
            };
            self.rpc_applied.insert(id, ok);
            if ok {
                // The server's hosted-shard set just changed — the
                // instant a dual primary can first exist. Sweep now,
                // not at the next poll.
                ctx.state_changed();
            }
            ok
        };
        let t = self
            .net
            .transmit(Endpoint::Server(server.raw()), Endpoint::ControlPlane);
        for d in t.copies {
            ctx.schedule_in(
                d,
                ChaosEvent::RpcResult {
                    id,
                    server,
                    rpc,
                    ok,
                },
            );
        }
    }

    fn rpc_result(
        &mut self,
        id: u64,
        server: ServerId,
        rpc: ServerRpc,
        ok: bool,
        ctx: &mut Ctx<'_, ChaosEvent>,
    ) {
        if self.outstanding.remove(&id).is_none() {
            return; // duplicate copy or a result the timeout already reaped
        }
        let events = if ok {
            self.cp.rpc_acked(&mut self.zk, server, rpc)
        } else {
            self.cp.rpc_failed(&mut self.zk, server, rpc)
        };
        self.dispatch_zk(events, ctx);
        self.flush_commands(ctx);
        ctx.state_changed();
    }

    fn rpc_timeout(&mut self, id: u64, ctx: &mut Ctx<'_, ChaosEvent>) {
        let Some((server, rpc)) = self.outstanding.remove(&id) else {
            return; // answered in time
        };
        self.stats.rpc_timeouts += 1;
        let events = self.cp.rpc_failed(&mut self.zk, server, rpc);
        self.dispatch_zk(events, ctx);
        self.flush_commands(ctx);
        ctx.state_changed();
    }

    /// One server-side heartbeat step: check the self-fence deadline,
    /// then beat / resign / re-register as the state demands. All
    /// outbound messages go through the net, so a partitioned server's
    /// beats genuinely vanish.
    fn heartbeat_tick(&mut self, s: u32, ctx: &mut Ctx<'_, ChaosEvent>) {
        if ctx.now() < self.cfg.end {
            ctx.schedule_in(self.cfg.heartbeat_interval, ChaosEvent::HeartbeatTick(s));
        }
        let server = ServerId(s);
        let now = ctx.now();
        let Some(host) = self.hosts.get_mut(&server) else {
            return;
        };
        if !host.process_up {
            return;
        }
        if !host.fenced {
            if host.lease.is_some() && host.fence.must_fence(now) {
                // §3.2: heartbeat acks stopped long enough ago that a
                // replacement primary may be imminent — wipe now, ask
                // questions later. The DST mutation keeps serving
                // instead, which the oracle must catch.
                if self.cfg.disable_self_fencing {
                    // intentionally broken: stale primary keeps serving
                } else {
                    host.kv.restart();
                    host.fenced = true;
                    self.stats.self_fences += 1;
                    ctx.state_changed();
                    return;
                }
            }
            if host.lease.is_some() {
                let t = self.net.transmit(Endpoint::Server(s), Endpoint::Zk);
                for d in t.copies {
                    ctx.schedule_in(d, ChaosEvent::BeatArrive(s));
                }
            }
            return;
        }
        // Fenced: resign the still-live session so failover can start
        // without waiting out the ZK timeout, or re-register once the
        // old session is gone. Both can be eaten by a partition; the
        // next tick retries.
        if host.lease.is_some() {
            let t = self.net.transmit(Endpoint::Server(s), Endpoint::Zk);
            for d in t.copies {
                ctx.schedule_in(d, ChaosEvent::ResignArrive(s));
            }
        } else {
            let t = self.net.transmit(Endpoint::Server(s), Endpoint::Zk);
            for d in t.copies {
                ctx.schedule_in(d, ChaosEvent::RegisterArrive(s));
            }
        }
    }

    fn beat_arrive(&mut self, s: u32, ctx: &mut Ctx<'_, ChaosEvent>) {
        let server = ServerId(s);
        let Some(host) = self.hosts.get(&server) else {
            return;
        };
        if host.lease.is_none() {
            return; // stale beat from a session ZK already expired
        }
        self.last_beat.insert(server, ctx.now());
        let t = self.net.transmit(Endpoint::Zk, Endpoint::Server(s));
        for d in t.copies {
            ctx.schedule_in(d, ChaosEvent::BeatAck(s));
        }
    }

    fn beat_ack(&mut self, s: u32, ctx: &mut Ctx<'_, ChaosEvent>) {
        let now = ctx.now();
        if let Some(host) = self.hosts.get_mut(&ServerId(s)) {
            host.fence.ack(now);
        }
    }

    fn resign_arrive(&mut self, s: u32, ctx: &mut Ctx<'_, ChaosEvent>) {
        let Some(host) = self.hosts.get_mut(&ServerId(s)) else {
            return;
        };
        let Some(lease) = host.lease.take() else {
            return; // ZK's own expiry won the race
        };
        let events = lease.expire(&mut self.zk);
        self.dispatch_zk(events, ctx);
        ctx.state_changed();
    }

    fn register_arrive(&mut self, s: u32, ctx: &mut Ctx<'_, ChaosEvent>) {
        let server = ServerId(s);
        let now = ctx.now();
        let ready = self
            .hosts
            .get(&server)
            .map(|h| h.process_up && h.lease.is_none())
            .unwrap_or(false);
        if !ready {
            return; // raced a planned SessionRestore, or crashed meanwhile
        }
        if let Ok((lease, events)) = ServerLease::register(&mut self.zk, server) {
            if let Some(host) = self.hosts.get_mut(&server) {
                host.lease = Some(lease);
                host.fenced = false;
                host.fence.ack(now);
            }
            self.last_beat.insert(server, now);
            self.dispatch_zk(events, ctx);
            ctx.state_changed();
        }
    }

    fn apply_fault(&mut self, fault: Fault, ctx: &mut Ctx<'_, ChaosEvent>) {
        match fault {
            Fault::ServerCrash(i) => {
                let s = ServerId(i);
                let Some(host) = self.hosts.get_mut(&s) else {
                    return;
                };
                if !host.process_up {
                    return;
                }
                host.process_up = false;
                host.kv.restart();
                host.fenced = false;
                let expired = host.lease.take();
                self.stats.server_crashes += 1;
                if let Some(lease) = expired {
                    // The process died; its TCP connection to ZK dies
                    // with it and the session expires immediately.
                    let events = lease.expire(&mut self.zk);
                    self.dispatch_zk(events, ctx);
                }
            }
            Fault::ServerRestart(i) => {
                let s = ServerId(i);
                let up = self.hosts.get(&s).map(|h| h.process_up).unwrap_or(true);
                if up {
                    return;
                }
                match ServerLease::register(&mut self.zk, s) {
                    Ok((lease, events)) => {
                        let now = ctx.now();
                        if let Some(host) = self.hosts.get_mut(&s) {
                            host.process_up = true;
                            host.lease = Some(lease);
                            host.fenced = false;
                            host.fence = SelfFenceTimer::new(now, self.cfg.self_fence_timeout);
                        }
                        self.last_beat.insert(s, now);
                        self.dispatch_zk(events, ctx);
                    }
                    Err(_) => {
                        // Old session still registered; the restart
                        // retries on the next plan entry (none in the
                        // covering plan — expiry always precedes this).
                    }
                }
            }
            Fault::SessionExpiry(i) => {
                let s = ServerId(i);
                let Some(host) = self.hosts.get_mut(&s) else {
                    return;
                };
                if !host.process_up || host.lease.is_none() {
                    return;
                }
                // §3.2: the ZK client library tells the server its
                // session is gone, and the server self-fences — wipes
                // its hosting state immediately, before the control
                // plane even observes the expiry.
                host.kv.restart();
                host.fenced = true;
                let expired = host.lease.take();
                self.stats.session_expiries += 1;
                self.expired_sessions.insert(i);
                if let Some(lease) = expired {
                    let events = lease.expire(&mut self.zk);
                    self.dispatch_zk(events, ctx);
                }
            }
            Fault::SessionRestore(i) => {
                let s = ServerId(i);
                let needs = self
                    .hosts
                    .get(&s)
                    .map(|h| h.process_up && h.lease.is_none())
                    .unwrap_or(false);
                if !needs {
                    return; // the heartbeat loop already re-registered
                }
                if let Ok((lease, events)) = ServerLease::register(&mut self.zk, s) {
                    let now = ctx.now();
                    if let Some(host) = self.hosts.get_mut(&s) {
                        host.lease = Some(lease);
                        host.fenced = false;
                        host.fence.ack(now);
                    }
                    self.last_beat.insert(s, now);
                    self.dispatch_zk(events, ctx);
                }
            }
            Fault::MiniSmCrash(i) => {
                let id = MiniSmId(i);
                if !self.cp.running_minisms().contains(&id) {
                    return;
                }
                self.stats.minism_crashes += 1;
                self.crashed_minisms.insert(i);
                if self.recovering_since.is_none() {
                    self.recovering_since = Some(ctx.now());
                }
                let events = self.cp.crash_minism(&mut self.zk, id);
                self.dispatch_zk(events, ctx);
            }
            Fault::MiniSmRestart(i) => {
                let id = MiniSmId(i);
                if let Ok(events) = self.cp.restart_minism(&mut self.zk, id) {
                    self.dispatch_zk(events, ctx);
                }
            }
            Fault::PartitionStart(spec) => {
                self.net.start_partition(spec);
                self.stats.net_partitions += 1;
                if self.recovering_since.is_none() {
                    self.recovering_since = Some(ctx.now());
                }
            }
            Fault::PartitionHeal => self.net.heal_partition(),
            Fault::NetDegrade { drop_pct, dup_pct } => self
                .net
                .set_degradation(f64::from(drop_pct) / 100.0, f64::from(dup_pct) / 100.0),
            Fault::NetHeal => self.net.heal_degradation(),
        }
    }

    /// The oracle sweep body, run by the engine (change-driven plus a
    /// coarse safety net — see [`World::sweep`]): ZK-side session
    /// expiry, the dual-primary audit, recovery bookkeeping, and trace
    /// points. Gated to the experiment window: after `end` the periodic
    /// heartbeats have stopped by design, and sweeping the drain would
    /// mass-expire healthy sessions that are merely no longer beating.
    fn scan(&mut self, ctx: &mut Ctx<'_, ChaosEvent>) {
        let now = ctx.now();
        if now > self.cfg.end {
            return;
        }
        // ZooKeeper-side session expiry: a server whose heartbeats
        // stopped arriving (partition, not crash) loses its ephemeral,
        // which is what lets the control plane fail its shards over.
        let timeout = self.cfg.zk_session_timeout;
        let silent: Vec<ServerId> = self
            .hosts
            .iter()
            .filter(|(s, h)| {
                h.lease.is_some()
                    && self
                        .last_beat
                        .get(s)
                        .map(|&b| now.since(b) > timeout)
                        .unwrap_or(true)
            })
            .map(|(s, _)| *s)
            .collect();
        for s in silent {
            if let Some(lease) = self.hosts.get_mut(&s).and_then(|h| h.lease.take()) {
                self.stats.zk_expiries += 1;
                let events = lease.expire(&mut self.zk);
                self.dispatch_zk(events, ctx);
            }
        }
        // Dual-primary sweep: the continuous per-serve check sees every
        // served request; this sweep also sees shards with no traffic.
        for shard in (0..self.cfg.shards).map(ShardId) {
            let willing = self.willing_count(shard);
            self.oracle.primaries_observed(now, shard.raw(), willing);
            if willing > 1 {
                self.stats.dual_primary += 1;
            }
        }
        let unplaced = self.cp.unplaced().len();
        let in_flight = self.cp.in_flight_total();
        if let Some(started) = self.recovering_since {
            if unplaced == 0 && in_flight == 0 && self.net.partition().is_none() {
                self.recoveries_ms.push(now.since(started).as_millis_f64());
                self.recovering_since = None;
            }
        }
        let down = self
            .hosts
            .values()
            .filter(|h| !h.process_up || h.fenced || h.lease.is_none())
            .count();
        self.trace.record("unplaced", now, unplaced as f64);
        self.trace.record("in_flight", now, in_flight as f64);
        self.trace.record("down_servers", now, down as f64);
        self.trace
            .record("served_total", now, self.stats.served as f64);
        self.trace
            .record("dropped_total", now, self.stats.dropped as f64);
        self.trace
            .record("minisms_up", now, self.cp.running_minisms().len() as f64);
        self.trace
            .record("net_blocked", now, self.net.stats().blocked as f64);
    }

    /// Quiescence checks, run once after the event queue drains: the
    /// registry must match its durable snapshot, every shard must be
    /// placed with no stuck migrations, the client-visible router (as
    /// last refreshed by its periodic task) must agree with the
    /// assignment, and no request may have silently vanished.
    fn finalize(&mut self) {
        let at = self.cfg.end;
        let in_memory = self.cp.registry.snapshot();
        let durable = self.zk.get(paths::REGISTRY).ok().map(|(d, _)| d);
        self.oracle
            .quiescent_registry(at, &in_memory, durable.as_deref());
        let unplaced = self.cp.unplaced().len();
        let in_flight = self.cp.in_flight_total();
        let mut divergence = 0usize;
        for p in &self.partitions {
            if let Some(orch) = self.cp.orchestrator(p.id) {
                for &shard in &p.shards {
                    if orch.assignment().primary_of(shard) != self.router.get(&shard).copied() {
                        divergence += 1;
                    }
                }
            }
        }
        self.oracle
            .convergence_check(at, unplaced, in_flight, divergence);
        self.oracle.quiescent_drain_check(at);
    }
}

impl World for ChaosWorld {
    type Event = ChaosEvent;

    fn handle(&mut self, ctx: &mut Ctx<'_, ChaosEvent>, event: ChaosEvent) {
        match event {
            ChaosEvent::ClientTick(c) => self.client_tick(c, ctx),
            ChaosEvent::Deliver { req, target, hops } => self.deliver(req, target, hops, ctx),
            ChaosEvent::Retry { req } => {
                // Re-route via the freshest map the client can see.
                self.refresh_router();
                self.route(req, ctx);
            }
            ChaosEvent::RpcSend { id, server, rpc } => self.rpc_send(id, server, rpc, ctx),
            ChaosEvent::RpcResult {
                id,
                server,
                rpc,
                ok,
            } => self.rpc_result(id, server, rpc, ok, ctx),
            ChaosEvent::RpcTimeout { id } => self.rpc_timeout(id, ctx),
            ChaosEvent::ZkNotify(watch) => {
                let events = self.cp.handle_event(&mut self.zk, &watch);
                self.dispatch_zk(events, ctx);
                self.flush_commands(ctx);
                ctx.state_changed();
            }
            ChaosEvent::FaultHit(i) => {
                if let Some((_, fault)) = self.plan.get(i).copied() {
                    self.apply_fault(fault, ctx);
                    self.flush_commands(ctx);
                    ctx.state_changed();
                }
            }
            ChaosEvent::RouterRefresh => {
                if ctx.now() < self.cfg.end {
                    ctx.schedule_in(SimDuration::from_millis(1000), ChaosEvent::RouterRefresh);
                }
                self.refresh_router();
            }
            ChaosEvent::HeartbeatTick(s) => self.heartbeat_tick(s, ctx),
            ChaosEvent::BeatArrive(s) => self.beat_arrive(s, ctx),
            ChaosEvent::BeatAck(s) => self.beat_ack(s, ctx),
            ChaosEvent::ResignArrive(s) => self.resign_arrive(s, ctx),
            ChaosEvent::RegisterArrive(s) => self.register_arrive(s, ctx),
        }
    }

    fn sweep(&mut self, ctx: &mut Ctx<'_, ChaosEvent>) {
        self.scan(ctx);
    }

    fn sweep_interval(&self) -> Option<SimDuration> {
        // Coarse safety net only: the interesting sweeps are the
        // change-driven ones right after placement- or liveness-
        // affecting events. ZK session expiry bounds how coarse this
        // may get — well within a second of the 8s timeout is plenty.
        Some(SimDuration::from_secs(1))
    }
}

/// Outcome of one chaos run — everything the acceptance checks need.
#[derive(Debug)]
pub struct ChaosReport {
    /// Traffic and fault counters.
    pub stats: ChaosStats,
    /// Control-plane counters (failovers, restores, fenced writes).
    pub ha: HaStats,
    /// Network delivery counters.
    pub net: NetStats,
    /// Invariant violations the oracle observed (empty on a safe run).
    pub violations: Vec<OracleViolation>,
    /// Total violations, uncapped (the list above is capped).
    pub total_violations: u64,
    /// Mini-SM ids crashed at least once.
    pub crashed_minisms: BTreeSet<u32>,
    /// Servers whose bare session expiry was injected.
    pub expired_sessions: BTreeSet<u32>,
    /// Completed control-plane recoveries, milliseconds each.
    pub recoveries_ms: Vec<f64>,
    /// Mini-SMs that existed at deployment (coverage denominator).
    pub initial_minisms: usize,
    /// True when, at the end, every shard was placed with no stuck
    /// migrations.
    pub converged: bool,
    /// Shards lacking a primary at the end (diagnostics; 0 expected).
    pub unplaced: usize,
    /// The fault plan the run executed (replay/shrink input).
    pub plan: Vec<(SimTime, Fault)>,
    /// The run's time-series trace, rendered as CSV (5 s buckets) —
    /// byte-identical across reruns of the same seed and plan.
    pub trace_csv: String,
}

/// Runs one seeded chaos experiment to completion and reports. The
/// fault plan derives from the config (covering or profile).
pub fn run_chaos(cfg: ChaosConfig) -> ChaosReport {
    run_chaos_queued(cfg, QueueKind::default())
}

/// [`run_chaos`] on an explicit engine queue implementation — the
/// differential-testing entry point (both kinds must produce
/// byte-identical reports).
pub fn run_chaos_queued(cfg: ChaosConfig, kind: QueueKind) -> ChaosReport {
    run_world(ChaosWorld::new(cfg), cfg, kind)
}

/// Runs a chaos experiment with an explicit fault plan — the
/// replay/shrink path. The plan must be time-sorted.
pub fn run_chaos_with_plan(cfg: ChaosConfig, plan: Vec<(SimTime, Fault)>) -> ChaosReport {
    run_chaos_with_plan_queued(cfg, plan, QueueKind::default())
}

/// [`run_chaos_with_plan`] on an explicit engine queue implementation.
pub fn run_chaos_with_plan_queued(
    cfg: ChaosConfig,
    plan: Vec<(SimTime, Fault)>,
    kind: QueueKind,
) -> ChaosReport {
    run_world(ChaosWorld::new_with_plan(cfg, plan), cfg, kind)
}

fn run_world(world: ChaosWorld, cfg: ChaosConfig, kind: QueueKind) -> ChaosReport {
    let plan_times: Vec<SimTime> = world.plan.iter().map(|(at, _)| *at).collect();
    let mut sim = Simulation::with_queue(world, cfg.seed, kind);
    for (i, at) in plan_times.iter().enumerate() {
        sim.schedule_at(*at, ChaosEvent::FaultHit(i));
    }
    for c in 0..cfg.clients {
        sim.schedule_at(SimTime::from_secs(5), ChaosEvent::ClientTick(c));
    }
    sim.schedule_at(SimTime::from_secs(1), ChaosEvent::RouterRefresh);
    for s in 0..cfg.servers {
        // Staggered start so the fleet's heartbeats don't all land on
        // the same instant.
        sim.schedule_at(
            SimTime::from_millis(1_000 + 7 * u64::from(s)),
            ChaosEvent::HeartbeatTick(s),
        );
    }
    sim.run_until(cfg.end);
    // Periodic events stop at `end`; whatever remains is in-flight
    // requests and timers draining against a healthy fleet.
    sim.run();
    let mut world = sim.into_world();
    world.finalize();
    let converged = world.converged();
    ChaosReport {
        stats: world.stats,
        ha: world.ha_stats(),
        net: world.net.stats(),
        violations: world.oracle.violations().to_vec(),
        total_violations: world.oracle.total_violations(),
        crashed_minisms: world.crashed_minisms.clone(),
        expired_sessions: world.expired_sessions.clone(),
        recoveries_ms: world.recoveries_ms.clone(),
        initial_minisms: world
            .plan
            .iter()
            .filter_map(|(_, f)| match f {
                Fault::MiniSmCrash(m) => Some(*m),
                _ => None,
            })
            .collect::<BTreeSet<u32>>()
            .len(),
        converged,
        unplaced: world.unplaced_count(),
        plan: world.plan.clone(),
        trace_csv: world.trace.to_csv(5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_bootstraps_fully_placed() {
        let mut w = ChaosWorld::new(ChaosConfig::covering(1));
        // Initial placement happens synchronously at deploy; commands
        // are still in flight but every shard has an assignment.
        assert!(w.cp.fully_placed(), "unplaced: {:?}", w.cp.unplaced());
        assert!(w.running_minisms() >= 2, "want several mini-SMs");
        assert_eq!(w.router.len(), w.cfg.shards as usize);
    }

    #[test]
    fn plan_targets_every_initial_minism() {
        let w = ChaosWorld::new(ChaosConfig::covering(7));
        let targeted: BTreeSet<u32> = w
            .plan
            .iter()
            .filter_map(|(_, f)| match f {
                Fault::MiniSmCrash(m) => Some(*m),
                _ => None,
            })
            .collect();
        let running: BTreeSet<u32> = w.cp.running_minisms().iter().map(|m| m.raw()).collect();
        assert_eq!(targeted, running, "dense ids let the plan cover all");
    }

    #[test]
    fn dst_profile_plans_inject_their_net_faults() {
        let w = ChaosWorld::new(ChaosConfig::dst(3, FaultProfile::AsymPartition));
        let parts = w
            .plan
            .iter()
            .filter(|(_, f)| matches!(f, Fault::PartitionStart(p) if p.asym))
            .count();
        assert!(parts >= 1, "asym profile must schedule asym partitions");
    }

    #[test]
    fn sym_partition_run_self_fences_and_stays_safe() {
        // One full DST run under symmetric partitions: servers behind
        // the partition must self-fence before ZK expires their
        // sessions, and the oracle must find nothing.
        let r = run_chaos(ChaosConfig::dst(5, FaultProfile::SymPartition));
        assert!(r.net.blocked > 0, "partition must block real traffic");
        assert!(r.stats.net_partitions >= 1);
        assert!(
            r.stats.self_fences >= 1,
            "islanded servers must self-fence: {:?}",
            r.stats
        );
        assert!(
            r.stats.zk_expiries >= 1,
            "ZK must expire silent sessions: {:?}",
            r.stats
        );
        assert_eq!(
            r.total_violations, 0,
            "oracle must stay clean: {:?}",
            r.violations
        );
        assert!(r.converged, "{} unplaced", r.unplaced);
        assert_eq!(r.stats.dropped, 0, "{:?}", r.stats);
    }
}
