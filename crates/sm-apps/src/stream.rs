//! An AdEvents-like stream processor (§2.5).
//!
//! A primary-only SM application whose shards map 1:1 to data-bus
//! partitions. Each shard consumes its partition and maintains a
//! materialized aggregate (event counts per key) — §2.4 option 3:
//! standard materialized state, rebuilt by replaying the bus from
//! offset 0 whenever the shard lands on a new server. The paper's
//! AdEvents story is that converting these pipelines from static
//! sharding to SM's geo-distributed deployments cut machine usage 67%.

use crate::databus::DataBus;
use crate::forwarding::ShardHost;
use crate::AppResponse;
use sm_core::ShardServer;
use sm_types::{LoadVector, Metric, ReplicaRole, ServerId, ShardId, SmError};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// One stream-processing application server.
#[derive(Debug)]
pub struct StreamServer {
    /// This server's id.
    pub id: ServerId,
    host: ShardHost,
    bus: Rc<RefCell<DataBus>>,
    topic: String,
    /// Per shard: consume offset and the materialized aggregate.
    state: BTreeMap<ShardId, ShardState>,
}

#[derive(Debug, Default)]
struct ShardState {
    offset: u64,
    /// Event counts keyed by the record's first byte (a stand-in for a
    /// real aggregation key).
    counts: BTreeMap<u8, u64>,
}

impl StreamServer {
    /// Creates a server consuming `topic` on the shared bus. Shard `k`
    /// consumes partition `k`.
    pub fn new(id: ServerId, bus: Rc<RefCell<DataBus>>, topic: impl Into<String>) -> Self {
        Self {
            id,
            host: ShardHost::new(),
            bus,
            topic: topic.into(),
            state: BTreeMap::new(),
        }
    }

    /// Routing decision for a request on `shard`.
    pub fn admit(&self, shard: ShardId, forwarded: bool) -> AppResponse {
        self.host.admit(shard, forwarded)
    }

    /// Consumes up to `max` pending records for one hosted shard,
    /// folding them into the aggregate. Returns records processed.
    pub fn poll(&mut self, shard: ShardId, max: usize) -> Result<usize, SmError> {
        if self.host.role_of(shard).is_none() {
            return Err(SmError::not_found(shard));
        }
        let state = self.state.entry(shard).or_default();
        let bus = self.bus.borrow();
        let batch = bus.consume(&self.topic, shard.raw() as u32, state.offset, max)?;
        let n = batch.len();
        for (offset, record) in batch {
            let key = record.first().copied().unwrap_or(0);
            *state.counts.entry(key).or_insert(0) += 1;
            state.offset = offset + 1;
        }
        Ok(n)
    }

    /// The materialized count for `key` in one shard's aggregate.
    pub fn count(&self, shard: ShardId, key: u8) -> u64 {
        self.state
            .get(&shard)
            .and_then(|s| s.counts.get(&key).copied())
            .unwrap_or(0)
    }

    /// Records consumed so far on `shard` (its offset).
    pub fn offset(&self, shard: ShardId) -> u64 {
        self.state.get(&shard).map(|s| s.offset).unwrap_or(0)
    }

    /// Lag behind the bus end offset.
    pub fn lag(&self, shard: ShardId) -> u64 {
        let end = self
            .bus
            .borrow()
            .end_offset(&self.topic, shard.raw() as u32)
            .unwrap_or(0);
        end.saturating_sub(self.offset(shard))
    }
}

impl ShardServer for StreamServer {
    fn add_shard(&mut self, shard: ShardId, role: ReplicaRole) -> Result<(), SmError> {
        self.host.add_shard(shard, role)?;
        // Materialized state is rebuilt by replaying from offset 0.
        self.state.insert(shard, ShardState::default());
        Ok(())
    }

    fn drop_shard(&mut self, shard: ShardId) -> Result<(), SmError> {
        self.host.drop_shard(shard)?;
        self.state.remove(&shard);
        Ok(())
    }

    fn change_role(
        &mut self,
        shard: ShardId,
        current: ReplicaRole,
        new: ReplicaRole,
    ) -> Result<(), SmError> {
        self.host.change_role(shard, current, new)
    }

    fn prepare_add_shard(
        &mut self,
        shard: ShardId,
        current_owner: ServerId,
        role: ReplicaRole,
    ) -> Result<(), SmError> {
        self.host.prepare_add_shard(shard, current_owner, role)?;
        // Start replaying early so the handover finds a warm aggregate.
        self.state.entry(shard).or_default();
        Ok(())
    }

    fn prepare_drop_shard(
        &mut self,
        shard: ShardId,
        new_owner: ServerId,
        role: ReplicaRole,
    ) -> Result<(), SmError> {
        self.host.prepare_drop_shard(shard, new_owner, role)
    }

    fn report_load(&self) -> Vec<(ShardId, LoadVector)> {
        self.host
            .shards()
            .map(|(shard, _)| {
                let mut v = LoadVector::zero();
                v.set(Metric::ShardCount.id(), 1.0);
                v.set(Metric::Synthetic.id(), self.lag(*shard) as f64);
                (*shard, v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (StreamServer, Rc<RefCell<DataBus>>) {
        let bus = Rc::new(RefCell::new(DataBus::new()));
        bus.borrow_mut().create_topic("ads", 4);
        let srv = StreamServer::new(ServerId(1), bus.clone(), "ads");
        (srv, bus)
    }

    #[test]
    fn consumes_and_aggregates() {
        let (mut srv, bus) = setup();
        srv.add_shard(ShardId(0), ReplicaRole::Primary).unwrap();
        for _ in 0..3 {
            bus.borrow_mut().publish("ads", 0, vec![7]).unwrap();
        }
        bus.borrow_mut().publish("ads", 0, vec![9]).unwrap();
        let n = srv.poll(ShardId(0), 100).unwrap();
        assert_eq!(n, 4);
        assert_eq!(srv.count(ShardId(0), 7), 3);
        assert_eq!(srv.count(ShardId(0), 9), 1);
        assert_eq!(srv.lag(ShardId(0)), 0);
    }

    #[test]
    fn rebuild_after_move_replays_everything() {
        let (mut srv, bus) = setup();
        srv.add_shard(ShardId(1), ReplicaRole::Primary).unwrap();
        for _ in 0..5 {
            bus.borrow_mut().publish("ads", 1, vec![1]).unwrap();
        }
        srv.poll(ShardId(1), 100).unwrap();
        assert_eq!(srv.count(ShardId(1), 1), 5);
        // Shard moves to a new server: state rebuilt from offset 0.
        let mut srv2 = StreamServer::new(ServerId(2), bus.clone(), "ads");
        srv2.add_shard(ShardId(1), ReplicaRole::Primary).unwrap();
        assert_eq!(srv2.offset(ShardId(1)), 0);
        srv2.poll(ShardId(1), 100).unwrap();
        assert_eq!(srv2.count(ShardId(1), 1), 5, "aggregate fully rebuilt");
    }

    #[test]
    fn poll_requires_hosting() {
        let (mut srv, _bus) = setup();
        assert!(srv.poll(ShardId(0), 10).is_err());
    }

    #[test]
    fn lag_reported_as_synthetic_load() {
        let (mut srv, bus) = setup();
        srv.add_shard(ShardId(2), ReplicaRole::Primary).unwrap();
        for _ in 0..7 {
            bus.borrow_mut().publish("ads", 2, vec![0]).unwrap();
        }
        let report = srv.report_load();
        assert_eq!(report[0].1.get(Metric::Synthetic.id()), 7.0);
        srv.poll(ShardId(2), 100).unwrap();
        let report = srv.report_load();
        assert_eq!(report[0].1.get(Metric::Synthetic.id()), 0.0);
    }

    #[test]
    fn incremental_polling_respects_max() {
        let (mut srv, bus) = setup();
        srv.add_shard(ShardId(0), ReplicaRole::Primary).unwrap();
        for _ in 0..10 {
            bus.borrow_mut().publish("ads", 0, vec![0]).unwrap();
        }
        assert_eq!(srv.poll(ShardId(0), 4).unwrap(), 4);
        assert_eq!(srv.offset(ShardId(0)), 4);
        assert_eq!(srv.poll(ShardId(0), 100).unwrap(), 6);
    }
}
