//! Deterministic simulation testing: seed swarms, fault-plan
//! shrinking, and replayable reproducers.
//!
//! A DST run is one seeded chaos experiment ([`crate::run_chaos`]) in
//! the compact [`ChaosConfig::dst`] shape, judged solely by its
//! invariant [`sm_sim::Oracle`]. The swarm runner explores a grid of
//! `(seed, fault profile)` jobs; because every run is a pure function
//! of its config and plan, results are byte-identical no matter how
//! many worker threads execute the grid ([`run_swarm`] reorders nothing
//! — each job's report lands at its input index).
//!
//! When a run fails, [`shrink`] reduces its fault plan to a minimal
//! reproducer: ddmin-style binary-search removal of whole fault groups
//! (a fault and its paired recovery travel together, so every candidate
//! plan is well-formed), then per-group time-window narrowing that
//! binary-searches each surviving recovery toward its fault. The result
//! round-trips through [`repro_to_json`] / [`repro_from_json`] so a
//! failure found by the swarm binary can be replayed in a test or a
//! debugger with nothing but the JSON string.

use crate::chaos::{run_chaos, run_chaos_queued, run_chaos_with_plan, ChaosConfig, ChaosReport};
use sm_sim::faults::{Fault, FaultProfile};
use sm_sim::net::PartitionSpec;
use sm_sim::oracle::InvariantKind;
use sm_sim::QueueKind;
use sm_sim::SimTime;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One cell of the swarm grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DstConfig {
    /// Seed for the run (traffic, plan, and network draws).
    pub seed: u64,
    /// Fault-plan profile to derive the plan from.
    pub profile: FaultProfile,
    /// The documented fencing mutation: when set, servers skip the
    /// §3.2 self-fence and keep serving on stale leases. Used only to
    /// prove the oracle catches the resulting violations.
    pub disable_self_fencing: bool,
}

impl DstConfig {
    /// A healthy (mutation-free) cell.
    pub fn new(seed: u64, profile: FaultProfile) -> Self {
        Self {
            seed,
            profile,
            disable_self_fencing: false,
        }
    }

    fn chaos(&self) -> ChaosConfig {
        let mut cfg = ChaosConfig::dst(self.seed, self.profile);
        cfg.disable_self_fencing = self.disable_self_fencing;
        cfg
    }
}

/// Outcome of one DST run.
#[derive(Debug)]
pub struct DstReport {
    /// The grid cell that produced this report.
    pub cfg: DstConfig,
    /// The underlying chaos run's full report.
    pub chaos: ChaosReport,
}

impl DstReport {
    /// True when the oracle observed at least one invariant violation.
    pub fn failed(&self) -> bool {
        self.chaos.total_violations > 0
    }

    /// The distinct invariant kinds violated.
    pub fn violated_kinds(&self) -> BTreeSet<InvariantKind> {
        self.chaos.violations.iter().map(|v| v.kind).collect()
    }

    /// A canonical one-line-per-violation rendering — two runs have
    /// "identical oracle verdicts" iff these strings are equal.
    pub fn verdict(&self) -> String {
        let mut out = format!("total={}\n", self.chaos.total_violations);
        for v in &self.chaos.violations {
            out.push_str(&format!("{} {} {}\n", v.at.0, v.kind.name(), v.detail));
        }
        out
    }
}

/// Runs one grid cell with its seed-derived fault plan.
pub fn run_dst(cfg: DstConfig) -> DstReport {
    DstReport {
        cfg,
        chaos: run_chaos(cfg.chaos()),
    }
}

/// [`run_dst`] on an explicit engine queue implementation — the
/// differential-testing entry point (both kinds must produce
/// byte-identical reports).
pub fn run_dst_queued(cfg: DstConfig, kind: QueueKind) -> DstReport {
    DstReport {
        cfg,
        chaos: run_chaos_queued(cfg.chaos(), kind),
    }
}

/// Runs one grid cell with an explicit (edited) fault plan — the
/// replay and shrink path.
pub fn run_dst_with_plan(cfg: DstConfig, plan: Vec<(SimTime, Fault)>) -> DstReport {
    DstReport {
        cfg,
        chaos: run_chaos_with_plan(cfg.chaos(), plan),
    }
}

/// Runs every job in the grid and returns reports in input order.
///
/// Each run is single-threaded and pure, so `threads` changes only
/// wall-clock time: report `i` is always the run of `jobs[i]`, and its
/// trace and verdict are byte-identical whether `threads` is 1 or 16.
pub fn run_swarm(jobs: &[DstConfig], threads: usize) -> Vec<DstReport> {
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.iter().map(|&cfg| run_dst(cfg)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<DstReport>>> = Mutex::new((0..jobs.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&cfg) = jobs.get(i) else { break };
                let report = run_dst(cfg);
                if let Ok(mut slots) = slots.lock() {
                    slots[i] = Some(report);
                }
            });
        }
    });
    slots
        .into_inner()
        .unwrap_or_default()
        .into_iter()
        .map(|r| r.expect("every job index was claimed by exactly one worker"))
        .collect()
}

/// A fault and the recovery that undoes it, kept atomic during
/// shrinking so every candidate plan stays well-formed (no unhealed
/// partition, no permanently-expired session).
type FaultGroup = Vec<(SimTime, Fault)>;

/// Splits a time-sorted plan into atomic hit+recovery groups. Each hit
/// is paired with the *first* later recovery of the matching kind (and
/// target index, for per-server and per-mini-SM faults); anything left
/// unpaired becomes a singleton group.
fn group_plan(plan: &[(SimTime, Fault)]) -> Vec<FaultGroup> {
    let mut used = vec![false; plan.len()];
    let mut groups = Vec::new();
    for i in 0..plan.len() {
        if used[i] {
            continue;
        }
        used[i] = true;
        let (at, fault) = plan[i];
        let recovery = |g: &Fault| match (fault, g) {
            (Fault::ServerCrash(a), Fault::ServerRestart(b)) => a == *b,
            (Fault::SessionExpiry(a), Fault::SessionRestore(b)) => a == *b,
            (Fault::MiniSmCrash(a), Fault::MiniSmRestart(b)) => a == *b,
            (Fault::PartitionStart(_), Fault::PartitionHeal) => true,
            (Fault::NetDegrade { .. }, Fault::NetHeal) => true,
            _ => false,
        };
        let mut group = vec![(at, fault)];
        if fault.is_hit() {
            if let Some(j) = (i + 1..plan.len()).find(|&j| !used[j] && recovery(&plan[j].1)) {
                used[j] = true;
                group.push(plan[j]);
            }
        }
        groups.push(group);
    }
    groups
}

fn flatten(groups: &[FaultGroup]) -> Vec<(SimTime, Fault)> {
    let mut plan: Vec<(SimTime, Fault)> = groups.iter().flatten().copied().collect();
    plan.sort_by_key(|(at, _)| *at);
    plan
}

/// Whether replaying `plan` still reproduces at least one violation of
/// one of the originally observed invariant kinds. Requiring a kind
/// match keeps the shrinker from wandering onto an unrelated failure.
fn still_fails(cfg: DstConfig, plan: &[(SimTime, Fault)], kinds: &BTreeSet<InvariantKind>) -> bool {
    let report = run_dst_with_plan(cfg, plan.to_vec());
    report
        .chaos
        .violations
        .iter()
        .any(|v| kinds.contains(&v.kind))
}

/// Shrinks a failing fault plan to a minimal reproducer.
///
/// Stage 1 is ddmin-style group removal: fault+recovery pairs are
/// removed in binary-search-sized chunks, re-running the simulation on
/// each candidate and keeping any candidate that still violates one of
/// the original invariant kinds, down to chunks of a single group.
/// Stage 2 narrows time windows: for each surviving pair, the recovery
/// time is binary-searched toward the fault (to 1 s resolution), so the
/// reproducer also tells you *how long* the fault must last.
///
/// Returns `None` when the original plan does not fail (nothing to
/// shrink).
pub fn shrink(cfg: DstConfig, plan: &[(SimTime, Fault)]) -> Option<Vec<(SimTime, Fault)>> {
    let baseline = run_dst_with_plan(cfg, plan.to_vec());
    let kinds = baseline.violated_kinds();
    if kinds.is_empty() {
        return None;
    }
    shrink_plan(plan, |candidate| still_fails(cfg, candidate, &kinds))
}

/// The world-agnostic shrinking core behind [`shrink`]: ddmin-style
/// group removal followed by recovery-time narrowing, driven entirely
/// by the caller's `still_fails` predicate. Any harness that executes a
/// `(SimTime, Fault)` plan — the chaos world, the reconfiguration world
/// — can shrink its failures through this one implementation.
///
/// `still_fails` must return true for a candidate plan that still
/// reproduces the original failure; the shrinker never assumes
/// monotonicity, it only keeps candidates the predicate accepts.
/// Returns `None` when the predicate rejects the full plan (nothing to
/// shrink).
pub fn shrink_plan(
    plan: &[(SimTime, Fault)],
    mut still_fails: impl FnMut(&[(SimTime, Fault)]) -> bool,
) -> Option<Vec<(SimTime, Fault)>> {
    if !still_fails(plan) {
        return None;
    }

    // Stage 1: ddmin over atomic groups.
    let mut groups = group_plan(plan);
    let mut chunks = 2usize;
    while groups.len() >= 2 {
        let chunk_len = groups.len().div_ceil(chunks);
        let mut reduced = false;
        for start in (0..groups.len()).step_by(chunk_len) {
            let candidate: Vec<FaultGroup> = groups
                .iter()
                .enumerate()
                .filter(|(i, _)| *i < start || *i >= start + chunk_len)
                .map(|(_, g)| g.clone())
                .collect();
            if candidate.is_empty() {
                continue;
            }
            if still_fails(&flatten(&candidate)) {
                groups = candidate;
                chunks = chunks.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
        }
        if !reduced {
            if chunks >= groups.len() {
                break;
            }
            chunks = (chunks * 2).min(groups.len());
        }
    }

    // Stage 2: narrow each pair's window by moving the recovery
    // earlier while the plan still fails.
    let resolution = 1_000_000; // 1 s in µs
    for gi in 0..groups.len() {
        if groups[gi].len() != 2 {
            continue;
        }
        let hit = groups[gi][0].0 .0;
        let mut lo = hit; // known-passing boundary (zero-length fault)
        let mut hi = groups[gi][1].0 .0; // known-failing recovery time
        while hi - lo > resolution {
            let mid = lo + (hi - lo) / 2;
            let mut candidate = groups.clone();
            candidate[gi][1].0 = SimTime(mid);
            if still_fails(&flatten(&candidate)) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        groups[gi][1].0 = SimTime(hi);
    }

    Some(flatten(&groups))
}

// ---------------------------------------------------------------------
// Replayable reproducer JSON (hand-rolled: the workspace is std-only).
// ---------------------------------------------------------------------

pub(crate) fn fault_to_json(fault: Fault) -> String {
    let mut fields = format!("\"kind\":\"{}\"", fault.label());
    match fault {
        Fault::ServerCrash(i)
        | Fault::ServerRestart(i)
        | Fault::SessionExpiry(i)
        | Fault::SessionRestore(i)
        | Fault::MiniSmCrash(i)
        | Fault::MiniSmRestart(i) => fields.push_str(&format!(",\"id\":{i}")),
        Fault::PartitionStart(p) => fields.push_str(&format!(
            ",\"lo\":{},\"len\":{},\"asym\":{}",
            p.lo, p.len, p.asym
        )),
        Fault::NetDegrade { drop_pct, dup_pct } => {
            fields.push_str(&format!(",\"drop_pct\":{drop_pct},\"dup_pct\":{dup_pct}"))
        }
        Fault::PartitionHeal | Fault::NetHeal => {}
    }
    format!("{{{fields}}}")
}

/// Serializes a reproducer — the grid cell plus its (possibly shrunk)
/// fault plan — as a self-contained JSON document.
pub fn repro_to_json(cfg: DstConfig, plan: &[(SimTime, Fault)]) -> String {
    let events: Vec<String> = plan
        .iter()
        .map(|(at, f)| format!("    {{\"at_us\":{},\"fault\":{}}}", at.0, fault_to_json(*f)))
        .collect();
    format!(
        "{{\n  \"seed\": {},\n  \"profile\": \"{}\",\n  \"disable_self_fencing\": {},\n  \"plan\": [\n{}\n  ]\n}}\n",
        cfg.seed,
        cfg.profile.name(),
        cfg.disable_self_fencing,
        events.join(",\n")
    )
}

/// A minimal JSON value — just enough for reproducer documents.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

pub(crate) struct Parser<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.bytes.get(self.pos).copied()
    }

    fn lit(&mut self, s: &str) -> Option<()> {
        self.ws();
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Some(())
        } else {
            None
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
                // Reproducer strings are plain identifiers; escapes are
                // out of scope for this parser.
                if s.contains('\\') {
                    return None;
                }
                self.pos += 1;
                return Some(s.to_string());
            }
            self.pos += 1;
        }
        None
    }

    fn number(&mut self) -> Option<f64> {
        self.ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    pub(crate) fn value(&mut self) -> Option<Json> {
        match self.peek()? {
            b'"' => Some(Json::Str(self.string()?)),
            b'{' => {
                self.eat(b'{')?;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.eat(b'}')?;
                    return Some(Json::Obj(fields));
                }
                loop {
                    let key = self.string()?;
                    self.eat(b':')?;
                    fields.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.eat(b',')?,
                        b'}' => {
                            self.eat(b'}')?;
                            return Some(Json::Obj(fields));
                        }
                        _ => return None,
                    }
                }
            }
            b'[' => {
                self.eat(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.eat(b']')?;
                    return Some(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.eat(b',')?,
                        b']' => {
                            self.eat(b']')?;
                            return Some(Json::Arr(items));
                        }
                        _ => return None,
                    }
                }
            }
            b't' => {
                self.lit("true")?;
                Some(Json::Bool(true))
            }
            b'f' => {
                self.lit("false")?;
                Some(Json::Bool(false))
            }
            b'n' => {
                self.lit("null")?;
                Some(Json::Null)
            }
            _ => Some(Json::Num(self.number()?)),
        }
    }
}

pub(crate) fn fault_from_json(v: &Json) -> Option<Fault> {
    let id = || v.get("id").and_then(Json::as_u64).map(|i| i as u32);
    match v.get("kind")?.as_str()? {
        "server_crash" => Some(Fault::ServerCrash(id()?)),
        "server_restart" => Some(Fault::ServerRestart(id()?)),
        "session_expiry" => Some(Fault::SessionExpiry(id()?)),
        "session_restore" => Some(Fault::SessionRestore(id()?)),
        "minism_crash" => Some(Fault::MiniSmCrash(id()?)),
        "minism_restart" => Some(Fault::MiniSmRestart(id()?)),
        "partition_start" => Some(Fault::PartitionStart(PartitionSpec {
            lo: v.get("lo")?.as_u64()? as u32,
            len: v.get("len")?.as_u64()? as u32,
            asym: v.get("asym")?.as_bool()?,
        })),
        "partition_heal" => Some(Fault::PartitionHeal),
        "net_degrade" => Some(Fault::NetDegrade {
            drop_pct: v.get("drop_pct")?.as_u64()? as u8,
            dup_pct: v.get("dup_pct")?.as_u64()? as u8,
        }),
        "net_heal" => Some(Fault::NetHeal),
        _ => None,
    }
}

/// Parses a reproducer document produced by [`repro_to_json`]. Returns
/// `None` on any malformed input (never panics).
pub fn repro_from_json(text: &str) -> Option<(DstConfig, Vec<(SimTime, Fault)>)> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let doc = parser.value()?;
    let cfg = DstConfig {
        seed: doc.get("seed")?.as_u64()?,
        profile: FaultProfile::parse(doc.get("profile")?.as_str()?)?,
        disable_self_fencing: doc.get("disable_self_fencing")?.as_bool()?,
    };
    let Json::Arr(events) = doc.get("plan")? else {
        return None;
    };
    let mut plan = Vec::with_capacity(events.len());
    for e in events {
        let at = SimTime(e.get("at_us")?.as_u64()?);
        plan.push((at, fault_from_json(e.get("fault")?)?));
    }
    Some((cfg, plan))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repro_json_round_trips_every_fault_kind() {
        let cfg = DstConfig {
            seed: 42,
            profile: FaultProfile::Mixed,
            disable_self_fencing: true,
        };
        let plan = vec![
            (SimTime::from_secs(10), Fault::ServerCrash(3)),
            (SimTime::from_secs(12), Fault::SessionExpiry(4)),
            (SimTime::from_secs(13), Fault::MiniSmCrash(1)),
            (
                SimTime::from_secs(14),
                Fault::PartitionStart(PartitionSpec {
                    lo: 2,
                    len: 3,
                    asym: true,
                }),
            ),
            (
                SimTime::from_secs(15),
                Fault::NetDegrade {
                    drop_pct: 5,
                    dup_pct: 3,
                },
            ),
            (SimTime::from_secs(20), Fault::NetHeal),
            (SimTime::from_secs(21), Fault::PartitionHeal),
            (SimTime::from_secs(22), Fault::MiniSmRestart(1)),
            (SimTime::from_secs(23), Fault::SessionRestore(4)),
            (SimTime::from_secs(24), Fault::ServerRestart(3)),
        ];
        let json = repro_to_json(cfg, &plan);
        let (cfg2, plan2) = repro_from_json(&json).expect("own output parses");
        assert_eq!(cfg, cfg2);
        assert_eq!(plan, plan2);
    }

    #[test]
    fn repro_parser_rejects_garbage_without_panicking() {
        for bad in [
            "",
            "{",
            "[1,2",
            "{\"seed\": \"x\"}",
            "{\"seed\":1,\"profile\":\"nope\",\"disable_self_fencing\":false,\"plan\":[]}",
            "{\"seed\":1,\"profile\":\"mixed\",\"disable_self_fencing\":false,\"plan\":[{\"at_us\":1,\"fault\":{\"kind\":\"warp\"}}]}",
        ] {
            assert!(repro_from_json(bad).is_none(), "accepted: {bad}");
        }
    }

    #[test]
    fn grouping_pairs_hits_with_their_recoveries() {
        let plan = vec![
            (SimTime::from_secs(1), Fault::ServerCrash(0)),
            (
                SimTime::from_secs(2),
                Fault::PartitionStart(PartitionSpec {
                    lo: 0,
                    len: 2,
                    asym: false,
                }),
            ),
            (SimTime::from_secs(3), Fault::ServerRestart(0)),
            (SimTime::from_secs(4), Fault::PartitionHeal),
        ];
        let groups = group_plan(&plan);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 2, "crash pairs with restart");
        assert_eq!(groups[1].len(), 2, "partition pairs with heal");
        // Flatten restores time order across interleaved groups.
        assert_eq!(flatten(&groups), plan);
    }

    #[test]
    fn swarm_reports_land_at_their_input_index() {
        let jobs = vec![
            DstConfig::new(11, FaultProfile::CrashOnly),
            DstConfig::new(12, FaultProfile::CrashOnly),
        ];
        let reports = run_swarm(&jobs, 2);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].cfg.seed, 11);
        assert_eq!(reports[1].cfg.seed, 12);
    }
}
