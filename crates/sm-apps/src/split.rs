//! Skew-storm resharding chaos: a seeded discrete-event world in which
//! one key range goes viral mid-run, the adaptive [`SplitScaler`]
//! splits the hot shard (and later merges the cooled children back),
//! and a [`FaultProfile::SplitChaos`] plan lands crashes, session
//! expiries, partitions, and a lossy-net window specifically inside the
//! prepare/forward/cutover phases of in-flight splits and merges.
//!
//! The world wires a bare [`Orchestrator`] with a registered
//! [`ShardingSpec`] to a fleet of primary-only hosts implementing the
//! generalized §4.3 forwarding states: during a split the parent keeps
//! its data but forwards each request to the prepared child covering
//! its key; during a merge both sources forward to the prepared target.
//! Clients route by key through a real [`ServiceRouter`] fed the
//! orchestrator's spec + map on a refresh cadence, so stale-map windows
//! exercise the forwarding chains exactly as production would.
//!
//! Safety is judged by the [`Oracle`]:
//!
//! - **KeyspaceCoverage** — on every sweep the authoritative spec's
//!   ranges must partition the key space: no gap, no overlap, first
//!   range anchored at the minimum key, exactly the last unbounded.
//! - **DualPrimary** — at every served request, at most one live host
//!   is willing to serve that key directly (children in prepare state
//!   only accept forwarded traffic, so a pre-commit child never counts).
//! - **LostRequest** — every issued request is eventually served;
//!   availability is preserved through splits, merges, aborts, and the
//!   fault plan (a request exhausting its retry budget is a violation).
//! - **Unconverged / RouterDivergence** — at the end every spec shard
//!   has a primary, nothing is stuck mid-operation, and the client
//!   router agrees with the assignment.
//!
//! The documented mutation switch ([`SplitConfig::skip_cutover_ack`])
//! commits a split/merge when the cutover RPCs are *sent* instead of
//! when they are acked; a cutover lost to the lossy window then leaves
//! a child that owns a range in the spec but never started serving —
//! clients retry into it forever and the oracle reports the lost
//! requests. `tests/split.rs` proves the oracle catches it. The whole
//! run is a pure function of `(config, plan)`.

use crate::dst::{fault_from_json, fault_to_json, shrink_plan, Json, Parser};
use sm_allocator::{AllocConfig, MoveCaps};
use sm_core::{
    OrchCommand, Orchestrator, OrchestratorConfig, ServerRpc, SplitScaler, SplitScalerConfig,
};
use sm_routing::ServiceRouter;
use sm_sim::faults::{fault_plan, Fault, FaultProfile};
use sm_sim::net::{Endpoint, NetStats, SimNet};
use sm_sim::oracle::{InvariantKind, Oracle, OracleViolation};
use sm_sim::{Ctx, LatencyModel, QueueKind, SimDuration, SimTime, Simulation, TraceLog, World};
use sm_types::{
    AppId, AppKey, AppPolicy, KeyRange, LoadVector, Location, MachineId, Metric, RegionId,
    ReplicaRole, ServerId, ShardId, ShardingSpec,
};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// The single application this world runs.
const APP: AppId = AppId(0);

/// Shape of one skew-storm run. The fault schedule derives from
/// `(seed, profile)`, so the run reproduces from this config alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitConfig {
    /// Seed for traffic, fault schedule, and network draws.
    pub seed: u64,
    /// Application servers (ids `0..servers`).
    pub servers: u32,
    /// Initial shards (ids `0..shards`), a uniform u64 spec.
    pub shards: u64,
    /// Concurrent request generators.
    pub clients: u32,
    /// Gap between one client's requests.
    pub request_interval: SimDuration,
    /// Backoff before a failed request re-routes and retries.
    pub retry_delay: SimDuration,
    /// Retry budget; exhausting it is a [`InvariantKind::LostRequest`].
    pub max_attempts: u32,
    /// One-way network latency.
    pub rpc_latency: SimDuration,
    /// The control plane gives up on an unanswered RPC after this.
    pub rpc_timeout: SimDuration,
    /// Cadence of load collection + adaptive resharding decisions.
    pub reshard_interval: SimDuration,
    /// Cadence of client router refresh (spec + map pull).
    pub refresh_interval: SimDuration,
    /// The viral window: 80% of keys land in one narrow range between
    /// these two instants.
    pub storm_start: SimTime,
    /// End of the viral window; traffic cools and merges begin.
    pub storm_end: SimTime,
    /// Clients stop here; in-flight work drains.
    pub traffic_end: SimTime,
    /// Periodic scans stop here; must leave room for the last retries.
    pub end: SimTime,
    /// Fault-plan profile.
    pub profile: FaultProfile,
    /// False freezes the spec (the static-sharding baseline the bench
    /// bin contrasts): load reports still flow but the scaler never
    /// runs, so the viral range has no remedy.
    pub adaptive: bool,
    /// DST mutation switch: commit the split/merge when the cutover
    /// RPCs are sent instead of acked. Never set outside
    /// `tests/split.rs` — it exists to prove the availability argument
    /// has teeth.
    pub skip_cutover_ack: bool,
}

impl SplitConfig {
    /// The compact shape the swarm and the tier-1 gate run: a small
    /// fleet, one viral window, and a one-minute fault window.
    pub fn dst(seed: u64, profile: FaultProfile) -> Self {
        Self {
            seed,
            servers: 8,
            shards: 8,
            clients: 3,
            request_interval: SimDuration::from_millis(100),
            retry_delay: SimDuration::from_millis(500),
            max_attempts: 40,
            rpc_latency: SimDuration::from_millis(10),
            rpc_timeout: SimDuration::from_secs(2),
            reshard_interval: SimDuration::from_secs(2),
            refresh_interval: SimDuration::from_millis(500),
            storm_start: SimTime::from_secs(25),
            storm_end: SimTime::from_secs(70),
            traffic_end: SimTime::from_secs(110),
            end: SimTime::from_secs(135),
            profile,
            adaptive: true,
            skip_cutover_ack: false,
        }
    }

    /// Start of the viral slice (a narrow band straddling the interior
    /// of one initial shard, off every initial boundary).
    fn hot_lo(&self) -> u64 {
        u64::MAX / 16 * 7
    }

    /// Width of the viral slice: 1/64 of the key space.
    fn hot_span(&self) -> u64 {
        u64::MAX / 64
    }
}

/// The scaler this world drives: request counts per reshard tick,
/// split hot shards, merge cooled neighbors, bounded concurrency.
fn scaler_for(cfg: &SplitConfig) -> SplitScaler {
    SplitScaler::new(
        SplitScalerConfig::new(
            Metric::Synthetic.id(),
            20.0, // ~48 req/tick land in the viral slice; uniform is ~7/shard
            12.0,
            cfg.shards as usize,
            (cfg.shards as usize) * 3,
        )
        .with_max_concurrent(2),
    )
}

/// One client request's identity, carried through deliveries, forwards,
/// and retries. The owning shard is *not* part of the identity — it is
/// re-resolved on every attempt, because splits and merges move keys
/// between shards mid-run.
#[derive(Clone, Copy, Debug)]
pub struct Req {
    /// Unique request id (oracle bookkeeping and duplicate detection).
    pub id: u64,
    /// Issuing client (the network source endpoint).
    pub client: u32,
    /// Key being requested (as its u64 encoding).
    pub key: u64,
    /// Delivery attempts so far, this one included.
    pub attempts: u32,
}

/// Event alphabet of the skew-storm world.
#[derive(Debug)]
pub enum SplitEvent {
    /// Client `i` issues its next request.
    ClientTick(u32),
    /// A request (or one duplicated copy) arrives at a server.
    Deliver {
        /// The request.
        req: Req,
        /// Shard the sender resolved the key to (re-resolved per hop).
        shard: ShardId,
        /// Server this copy was addressed to.
        target: ServerId,
        /// Forwarding hops on this attempt.
        hops: u8,
    },
    /// A failed attempt backs off and re-routes.
    Retry {
        /// The request, attempts already incremented.
        req: Req,
    },
    /// A control-plane RPC reaches its server.
    RpcSend {
        /// Correlation id for timeout/duplicate handling.
        id: u64,
        /// Target server.
        server: ServerId,
        /// The RPC payload.
        rpc: ServerRpc,
    },
    /// The server's ack (or failure) reaches the control plane.
    RpcResult {
        /// Correlation id; late or duplicate results are ignored.
        id: u64,
        /// Answering server.
        server: ServerId,
        /// The RPC being answered.
        rpc: ServerRpc,
        /// Whether the server applied it.
        ok: bool,
    },
    /// The control plane gives up on an unanswered RPC.
    RpcTimeout {
        /// Correlation id; a no-op if the result already arrived.
        id: u64,
    },
    /// The control plane's failure detector declares an islanded
    /// server dead (fires a few seconds into a partition).
    DetectDown(u32),
    /// The i-th entry of the fault plan fires.
    FaultHit(usize),
    /// Retry pacemaker: re-issue nacked or timed-out control steps and
    /// plan replacements on a fixed 500ms backoff.
    RetryTick,
    /// Load collection + adaptive resharding decision round.
    ReshardTick,
    /// Clients re-pull the spec and map into their router.
    RouterRefresh,
}

/// Counters accumulated over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SplitStats {
    /// Requests served successfully.
    pub served: u64,
    /// Of those, served inside the viral window for a viral-slice key.
    pub storm_served: u64,
    /// Requests that exhausted their retry budget (oracle violations).
    pub dropped: u64,
    /// Retry attempts across all requests.
    pub retries: u64,
    /// Forwarding hops taken (graceful migration/split/merge in action).
    pub forwards: u64,
    /// Split operations committed (spec swapped to the children).
    pub splits_completed: u64,
    /// Split operations aborted mid-flight (children reclaimed, parent
    /// restored) — splits genuinely interrupted by the plan.
    pub splits_aborted: u64,
    /// Merge operations committed.
    pub merges_completed: u64,
    /// Merge operations aborted mid-flight.
    pub merges_aborted: u64,
    /// Resharding protocol RPCs (prepare/forward/cutover) nacked or
    /// timed out while a fault was active.
    pub reshard_rpc_interrupted: u64,
    /// Anomalies the orchestrator surfaced via `drain_errors`.
    pub orch_errors: u64,
    /// Control-plane RPCs that timed out unanswered.
    pub rpc_timeouts: u64,
    /// Control-plane RPCs the server answered with a failure.
    pub rpc_nacks: u64,
    /// Server container crashes injected.
    pub server_crashes: u64,
    /// Session expiries injected.
    pub session_expiries: u64,
    /// Network partitions injected.
    pub net_partitions: u64,
    /// Islanded-but-alive servers that self-fenced (§3.2) before the
    /// failure detector re-placed their shards.
    pub self_fences: u64,
    /// Hottest single shard observed in any one reshard window: the max
    /// request count a `(server, shard)` pair absorbed between two load
    /// reports. With `adaptive` off this measures the overload a static
    /// layout eats during the storm; with it on, splitting caps it.
    pub peak_tick_load: u64,
    /// Reshard rounds in which at least one shard's report exceeded the
    /// scaler's split threshold — the run's total time out of the
    /// per-shard load SLO, in units of `reshard_interval`. A static
    /// layout stays overloaded for the whole storm; the adaptive one
    /// only until its splits converge.
    pub overload_ticks: u64,
    /// Peak shard count observed (adaptivity in action).
    pub peak_shards: u64,
    /// Final shard count (merges pulled it back down).
    pub final_shards: u64,
}

/// Forwarding rule a host holds for one shard it no longer serves
/// directly — the generalized step-2/step-5 states of §4.3.
#[derive(Clone, Debug)]
enum Fwd {
    /// Plain 1→1 migration: same shard, new owner.
    Move(ServerId),
    /// 1→2 split: route each key to the prepared child covering it.
    Split {
        at: AppKey,
        left: ShardId,
        left_to: ServerId,
        right: ShardId,
        right_to: ServerId,
    },
    /// 2→1 merge: route everything to the prepared merged shard.
    Merge { target: ShardId, to: ServerId },
}

/// What a host decides for a request that reached it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Decision {
    Serve,
    Forward { shard: ShardId, to: ServerId },
    NotMine,
}

/// One application server: primary-only shard hosting with the
/// generalized forwarding states, per-shard request counters for load
/// reports, and process liveness. All state is soft — a restart wipes
/// it and the orchestrator's reconcile rebuilds the assigned part.
#[derive(Default)]
struct SplitHost {
    shards: BTreeMap<ShardId, ReplicaRole>,
    /// Step-1 state: shard -> owner we expect forwards from.
    pre_add: BTreeMap<ShardId, ServerId>,
    /// Step-2 state: shard -> forwarding rule (replica kept).
    fwd: BTreeMap<ShardId, Fwd>,
    /// Step-5 state: dropped shards still forwarding stragglers.
    tomb: BTreeMap<ShardId, Fwd>,
    /// Requests served per shard since the last load report.
    served: BTreeMap<ShardId, u64>,
    up: bool,
    /// §3.2 self-fenced: the server's session lapsed (it is islanded),
    /// so it has wiped its leases and must refuse control-plane grants
    /// until the session is re-established.
    fenced: bool,
}

impl SplitHost {
    fn add_shard(&mut self, shard: ShardId, role: ReplicaRole) {
        self.pre_add.remove(&shard);
        self.fwd.remove(&shard);
        self.tomb.remove(&shard);
        self.shards.insert(shard, role);
    }

    /// Idempotent: the orchestrator retries drops whose ack a lossy
    /// network may have eaten, so "ensure not hosting" must converge.
    fn drop_shard(&mut self, shard: ShardId) {
        self.shards.remove(&shard);
        self.pre_add.remove(&shard);
        self.served.remove(&shard);
        if let Some(rule) = self.fwd.remove(&shard) {
            self.tomb.insert(shard, rule);
        }
    }

    fn change_role(
        &mut self,
        shard: ShardId,
        current: ReplicaRole,
        new: ReplicaRole,
    ) -> Result<(), ()> {
        match self.shards.get_mut(&shard) {
            Some(role) if *role == current => {
                *role = new;
                Ok(())
            }
            _ => Err(()),
        }
    }

    fn prepare_add_shard(&mut self, shard: ShardId, current_owner: ServerId) {
        self.pre_add.insert(shard, current_owner);
        self.tomb.remove(&shard);
    }

    fn prepare_drop_shard(&mut self, shard: ShardId, new_owner: ServerId) -> Result<(), ()> {
        if !self.shards.contains_key(&shard) {
            return Err(());
        }
        self.fwd.insert(shard, Fwd::Move(new_owner));
        Ok(())
    }

    /// The split analogue of `prepare_drop_shard`: keep the data, stop
    /// serving directly, forward each request to the child covering its
    /// key. The split point arrives out of band (the spec service, by
    /// correlation) — here, from the orchestrator's pending-split table.
    fn split_forward(
        &mut self,
        parent: ShardId,
        at: AppKey,
        left: ShardId,
        left_to: ServerId,
        right: ShardId,
        right_to: ServerId,
    ) -> Result<(), ()> {
        if !self.shards.contains_key(&parent) {
            return Err(());
        }
        self.fwd.insert(
            parent,
            Fwd::Split {
                at,
                left,
                left_to,
                right,
                right_to,
            },
        );
        Ok(())
    }

    /// The merge analogue: stop serving `source` directly and forward
    /// its requests to the prepared merged shard.
    fn merge_forward(&mut self, source: ShardId, target: ShardId, to: ServerId) -> Result<(), ()> {
        if !self.shards.contains_key(&source) {
            return Err(());
        }
        self.fwd.insert(source, Fwd::Merge { target, to });
        Ok(())
    }

    fn rule_decision(rule: &Fwd, key: &AppKey) -> Decision {
        match rule {
            Fwd::Move(to) => Decision::Forward {
                shard: ShardId(u64::MAX), // replaced by caller
                to: *to,
            },
            Fwd::Split {
                at,
                left,
                left_to,
                right,
                right_to,
            } => {
                if key < at {
                    Decision::Forward {
                        shard: *left,
                        to: *left_to,
                    }
                } else {
                    Decision::Forward {
                        shard: *right,
                        to: *right_to,
                    }
                }
            }
            Fwd::Merge { target, to } => Decision::Forward {
                shard: *target,
                to: *to,
            },
        }
    }

    /// Admission for a primary-type request addressed to `shard` with
    /// `key`. `forwarded` is true when it came from the previous owner
    /// rather than directly from a client.
    fn admit(&self, shard: ShardId, key: &AppKey, forwarded: bool) -> Decision {
        for table in [&self.fwd, &self.tomb] {
            if let Some(rule) = table.get(&shard) {
                return match Self::rule_decision(rule, key) {
                    Decision::Forward { shard: s, to } if s == ShardId(u64::MAX) => {
                        Decision::Forward { shard, to }
                    }
                    d => d,
                };
            }
        }
        if self.pre_add.contains_key(&shard) {
            return if forwarded {
                Decision::Serve
            } else {
                Decision::NotMine
            };
        }
        match self.shards.get(&shard) {
            Some(role) if role.is_primary() => Decision::Serve,
            _ => Decision::NotMine,
        }
    }

    /// True when this host would serve a *direct* (unforwarded) request
    /// for `shard` — the willing-primary predicate the dual-primary
    /// audit counts.
    fn willing_direct(&self, shard: ShardId) -> bool {
        self.up
            && !self.fenced
            && !self.fwd.contains_key(&shard)
            && self
                .shards
                .get(&shard)
                .is_some_and(|role| role.is_primary())
    }

    /// Process restart: all soft state is lost.
    fn wipe(&mut self) {
        self.shards.clear();
        self.pre_add.clear();
        self.fwd.clear();
        self.tomb.clear();
        self.served.clear();
    }
}

fn loc(s: u32) -> Location {
    Location {
        region: RegionId(0),
        datacenter: 0,
        rack: s,
        machine: MachineId(s),
    }
}

fn orch_config(cfg: &SplitConfig) -> OrchestratorConfig {
    OrchestratorConfig {
        graceful_migration: true,
        move_caps: MoveCaps {
            max_total: 1000,
            max_per_server: 1000,
            max_per_shard: 1,
        },
        alloc: AllocConfig::new(vec![Metric::Synthetic.id()]),
        skip_cutover_ack: cfg.skip_cutover_ack,
    }
}

/// The skew-storm simulation world.
pub struct SplitWorld {
    cfg: SplitConfig,
    cp: Orchestrator,
    scaler: SplitScaler,
    hosts: BTreeMap<ServerId, SplitHost>,
    router: ServiceRouter,
    net: SimNet,
    oracle: Oracle,
    plan: Vec<(SimTime, Fault)>,
    /// Correlation ids of control-plane RPCs awaiting an answer.
    outstanding: BTreeMap<u64, (ServerId, ServerRpc)>,
    /// Correlation ids already executed at a server, with the recorded
    /// outcome: a duplicated copy answers from here instead of
    /// re-running the protocol step.
    rpc_applied: BTreeMap<u64, bool>,
    next_rpc: u64,
    next_req: u64,
    /// Every shard id ever published with its immutable key range (a
    /// shard's range never changes between mint and removal), for the
    /// per-key willing-primary audit.
    ranges: BTreeMap<ShardId, KeyRange>,
    /// Servers the failure detector declared down behind a partition.
    partitioned: BTreeSet<ServerId>,
    /// True during a lossy-net window.
    degraded: bool,
    /// Orchestrator stats at the last scan (for delta counting).
    last_cp_stats: sm_core::orchestrator::OrchStats,
    /// Counters.
    pub stats: SplitStats,
    /// Recorded time series (shard count, in-flight reshards, drops).
    pub trace: TraceLog,
}

impl SplitWorld {
    /// Builds the world with its plan derived from `(seed, profile)`.
    pub fn new(cfg: SplitConfig) -> Self {
        let mut world = Self::bootstrap(cfg);
        // No mini-SMs in this world: the plan covers servers and the
        // network only.
        world.plan = fault_plan(&cfg.profile.config(cfg.seed, cfg.servers, 0));
        world
    }

    /// Builds the world with an explicit fault plan — the replay and
    /// shrink path.
    pub fn new_with_plan(cfg: SplitConfig, plan: Vec<(SimTime, Fault)>) -> Self {
        let mut world = Self::bootstrap(cfg);
        world.plan = plan;
        world
    }

    /// Registers the fleet and the initial uniform spec, places every
    /// shard, and settles the initial placement synchronously.
    fn bootstrap(cfg: SplitConfig) -> Self {
        let mut cp = Orchestrator::new(APP, AppPolicy::primary_only(), orch_config(&cfg));
        let mut hosts = BTreeMap::new();
        for i in 0..cfg.servers {
            let id = ServerId(i);
            cp.register_server(id, loc(i), LoadVector::single(Metric::Synthetic.id(), 1e9));
            hosts.insert(
                id,
                SplitHost {
                    up: true,
                    ..SplitHost::default()
                },
            );
        }
        let spec = ShardingSpec::uniform_u64(cfg.shards);
        cp.register_shards((0..cfg.shards).map(ShardId));
        cp.register_spec(spec.clone());
        cp.run_emergency();
        let mut world = Self {
            cfg,
            cp,
            scaler: scaler_for(&cfg),
            hosts,
            router: ServiceRouter::new(),
            net: SimNet::new(
                LatencyModel::uniform(1, cfg.rpc_latency.as_millis_f64(), {
                    cfg.rpc_latency.as_millis_f64()
                }),
                cfg.seed,
            ),
            oracle: Oracle::new(),
            plan: Vec::new(),
            outstanding: BTreeMap::new(),
            rpc_applied: BTreeMap::new(),
            next_rpc: 0,
            next_req: 0,
            ranges: BTreeMap::new(),
            partitioned: BTreeSet::new(),
            degraded: false,
            last_cp_stats: sm_core::orchestrator::OrchStats::default(),
            stats: SplitStats::default(),
            trace: TraceLog::new(),
        };
        world.settle();
        world.refresh_router();
        world
    }

    /// Dispatches one control-plane RPC at a host, fetching out-of-band
    /// data (the split point) from the orchestrator's pending tables
    /// the way a production server would fetch it from the spec
    /// service. Returns whether the server applied it.
    fn apply_rpc(&mut self, server: ServerId, rpc: ServerRpc) -> bool {
        // The split point must be read before borrowing the host.
        let split_at = match rpc {
            ServerRpc::SplitForward { parent, .. } => self.cp.pending_split(parent).cloned(),
            _ => None,
        };
        let Some(host) = self.hosts.get_mut(&server) else {
            return false;
        };
        match rpc {
            ServerRpc::AddShard { shard, role } => {
                host.add_shard(shard, role);
                true
            }
            ServerRpc::DropShard { shard } => {
                host.drop_shard(shard);
                true
            }
            ServerRpc::ChangeRole {
                shard,
                current,
                new,
            } => host.change_role(shard, current, new).is_ok(),
            ServerRpc::PrepareAddShard {
                shard,
                current_owner,
                ..
            } => {
                host.prepare_add_shard(shard, current_owner);
                true
            }
            ServerRpc::PrepareDropShard {
                shard, new_owner, ..
            } => host.prepare_drop_shard(shard, new_owner).is_ok(),
            ServerRpc::SplitForward {
                parent,
                left,
                left_to,
                right,
                right_to,
            } => match split_at {
                // The op was aborted between send and delivery: refuse,
                // the orchestrator already moved on.
                None => false,
                Some(at) => host
                    .split_forward(parent, at, left, left_to, right, right_to)
                    .is_ok(),
            },
            ServerRpc::MergeForward {
                source,
                target,
                target_to,
            } => host.merge_forward(source, target, target_to).is_ok(),
        }
    }

    /// Settles the control plane synchronously against the live fleet:
    /// every command runs until the orchestrator goes quiet (bootstrap
    /// and finalize only — during the run commands travel the net).
    fn settle(&mut self) {
        for round in 0..200 {
            let cmds = self.cp.take_commands();
            if cmds.is_empty() {
                if self.cp.run_emergency() == 0 && round > 0 {
                    break;
                }
                continue;
            }
            for cmd in cmds {
                if let OrchCommand::Rpc { server, rpc } = cmd {
                    let ok = self.hosts.get(&server).map(|h| h.up).unwrap_or(false)
                        && self.apply_rpc(server, rpc);
                    if ok {
                        self.cp.rpc_acked(server, rpc);
                    } else {
                        self.cp.rpc_failed(server, rpc);
                    }
                }
            }
        }
    }

    /// The invariant oracle's current state.
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// True when every spec shard has a primary and nothing is stuck
    /// mid-migration or mid-reshard.
    pub fn converged(&self) -> bool {
        self.cp.in_flight_migrations() == 0
            && self.cp.in_flight_reshards() == 0
            && self.unplaced_count() == 0
    }

    /// Spec shards currently missing a primary (diagnostics).
    pub fn unplaced_count(&self) -> usize {
        let Some(spec) = self.cp.sharding_spec() else {
            return 0;
        };
        spec.iter()
            .filter(|(_, s)| self.cp.assignment().primary_of(*s).is_none())
            .count()
    }

    /// Shards where the client router disagrees with the assignment on
    /// the serving primary (the convergence audit's divergence count).
    fn router_divergence(&mut self) -> usize {
        let Some(spec) = self.cp.sharding_spec().cloned() else {
            return 0;
        };
        spec.iter()
            .filter(|(range, shard)| {
                let routed = self
                    .router
                    .route(APP, &range.start)
                    .map(|d| (d.shard, d.server));
                let assigned = self.cp.assignment().primary_of(*shard);
                routed.ok() != assigned.map(|srv| (*shard, srv))
            })
            .count()
    }

    /// One line of host + assignment state per spec shard (diagnostics).
    pub fn debug_dump(&self) -> String {
        let mut out = String::new();
        if let Some(spec) = self.cp.sharding_spec() {
            for (range, shard) in spec.iter() {
                let hosting: Vec<String> = self
                    .hosts
                    .iter()
                    .filter_map(|(srv, h)| {
                        let mut tags = Vec::new();
                        if h.shards.contains_key(shard) {
                            tags.push("own");
                        }
                        if h.pre_add.contains_key(shard) {
                            tags.push("pre");
                        }
                        if h.fwd.contains_key(shard) {
                            tags.push("fwd");
                        }
                        if h.tomb.contains_key(shard) {
                            tags.push("tomb");
                        }
                        (!tags.is_empty()).then(|| {
                            format!(
                                "{}:{}{}",
                                srv.raw(),
                                tags.join("+"),
                                if h.up { "" } else { "!down" }
                            )
                        })
                    })
                    .collect();
                out.push_str(&format!(
                    "{shard:?} [{},{:?}) primary={:?} hosts={hosting:?}\n",
                    range.start,
                    range.end,
                    self.cp.assignment().primary_of(*shard),
                ));
            }
        }
        out.push_str(&format!(
            "in_flight: migrations={} reshards={}\n",
            self.cp.in_flight_migrations(),
            self.cp.in_flight_reshards()
        ));
        out
    }

    /// True while the plan has something actively broken — the window
    /// in which a nacked protocol step counts as fault-interrupted.
    fn fault_active(&self) -> bool {
        self.degraded || self.net.partition().is_some() || self.hosts.values().any(|h| !h.up)
    }

    /// Hosts willing to serve `key` directly, across every shard whose
    /// (immutable) range covers it. More than one is a dual primary:
    /// e.g. a split parent still serving while a committed child also
    /// serves.
    fn willing_for_key(&self, key: &AppKey) -> usize {
        self.ranges
            .iter()
            .filter(|(_, range)| range.contains(key))
            .map(|(shard, _)| {
                self.hosts
                    .values()
                    .filter(|h| h.willing_direct(*shard))
                    .count()
            })
            .sum()
    }

    /// Pulls the orchestrator's current spec and map into the client
    /// router (service discovery refresh) and learns any newly minted
    /// shard's immutable range.
    fn refresh_router(&mut self) {
        if let Some(spec) = self.cp.sharding_spec().cloned() {
            for (range, shard) in spec.iter() {
                self.ranges.entry(*shard).or_insert_with(|| range.clone());
            }
            self.router.install_spec(APP, spec);
        }
        self.router.install_map(APP, Rc::new(self.cp.current_map()));
    }

    /// Sends freshly minted orchestrator commands out as RPCs through
    /// the net, each with a correlation id and a give-up timer.
    fn flush_commands(&mut self, ctx: &mut Ctx<'_, SplitEvent>) {
        for cmd in self.cp.take_commands() {
            if let OrchCommand::Rpc { server, rpc } = cmd {
                self.next_rpc += 1;
                let id = self.next_rpc;
                self.outstanding.insert(id, (server, rpc));
                let t = self
                    .net
                    .transmit(Endpoint::ControlPlane, Endpoint::Server(server.raw()));
                for d in t.copies {
                    ctx.schedule_in(d, SplitEvent::RpcSend { id, server, rpc });
                }
                ctx.schedule_in(self.cfg.rpc_timeout, SplitEvent::RpcTimeout { id });
            }
        }
    }

    fn rpc_send(
        &mut self,
        id: u64,
        server: ServerId,
        rpc: ServerRpc,
        ctx: &mut Ctx<'_, SplitEvent>,
    ) {
        // A dead process never answers — the give-up timer reaps the
        // RPC. A duplicated copy of an already-executed step answers
        // with the recorded outcome instead of re-dispatching.
        let ok = if let Some(&ok) = self.rpc_applied.get(&id) {
            ok
        } else {
            if !self.hosts.get(&server).map(|h| h.up).unwrap_or(false) {
                return;
            }
            // A self-fenced server refuses every grant: its session
            // lapsed, so accepting an `AddShard` the control plane sent
            // an instant before declaring it down would resurrect an
            // unleased primary (a dual). The nack sends the control
            // plane back to re-plan.
            let ok = !self.hosts.get(&server).map(|h| h.fenced).unwrap_or(true)
                && self.apply_rpc(server, rpc);
            self.rpc_applied.insert(id, ok);
            if ok {
                ctx.state_changed();
            }
            ok
        };
        let t = self
            .net
            .transmit(Endpoint::Server(server.raw()), Endpoint::ControlPlane);
        for d in t.copies {
            ctx.schedule_in(
                d,
                SplitEvent::RpcResult {
                    id,
                    server,
                    rpc,
                    ok,
                },
            );
        }
    }

    /// Books a nacked or timed-out resharding step as fault-interrupted
    /// when the plan has something actively broken. (Plain migration
    /// steps also flow through here; this world's floors only count the
    /// resharding protocol's own RPCs.)
    fn note_interrupted(&mut self, rpc: ServerRpc) {
        if !self.fault_active() {
            return;
        }
        if matches!(
            rpc,
            ServerRpc::PrepareAddShard { .. }
                | ServerRpc::SplitForward { .. }
                | ServerRpc::MergeForward { .. }
        ) {
            self.stats.reshard_rpc_interrupted += 1;
        }
    }

    fn rpc_result(
        &mut self,
        id: u64,
        server: ServerId,
        rpc: ServerRpc,
        ok: bool,
        ctx: &mut Ctx<'_, SplitEvent>,
    ) {
        if self.outstanding.remove(&id).is_none() {
            return; // duplicate copy or a result the timeout already reaped
        }
        if ok {
            self.cp.rpc_acked(server, rpc);
            self.flush_commands(ctx);
        } else {
            self.stats.rpc_nacks += 1;
            self.note_interrupted(rpc);
            self.cp.rpc_failed(server, rpc);
            // No immediate flush: re-issued commands leave with the
            // next retry tick (500ms backoff, not a 2×RTT storm). The
            // exception is an abort's compensations, which the next
            // tick also carries.
        }
        ctx.state_changed();
    }

    fn rpc_timeout(&mut self, id: u64, ctx: &mut Ctx<'_, SplitEvent>) {
        let Some((server, rpc)) = self.outstanding.remove(&id) else {
            return; // answered in time
        };
        self.stats.rpc_timeouts += 1;
        self.note_interrupted(rpc);
        self.cp.rpc_failed(server, rpc);
        ctx.state_changed();
    }

    fn client_tick(&mut self, client: u32, ctx: &mut Ctx<'_, SplitEvent>) {
        let now = ctx.now();
        if now < self.cfg.traffic_end {
            ctx.schedule_in(self.cfg.request_interval, SplitEvent::ClientTick(client));
        }
        // The viral window: 80% of keys land in one narrow slice.
        let stormy = now >= self.cfg.storm_start && now < self.cfg.storm_end;
        let key = if stormy && ctx.rng().chance(0.8) {
            self.cfg.hot_lo() + ctx.rng().range_u64(0, self.cfg.hot_span())
        } else {
            ctx.rng().next_u64()
        };
        self.next_req += 1;
        let req = Req {
            id: self.next_req,
            client,
            key,
            attempts: 1,
        };
        self.oracle.request_issued(req.id);
        self.route(req, ctx);
    }

    /// Routes (or re-routes) a request through the client's router —
    /// key to shard to primary, on whatever spec + map version the last
    /// refresh pulled.
    fn route(&mut self, req: Req, ctx: &mut Ctx<'_, SplitEvent>) {
        if self.oracle.already_served(req.id) {
            return; // a duplicated copy already completed this request
        }
        let Ok(decision) = self.router.route(APP, &AppKey::from_u64(req.key)) else {
            self.fail_or_retry(req, ctx);
            return;
        };
        let t = self.net.transmit(
            Endpoint::Client(req.client),
            Endpoint::Server(decision.server.raw()),
        );
        if t.copies.is_empty() {
            self.fail_or_retry(req, ctx);
            return;
        }
        for d in t.copies {
            ctx.schedule_in(
                d,
                SplitEvent::Deliver {
                    req,
                    shard: decision.shard,
                    target: decision.server,
                    hops: 0,
                },
            );
        }
    }

    fn fail_or_retry(&mut self, req: Req, ctx: &mut Ctx<'_, SplitEvent>) {
        if self.oracle.already_served(req.id) {
            return;
        }
        if req.attempts < self.cfg.max_attempts {
            self.stats.retries += 1;
            ctx.schedule_in(
                self.cfg.retry_delay,
                SplitEvent::Retry {
                    req: Req {
                        attempts: req.attempts + 1,
                        ..req
                    },
                },
            );
        } else {
            self.stats.dropped += 1;
            self.oracle.request_dropped(ctx.now(), req.id);
        }
    }

    fn deliver(
        &mut self,
        req: Req,
        shard: ShardId,
        target: ServerId,
        hops: u8,
        ctx: &mut Ctx<'_, SplitEvent>,
    ) {
        if self.oracle.already_served(req.id) {
            return;
        }
        if !self.hosts.get(&target).map(|h| h.up).unwrap_or(false) {
            self.fail_or_retry(req, ctx);
            return;
        }
        let key = AppKey::from_u64(req.key);
        let decision = self
            .hosts
            .get(&target)
            .map(|h| h.admit(shard, &key, hops > 0))
            .unwrap_or(Decision::NotMine);
        match decision {
            Decision::Serve => {
                // The dual-primary invariant is checked at the moment
                // it matters: when a request is actually served.
                let willing = self.willing_for_key(&key);
                self.oracle
                    .primaries_observed(ctx.now(), shard.raw(), willing);
                if self.oracle.request_served(req.id) {
                    self.stats.served += 1;
                    let now = ctx.now();
                    let stormy = now >= self.cfg.storm_start && now < self.cfg.storm_end;
                    let hot = req.key >= self.cfg.hot_lo()
                        && req.key - self.cfg.hot_lo() < self.cfg.hot_span();
                    if stormy && hot {
                        self.stats.storm_served += 1;
                    }
                }
                if let Some(h) = self.hosts.get_mut(&target) {
                    *h.served.entry(shard).or_insert(0) += 1;
                }
            }
            Decision::Forward {
                shard: next_shard,
                to,
            } if hops < 6 => {
                self.stats.forwards += 1;
                let t = self
                    .net
                    .transmit(Endpoint::Server(target.raw()), Endpoint::Server(to.raw()));
                if t.copies.is_empty() {
                    self.fail_or_retry(req, ctx);
                    return;
                }
                for d in t.copies {
                    ctx.schedule_in(
                        d,
                        SplitEvent::Deliver {
                            req,
                            shard: next_shard,
                            target: to,
                            hops: hops + 1,
                        },
                    );
                }
            }
            Decision::Forward { .. } | Decision::NotMine => {
                self.fail_or_retry(req, ctx);
            }
        }
    }

    /// Load collection + resharding round: every live host reports its
    /// per-shard request counts since the last round (zeros included —
    /// merge decisions need evidence of coldness, not absence of data),
    /// then the scaler runs against the fresh numbers.
    fn reshard_tick(&mut self, ctx: &mut Ctx<'_, SplitEvent>) {
        if ctx.now() < self.cfg.traffic_end {
            ctx.schedule_in(self.cfg.reshard_interval, SplitEvent::ReshardTick);
        }
        let reports: Vec<(ServerId, Vec<(ShardId, LoadVector)>)> = self
            .hosts
            .iter_mut()
            .filter(|(_, h)| h.up)
            .map(|(srv, h)| {
                let loads = h
                    .shards
                    .keys()
                    .map(|&shard| {
                        let count = h.served.get(&shard).copied().unwrap_or(0);
                        (
                            shard,
                            LoadVector::single(Metric::Synthetic.id(), count as f64),
                        )
                    })
                    .collect();
                h.served.clear();
                (*srv, loads)
            })
            .collect();
        let mut overloaded = false;
        for (srv, loads) in reports {
            for (_, load) in &loads {
                let count = load.get(Metric::Synthetic.id()) as u64;
                self.stats.peak_tick_load = self.stats.peak_tick_load.max(count);
                overloaded |= count as f64 > self.scaler.config().split_above;
            }
            self.cp.report_load(srv, loads);
        }
        self.stats.overload_ticks += u64::from(overloaded);
        if self.cfg.adaptive {
            self.cp.run_reshard(&self.scaler);
        }
        self.stats.orch_errors += self.cp.drain_errors().len() as u64;
        self.flush_commands(ctx);
        ctx.state_changed();
    }

    /// The retry pacemaker: nacked and timed-out protocol steps leave
    /// here on a fixed 500ms backoff, alongside replacement planning
    /// for failed-over shards.
    fn retry_tick(&mut self, ctx: &mut Ctx<'_, SplitEvent>) {
        if ctx.now() < self.cfg.end {
            ctx.schedule_in(SimDuration::from_millis(500), SplitEvent::RetryTick);
        }
        self.cp.run_emergency();
        self.flush_commands(ctx);
    }

    fn router_refresh(&mut self, ctx: &mut Ctx<'_, SplitEvent>) {
        if ctx.now() < self.cfg.end {
            ctx.schedule_in(self.cfg.refresh_interval, SplitEvent::RouterRefresh);
        }
        self.refresh_router();
    }

    fn apply_fault(&mut self, fault: Fault, ctx: &mut Ctx<'_, SplitEvent>) {
        match fault {
            Fault::ServerCrash(i) | Fault::SessionExpiry(i) => {
                let s = ServerId(i);
                let up = self.hosts.get(&s).map(|h| h.up).unwrap_or(false);
                if !up {
                    return;
                }
                if matches!(fault, Fault::ServerCrash(_)) {
                    self.stats.server_crashes += 1;
                } else {
                    self.stats.session_expiries += 1;
                }
                if let Some(h) = self.hosts.get_mut(&s) {
                    h.up = false;
                }
                // The control plane only learns of the death once its
                // failure detector fires; until then RPCs to the dead
                // server time out and operations stall mid-step.
                ctx.schedule_in(SimDuration::from_secs(3), SplitEvent::DetectDown(i));
            }
            Fault::ServerRestart(i) | Fault::SessionRestore(i) => {
                let s = ServerId(i);
                let up = self.hosts.get(&s).map(|h| h.up).unwrap_or(true);
                if up {
                    return;
                }
                if let Some(h) = self.hosts.get_mut(&s) {
                    // A process restart: all soft state (shards held,
                    // forwarding rules, tombstones) is gone, and the
                    // new process establishes a fresh session.
                    h.wipe();
                    h.fenced = false;
                    h.up = true;
                }
                self.cp.server_up(s);
                self.cp.reconcile_server(s);
            }
            Fault::PartitionStart(spec) => {
                self.net.start_partition(spec);
                self.stats.net_partitions += 1;
                for i in 0..self.cfg.servers {
                    if spec.contains(Endpoint::Server(i)) {
                        ctx.schedule_in(SimDuration::from_secs(3), SplitEvent::DetectDown(i));
                    }
                }
            }
            Fault::PartitionHeal => {
                self.net.heal_partition();
                let healed = std::mem::take(&mut self.partitioned);
                for s in healed {
                    // The session re-establishes; the (wiped) server
                    // may accept grants again.
                    if let Some(h) = self.hosts.get_mut(&s) {
                        h.fenced = false;
                    }
                    if self.hosts.get(&s).map(|h| h.up).unwrap_or(false) {
                        self.cp.server_up(s);
                        self.cp.reconcile_server(s);
                    }
                }
            }
            Fault::NetDegrade { drop_pct, dup_pct } => {
                self.degraded = true;
                self.net
                    .set_degradation(f64::from(drop_pct) / 100.0, f64::from(dup_pct) / 100.0);
            }
            Fault::NetHeal => {
                self.degraded = false;
                self.net.heal_degradation();
            }
            // No mini-SMs in this world.
            Fault::MiniSmCrash(_) | Fault::MiniSmRestart(_) => {}
        }
    }

    /// The failure detector fires: a server that is (still) dead or
    /// (still) islanded is declared down, aborting its in-flight
    /// operations and failing its shards over.
    fn detect_down(&mut self, i: u32, ctx: &mut Ctx<'_, SplitEvent>) {
        let s = ServerId(i);
        let host_up = self.hosts.get(&s).map(|h| h.up).unwrap_or(false);
        let islanded = self
            .net
            .partition()
            .is_some_and(|spec| spec.contains(Endpoint::Server(i)));
        if host_up && !islanded {
            return; // recovered before detection
        }
        if host_up && islanded {
            // Alive but unreachable: by the time the control plane's
            // detector fires, the server's own §3.2 self-fence timer
            // (strictly shorter than the session timeout) has already
            // made it wipe its leases — otherwise re-placement would
            // create a second willing primary. Remember to welcome it
            // back when the partition heals.
            if let Some(h) = self.hosts.get_mut(&s) {
                h.wipe();
                h.fenced = true;
            }
            self.stats.self_fences += 1;
            self.partitioned.insert(s);
        }
        self.cp.server_down(s);
        self.flush_commands(ctx);
        ctx.state_changed();
    }

    /// The oracle sweep body, run by the engine (change-driven plus a
    /// coarse safety net): audit key-space coverage on the
    /// authoritative spec, count completed/aborted operations, and
    /// record trace points.
    fn scan(&mut self, ctx: &mut Ctx<'_, SplitEvent>) {
        let now = ctx.now();
        if now > self.cfg.end {
            return;
        }
        self.audit_coverage(now);
        let cp = self.cp.stats();
        self.stats.splits_completed = cp.splits_completed;
        self.stats.splits_aborted = cp.splits_aborted;
        self.stats.merges_completed = cp.merges_completed;
        self.stats.merges_aborted = cp.merges_aborted;
        let shard_count = self
            .cp
            .sharding_spec()
            .map(|s| s.shard_count() as u64)
            .unwrap_or(0);
        self.stats.peak_shards = self.stats.peak_shards.max(shard_count);
        self.last_cp_stats = cp;
        self.trace.record("shards", now, shard_count as f64);
        self.trace
            .record("splits_completed", now, cp.splits_completed as f64);
        self.trace
            .record("merges_completed", now, cp.merges_completed as f64);
        self.trace.record(
            "in_flight_reshards",
            now,
            self.cp.in_flight_reshards() as f64,
        );
        self.trace.record("served", now, self.stats.served as f64);
        self.trace.record("dropped", now, self.stats.dropped as f64);
    }

    /// Audits the coverage invariant on the authoritative spec: its
    /// ranges must partition the key space at every instant — split and
    /// merge commits are atomic spec swaps, so no intermediate state is
    /// ever visible here.
    fn audit_coverage(&mut self, now: SimTime) {
        let Some(spec) = self.cp.sharding_spec() else {
            return;
        };
        let ranges: Vec<(u64, Vec<u8>, Option<Vec<u8>>)> = spec
            .iter()
            .map(|(range, shard)| {
                (
                    shard.raw(),
                    range.start.0.clone(),
                    range.end.as_ref().map(|e| e.0.clone()),
                )
            })
            .collect();
        self.oracle.keyspace_coverage(now, &ranges);
    }

    /// Quiescence: heal everything, settle the control plane against
    /// the healthy fleet, then run the final audits — coverage,
    /// convergence, router agreement, and the request drain.
    fn finalize(&mut self) {
        let at = self.cfg.end;
        // Defensive heal (the plan pairs every fault with a recovery,
        // but a shrunk plan may have dropped one).
        self.net.heal_partition();
        self.net.heal_degradation();
        let ids: Vec<ServerId> = self.hosts.keys().copied().collect();
        for s in &ids {
            let was_down = self.hosts.get(s).map(|h| !h.up).unwrap_or(false);
            if was_down {
                if let Some(h) = self.hosts.get_mut(s) {
                    h.wipe();
                    h.up = true;
                }
            }
            if let Some(h) = self.hosts.get_mut(s) {
                h.fenced = false;
            }
            self.cp.server_up(*s);
            if was_down {
                self.cp.reconcile_server(*s);
            }
        }
        for s in std::mem::take(&mut self.partitioned) {
            self.cp.server_up(s);
            self.cp.reconcile_server(s);
        }
        self.settle();
        self.refresh_router();
        // Final audits.
        self.audit_coverage(at);
        let cp = self.cp.stats();
        self.stats.splits_completed = cp.splits_completed;
        self.stats.splits_aborted = cp.splits_aborted;
        self.stats.merges_completed = cp.merges_completed;
        self.stats.merges_aborted = cp.merges_aborted;
        self.stats.orch_errors += self.cp.drain_errors().len() as u64;
        self.stats.final_shards = self
            .cp
            .sharding_spec()
            .map(|s| s.shard_count() as u64)
            .unwrap_or(0);
        self.stats.peak_shards = self.stats.peak_shards.max(self.stats.final_shards);
        let unplaced = self.unplaced_count();
        let in_flight = self.cp.in_flight_migrations() + self.cp.in_flight_reshards();
        let divergence = self.router_divergence();
        self.oracle
            .convergence_check(at, unplaced, in_flight, divergence);
        // Every issued request must have resolved by now: the retry
        // budget (max_attempts × retry_delay) fits inside the post-
        // traffic tail, so anything still outstanding was lost track
        // of — a lost request.
        self.oracle.quiescent_drain_check(at);
    }
}

impl World for SplitWorld {
    type Event = SplitEvent;

    fn handle(&mut self, ctx: &mut Ctx<'_, SplitEvent>, event: SplitEvent) {
        match event {
            SplitEvent::ClientTick(c) => self.client_tick(c, ctx),
            SplitEvent::Deliver {
                req,
                shard,
                target,
                hops,
            } => self.deliver(req, shard, target, hops, ctx),
            SplitEvent::Retry { req } => self.route(req, ctx),
            SplitEvent::RpcSend { id, server, rpc } => self.rpc_send(id, server, rpc, ctx),
            SplitEvent::RpcResult {
                id,
                server,
                rpc,
                ok,
            } => self.rpc_result(id, server, rpc, ok, ctx),
            SplitEvent::RpcTimeout { id } => self.rpc_timeout(id, ctx),
            SplitEvent::DetectDown(i) => self.detect_down(i, ctx),
            SplitEvent::FaultHit(i) => {
                if let Some((_, fault)) = self.plan.get(i).copied() {
                    self.apply_fault(fault, ctx);
                    self.flush_commands(ctx);
                    ctx.state_changed();
                }
            }
            SplitEvent::RetryTick => self.retry_tick(ctx),
            SplitEvent::ReshardTick => self.reshard_tick(ctx),
            SplitEvent::RouterRefresh => self.router_refresh(ctx),
        }
    }

    fn sweep(&mut self, ctx: &mut Ctx<'_, SplitEvent>) {
        self.scan(ctx);
    }

    fn sweep_interval(&self) -> Option<SimDuration> {
        Some(SimDuration::from_secs(1))
    }
}

/// Outcome of one skew-storm run.
#[derive(Debug)]
pub struct SplitReport {
    /// Traffic, resharding, and fault counters.
    pub stats: SplitStats,
    /// Network delivery counters.
    pub net: NetStats,
    /// Invariant violations the oracle observed (empty on a safe run).
    pub violations: Vec<OracleViolation>,
    /// Total violations, uncapped (the list above is capped).
    pub total_violations: u64,
    /// True when, at the end, every spec shard had a primary and
    /// nothing was stuck mid-operation.
    pub converged: bool,
    /// Spec shards lacking a primary at the end (diagnostics).
    pub unplaced: usize,
    /// The fault plan the run executed (replay/shrink input).
    pub plan: Vec<(SimTime, Fault)>,
    /// The run's time-series trace, rendered as CSV (5 s buckets) —
    /// byte-identical across reruns of the same seed and plan.
    pub trace_csv: String,
}

impl SplitReport {
    /// True when the oracle observed at least one invariant violation.
    pub fn failed(&self) -> bool {
        self.total_violations > 0
    }

    /// The distinct invariant kinds violated.
    pub fn violated_kinds(&self) -> BTreeSet<InvariantKind> {
        self.violations.iter().map(|v| v.kind).collect()
    }

    /// A canonical one-line-per-violation rendering — two runs have
    /// identical oracle verdicts iff these strings are equal.
    pub fn verdict(&self) -> String {
        let mut out = format!("total={}\n", self.total_violations);
        for v in &self.violations {
            out.push_str(&format!("{} {} {}\n", v.at.0, v.kind.name(), v.detail));
        }
        out
    }
}

/// Runs one seeded skew-storm experiment to completion.
pub fn run_split(cfg: SplitConfig) -> SplitReport {
    run_split_queued(cfg, QueueKind::default())
}

/// [`run_split`] on an explicit engine queue implementation — the
/// differential-testing entry point.
pub fn run_split_queued(cfg: SplitConfig, kind: QueueKind) -> SplitReport {
    run_world(SplitWorld::new(cfg), cfg, kind)
}

/// Runs a skew-storm experiment with an explicit fault plan — the
/// replay and shrink path. The plan must be time-sorted.
pub fn run_split_with_plan(cfg: SplitConfig, plan: Vec<(SimTime, Fault)>) -> SplitReport {
    run_world(
        SplitWorld::new_with_plan(cfg, plan),
        cfg,
        QueueKind::default(),
    )
}

/// Runs every job in the grid and returns reports in input order; each
/// run is single-threaded and pure, so `threads` changes only
/// wall-clock time.
pub fn run_split_swarm(jobs: &[SplitConfig], threads: usize) -> Vec<SplitReport> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.iter().map(|&cfg| run_split(cfg)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<SplitReport>>> =
        Mutex::new((0..jobs.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&cfg) = jobs.get(i) else { break };
                let report = run_split(cfg);
                if let Ok(mut slots) = slots.lock() {
                    slots[i] = Some(report);
                }
            });
        }
    });
    slots
        .into_inner()
        .unwrap_or_default()
        .into_iter()
        .map(|r| r.expect("every job index was claimed by exactly one worker"))
        .collect()
}

/// Shrinks a failing skew-storm fault plan to a minimal reproducer,
/// reusing the chaos shrinker's ddmin core: a candidate counts as
/// still-failing when it violates one of the originally observed
/// invariant kinds.
pub fn shrink_split(cfg: SplitConfig, plan: &[(SimTime, Fault)]) -> Option<Vec<(SimTime, Fault)>> {
    let kinds = run_split_with_plan(cfg, plan.to_vec()).violated_kinds();
    if kinds.is_empty() {
        return None;
    }
    shrink_plan(plan, |candidate| {
        run_split_with_plan(cfg, candidate.to_vec())
            .violations
            .iter()
            .any(|v| kinds.contains(&v.kind))
    })
}

fn run_world(world: SplitWorld, cfg: SplitConfig, kind: QueueKind) -> SplitReport {
    let plan_times: Vec<SimTime> = world.plan.iter().map(|(at, _)| *at).collect();
    let mut sim = Simulation::with_queue(world, cfg.seed, kind);
    for (i, at) in plan_times.iter().enumerate() {
        sim.schedule_at(*at, SplitEvent::FaultHit(i));
    }
    for c in 0..cfg.clients {
        sim.schedule_at(
            SimTime::from_millis(5_000 + 37 * u64::from(c)),
            SplitEvent::ClientTick(c),
        );
    }
    sim.schedule_at(SimTime::from_secs(1), SplitEvent::RetryTick);
    sim.schedule_at(SimTime::from_secs(2), SplitEvent::ReshardTick);
    sim.schedule_at(SimTime::from_millis(700), SplitEvent::RouterRefresh);
    sim.run_until(cfg.end);
    // Whatever is still in flight at `end` is abandoned; `finalize`
    // settles the control plane synchronously against the healed fleet.
    let mut world = sim.into_world();
    world.finalize();
    let converged = world.converged();
    let unplaced = world.unplaced_count();
    SplitReport {
        stats: world.stats,
        net: world.net.stats(),
        violations: world.oracle.violations().to_vec(),
        total_violations: world.oracle.total_violations(),
        converged,
        unplaced,
        plan: world.plan.clone(),
        trace_csv: world.trace.to_csv(5),
    }
}

// ---------------------------------------------------------------------
// Replayable reproducer JSON (shares the fault codec with `dst`).
// ---------------------------------------------------------------------

/// Serializes a skew-storm reproducer — the config knobs that matter
/// plus its (possibly shrunk) fault plan — as a self-contained JSON
/// document.
pub fn split_repro_to_json(cfg: &SplitConfig, plan: &[(SimTime, Fault)]) -> String {
    let events: Vec<String> = plan
        .iter()
        .map(|(at, f)| format!("    {{\"at_us\":{},\"fault\":{}}}", at.0, fault_to_json(*f)))
        .collect();
    format!(
        "{{\n  \"world\": \"split\",\n  \"seed\": {},\n  \"profile\": \"{}\",\n  \"adaptive\": {},\n  \"skip_cutover_ack\": {},\n  \"plan\": [\n{}\n  ]\n}}\n",
        cfg.seed,
        cfg.profile.name(),
        cfg.adaptive,
        cfg.skip_cutover_ack,
        events.join(",\n")
    )
}

/// Parses a reproducer produced by [`split_repro_to_json`] back into
/// the standard DST-shaped config plus its plan. Returns `None` on any
/// malformed input (never panics).
pub fn split_repro_from_json(text: &str) -> Option<(SplitConfig, Vec<(SimTime, Fault)>)> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let doc = parser.value()?;
    if doc.get("world")?.as_str()? != "split" {
        return None;
    }
    let mut cfg = SplitConfig::dst(
        doc.get("seed")?.as_u64()?,
        FaultProfile::parse(doc.get("profile")?.as_str()?)?,
    );
    cfg.adaptive = doc.get("adaptive")?.as_bool()?;
    cfg.skip_cutover_ack = doc.get("skip_cutover_ack")?.as_bool()?;
    let Json::Arr(events) = doc.get("plan")? else {
        return None;
    };
    let mut plan = Vec::with_capacity(events.len());
    for e in events {
        let at = SimTime(e.get("at_us")?.as_u64()?);
        plan.push((at, fault_from_json(e.get("fault")?)?));
    }
    Some((cfg, plan))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_bootstraps_with_every_shard_placed() {
        let w = SplitWorld::new(SplitConfig::dst(1, FaultProfile::SplitChaos));
        assert_eq!(w.unplaced_count(), 0, "every shard gets a primary");
        assert!(w.converged());
        assert_eq!(
            w.cp.sharding_spec().map(|s| s.shard_count()),
            Some(8),
            "initial uniform spec registered"
        );
        assert!(!w.plan.is_empty(), "profile derives a fault schedule");
        // The client router already agrees with the assignment.
        let mut w = w;
        assert_eq!(w.router_divergence(), 0);
    }

    #[test]
    fn quiet_storm_splits_then_merges_and_stays_clean() {
        // No faults at all: the viral window alone must drive real
        // splits through the generalized protocol, the cooldown must
        // drive merges, and nothing may be lost.
        let cfg = SplitConfig::dst(7, FaultProfile::SplitChaos);
        let r = run_split_with_plan(cfg, Vec::new());
        assert_eq!(r.total_violations, 0, "oracle: {:?}", r.violations);
        assert!(r.converged, "{} unplaced", r.unplaced);
        assert!(
            r.stats.splits_completed >= 2,
            "the storm must trigger splits: {:?}",
            r.stats
        );
        assert!(
            r.stats.merges_completed >= 1,
            "the cooldown must trigger merges: {:?}",
            r.stats
        );
        assert!(
            r.stats.peak_shards > 8 && r.stats.final_shards < r.stats.peak_shards,
            "shard count must rise and fall: {:?}",
            r.stats
        );
        assert!(r.stats.served > 1_000, "{:?}", r.stats);
        assert_eq!(r.stats.dropped, 0, "{:?}", r.stats);
        assert!(r.stats.forwards > 0, "graceful handoffs forward requests");
    }

    #[test]
    fn static_sharding_never_resplits() {
        let mut cfg = SplitConfig::dst(7, FaultProfile::SplitChaos);
        cfg.adaptive = false;
        let r = run_split_with_plan(cfg, Vec::new());
        assert_eq!(r.stats.splits_completed, 0);
        assert_eq!(r.stats.peak_shards, 8);
        assert_eq!(r.total_violations, 0, "static is safe, just overloaded");
    }

    #[test]
    fn split_repro_json_round_trips() {
        let mut cfg = SplitConfig::dst(9, FaultProfile::SplitChaos);
        cfg.skip_cutover_ack = true;
        let plan = vec![
            (SimTime::from_secs(21), Fault::ServerCrash(2)),
            (
                SimTime::from_secs(24),
                Fault::NetDegrade {
                    drop_pct: 5,
                    dup_pct: 3,
                },
            ),
            (SimTime::from_secs(31), Fault::ServerRestart(2)),
            (SimTime::from_secs(34), Fault::NetHeal),
        ];
        let json = split_repro_to_json(&cfg, &plan);
        let (cfg2, plan2) = split_repro_from_json(&json).expect("own output parses");
        assert_eq!(cfg, cfg2);
        assert_eq!(plan, plan2);
        // A reconfig reproducer is not a split reproducer.
        assert!(split_repro_from_json("{\"seed\": 1}").is_none());
    }
}
