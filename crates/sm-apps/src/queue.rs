//! A primary-only queue service with in-order delivery.
//!
//! Models the instant-messaging queue of §8.2: each shard is an ordered
//! queue of messages for a set of devices; exactly one server (the
//! primary) owns a shard at a time, which is what guarantees in-order
//! delivery. Queue state is soft: the durable log lives upstream, so a
//! moved shard restarts from the last acknowledged sequence number.

use crate::forwarding::ShardHost;
use crate::AppResponse;
use sm_core::ShardServer;
use sm_types::{LoadVector, Metric, ReplicaRole, ServerId, ShardId, SmError};
use std::collections::{BTreeMap, VecDeque};

/// One queue application server.
#[derive(Debug, Default)]
pub struct QueueServer {
    host: ShardHost,
    queues: BTreeMap<ShardId, VecDeque<(u64, Vec<u8>)>>,
    /// Next sequence number to assign, per shard. Persisted upstream in
    /// the real system; kept across moves via the shared counter the
    /// harness owns. Locally it only ever increases.
    next_seq: BTreeMap<ShardId, u64>,
    delivered: u64,
}

impl QueueServer {
    /// Creates an empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Routing decision for a primary-type request on `shard`.
    pub fn admit(&self, shard: ShardId, forwarded: bool) -> AppResponse {
        self.host.admit(shard, forwarded)
    }

    /// Routing decision for a secondary-type request (any replica
    /// serves — secondary-only replication policies).
    pub fn admit_secondary(&self, shard: ShardId, forwarded: bool) -> AppResponse {
        self.host.admit_secondary(shard, forwarded)
    }

    /// Enqueues a message, returning its sequence number.
    pub fn enqueue(&mut self, shard: ShardId, payload: Vec<u8>) -> Result<u64, SmError> {
        if self.host.role_of(shard) != Some(ReplicaRole::Primary) {
            return Err(SmError::Unavailable(format!("{shard} not primary here")));
        }
        let seq = self.next_seq.entry(shard).or_insert(0);
        let n = *seq;
        *seq += 1;
        self.queues
            .entry(shard)
            .or_default()
            .push_back((n, payload));
        Ok(n)
    }

    /// Dequeues the oldest message.
    pub fn dequeue(&mut self, shard: ShardId) -> Result<Option<(u64, Vec<u8>)>, SmError> {
        if self.host.role_of(shard) != Some(ReplicaRole::Primary) {
            return Err(SmError::Unavailable(format!("{shard} not primary here")));
        }
        let item = self.queues.get_mut(&shard).and_then(VecDeque::pop_front);
        if item.is_some() {
            self.delivered += 1;
        }
        Ok(item)
    }

    /// Queue depth of one shard — the paper's "single synthetic metric"
    /// (request queue size, §2.2.4).
    pub fn depth(&self, shard: ShardId) -> usize {
        self.queues.get(&shard).map(VecDeque::len).unwrap_or(0)
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// True if the shard's queue is already materialized locally.
    pub fn is_warm(&self, shard: ShardId) -> bool {
        self.queues.contains_key(&shard)
    }

    /// Restores a shard's sequence counter after a migration (the
    /// harness carries it over, standing in for the upstream log).
    pub fn restore_seq(&mut self, shard: ShardId, next: u64) {
        self.next_seq.insert(shard, next);
    }

    /// The shard's next sequence number (for handover).
    pub fn seq_of(&self, shard: ShardId) -> u64 {
        self.next_seq.get(&shard).copied().unwrap_or(0)
    }
}

impl ShardServer for QueueServer {
    fn add_shard(&mut self, shard: ShardId, role: ReplicaRole) -> Result<(), SmError> {
        self.host.add_shard(shard, role)?;
        self.queues.entry(shard).or_default();
        Ok(())
    }

    fn drop_shard(&mut self, shard: ShardId) -> Result<(), SmError> {
        self.host.drop_shard(shard)?;
        self.queues.remove(&shard);
        Ok(())
    }

    fn change_role(
        &mut self,
        shard: ShardId,
        current: ReplicaRole,
        new: ReplicaRole,
    ) -> Result<(), SmError> {
        self.host.change_role(shard, current, new)
    }

    fn prepare_add_shard(
        &mut self,
        shard: ShardId,
        current_owner: ServerId,
        role: ReplicaRole,
    ) -> Result<(), SmError> {
        self.host.prepare_add_shard(shard, current_owner, role)?;
        // Warm the queue state ahead of the handover.
        self.queues.entry(shard).or_default();
        Ok(())
    }

    fn prepare_drop_shard(
        &mut self,
        shard: ShardId,
        new_owner: ServerId,
        role: ReplicaRole,
    ) -> Result<(), SmError> {
        self.host.prepare_drop_shard(shard, new_owner, role)
    }

    fn report_load(&self) -> Vec<(ShardId, LoadVector)> {
        self.host
            .shards()
            .map(|(shard, _)| {
                let mut v = LoadVector::zero();
                v.set(Metric::ShardCount.id(), 1.0);
                v.set(Metric::Synthetic.id(), self.depth(*shard) as f64);
                (*shard, v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: ShardId = ShardId(0);

    #[test]
    fn fifo_order_per_shard() {
        let mut q = QueueServer::new();
        q.add_shard(S, ReplicaRole::Primary).unwrap();
        for i in 0..5u8 {
            q.enqueue(S, vec![i]).unwrap();
        }
        for i in 0..5u8 {
            let (seq, payload) = q.dequeue(S).unwrap().unwrap();
            assert_eq!(seq, u64::from(i));
            assert_eq!(payload, vec![i]);
        }
        assert_eq!(q.dequeue(S).unwrap(), None);
        assert_eq!(q.delivered(), 5);
    }

    #[test]
    fn only_primary_serves() {
        let mut q = QueueServer::new();
        q.add_shard(S, ReplicaRole::Secondary).unwrap();
        assert!(q.enqueue(S, vec![1]).is_err());
        assert!(q.dequeue(S).is_err());
        q.change_role(S, ReplicaRole::Secondary, ReplicaRole::Primary)
            .unwrap();
        assert!(q.enqueue(S, vec![1]).is_ok());
    }

    #[test]
    fn sequence_survives_migration() {
        let mut old = QueueServer::new();
        old.add_shard(S, ReplicaRole::Primary).unwrap();
        old.enqueue(S, vec![0]).unwrap();
        old.enqueue(S, vec![1]).unwrap();
        let carried = old.seq_of(S);

        let mut new = QueueServer::new();
        new.add_shard(S, ReplicaRole::Primary).unwrap();
        new.restore_seq(S, carried);
        let seq = new.enqueue(S, vec![2]).unwrap();
        assert_eq!(seq, 2, "numbering continues in order");
    }

    #[test]
    fn depth_reports_synthetic_load() {
        let mut q = QueueServer::new();
        q.add_shard(S, ReplicaRole::Primary).unwrap();
        q.enqueue(S, vec![1]).unwrap();
        q.enqueue(S, vec![2]).unwrap();
        let report = q.report_load();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].1.get(Metric::Synthetic.id()), 2.0);
    }
}
