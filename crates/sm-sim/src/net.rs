//! Region-pair network latency model.
//!
//! §8.3 runs the geo-failover experiment across FRC (east-coast US),
//! PRN (west-coast US), and ODN (Odense, Denmark). The latency figures
//! there show intra-region accesses at a few milliseconds and
//! cross-region accesses several tens of milliseconds higher. This model
//! captures exactly that: a symmetric one-way latency matrix plus a
//! multiplicative jitter.

use crate::rng::SimRng;
use crate::time::SimDuration;
use sm_types::RegionId;

/// Symmetric one-way latency between regions, with jitter.
#[derive(Clone, Debug)]
pub struct LatencyModel {
    /// `matrix[a][b]` = base one-way latency in ms between regions a, b.
    matrix: Vec<Vec<f64>>,
    /// Jitter fraction: samples are uniform in `[base, base * (1 + jitter)]`.
    jitter: f64,
}

impl LatencyModel {
    /// Builds a model from a base matrix (milliseconds).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or not symmetric.
    pub fn new(matrix: Vec<Vec<f64>>, jitter: f64) -> Self {
        let n = matrix.len();
        for row in &matrix {
            assert_eq!(row.len(), n, "latency matrix must be square");
        }
        for (i, row) in matrix.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                assert!(
                    (v - matrix[j][i]).abs() < 1e-9,
                    "latency matrix must be symmetric"
                );
            }
        }
        Self { matrix, jitter }
    }

    /// A uniform model: `intra` ms within a region, `inter` ms across
    /// any pair of distinct regions.
    pub fn uniform(regions: usize, intra_ms: f64, inter_ms: f64) -> Self {
        let matrix = (0..regions)
            .map(|i| {
                (0..regions)
                    .map(|j| if i == j { intra_ms } else { inter_ms })
                    .collect()
            })
            .collect();
        Self::new(matrix, 0.1)
    }

    /// The three-region geometry of §8.3.
    ///
    /// Region 0 = FRC (Forest City, NC), region 1 = PRN (Prineville, OR),
    /// region 2 = ODN (Odense, Denmark). One-way base latencies: 1 ms
    /// intra-region, 35 ms FRC–PRN, 45 ms FRC–ODN, 75 ms PRN–ODN.
    pub fn frc_prn_odn() -> Self {
        Self::new(
            vec![
                vec![1.0, 35.0, 45.0],
                vec![35.0, 1.0, 75.0],
                vec![45.0, 75.0, 1.0],
            ],
            0.1,
        )
    }

    /// Number of regions the model covers.
    pub fn region_count(&self) -> usize {
        self.matrix.len()
    }

    /// Base one-way latency between two regions, without jitter.
    ///
    /// Regions outside the matrix are treated as maximally distant
    /// (the matrix's largest entry), which keeps experiments that add
    /// regions late fail-safe rather than fail-fast.
    pub fn base_ms(&self, a: RegionId, b: RegionId) -> f64 {
        let (i, j) = (a.raw() as usize, b.raw() as usize);
        if i < self.matrix.len() && j < self.matrix.len() {
            self.matrix[i][j]
        } else {
            self.matrix.iter().flatten().copied().fold(1.0, f64::max)
        }
    }

    /// Samples a one-way latency between two regions.
    pub fn sample(&self, a: RegionId, b: RegionId, rng: &mut SimRng) -> SimDuration {
        let base = self.base_ms(a, b);
        let ms = base * (1.0 + self.jitter * rng.f64());
        SimDuration::from_millis_f64(ms)
    }

    /// Samples a round-trip latency between two regions.
    pub fn sample_rtt(&self, a: RegionId, b: RegionId, rng: &mut SimRng) -> SimDuration {
        self.sample(a, b, rng) + self.sample(b, a, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_matches_paper_geometry() {
        let m = LatencyModel::frc_prn_odn();
        assert_eq!(m.region_count(), 3);
        let frc = RegionId(0);
        let prn = RegionId(1);
        let odn = RegionId(2);
        assert_eq!(m.base_ms(frc, frc), 1.0);
        assert_eq!(m.base_ms(frc, prn), 35.0);
        assert_eq!(m.base_ms(frc, odn), 45.0);
        assert_eq!(m.base_ms(prn, odn), 75.0);
        assert_eq!(m.base_ms(prn, frc), m.base_ms(frc, prn));
    }

    #[test]
    fn samples_stay_within_jitter_band() {
        let m = LatencyModel::frc_prn_odn();
        let mut rng = SimRng::seeded(9);
        for _ in 0..1000 {
            let d = m.sample(RegionId(0), RegionId(1), &mut rng).as_millis_f64();
            assert!((35.0..=38.6).contains(&d), "latency {d} outside band");
        }
    }

    #[test]
    fn unknown_region_is_maximally_distant() {
        let m = LatencyModel::frc_prn_odn();
        assert_eq!(m.base_ms(RegionId(0), RegionId(9)), 75.0);
    }

    #[test]
    fn uniform_model() {
        let m = LatencyModel::uniform(4, 0.5, 40.0);
        assert_eq!(m.base_ms(RegionId(2), RegionId(2)), 0.5);
        assert_eq!(m.base_ms(RegionId(0), RegionId(3)), 40.0);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_matrix_rejected() {
        LatencyModel::new(vec![vec![1.0, 2.0], vec![3.0, 1.0]], 0.1);
    }

    #[test]
    fn rtt_is_roughly_double() {
        let m = LatencyModel::frc_prn_odn();
        let mut rng = SimRng::seeded(4);
        let rtt = m
            .sample_rtt(RegionId(0), RegionId(2), &mut rng)
            .as_millis_f64();
        assert!((90.0..=99.1).contains(&rtt));
    }
}
