//! The simulated network: a region-pair latency model plus a
//! message-level [`SimNet`] with seeded fault injection.
//!
//! §8.3 runs the geo-failover experiment across FRC (east-coast US),
//! PRN (west-coast US), and ODN (Odense, Denmark). The latency figures
//! there show intra-region accesses at a few milliseconds and
//! cross-region accesses several tens of milliseconds higher.
//! [`LatencyModel`] captures exactly that: a symmetric one-way latency
//! matrix plus a multiplicative jitter.
//!
//! [`SimNet`] layers delivery semantics on top for deterministic
//! simulation testing: typed [`Envelope`]s travel between named
//! [`Endpoint`]s, each transmission sampling its delay from the latency
//! model, and the net can be degraded mid-run — symmetric or asymmetric
//! partitions of a server island, probabilistic message drop and
//! duplication, and (via independent per-message jitter) reordering.
//! All randomness comes from one dedicated [`SimRng`] stream derived
//! from the run seed, so a run is a pure function of `(seed, fault
//! plan)` and replays byte-identically.

use crate::rng::SimRng;
use crate::time::SimDuration;
use sm_types::RegionId;
use std::collections::BTreeMap;

/// Symmetric one-way latency between regions, with jitter.
#[derive(Clone, Debug)]
pub struct LatencyModel {
    /// `matrix[a][b]` = base one-way latency in ms between regions a, b.
    matrix: Vec<Vec<f64>>,
    /// Jitter fraction: samples are uniform in `[base, base * (1 + jitter)]`.
    jitter: f64,
}

impl LatencyModel {
    /// Builds a model from a base matrix (milliseconds).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or not symmetric.
    pub fn new(matrix: Vec<Vec<f64>>, jitter: f64) -> Self {
        let n = matrix.len();
        for row in &matrix {
            assert_eq!(row.len(), n, "latency matrix must be square");
        }
        for (i, row) in matrix.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                assert!(
                    (v - matrix[j][i]).abs() < 1e-9,
                    "latency matrix must be symmetric"
                );
            }
        }
        Self { matrix, jitter }
    }

    /// A uniform model: `intra` ms within a region, `inter` ms across
    /// any pair of distinct regions.
    pub fn uniform(regions: usize, intra_ms: f64, inter_ms: f64) -> Self {
        let matrix = (0..regions)
            .map(|i| {
                (0..regions)
                    .map(|j| if i == j { intra_ms } else { inter_ms })
                    .collect()
            })
            .collect();
        Self::new(matrix, 0.1)
    }

    /// The three-region geometry of §8.3.
    ///
    /// Region 0 = FRC (Forest City, NC), region 1 = PRN (Prineville, OR),
    /// region 2 = ODN (Odense, Denmark). One-way base latencies: 1 ms
    /// intra-region, 35 ms FRC–PRN, 45 ms FRC–ODN, 75 ms PRN–ODN.
    pub fn frc_prn_odn() -> Self {
        Self::new(
            vec![
                vec![1.0, 35.0, 45.0],
                vec![35.0, 1.0, 75.0],
                vec![45.0, 75.0, 1.0],
            ],
            0.1,
        )
    }

    /// Number of regions the model covers.
    pub fn region_count(&self) -> usize {
        self.matrix.len()
    }

    /// Base one-way latency between two regions, without jitter.
    ///
    /// Regions outside the matrix are treated as maximally distant
    /// (the matrix's largest entry), which keeps experiments that add
    /// regions late fail-safe rather than fail-fast.
    pub fn base_ms(&self, a: RegionId, b: RegionId) -> f64 {
        let (i, j) = (a.raw() as usize, b.raw() as usize);
        if i < self.matrix.len() && j < self.matrix.len() {
            // sm-lint: allow(P1) — bounds checked above; matrix is square
            self.matrix[i][j]
        } else {
            self.matrix.iter().flatten().copied().fold(1.0, f64::max)
        }
    }

    /// Samples a one-way latency between two regions.
    pub fn sample(&self, a: RegionId, b: RegionId, rng: &mut SimRng) -> SimDuration {
        let base = self.base_ms(a, b);
        let ms = base * (1.0 + self.jitter * rng.f64());
        SimDuration::from_millis_f64(ms)
    }

    /// Samples a round-trip latency between two regions.
    pub fn sample_rtt(&self, a: RegionId, b: RegionId, rng: &mut SimRng) -> SimDuration {
        self.sample(a, b, rng) + self.sample(b, a, rng)
    }
}

/// A named participant in the simulated network.
///
/// The set is deliberately small: it names exactly the parties the
/// worlds in this workspace wire together. ZooKeeper and the control
/// plane are single logical endpoints (the registry and its mini-SMs
/// are colocated processes); application servers and clients are
/// indexed fleets.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Endpoint {
    /// The ZooKeeper ensemble.
    Zk,
    /// The control plane (partition registry + mini-SM fleet).
    ControlPlane,
    /// The i-th application server.
    Server(u32),
    /// The i-th client / request generator.
    Client(u32),
}

/// A typed message in flight between two endpoints.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Envelope<M> {
    /// Sending endpoint.
    pub src: Endpoint,
    /// Receiving endpoint.
    pub dst: Endpoint,
    /// The payload; the embedding world defines the alphabet.
    pub payload: M,
}

/// An active network partition: a contiguous island of servers
/// `[lo, lo+len)` cut off from everything else (ZK, the control plane,
/// clients, and servers outside the island).
///
/// A *symmetric* partition blocks both directions. An *asymmetric*
/// one (`asym = true`) blocks only traffic **leaving** the island:
/// requests still reach an islanded server, but nothing it sends —
/// heartbeats, acks, responses — gets out. That is the nastiest shape
/// for fencing: the server looks alive to clients while ZooKeeper
/// times its session out.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PartitionSpec {
    /// First server index in the island.
    pub lo: u32,
    /// Island width (number of servers).
    pub len: u32,
    /// True to block only island→outside traffic.
    pub asym: bool,
}

impl PartitionSpec {
    /// True when `ep` is inside the island.
    pub fn contains(&self, ep: Endpoint) -> bool {
        matches!(ep, Endpoint::Server(i) if i >= self.lo && i < self.lo + self.len)
    }

    /// True when a message `src → dst` is blocked by this partition.
    pub fn blocks(&self, src: Endpoint, dst: Endpoint) -> bool {
        let (s, d) = (self.contains(src), self.contains(dst));
        if self.asym {
            s && !d
        } else {
            s != d
        }
    }
}

/// Delivery counters; part of a run's report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages delivered (one per transmission that got through).
    pub delivered: u64,
    /// Messages lost to probabilistic drop.
    pub dropped: u64,
    /// Extra copies injected by probabilistic duplication.
    pub duplicated: u64,
    /// Messages blocked by an active partition.
    pub blocked: u64,
}

/// The delivered copies of one transmission, stored inline.
///
/// A transmission yields at most two copies (the original plus one
/// duplicate), so the delays live in a fixed two-slot array instead of
/// a heap `Vec` — the simulator's hottest allocation site, gone.
/// Dereferences to a slice, so indexing, `len`, `iter`, and `is_empty`
/// all work as they did on the `Vec`.
#[derive(Clone, Copy, Debug, Default)]
pub struct CopySet {
    buf: [SimDuration; 2],
    len: u8,
}

impl CopySet {
    /// Appends a copy's delay.
    ///
    /// # Panics
    ///
    /// Panics if two copies are already present.
    pub(crate) fn push(&mut self, d: SimDuration) {
        assert!(
            (self.len as usize) < 2,
            "a transmission has at most 2 copies"
        );
        self.buf[self.len as usize] = d;
        self.len += 1;
    }
}

impl std::ops::Deref for CopySet {
    type Target = [SimDuration];
    fn deref(&self) -> &[SimDuration] {
        &self.buf[..self.len as usize]
    }
}

impl PartialEq for CopySet {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}
impl Eq for CopySet {}

impl IntoIterator for CopySet {
    type Item = SimDuration;
    type IntoIter = std::iter::Take<std::array::IntoIter<SimDuration, 2>>;
    fn into_iter(self) -> Self::IntoIter {
        self.buf.into_iter().take(self.len as usize)
    }
}

/// The outcome of one transmission: zero, one, or two delivery delays.
///
/// Empty means the message was lost (dropped or blocked); two entries
/// mean it was duplicated, each copy with its own sampled delay.
/// Because every copy samples delay independently, jitter alone
/// reorders messages between the same pair of endpoints.
#[derive(Clone, Copy, Debug, Default)]
pub struct Transmission {
    /// One sampled delay per delivered copy.
    pub copies: CopySet,
    /// True when an active partition blocked the message.
    pub blocked: bool,
}

/// Dedicated RNG stream for network randomness, independent of the
/// world's own draws — adding or removing a transmission never shifts
/// traffic or fault-plan randomness.
const NET_STREAM: u64 = 0x7E7;

/// Message-level simulated network.
///
/// Construct it from the run seed (`SimNet` derives its own RNG stream
/// via [`SimRng::seed_from`]) and route every inter-process message
/// through [`SimNet::transmit`] / [`SimNet::send`]. Fault injection —
/// [`SimNet::start_partition`], [`SimNet::set_degradation`] — is driven
/// by the `sm_sim::faults` plan DSL, never ad hoc, so the whole failure
/// schedule stays a pure function of the plan config.
#[derive(Clone, Debug)]
pub struct SimNet {
    latency: LatencyModel,
    regions: BTreeMap<Endpoint, RegionId>,
    rng: SimRng,
    partition: Option<PartitionSpec>,
    drop_p: f64,
    dup_p: f64,
    stats: NetStats,
}

impl SimNet {
    /// Builds a healthy net over `latency`, seeded from the run seed.
    pub fn new(latency: LatencyModel, seed: u64) -> Self {
        Self {
            latency,
            regions: BTreeMap::new(),
            rng: SimRng::seed_from(seed, NET_STREAM),
            partition: None,
            drop_p: 0.0,
            dup_p: 0.0,
            stats: NetStats::default(),
        }
    }

    /// Places an endpoint in a region (default: region 0).
    pub fn set_region(&mut self, ep: Endpoint, region: RegionId) {
        self.regions.insert(ep, region);
    }

    fn region(&self, ep: Endpoint) -> RegionId {
        self.regions.get(&ep).copied().unwrap_or(RegionId(0))
    }

    /// Starts (or replaces) a partition.
    pub fn start_partition(&mut self, spec: PartitionSpec) {
        self.partition = Some(spec);
    }

    /// Heals any active partition.
    pub fn heal_partition(&mut self) {
        self.partition = None;
    }

    /// The active partition, if any.
    pub fn partition(&self) -> Option<PartitionSpec> {
        self.partition
    }

    /// Sets probabilistic degradation: each transmission is dropped
    /// with probability `drop_p` and duplicated with `dup_p`.
    pub fn set_degradation(&mut self, drop_p: f64, dup_p: f64) {
        self.drop_p = drop_p.clamp(0.0, 1.0);
        self.dup_p = dup_p.clamp(0.0, 1.0);
    }

    /// Clears probabilistic degradation.
    pub fn heal_degradation(&mut self) {
        self.drop_p = 0.0;
        self.dup_p = 0.0;
    }

    /// Delivery counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Transmits one message `src → dst`, returning the delays of the
    /// delivered copies (possibly none). The RNG draw sequence is fixed
    /// per outcome class, so the same seed always yields the same
    /// schedule.
    pub fn transmit(&mut self, src: Endpoint, dst: Endpoint) -> Transmission {
        if let Some(p) = &self.partition {
            if p.blocks(src, dst) {
                self.stats.blocked += 1;
                return Transmission {
                    copies: CopySet::default(),
                    blocked: true,
                };
            }
        }
        if self.drop_p > 0.0 && self.rng.chance(self.drop_p) {
            self.stats.dropped += 1;
            return Transmission::default();
        }
        let (a, b) = (self.region(src), self.region(dst));
        let mut copies = CopySet::default();
        copies.push(self.latency.sample(a, b, &mut self.rng));
        if self.dup_p > 0.0 && self.rng.chance(self.dup_p) {
            copies.push(self.latency.sample(a, b, &mut self.rng));
            self.stats.duplicated += 1;
        }
        self.stats.delivered += 1;
        Transmission {
            copies,
            blocked: false,
        }
    }

    /// Transmits a typed envelope: the envelope paired with each
    /// delivered copy's delay, ready to schedule.
    pub fn send<M: Clone>(&mut self, envelope: Envelope<M>) -> Vec<(SimDuration, Envelope<M>)> {
        self.transmit(envelope.src, envelope.dst)
            .copies
            .into_iter()
            .map(|d| (d, envelope.clone()))
            .collect()
    }

    /// Delay on the *ordered, reliable* channel between two endpoints:
    /// the base latency with no jitter, no drop, and no duplication.
    ///
    /// This models a session-oriented transport (the ZK client's TCP
    /// connection): notifications are never lost or reordered while the
    /// session lives — sessions *die* instead, which the heartbeat
    /// machinery models separately. Partitions do not block this
    /// channel because in this workspace the control plane is colocated
    /// with ZK and neither is ever islanded.
    pub fn ordered_delay(&self, src: Endpoint, dst: Endpoint) -> SimDuration {
        SimDuration::from_millis_f64(self.latency.base_ms(self.region(src), self.region(dst)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_matches_paper_geometry() {
        let m = LatencyModel::frc_prn_odn();
        assert_eq!(m.region_count(), 3);
        let frc = RegionId(0);
        let prn = RegionId(1);
        let odn = RegionId(2);
        assert_eq!(m.base_ms(frc, frc), 1.0);
        assert_eq!(m.base_ms(frc, prn), 35.0);
        assert_eq!(m.base_ms(frc, odn), 45.0);
        assert_eq!(m.base_ms(prn, odn), 75.0);
        assert_eq!(m.base_ms(prn, frc), m.base_ms(frc, prn));
    }

    #[test]
    fn samples_stay_within_jitter_band() {
        let m = LatencyModel::frc_prn_odn();
        let mut rng = SimRng::seeded(9);
        for _ in 0..1000 {
            let d = m.sample(RegionId(0), RegionId(1), &mut rng).as_millis_f64();
            assert!((35.0..=38.6).contains(&d), "latency {d} outside band");
        }
    }

    #[test]
    fn unknown_region_is_maximally_distant() {
        let m = LatencyModel::frc_prn_odn();
        assert_eq!(m.base_ms(RegionId(0), RegionId(9)), 75.0);
    }

    #[test]
    fn uniform_model() {
        let m = LatencyModel::uniform(4, 0.5, 40.0);
        assert_eq!(m.base_ms(RegionId(2), RegionId(2)), 0.5);
        assert_eq!(m.base_ms(RegionId(0), RegionId(3)), 40.0);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_matrix_rejected() {
        LatencyModel::new(vec![vec![1.0, 2.0], vec![3.0, 1.0]], 0.1);
    }

    #[test]
    fn rtt_is_roughly_double() {
        let m = LatencyModel::frc_prn_odn();
        let mut rng = SimRng::seeded(4);
        let rtt = m
            .sample_rtt(RegionId(0), RegionId(2), &mut rng)
            .as_millis_f64();
        assert!((90.0..=99.1).contains(&rtt));
    }

    fn net(seed: u64) -> SimNet {
        SimNet::new(LatencyModel::uniform(1, 10.0, 10.0), seed)
    }

    #[test]
    fn healthy_net_delivers_exactly_once_with_jitter() {
        let seed = 11;
        let mut n = net(seed);
        for _ in 0..500 {
            let t = n.transmit(Endpoint::Client(0), Endpoint::Server(3));
            assert_eq!(t.copies.len(), 1);
            let ms = t.copies[0].as_millis_f64();
            assert!((10.0..=11.0).contains(&ms), "delay {ms} outside band");
        }
        let s = n.stats();
        assert_eq!(s.delivered, 500);
        assert_eq!(s.dropped + s.duplicated + s.blocked, 0);
    }

    #[test]
    fn transmissions_are_deterministic_per_seed() {
        let seed = 42;
        let (mut a, mut b) = (net(seed), net(seed));
        a.set_degradation(0.2, 0.2);
        b.set_degradation(0.2, 0.2);
        for i in 0..300 {
            let src = Endpoint::Server(i % 7);
            let ta = a.transmit(src, Endpoint::Zk);
            let tb = b.transmit(src, Endpoint::Zk);
            assert_eq!(ta.copies, tb.copies);
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn symmetric_partition_blocks_both_directions() {
        let seed = 3;
        let mut n = net(seed);
        n.start_partition(PartitionSpec {
            lo: 2,
            len: 3,
            asym: false,
        });
        // Island server 3 ↔ everything outside: both ways blocked.
        assert!(n.transmit(Endpoint::Server(3), Endpoint::Zk).blocked);
        assert!(n.transmit(Endpoint::Zk, Endpoint::Server(3)).blocked);
        assert!(n.transmit(Endpoint::Client(0), Endpoint::Server(4)).blocked);
        // Within the island and wholly outside it: unblocked.
        assert_eq!(
            n.transmit(Endpoint::Server(2), Endpoint::Server(4))
                .copies
                .len(),
            1
        );
        assert_eq!(
            n.transmit(Endpoint::Client(1), Endpoint::Server(0))
                .copies
                .len(),
            1
        );
        n.heal_partition();
        assert!(!n.transmit(Endpoint::Server(3), Endpoint::Zk).blocked);
    }

    #[test]
    fn asymmetric_partition_blocks_only_outbound() {
        let seed = 5;
        let mut n = net(seed);
        n.start_partition(PartitionSpec {
            lo: 0,
            len: 2,
            asym: true,
        });
        // Inbound still flows: the islanded server keeps hearing
        // requests...
        assert_eq!(
            n.transmit(Endpoint::Client(0), Endpoint::Server(1))
                .copies
                .len(),
            1
        );
        // ...but nothing it says gets out (heartbeats, acks).
        assert!(n.transmit(Endpoint::Server(1), Endpoint::Zk).blocked);
        assert!(n.transmit(Endpoint::Server(0), Endpoint::Client(0)).blocked);
    }

    #[test]
    fn degradation_drops_and_duplicates_at_roughly_the_set_rates() {
        let seed = 7;
        let mut n = net(seed);
        n.set_degradation(0.3, 0.2);
        for _ in 0..2000 {
            n.transmit(Endpoint::Client(0), Endpoint::Server(0));
        }
        let s = n.stats();
        let drop_rate = s.dropped as f64 / 2000.0;
        assert!((0.25..=0.35).contains(&drop_rate), "drop rate {drop_rate}");
        let dup_rate = s.duplicated as f64 / s.delivered as f64;
        assert!((0.15..=0.25).contains(&dup_rate), "dup rate {dup_rate}");
        n.heal_degradation();
        let before = n.stats().delivered;
        for _ in 0..100 {
            assert_eq!(
                n.transmit(Endpoint::Client(0), Endpoint::Server(0))
                    .copies
                    .len(),
                1
            );
        }
        assert_eq!(n.stats().delivered, before + 100);
    }

    #[test]
    fn send_wraps_envelopes_per_copy() {
        let seed = 9;
        let mut n = net(seed);
        n.set_degradation(0.0, 1.0);
        let sent = n.send(Envelope {
            src: Endpoint::Server(0),
            dst: Endpoint::ControlPlane,
            payload: 7u32,
        });
        assert_eq!(sent.len(), 2, "dup_p = 1 always duplicates");
        assert!(sent.iter().all(|(_, e)| e.payload == 7));
    }

    #[test]
    fn ordered_channel_is_jitter_free_and_unblocked() {
        let seed = 13;
        let mut n = net(seed);
        n.start_partition(PartitionSpec {
            lo: 0,
            len: 9,
            asym: false,
        });
        let d = n.ordered_delay(Endpoint::Zk, Endpoint::ControlPlane);
        assert_eq!(d.as_millis_f64(), 10.0);
        assert_eq!(d, n.ordered_delay(Endpoint::Zk, Endpoint::ControlPlane));
    }
}
