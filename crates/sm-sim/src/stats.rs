//! Small statistics helpers: percentiles and sliding-window counters.

use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Returns the `p`-th percentile (0.0–100.0) of `values` using
/// nearest-rank on a sorted copy, or `None` for an empty slice.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// Counts events within a trailing time window — e.g. "requests in the
/// last 10 s" for computing a rolling success rate.
#[derive(Clone, Debug)]
pub struct WindowedCounter {
    window: SimDuration,
    events: VecDeque<(SimTime, f64)>,
    sum: f64,
}

impl WindowedCounter {
    /// Creates a counter with the given trailing window.
    pub fn new(window: SimDuration) -> Self {
        Self {
            window,
            events: VecDeque::new(),
            sum: 0.0,
        }
    }

    /// Records `weight` at time `now` and expires old entries.
    pub fn add(&mut self, now: SimTime, weight: f64) {
        self.events.push_back((now, weight));
        self.sum += weight;
        self.expire(now);
    }

    /// Sum of weights within the window ending at `now`.
    pub fn total(&mut self, now: SimTime) -> f64 {
        self.expire(now);
        self.sum
    }

    fn expire(&mut self, now: SimTime) {
        while let Some(&(t, w)) = self.events.front() {
            if now.since(t) > self.window {
                self.sum -= w;
                self.events.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), Some(50.0));
        assert_eq!(percentile(&v, 99.0), Some(99.0));
        assert_eq!(percentile(&v, 100.0), Some(100.0));
        assert_eq!(percentile(&v, 1.0), Some(1.0));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
    }

    #[test]
    fn percentile_unsorted_input() {
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), Some(2.0));
    }

    #[test]
    fn windowed_counter_expires() {
        let mut c = WindowedCounter::new(SimDuration::from_secs(10));
        c.add(SimTime::from_secs(0), 1.0);
        c.add(SimTime::from_secs(5), 2.0);
        assert_eq!(c.total(SimTime::from_secs(5)), 3.0);
        // t=0 event is exactly 11s old at t=11 -> expired; t=5 remains.
        assert_eq!(c.total(SimTime::from_secs(11)), 2.0);
        assert_eq!(c.total(SimTime::from_secs(16)), 0.0);
    }

    #[test]
    fn windowed_counter_boundary_inclusive() {
        let mut c = WindowedCounter::new(SimDuration::from_secs(10));
        c.add(SimTime::from_secs(0), 1.0);
        // Exactly window-old events still count (strict > expiry).
        assert_eq!(c.total(SimTime::from_secs(10)), 1.0);
    }
}
