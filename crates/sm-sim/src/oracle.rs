//! The always-on invariant oracle for deterministic simulation testing.
//!
//! A chaos run that only asserts at the end can miss a violation that
//! heals itself — a dual primary that exists for two seconds and then
//! resolves, a stale read sandwiched between correct ones. The
//! [`Oracle`] instead accumulates violations *as the world reports its
//! observations*, event by event, and the verdict is the full list.
//!
//! The invariants are the paper's safety claims:
//!
//! - **At-most-one unfenced primary** per shard (§3.2 self-fencing):
//!   reported via [`Oracle::primaries_observed`], both on every served
//!   request (the moment it matters) and on periodic full sweeps.
//! - **No acknowledged-then-lost request** (§4.1 graceful migration):
//!   every issued request must be served or the run fails
//!   ([`Oracle::request_dropped`]); every read must observe the latest
//!   acknowledged write of its key ([`Oracle::read_served`]).
//! - **Registry/ZK agreement at quiescence**: the in-memory partition
//!   registry must equal the fenced `/sm/registry` snapshot once the
//!   run settles ([`Oracle::quiescent_registry`]).
//! - **Convergence bound after heal**: past a configured deadline
//!   (last planned recovery plus slack), every shard must be placed
//!   and the client-visible routing table must agree with the
//!   orchestrators' assignment ([`Oracle::convergence_check`]).
//!
//! The oracle is domain-light on purpose — it sees ids, counters, and
//! byte snapshots, not control-plane types — so it lives in `sm-sim`
//! beside the engine and every world can use it.

use crate::time::SimTime;

/// Which paper invariant a violation breaks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum InvariantKind {
    /// More than one unfenced server willing to serve a shard.
    DualPrimary,
    /// A request exhausted its retry budget (acknowledged-then-lost
    /// capacity: the system dropped traffic it accepted).
    LostRequest,
    /// A read observed a value older than the latest acknowledged
    /// write of its key.
    StaleRead,
    /// In-memory registry and durable ZK snapshot disagree at
    /// quiescence.
    RegistryDivergence,
    /// Shards still unplaced (or migrations stuck) past the
    /// convergence deadline.
    Unconverged,
    /// The client-visible routing table disagrees with the
    /// orchestrators' assignment past the convergence deadline.
    RouterDivergence,
    /// Replica-set reconfiguration safety broke: either the committed
    /// configuration history contains adjacent configurations whose
    /// quorums can be disjoint (two leaders could commit independently
    /// — the hazard joint consensus exists to prevent), or replicas'
    /// views of the committed configuration fail to converge at
    /// quiescence.
    ReplicaSetAgreement,
    /// The union of live shard key ranges fails to partition the
    /// keyspace: a gap (keys no shard owns) or an overlap (keys two
    /// shards own). Splits and merges must preserve this at every
    /// observable instant.
    KeyspaceCoverage,
}

impl InvariantKind {
    /// Stable short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            InvariantKind::DualPrimary => "dual_primary",
            InvariantKind::LostRequest => "lost_request",
            InvariantKind::StaleRead => "stale_read",
            InvariantKind::RegistryDivergence => "registry_divergence",
            InvariantKind::Unconverged => "unconverged",
            InvariantKind::RouterDivergence => "router_divergence",
            InvariantKind::ReplicaSetAgreement => "replica_set_agreement",
            InvariantKind::KeyspaceCoverage => "keyspace_coverage",
        }
    }
}

/// True when voter sets `a` and `b` admit a pair of disjoint quorums —
/// i.e. a majority of `a` and a majority of `b` that share no member,
/// so two leaders could commit independently. Adjacent configurations
/// in a safe reconfiguration history must never admit this; the joint
/// phase (`C_old,new`) exists precisely to bridge two such sets.
pub fn quorums_can_be_disjoint(
    a: &std::collections::BTreeSet<u64>,
    b: &std::collections::BTreeSet<u64>,
) -> bool {
    if a.is_empty() || b.is_empty() {
        return true;
    }
    let quorum_a = a.len() / 2 + 1;
    let quorum_b = b.len() / 2 + 1;
    let a_only = a.difference(b).count();
    let b_only = b.difference(a).count();
    let shared = a.intersection(b).count();
    // Build the quorums from private members first; they collide only
    // over what each still needs from the intersection.
    let need_a = quorum_a.saturating_sub(a_only);
    let need_b = quorum_b.saturating_sub(b_only);
    need_a + need_b <= shared
}

/// One observed invariant violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OracleViolation {
    /// Simulation time of the observation.
    pub at: SimTime,
    /// Which invariant broke.
    pub kind: InvariantKind,
    /// Deterministic human-readable detail (ids and counts only — no
    /// wall-clock, no addresses — so reports replay byte-identically).
    pub detail: String,
}

/// Caps the violation list so a catastrophically broken run stays
/// cheap to report; the count keeps the true total.
const MAX_RECORDED: usize = 64;

/// One live shard's key range as reported to
/// [`Oracle::keyspace_coverage`]: `(shard, start, end)`, keys as byte
/// strings in lexicographic order, `end == None` meaning unbounded.
pub type ShardRange = (u64, Vec<u8>, Option<Vec<u8>>);

/// Accumulates invariant observations over one simulated run.
#[derive(Clone, Debug, Default)]
pub struct Oracle {
    violations: Vec<OracleViolation>,
    /// Total violations observed, including those past the record cap.
    total: u64,
    /// Latest acknowledged write tag per key.
    acked: std::collections::BTreeMap<u64, u64>,
    /// Requests issued but not yet served, by id.
    outstanding: std::collections::BTreeSet<u64>,
    /// Requests served at least once, by id.
    served: std::collections::BTreeSet<u64>,
    /// Observations processed (cheap liveness counter for reports).
    observations: u64,
}

impl Oracle {
    /// A fresh oracle.
    pub fn new() -> Self {
        Self::default()
    }

    fn violate(&mut self, at: SimTime, kind: InvariantKind, detail: String) {
        self.total += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(OracleViolation { at, kind, detail });
        }
    }

    /// Violations recorded so far (capped at an internal maximum;
    /// [`Oracle::total_violations`] has the uncapped count).
    pub fn violations(&self) -> &[OracleViolation] {
        &self.violations
    }

    /// Total violations observed, uncapped.
    pub fn total_violations(&self) -> u64 {
        self.total
    }

    /// True when no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// Observations processed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Reports the number of *unfenced* servers willing to serve
    /// `shard` right now. More than one is the §3.2 violation.
    pub fn primaries_observed(&mut self, at: SimTime, shard: u64, willing: usize) {
        self.observations += 1;
        if willing > 1 {
            self.violate(
                at,
                InvariantKind::DualPrimary,
                format!("shard {shard}: {willing} unfenced willing primaries"),
            );
        }
    }

    /// Records a client request entering the system.
    pub fn request_issued(&mut self, id: u64) {
        self.observations += 1;
        self.outstanding.insert(id);
    }

    /// Records a request served; returns true the first time (the
    /// world counts a request served once even if the net duplicated
    /// its delivery).
    pub fn request_served(&mut self, id: u64) -> bool {
        self.observations += 1;
        self.outstanding.remove(&id);
        self.served.insert(id)
    }

    /// True when `id` has already been served (a duplicate delivery's
    /// retry chain can be abandoned without counting a drop).
    pub fn already_served(&self, id: u64) -> bool {
        self.served.contains(&id)
    }

    /// Records a request dropped after exhausting its retries — always
    /// a violation.
    pub fn request_dropped(&mut self, at: SimTime, id: u64) {
        self.observations += 1;
        self.outstanding.remove(&id);
        self.violate(
            at,
            InvariantKind::LostRequest,
            format!("request {id} exhausted its retry budget"),
        );
    }

    /// Records a write acknowledged to the client: `tag` becomes the
    /// floor every later read of `key` must observe. Tags are the
    /// world's monotone write counter, so "newer" is a plain compare.
    pub fn write_acked(&mut self, key: u64, tag: u64) {
        self.observations += 1;
        let slot = self.acked.entry(key).or_insert(tag);
        if tag > *slot {
            *slot = tag;
        }
    }

    /// Checks a served read of `key` against the acknowledgement
    /// history: observing nothing, or a tag older than the latest
    /// acknowledged write, is a lost acknowledged write.
    pub fn read_served(&mut self, at: SimTime, key: u64, observed_tag: Option<u64>) {
        self.observations += 1;
        let Some(&latest) = self.acked.get(&key) else {
            return; // never acknowledged a write for this key
        };
        match observed_tag {
            Some(tag) if tag >= latest => {}
            Some(tag) => self.violate(
                at,
                InvariantKind::StaleRead,
                format!("key {key}: read tag {tag} < acked {latest}"),
            ),
            None => self.violate(
                at,
                InvariantKind::StaleRead,
                format!("key {key}: acked write {latest} missing entirely"),
            ),
        }
    }

    /// At quiescence, compares the in-memory registry snapshot with
    /// the durable one read back from ZK.
    pub fn quiescent_registry(&mut self, at: SimTime, in_memory: &[u8], durable: Option<&[u8]>) {
        self.observations += 1;
        match durable {
            Some(d) if d == in_memory => {}
            Some(d) => self.violate(
                at,
                InvariantKind::RegistryDivergence,
                format!(
                    "registry: memory {}B != durable {}B",
                    in_memory.len(),
                    d.len()
                ),
            ),
            None => self.violate(
                at,
                InvariantKind::RegistryDivergence,
                "registry znode missing at quiescence".to_string(),
            ),
        }
    }

    /// Past the convergence deadline, every shard must be placed, no
    /// migration stuck, and the client-visible router must agree with
    /// the assignment (`router_divergence` = number of disagreeing
    /// shards).
    pub fn convergence_check(
        &mut self,
        at: SimTime,
        unplaced: usize,
        in_flight: usize,
        router_divergence: usize,
    ) {
        self.observations += 1;
        if unplaced > 0 || in_flight > 0 {
            self.violate(
                at,
                InvariantKind::Unconverged,
                format!("{unplaced} unplaced shards, {in_flight} stuck migrations"),
            );
        }
        if router_divergence > 0 {
            self.violate(
                at,
                InvariantKind::RouterDivergence,
                format!("router disagrees with assignment on {router_divergence} shards"),
            );
        }
    }

    /// Audits one shard's committed configuration history. Each
    /// configuration is the list of voter sets a commit needs a quorum
    /// in (one set when stable, two during a joint change). Adjacent
    /// configurations must share at least one pair of voter sets whose
    /// quorums always intersect; otherwise the reconfiguration stepped
    /// between memberships that could elect two independent leaders —
    /// the single-step hazard.
    pub fn replica_config_chain(
        &mut self,
        at: SimTime,
        shard: u64,
        chain: &[Vec<std::collections::BTreeSet<u64>>],
    ) {
        self.observations += 1;
        for (i, pair) in chain.windows(2).enumerate() {
            let (prev, next) = (&pair[0], &pair[1]);
            let bridged = prev
                .iter()
                .any(|x| next.iter().any(|y| !quorums_can_be_disjoint(x, y)));
            if !bridged {
                self.violate(
                    at,
                    InvariantKind::ReplicaSetAgreement,
                    format!(
                        "shard {shard}: committed configs {i}->{} admit disjoint quorums",
                        i + 1
                    ),
                );
            }
        }
    }

    /// At quiescence, every replica of a shard must hold the same view
    /// of the committed configuration (`views` carries one entry per
    /// live replica). Divergence past convergence means the membership
    /// change never reached agreement.
    pub fn replica_views_converged(
        &mut self,
        at: SimTime,
        shard: u64,
        views: &[Vec<std::collections::BTreeSet<u64>>],
    ) {
        self.observations += 1;
        let distinct: std::collections::BTreeSet<&Vec<std::collections::BTreeSet<u64>>> =
            views.iter().collect();
        if distinct.len() > 1 {
            self.violate(
                at,
                InvariantKind::ReplicaSetAgreement,
                format!(
                    "shard {shard}: {} distinct committed-config views across {} replicas",
                    distinct.len(),
                    views.len()
                ),
            );
        }
    }

    /// Audits keyspace coverage: `ranges` carries each live shard as a
    /// [`ShardRange`] `(shard, start, end)` where keys are byte strings in
    /// lexicographic order and `end == None` means unbounded. The
    /// ranges must partition the keyspace — sorted by start, the first
    /// starting at the empty (minimum) key, each range's end equal to
    /// the next range's start, and exactly the last unbounded. A gap
    /// means requests with no owner; an overlap means two owners — both
    /// violations. An empty set of ranges is also a violation (the
    /// whole keyspace is a gap).
    pub fn keyspace_coverage(&mut self, at: SimTime, ranges: &[ShardRange]) {
        self.observations += 1;
        let mut sorted: Vec<&ShardRange> = ranges.iter().collect();
        sorted.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        let Some(first) = sorted.first() else {
            self.violate(
                at,
                InvariantKind::KeyspaceCoverage,
                "no live shard ranges: the whole keyspace is a gap".to_string(),
            );
            return;
        };
        if !first.1.is_empty() {
            self.violate(
                at,
                InvariantKind::KeyspaceCoverage,
                format!(
                    "gap before shard {}: keyspace starts at {:02x?}",
                    first.0, first.1
                ),
            );
        }
        for pair in sorted.windows(2) {
            let (prev, next) = (pair[0], pair[1]);
            match &prev.2 {
                None => self.violate(
                    at,
                    InvariantKind::KeyspaceCoverage,
                    format!(
                        "overlap: shard {} is unbounded but shard {} starts at {:02x?}",
                        prev.0, next.0, next.1
                    ),
                ),
                Some(end) if *end < next.1 => self.violate(
                    at,
                    InvariantKind::KeyspaceCoverage,
                    format!(
                        "gap between shard {} (ends {:02x?}) and shard {} (starts {:02x?})",
                        prev.0, end, next.0, next.1
                    ),
                ),
                Some(end) if *end > next.1 => self.violate(
                    at,
                    InvariantKind::KeyspaceCoverage,
                    format!(
                        "overlap between shard {} (ends {:02x?}) and shard {} (starts {:02x?})",
                        prev.0, end, next.0, next.1
                    ),
                ),
                Some(_) => {}
            }
        }
        if let Some(last) = sorted.last() {
            if let Some(end) = &last.2 {
                self.violate(
                    at,
                    InvariantKind::KeyspaceCoverage,
                    format!("gap at the top: shard {} ends at {:02x?}", last.0, end),
                );
            }
        }
    }

    /// Requests still outstanding (issued, neither served nor
    /// dropped); nonzero at the end of a drained run means the world
    /// lost track of traffic.
    pub fn outstanding_requests(&self) -> usize {
        self.outstanding.len()
    }

    /// At the end of a fully-drained run, any request still
    /// outstanding was silently lost — neither served nor explicitly
    /// dropped — which is its own `lost_request` violation.
    pub fn quiescent_drain_check(&mut self, at: SimTime) {
        self.observations += 1;
        let lost: Vec<u64> = self.outstanding.iter().copied().collect();
        for id in lost {
            self.outstanding.remove(&id);
            self.violate(
                at,
                InvariantKind::LostRequest,
                format!("request {id} vanished: never served, never dropped"),
            );
        }
    }

    /// A deterministic one-line verdict for logs.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            format!("oracle: clean ({} observations)", self.observations)
        } else {
            let first = &self.violations[0];
            format!(
                "oracle: {} violations (first: {} at {:.3}s: {})",
                self.total,
                first.kind.name(),
                first.at.as_secs_f64(),
                first.detail
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn clean_run_stays_clean() {
        let mut o = Oracle::new();
        o.primaries_observed(t(1), 3, 1);
        o.primaries_observed(t(2), 3, 0);
        o.request_issued(1);
        assert!(o.request_served(1));
        o.write_acked(9, 1);
        o.read_served(t(3), 9, Some(1));
        o.read_served(t(3), 100, None); // never written: fine
        o.quiescent_registry(t(4), b"snap", Some(b"snap"));
        o.convergence_check(t(5), 0, 0, 0);
        assert!(o.is_clean(), "{}", o.summary());
        assert_eq!(o.outstanding_requests(), 0);
    }

    #[test]
    fn dual_primary_is_flagged() {
        let mut o = Oracle::new();
        o.primaries_observed(t(10), 7, 2);
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, InvariantKind::DualPrimary);
        assert!(o.summary().contains("dual_primary"));
    }

    #[test]
    fn stale_and_missing_reads_are_flagged() {
        let mut o = Oracle::new();
        o.write_acked(5, 10);
        o.write_acked(5, 12);
        o.write_acked(5, 11); // late duplicate must not regress the floor
        o.read_served(t(1), 5, Some(12));
        assert!(o.is_clean());
        o.read_served(t(2), 5, Some(10));
        o.read_served(t(3), 5, None);
        assert_eq!(o.violations().len(), 2);
        assert!(o
            .violations()
            .iter()
            .all(|v| v.kind == InvariantKind::StaleRead));
    }

    #[test]
    fn dropped_and_duplicate_served_requests() {
        let mut o = Oracle::new();
        o.request_issued(1);
        o.request_issued(2);
        assert!(o.request_served(1));
        assert!(!o.request_served(1), "second serve of the same id");
        assert!(o.already_served(1));
        o.request_dropped(t(9), 2);
        assert_eq!(o.violations()[0].kind, InvariantKind::LostRequest);
        assert_eq!(o.outstanding_requests(), 0);
    }

    #[test]
    fn registry_and_convergence_checks() {
        let mut o = Oracle::new();
        o.quiescent_registry(t(1), b"a", Some(b"b"));
        o.quiescent_registry(t(1), b"a", None);
        o.convergence_check(t(2), 3, 1, 0);
        o.convergence_check(t(2), 0, 0, 2);
        let kinds: Vec<InvariantKind> = o.violations().iter().map(|v| v.kind).collect();
        assert_eq!(
            kinds,
            vec![
                InvariantKind::RegistryDivergence,
                InvariantKind::RegistryDivergence,
                InvariantKind::Unconverged,
                InvariantKind::RouterDivergence,
            ]
        );
    }

    #[test]
    fn drain_check_flags_vanished_requests() {
        let mut o = Oracle::new();
        o.request_issued(1);
        o.request_issued(2);
        o.request_served(1);
        o.quiescent_drain_check(t(99));
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, InvariantKind::LostRequest);
        assert_eq!(o.outstanding_requests(), 0);
    }

    #[test]
    fn disjoint_quorum_math() {
        use std::collections::BTreeSet;
        let s = |ids: &[u64]| ids.iter().copied().collect::<BTreeSet<u64>>();
        // A set against itself: majorities always intersect.
        assert!(!quorums_can_be_disjoint(&s(&[1, 2, 3]), &s(&[1, 2, 3])));
        // One-member swap in a 3-set: {1,2} vs {3,4} are disjoint
        // majorities of {1,2,3} and {2,3,4}.
        assert!(quorums_can_be_disjoint(&s(&[1, 2, 3]), &s(&[2, 3, 4])));
        // Overlap of one: trivially separable.
        assert!(quorums_can_be_disjoint(&s(&[1, 2, 3]), &s(&[3, 4, 5])));
        // Supersets that share a majority cannot be split.
        assert!(!quorums_can_be_disjoint(&s(&[1, 2, 3]), &s(&[1, 2, 3, 4])));
        // Degenerate empty set counts as breakable.
        assert!(quorums_can_be_disjoint(&s(&[]), &s(&[1])));
    }

    #[test]
    fn config_chain_requires_joint_bridges() {
        use std::collections::BTreeSet;
        let s = |ids: &[u64]| ids.iter().copied().collect::<BTreeSet<u64>>();
        let mut o = Oracle::new();
        // Safe history: old → joint(old,new) → new.
        o.replica_config_chain(
            t(1),
            7,
            &[
                vec![s(&[1, 2, 3])],
                vec![s(&[1, 2, 3]), s(&[2, 3, 4])],
                vec![s(&[2, 3, 4])],
            ],
        );
        assert!(o.is_clean(), "{}", o.summary());
        // Single-step history: old → new with no joint bridge.
        o.replica_config_chain(t(2), 7, &[vec![s(&[1, 2, 3])], vec![s(&[2, 3, 4])]]);
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, InvariantKind::ReplicaSetAgreement);
        assert!(o.summary().contains("replica_set_agreement"));
    }

    #[test]
    fn replica_view_convergence() {
        use std::collections::BTreeSet;
        let s = |ids: &[u64]| ids.iter().copied().collect::<BTreeSet<u64>>();
        let mut o = Oracle::new();
        let agreed = vec![s(&[1, 2, 3])];
        o.replica_views_converged(t(1), 9, &[agreed.clone(), agreed.clone(), agreed.clone()]);
        assert!(o.is_clean());
        o.replica_views_converged(t(2), 9, &[agreed, vec![s(&[2, 3, 4])]]);
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, InvariantKind::ReplicaSetAgreement);
    }

    #[test]
    fn keyspace_coverage_accepts_a_partition_and_flags_everything_else() {
        let r =
            |s: u64, start: &[u8], end: Option<&[u8]>| (s, start.to_vec(), end.map(<[u8]>::to_vec));
        let mut o = Oracle::new();
        // A clean three-way partition, deliberately unsorted.
        o.keyspace_coverage(
            t(1),
            &[
                r(2, &[0x80], None),
                r(0, &[], Some(&[0x40])),
                r(1, &[0x40], Some(&[0x80])),
            ],
        );
        assert!(o.is_clean(), "{}", o.summary());

        // Gap in the middle.
        o.keyspace_coverage(t(2), &[r(0, &[], Some(&[0x40])), r(1, &[0x50], None)]);
        assert_eq!(o.violations().len(), 1);
        // Overlap in the middle.
        o.keyspace_coverage(t(3), &[r(0, &[], Some(&[0x41])), r(1, &[0x40], None)]);
        // Missing bottom, bounded top, empty set.
        o.keyspace_coverage(t(4), &[r(0, &[0x01], None)]);
        o.keyspace_coverage(t(5), &[r(0, &[], Some(&[0xff]))]);
        o.keyspace_coverage(t(6), &[]);
        assert_eq!(o.total_violations(), 5);
        assert!(o
            .violations()
            .iter()
            .all(|v| v.kind == InvariantKind::KeyspaceCoverage));
        assert!(o.summary().contains("keyspace_coverage"));
    }

    #[test]
    fn violation_list_is_capped_but_total_is_not() {
        let mut o = Oracle::new();
        for i in 0..200 {
            o.primaries_observed(t(i), i, 2);
        }
        assert_eq!(o.violations().len(), MAX_RECORDED);
        assert_eq!(o.total_violations(), 200);
    }
}
