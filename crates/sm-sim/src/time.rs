//! Simulated time.
//!
//! Time is a `u64` count of microseconds since simulation start.
//! Microsecond resolution keeps intra-region RPC latencies (~hundreds of
//! µs) representable while two simulated days still fit comfortably.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (microseconds since start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant `secs` seconds after start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Builds an instant `ms` milliseconds after start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant `hours` hours after start.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3_600_000_000)
    }

    /// Builds an instant `days` days after start.
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * 86_400_000_000)
    }

    /// Whole seconds since start (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Builds a span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a span of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000_000)
    }

    /// Builds a span of `days` days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400_000_000)
    }

    /// Builds a span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from fractional milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1_000.0).round() as u64)
    }

    /// The span in milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The span in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Multiplies the span by an integer factor.
    pub const fn mul(self, k: u64) -> Self {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_secs(2).0, 2_000_000);
        assert_eq!(SimTime::from_millis(5).0, 5_000);
        assert_eq!(SimDuration::from_millis_f64(1.5).0, 1_500);
        assert_eq!(SimDuration::from_millis_f64(-3.0).0, 0, "negative clamps");
        assert_eq!(SimTime::from_secs(90).as_secs(), 90);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.0, 10_500_000);
        assert_eq!((t - SimTime::from_secs(10)).as_millis_f64(), 500.0);
        // Saturating subtraction: earlier - later is zero, not underflow.
        assert_eq!(
            SimTime::from_secs(1) - SimTime::from_secs(2),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration::from_secs(1).mul(3).as_secs(), 3);
    }

    #[test]
    fn multi_week_horizons_stay_exact() {
        // Six weeks of microseconds is nowhere near u64 range: the
        // representable horizon is u64::MAX µs ≈ 584 thousand years.
        let six_weeks = SimTime::from_days(42);
        assert_eq!(six_weeks.0, 42 * 86_400 * 1_000_000);
        assert_eq!(six_weeks.as_secs(), 42 * 86_400);
        assert_eq!(SimTime::from_hours(24 * 42), six_weeks);

        // Microsecond arithmetic at that horizon is still exact.
        let t = six_weeks + SimDuration::from_micros(1);
        assert_eq!((t - six_weeks).0, 1);
        assert_eq!(
            t - SimTime::ZERO,
            SimDuration::from_days(42) + SimDuration::from_micros(1)
        );

        // And the f64 view has not lost precision: 2^53 µs ≈ 285 years,
        // so week-scale instants round-trip through as_secs_f64.
        assert!((six_weeks.0 as f64) < (1u64 << 53) as f64);
        let secs = six_weeks.as_secs_f64();
        assert_eq!((secs * 1e6) as u64, six_weeks.0);

        // Repeated accumulation of a sub-millisecond tick lands on the
        // closed-form instant exactly (integer µs: no drift to amass).
        let mut t = SimTime::from_days(42);
        let tick = SimDuration::from_micros(500);
        for _ in 0..200_000 {
            t += tick;
        }
        assert_eq!(
            t,
            SimTime::from_days(42) + SimDuration::from_micros(500 * 200_000)
        );
    }

    #[test]
    fn display() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(35).to_string(), "35.000ms");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
        assert_eq!(SimTime::from_millis(1500).to_string(), "t=1.500s");
    }
}
