//! Time-series recording for the figure harness.
//!
//! Experiments record named series of `(time, value)` points into a
//! [`TraceLog`]; the figure binaries then print them as aligned columns
//! or CSV so the paper's plots can be regenerated from the output.

use crate::time::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One named time series.
#[derive(Clone, Debug, Default)]
pub struct Series {
    points: Vec<(SimTime, f64)>,
}

impl Series {
    /// Appends a point; times should be non-decreasing.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.points.push((at, value));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last recorded value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|(_, v)| *v)
    }

    /// Minimum value over the whole series.
    pub fn min(&self) -> Option<f64> {
        self.points.iter().map(|(_, v)| *v).reduce(f64::min)
    }

    /// Maximum value over the whole series.
    pub fn max(&self) -> Option<f64> {
        self.points.iter().map(|(_, v)| *v).reduce(f64::max)
    }

    /// Mean of the values recorded within `[from, to)`.
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|(_, v)| *v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Buckets the series into windows of `window_secs`, averaging the
    /// values in each window. Returns `(window_start_secs, mean)` pairs.
    pub fn bucket_mean(&self, window_secs: u64) -> Vec<(u64, f64)> {
        let mut buckets: BTreeMap<u64, (f64, u64)> = BTreeMap::new();
        for (t, v) in &self.points {
            let w = t.as_secs() / window_secs * window_secs;
            let e = buckets.entry(w).or_insert((0.0, 0));
            e.0 += v;
            e.1 += 1;
        }
        buckets
            .into_iter()
            .map(|(w, (sum, n))| (w, sum / n as f64))
            .collect()
    }

    /// Buckets the series into windows of `window_secs`, summing values.
    pub fn bucket_sum(&self, window_secs: u64) -> Vec<(u64, f64)> {
        let mut buckets: BTreeMap<u64, f64> = BTreeMap::new();
        for (t, v) in &self.points {
            let w = t.as_secs() / window_secs * window_secs;
            *buckets.entry(w).or_insert(0.0) += v;
        }
        buckets.into_iter().collect()
    }
}

/// A collection of named series produced by one experiment run.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    series: BTreeMap<String, Series>,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a point on the named series, creating it on first use.
    pub fn record(&mut self, name: &str, at: SimTime, value: f64) {
        self.series
            .entry(name.to_string())
            .or_default()
            .push(at, value);
    }

    /// Looks up a series by name.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// Iterates over `(name, series)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Series)> {
        self.series.iter()
    }

    /// Renders all series bucketed on a common window as CSV with one
    /// time column and one column per series (empty cell when a series
    /// has no points in a window).
    pub fn to_csv(&self, window_secs: u64) -> String {
        let names: Vec<&String> = self.series.keys().collect();
        let bucketed: Vec<BTreeMap<u64, f64>> = names
            .iter()
            .map(|n| {
                self.series[*n]
                    .bucket_mean(window_secs)
                    .into_iter()
                    .collect()
            })
            .collect();
        let mut windows: Vec<u64> = bucketed.iter().flat_map(|b| b.keys().copied()).collect();
        windows.sort_unstable();
        windows.dedup();

        let mut out = String::from("time_s");
        for n in &names {
            let _infallible = write!(out, ",{n}");
        }
        out.push('\n');
        for w in windows {
            let _infallible = write!(out, "{w}");
            for b in &bucketed {
                match b.get(&w) {
                    Some(v) => {
                        let _infallible = write!(out, ",{v:.4}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_stats() {
        let mut log = TraceLog::new();
        log.record("lat", SimTime::from_secs(1), 10.0);
        log.record("lat", SimTime::from_secs(2), 30.0);
        log.record("lat", SimTime::from_secs(3), 20.0);
        let s = log.series("lat").unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.min(), Some(10.0));
        assert_eq!(s.max(), Some(30.0));
        assert_eq!(s.last(), Some(20.0));
        assert_eq!(
            s.mean_in(SimTime::from_secs(1), SimTime::from_secs(3)),
            Some(20.0)
        );
        assert!(s
            .mean_in(SimTime::from_secs(9), SimTime::from_secs(10))
            .is_none());
    }

    #[test]
    fn bucketing() {
        let mut s = Series::default();
        s.push(SimTime::from_secs(0), 1.0);
        s.push(SimTime::from_secs(5), 3.0);
        s.push(SimTime::from_secs(10), 5.0);
        let means = s.bucket_mean(10);
        assert_eq!(means, vec![(0, 2.0), (10, 5.0)]);
        let sums = s.bucket_sum(10);
        assert_eq!(sums, vec![(0, 4.0), (10, 5.0)]);
    }

    #[test]
    fn csv_alignment_with_gaps() {
        let mut log = TraceLog::new();
        log.record("a", SimTime::from_secs(0), 1.0);
        log.record("a", SimTime::from_secs(10), 2.0);
        log.record("b", SimTime::from_secs(10), 9.0);
        let csv = log.to_csv(10);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,a,b");
        assert_eq!(lines[1], "0,1.0000,");
        assert_eq!(lines[2], "10,2.0000,9.0000");
    }

    #[test]
    fn unknown_series_is_none() {
        assert!(TraceLog::new().series("nope").is_none());
    }
}
