#![warn(missing_docs)]
//! Deterministic discrete-event simulation substrate.
//!
//! Every experiment in this workspace runs on the same single-threaded
//! event loop with a seeded RNG, so each figure is exactly reproducible
//! from its seed. This crate substitutes for the paper's production
//! testbed (§8): the evaluation figures are all *shapes over time* —
//! request success rate, latency, violation counts — which a
//! deterministic simulator reproduces faithfully.
//!
//! The pieces:
//!
//! - [`time`] — simulated clock types ([`SimTime`], [`SimDuration`]).
//! - [`engine`] — the event loop: a [`Simulation`] drives a user-defined
//!   [`World`] by delivering timestamped events in order.
//! - [`rng`] — a seeded RNG with the sampling helpers components need.
//! - [`net`] — a region-pair latency model (the FRC/PRN/ODN geometry of
//!   §8.3 ships as a preset) plus [`SimNet`], a message-level network
//!   with seeded partitions, drops, and duplication for DST runs.
//! - [`faults`] — seeded fault plans (crashes, session expiries,
//!   partitions, lossy-net windows) and the named [`FaultProfile`]s the
//!   swarm runner sweeps.
//! - [`oracle`] — the always-on invariant [`Oracle`] checking the
//!   paper's safety claims continuously during a run.
//! - [`trace`] — time-series recording for the figure harness.
//! - [`stats`] — percentiles and windowed counters.

pub mod engine;
pub mod faults;
pub mod net;
pub mod oracle;
mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{Ctx, QueueKind, Simulation, World};
pub use faults::{fault_plan, Fault, FaultPlanConfig, FaultProfile};
pub use net::{
    CopySet, Endpoint, Envelope, LatencyModel, NetStats, PartitionSpec, SimNet, Transmission,
};
pub use oracle::{InvariantKind, Oracle, OracleViolation};
pub use rng::SimRng;
pub use stats::{percentile, WindowedCounter};
pub use time::{SimDuration, SimTime};
pub use trace::{Series, TraceLog};
