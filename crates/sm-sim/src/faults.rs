//! Seeded fault schedules for chaos experiments.
//!
//! A chaos run injects failures — server crashes, ZK session expiries,
//! mini-SM crashes and restarts — at randomized times. For the run to
//! be reproducible byte-for-byte, the schedule must be a pure function
//! of its seed and configuration, generated up front rather than rolled
//! during the run. [`fault_plan`] produces exactly that: a time-sorted
//! list of [`Fault`]s with deterministic tie-breaking.
//!
//! Faults name targets by *index* (the i-th server, the i-th mini-SM);
//! the embedding world maps indices to concrete ids. Every entity that
//! goes down is brought back by a paired recovery fault, so a plan
//! always converges to a fully-healthy fleet.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// One injected failure or recovery, aimed at an entity index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Crash the i-th application server's container (process dies;
    /// its ZK session expires with it).
    ServerCrash(u32),
    /// Restart the i-th server's container after a crash.
    ServerRestart(u32),
    /// Expire the i-th server's ZK session while the process stays up —
    /// the server must self-fence (§3.2) and re-register later.
    SessionExpiry(u32),
    /// The i-th server re-registers after a bare session expiry.
    SessionRestore(u32),
    /// Crash the i-th mini-SM (process and session die together).
    MiniSmCrash(u32),
    /// Restart the i-th mini-SM as an empty process.
    MiniSmRestart(u32),
}

impl Fault {
    /// A stable short label for traces.
    pub fn label(self) -> &'static str {
        match self {
            Fault::ServerCrash(_) => "server_crash",
            Fault::ServerRestart(_) => "server_restart",
            Fault::SessionExpiry(_) => "session_expiry",
            Fault::SessionRestore(_) => "session_restore",
            Fault::MiniSmCrash(_) => "minism_crash",
            Fault::MiniSmRestart(_) => "minism_restart",
        }
    }
}

/// Shape of a chaos schedule.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlanConfig {
    /// RNG seed; the plan is a pure function of this config.
    pub seed: u64,
    /// Number of application servers (indices `0..n_servers`).
    pub n_servers: u32,
    /// Number of mini-SMs (indices `0..n_minisms`).
    pub n_minisms: u32,
    /// Faults start no earlier than this (let the world bootstrap).
    pub start: SimTime,
    /// Faults are injected within `[start, start + window)`; recoveries
    /// may land up to one `downtime` past the window.
    pub window: SimDuration,
    /// How long a crashed/expired entity stays down before recovery.
    pub downtime: SimDuration,
    /// Server crashes to inject.
    pub server_crashes: u32,
    /// Bare session expiries to inject (process survives). At least
    /// 10% of servers is the chaos harness's acceptance floor.
    pub session_expiries: u32,
    /// Mini-SM crashes to inject, in addition to the guarantee that
    /// every mini-SM index crashes at least once.
    pub extra_minism_crashes: u32,
}

impl FaultPlanConfig {
    /// A plan sized for `n_servers`/`n_minisms` meeting the chaos
    /// harness's coverage floors: every mini-SM crashes at least once
    /// and at least 10% (min 1) of server sessions expire.
    pub fn covering(seed: u64, n_servers: u32, n_minisms: u32) -> Self {
        Self {
            seed,
            n_servers,
            n_minisms,
            start: SimTime::from_secs(30),
            window: SimDuration::from_secs(300),
            downtime: SimDuration::from_secs(25),
            server_crashes: (n_servers / 4).max(1),
            session_expiries: n_servers.div_ceil(10).max(1),
            extra_minism_crashes: 0,
        }
    }
}

/// Generates the time-sorted fault schedule for `cfg`.
///
/// Guarantees, all deterministic in `cfg`:
/// - every mini-SM index in `0..n_minisms` appears in at least one
///   [`Fault::MiniSmCrash`];
/// - exactly `cfg.session_expiries` distinct servers get a bare
///   [`Fault::SessionExpiry`];
/// - every crash/expiry has a matching recovery `downtime` later;
/// - events are sorted by time with a stable generation-order
///   tie-break, so equal timestamps replay identically.
pub fn fault_plan(cfg: &FaultPlanConfig) -> Vec<(SimTime, Fault)> {
    let mut rng = SimRng::seed_from(cfg.seed, 0xFA171);
    let window_ms = cfg.window.as_millis_f64().max(1.0);
    let mut plan: Vec<(SimTime, Fault)> = Vec::new();
    let inject = |rng: &mut SimRng, plan: &mut Vec<(SimTime, Fault)>, hit: Fault, heal: Fault| {
        let at = cfg.start + SimDuration::from_millis_f64(rng.f64() * window_ms);
        plan.push((at, hit));
        plan.push((at + cfg.downtime, heal));
    };

    // Every mini-SM crashes at least once, in random order...
    let mut minisms: Vec<u32> = (0..cfg.n_minisms).collect();
    rng.shuffle(&mut minisms);
    for m in minisms {
        inject(
            &mut rng,
            &mut plan,
            Fault::MiniSmCrash(m),
            Fault::MiniSmRestart(m),
        );
    }
    // ...plus any extra crashes on random mini-SMs.
    for _ in 0..cfg.extra_minism_crashes {
        let m = rng.index(cfg.n_minisms.max(1) as usize) as u32;
        inject(
            &mut rng,
            &mut plan,
            Fault::MiniSmCrash(m),
            Fault::MiniSmRestart(m),
        );
    }
    // Server crashes on random servers (repeats allowed; the world
    // treats a crash of an already-down server as a no-op).
    for _ in 0..cfg.server_crashes {
        let s = rng.index(cfg.n_servers.max(1) as usize) as u32;
        inject(
            &mut rng,
            &mut plan,
            Fault::ServerCrash(s),
            Fault::ServerRestart(s),
        );
    }
    // Bare session expiries on *distinct* servers, so the ≥10% floor
    // counts unique sessions.
    let expiring = rng.sample_indices(cfg.n_servers as usize, cfg.session_expiries as usize);
    for s in expiring {
        inject(
            &mut rng,
            &mut plan,
            Fault::SessionExpiry(s as u32),
            Fault::SessionRestore(s as u32),
        );
    }

    // Stable sort: ties resolve by generation order, identically on
    // every run with the same config.
    plan.sort_by_key(|(at, _)| *at);
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn cfg(seed: u64) -> FaultPlanConfig {
        FaultPlanConfig::covering(seed, 24, 3)
    }

    #[test]
    fn plan_is_deterministic_per_seed() {
        assert_eq!(fault_plan(&cfg(7)), fault_plan(&cfg(7)));
        assert_ne!(fault_plan(&cfg(7)), fault_plan(&cfg(8)));
    }

    #[test]
    fn every_minism_crashes_at_least_once() {
        let plan = fault_plan(&cfg(42));
        let crashed: BTreeSet<u32> = plan
            .iter()
            .filter_map(|(_, f)| match f {
                Fault::MiniSmCrash(m) => Some(*m),
                _ => None,
            })
            .collect();
        assert_eq!(crashed, (0..3).collect::<BTreeSet<u32>>());
    }

    #[test]
    fn expiries_hit_distinct_servers_meeting_the_floor() {
        let c = cfg(42);
        let plan = fault_plan(&c);
        let expired: BTreeSet<u32> = plan
            .iter()
            .filter_map(|(_, f)| match f {
                Fault::SessionExpiry(s) => Some(*s),
                _ => None,
            })
            .collect();
        let count = plan
            .iter()
            .filter(|(_, f)| matches!(f, Fault::SessionExpiry(_)))
            .count();
        assert_eq!(expired.len(), count, "expiries must be distinct");
        assert!(
            expired.len() * 10 >= c.n_servers as usize,
            "floor: ≥10% of {} servers, got {}",
            c.n_servers,
            expired.len()
        );
    }

    #[test]
    fn every_fault_has_a_later_recovery() {
        let plan = fault_plan(&cfg(3));
        let mut down: Vec<Fault> = Vec::new();
        for (_, f) in &plan {
            match f {
                Fault::ServerCrash(_) | Fault::SessionExpiry(_) | Fault::MiniSmCrash(_) => {
                    down.push(*f)
                }
                Fault::ServerRestart(s) => {
                    let i = down
                        .iter()
                        .position(|d| *d == Fault::ServerCrash(*s))
                        .expect("restart pairs with a crash");
                    down.remove(i);
                }
                Fault::SessionRestore(s) => {
                    let i = down
                        .iter()
                        .position(|d| *d == Fault::SessionExpiry(*s))
                        .expect("restore pairs with an expiry");
                    down.remove(i);
                }
                Fault::MiniSmRestart(m) => {
                    let i = down
                        .iter()
                        .position(|d| *d == Fault::MiniSmCrash(*m))
                        .expect("restart pairs with a crash");
                    down.remove(i);
                }
            }
        }
        assert!(down.is_empty(), "unrecovered faults: {down:?}");
    }

    #[test]
    fn plan_is_time_sorted_within_bounds() {
        let c = cfg(9);
        let plan = fault_plan(&c);
        for w in plan.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        let end = c.start + c.window + c.downtime;
        for (at, _) in &plan {
            assert!(*at >= c.start && *at <= end);
        }
    }
}
