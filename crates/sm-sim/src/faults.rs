//! Seeded fault schedules for chaos experiments.
//!
//! A chaos run injects failures — server crashes, ZK session expiries,
//! mini-SM crashes and restarts — at randomized times. For the run to
//! be reproducible byte-for-byte, the schedule must be a pure function
//! of its seed and configuration, generated up front rather than rolled
//! during the run. [`fault_plan`] produces exactly that: a time-sorted
//! list of [`Fault`]s with deterministic tie-breaking.
//!
//! Faults name targets by *index* (the i-th server, the i-th mini-SM);
//! the embedding world maps indices to concrete ids. Every entity that
//! goes down is brought back by a paired recovery fault, so a plan
//! always converges to a fully-healthy fleet. The same pairing rule
//! applies to network faults: every [`Fault::PartitionStart`] has a
//! later [`Fault::PartitionHeal`], every [`Fault::NetDegrade`] a later
//! [`Fault::NetHeal`], and partition/degradation windows never overlap
//! their own kind (the plan slots them), because the simulated net
//! models one partition at a time.
//!
//! [`FaultProfile`] names the plan shapes the swarm runner explores —
//! crash-only, symmetric/asymmetric partitions, lossy network, and a
//! mixed profile — each a deterministic function of `(profile, seed)`.

use crate::net::PartitionSpec;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// One injected failure or recovery, aimed at an entity index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Crash the i-th application server's container (process dies;
    /// its ZK session expires with it).
    ServerCrash(u32),
    /// Restart the i-th server's container after a crash.
    ServerRestart(u32),
    /// Expire the i-th server's ZK session while the process stays up —
    /// the server must self-fence (§3.2) and re-register later.
    SessionExpiry(u32),
    /// The i-th server re-registers after a bare session expiry.
    SessionRestore(u32),
    /// Crash the i-th mini-SM (process and session die together).
    MiniSmCrash(u32),
    /// Restart the i-th mini-SM as an empty process.
    MiniSmRestart(u32),
    /// Partition the server island `[lo, lo+len)` off from the rest of
    /// the world (see [`PartitionSpec`] for the asymmetric semantics).
    PartitionStart(PartitionSpec),
    /// Heal the active partition.
    PartitionHeal,
    /// Degrade the network: drop / duplicate each message with the
    /// given percent probabilities.
    NetDegrade {
        /// Drop probability, in percent.
        drop_pct: u8,
        /// Duplication probability, in percent.
        dup_pct: u8,
    },
    /// End the degradation window.
    NetHeal,
}

impl Fault {
    /// A stable short label for traces.
    pub fn label(self) -> &'static str {
        match self {
            Fault::ServerCrash(_) => "server_crash",
            Fault::ServerRestart(_) => "server_restart",
            Fault::SessionExpiry(_) => "session_expiry",
            Fault::SessionRestore(_) => "session_restore",
            Fault::MiniSmCrash(_) => "minism_crash",
            Fault::MiniSmRestart(_) => "minism_restart",
            Fault::PartitionStart(_) => "partition_start",
            Fault::PartitionHeal => "partition_heal",
            Fault::NetDegrade { .. } => "net_degrade",
            Fault::NetHeal => "net_heal",
        }
    }

    /// True for the "something breaks" half of a fault pair (the other
    /// half being its recovery).
    pub fn is_hit(self) -> bool {
        matches!(
            self,
            Fault::ServerCrash(_)
                | Fault::SessionExpiry(_)
                | Fault::MiniSmCrash(_)
                | Fault::PartitionStart(_)
                | Fault::NetDegrade { .. }
        )
    }
}

/// Shape of a chaos schedule.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlanConfig {
    /// RNG seed; the plan is a pure function of this config.
    pub seed: u64,
    /// Number of application servers (indices `0..n_servers`).
    pub n_servers: u32,
    /// Number of mini-SMs (indices `0..n_minisms`).
    pub n_minisms: u32,
    /// Faults start no earlier than this (let the world bootstrap).
    pub start: SimTime,
    /// Faults are injected within `[start, start + window)`; recoveries
    /// may land up to one `downtime` past the window.
    pub window: SimDuration,
    /// How long a crashed/expired entity stays down before recovery.
    pub downtime: SimDuration,
    /// Server crashes to inject.
    pub server_crashes: u32,
    /// Bare session expiries to inject (process survives). At least
    /// 10% of servers is the chaos harness's acceptance floor.
    pub session_expiries: u32,
    /// Mini-SM crashes to inject, in addition to the guarantee that
    /// every mini-SM index crashes at least once.
    pub extra_minism_crashes: u32,
    /// Symmetric partitions to inject (each paired with a heal).
    pub partitions: u32,
    /// Asymmetric (outbound-blocked) partitions to inject.
    pub asym_partitions: u32,
    /// Largest partition island width; islands are 1..=this wide.
    pub partition_max_len: u32,
    /// How long each partition stays up before its heal. Must exceed
    /// the embedding world's ZK session timeout for the partition to
    /// exercise the full expiry → failover → re-register cycle.
    pub partition_downtime: SimDuration,
    /// Degradation windows to inject (each paired with a heal).
    pub degrade_windows: u32,
    /// Message drop probability during a degradation window (percent).
    pub drop_pct: u8,
    /// Message duplication probability during a window (percent).
    pub dup_pct: u8,
}

impl FaultPlanConfig {
    /// A plan sized for `n_servers`/`n_minisms` meeting the chaos
    /// harness's coverage floors: every mini-SM crashes at least once
    /// and at least 10% (min 1) of server sessions expire. Injects no
    /// network faults (the PR 3 crash/expiry-only shape).
    pub fn covering(seed: u64, n_servers: u32, n_minisms: u32) -> Self {
        Self {
            seed,
            n_servers,
            n_minisms,
            start: SimTime::from_secs(30),
            window: SimDuration::from_secs(300),
            downtime: SimDuration::from_secs(25),
            server_crashes: (n_servers / 4).max(1),
            session_expiries: n_servers.div_ceil(10).max(1),
            extra_minism_crashes: 0,
            partitions: 0,
            asym_partitions: 0,
            partition_max_len: (n_servers / 4).max(1),
            partition_downtime: SimDuration::from_secs(18),
            degrade_windows: 0,
            drop_pct: 0,
            dup_pct: 0,
        }
    }
}

/// A named fault-plan shape the swarm runner explores. Each profile is
/// a deterministic function of `(profile, seed, fleet size)`; together
/// they cover the failure modes the paper's safety arguments must
/// survive.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum FaultProfile {
    /// Crashes and session expiries only (the PR 3 baseline).
    CrashOnly,
    /// Symmetric partitions: an island of servers fully cut off.
    SymPartition,
    /// Asymmetric partitions: islanded servers still *hear* traffic
    /// but nothing they send gets out — the worst case for fencing.
    AsymPartition,
    /// Probabilistic message drop and duplication windows.
    LossyNet,
    /// Everything at once.
    Mixed,
    /// Reconfiguration chaos: dense crashes, session expiries, and one
    /// symmetric plus one asymmetric partition with short downtimes —
    /// tuned so faults land while the embedding world is continuously
    /// driving replica-set reconfigurations, hitting joint membership
    /// changes mid-flight.
    ReconfigChaos,
    /// Split chaos: the skew-storm world's shape — dense crashes,
    /// expiries, and short partitions timed so they land while the
    /// orchestrator is mid-split or mid-merge, hitting the resharding
    /// protocol's prepare/forward/cutover windows.
    SplitChaos,
}

impl FaultProfile {
    /// All profiles, in grid order.
    pub const ALL: [FaultProfile; 7] = [
        FaultProfile::CrashOnly,
        FaultProfile::SymPartition,
        FaultProfile::AsymPartition,
        FaultProfile::LossyNet,
        FaultProfile::Mixed,
        FaultProfile::ReconfigChaos,
        FaultProfile::SplitChaos,
    ];

    /// Stable name used in reports and reproducer files.
    pub fn name(self) -> &'static str {
        match self {
            FaultProfile::CrashOnly => "crash_only",
            FaultProfile::SymPartition => "sym_partition",
            FaultProfile::AsymPartition => "asym_partition",
            FaultProfile::LossyNet => "lossy_net",
            FaultProfile::Mixed => "mixed",
            FaultProfile::ReconfigChaos => "reconfig_chaos",
            FaultProfile::SplitChaos => "split_chaos",
        }
    }

    /// Parses a profile name back (reproducer files, CLI).
    pub fn parse(s: &str) -> Option<FaultProfile> {
        FaultProfile::ALL.into_iter().find(|p| p.name() == s.trim())
    }

    /// The compact plan shape the DST harness runs: faults inside a
    /// one-minute window so a run (plus convergence slack) stays cheap
    /// enough for a many-seed swarm.
    pub fn config(self, seed: u64, n_servers: u32, n_minisms: u32) -> FaultPlanConfig {
        let mut cfg = FaultPlanConfig {
            seed,
            n_servers,
            n_minisms,
            start: SimTime::from_secs(20),
            window: SimDuration::from_secs(60),
            downtime: SimDuration::from_secs(15),
            server_crashes: (n_servers / 5).max(1),
            session_expiries: 1,
            extra_minism_crashes: 0,
            partitions: 0,
            asym_partitions: 0,
            partition_max_len: (n_servers / 4).max(1),
            partition_downtime: SimDuration::from_secs(18),
            degrade_windows: 0,
            drop_pct: 0,
            dup_pct: 0,
        };
        match self {
            FaultProfile::CrashOnly => {}
            FaultProfile::SymPartition => cfg.partitions = 2,
            FaultProfile::AsymPartition => cfg.asym_partitions = 2,
            FaultProfile::LossyNet => {
                cfg.degrade_windows = 2;
                cfg.drop_pct = 5;
                cfg.dup_pct = 3;
            }
            FaultProfile::Mixed => {
                cfg.partitions = 1;
                cfg.asym_partitions = 1;
                cfg.degrade_windows = 1;
                cfg.drop_pct = 3;
                cfg.dup_pct = 2;
            }
            FaultProfile::ReconfigChaos => {
                // Dense, short-downtime faults so several land inside
                // in-flight membership changes: the embedding world
                // churns reconfigurations continuously through the
                // whole fault window.
                cfg.server_crashes = (n_servers / 3).max(2);
                cfg.session_expiries = 2.min(n_servers);
                cfg.downtime = SimDuration::from_secs(10);
                cfg.partitions = 1;
                cfg.asym_partitions = 1;
                cfg.partition_downtime = SimDuration::from_secs(12);
            }
            FaultProfile::SplitChaos => {
                // Dense, short-downtime faults so several land inside
                // in-flight splits and merges: the skew-storm world
                // keeps the adaptive scaler resharding through the
                // whole fault window. The lossy window additionally
                // eats individual protocol RPCs (a lost cutover ack is
                // the exact hazard the all-or-nothing commit defends
                // against).
                cfg.server_crashes = (n_servers / 3).max(2);
                cfg.session_expiries = 2.min(n_servers);
                cfg.downtime = SimDuration::from_secs(10);
                cfg.partitions = 1;
                cfg.asym_partitions = 1;
                cfg.partition_downtime = SimDuration::from_secs(12);
                cfg.degrade_windows = 2;
                cfg.drop_pct = 12;
                cfg.dup_pct = 3;
            }
        }
        cfg
    }
}

/// Generates the time-sorted fault schedule for `cfg`.
///
/// Guarantees, all deterministic in `cfg`:
/// - every mini-SM index in `0..n_minisms` appears in at least one
///   [`Fault::MiniSmCrash`];
/// - exactly `cfg.session_expiries` distinct servers get a bare
///   [`Fault::SessionExpiry`];
/// - every crash/expiry has a matching recovery `downtime` later;
/// - events are sorted by time with a stable generation-order
///   tie-break, so equal timestamps replay identically.
pub fn fault_plan(cfg: &FaultPlanConfig) -> Vec<(SimTime, Fault)> {
    let mut rng = SimRng::seed_from(cfg.seed, 0xFA171);
    let window_ms = cfg.window.as_millis_f64().max(1.0);
    let mut plan: Vec<(SimTime, Fault)> = Vec::new();
    let inject = |rng: &mut SimRng, plan: &mut Vec<(SimTime, Fault)>, hit: Fault, heal: Fault| {
        let at = cfg.start + SimDuration::from_millis_f64(rng.f64() * window_ms);
        plan.push((at, hit));
        plan.push((at + cfg.downtime, heal));
    };

    // Every mini-SM crashes at least once, in random order...
    let mut minisms: Vec<u32> = (0..cfg.n_minisms).collect();
    rng.shuffle(&mut minisms);
    for m in minisms {
        inject(
            &mut rng,
            &mut plan,
            Fault::MiniSmCrash(m),
            Fault::MiniSmRestart(m),
        );
    }
    // ...plus any extra crashes on random mini-SMs.
    for _ in 0..cfg.extra_minism_crashes {
        let m = rng.index(cfg.n_minisms.max(1) as usize) as u32;
        inject(
            &mut rng,
            &mut plan,
            Fault::MiniSmCrash(m),
            Fault::MiniSmRestart(m),
        );
    }
    // Server crashes on random servers (repeats allowed; the world
    // treats a crash of an already-down server as a no-op).
    for _ in 0..cfg.server_crashes {
        let s = rng.index(cfg.n_servers.max(1) as usize) as u32;
        inject(
            &mut rng,
            &mut plan,
            Fault::ServerCrash(s),
            Fault::ServerRestart(s),
        );
    }
    // Bare session expiries on *distinct* servers, so the ≥10% floor
    // counts unique sessions.
    let expiring = rng.sample_indices(cfg.n_servers as usize, cfg.session_expiries as usize);
    for s in expiring {
        inject(
            &mut rng,
            &mut plan,
            Fault::SessionExpiry(s as u32),
            Fault::SessionRestore(s as u32),
        );
    }

    // Partitions: the simulated net models one partition at a time, so
    // each gets its own time slot — windows of the same kind never
    // overlap, and every start has a heal inside its slot.
    let total_partitions = cfg.partitions + cfg.asym_partitions;
    if total_partitions > 0 && cfg.n_servers > 0 {
        let slot_ms = window_ms / f64::from(total_partitions);
        let free_ms = (slot_ms - cfg.partition_downtime.as_millis_f64()).max(0.0);
        for i in 0..total_partitions {
            let asym = i >= cfg.partitions;
            let widest = cfg.partition_max_len.clamp(1, cfg.n_servers) as usize;
            let len = 1 + rng.index(widest) as u32;
            let lo = rng.index((cfg.n_servers - len + 1) as usize) as u32;
            let at = cfg.start
                + SimDuration::from_millis_f64(f64::from(i) * slot_ms + rng.f64() * free_ms);
            plan.push((at, Fault::PartitionStart(PartitionSpec { lo, len, asym })));
            plan.push((at + cfg.partition_downtime, Fault::PartitionHeal));
        }
    }
    // Degradation windows, slotted the same way.
    if cfg.degrade_windows > 0 {
        let slot_ms = window_ms / f64::from(cfg.degrade_windows);
        let free_ms = (slot_ms - cfg.downtime.as_millis_f64()).max(0.0);
        for i in 0..cfg.degrade_windows {
            let at = cfg.start
                + SimDuration::from_millis_f64(f64::from(i) * slot_ms + rng.f64() * free_ms);
            plan.push((
                at,
                Fault::NetDegrade {
                    drop_pct: cfg.drop_pct,
                    dup_pct: cfg.dup_pct,
                },
            ));
            plan.push((at + cfg.downtime, Fault::NetHeal));
        }
    }

    // Stable sort: ties resolve by generation order, identically on
    // every run with the same config.
    plan.sort_by_key(|(at, _)| *at);
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn cfg(seed: u64) -> FaultPlanConfig {
        FaultPlanConfig::covering(seed, 24, 3)
    }

    #[test]
    fn plan_is_deterministic_per_seed() {
        assert_eq!(fault_plan(&cfg(7)), fault_plan(&cfg(7)));
        assert_ne!(fault_plan(&cfg(7)), fault_plan(&cfg(8)));
    }

    #[test]
    fn every_minism_crashes_at_least_once() {
        let plan = fault_plan(&cfg(42));
        let crashed: BTreeSet<u32> = plan
            .iter()
            .filter_map(|(_, f)| match f {
                Fault::MiniSmCrash(m) => Some(*m),
                _ => None,
            })
            .collect();
        assert_eq!(crashed, (0..3).collect::<BTreeSet<u32>>());
    }

    #[test]
    fn expiries_hit_distinct_servers_meeting_the_floor() {
        let c = cfg(42);
        let plan = fault_plan(&c);
        let expired: BTreeSet<u32> = plan
            .iter()
            .filter_map(|(_, f)| match f {
                Fault::SessionExpiry(s) => Some(*s),
                _ => None,
            })
            .collect();
        let count = plan
            .iter()
            .filter(|(_, f)| matches!(f, Fault::SessionExpiry(_)))
            .count();
        assert_eq!(expired.len(), count, "expiries must be distinct");
        assert!(
            expired.len() * 10 >= c.n_servers as usize,
            "floor: ≥10% of {} servers, got {}",
            c.n_servers,
            expired.len()
        );
    }

    /// Asserts every hit fault in `plan` has a later matching recovery
    /// and returns the hits seen, for coverage checks.
    fn check_pairing(plan: &[(SimTime, Fault)]) -> Vec<Fault> {
        let mut down: Vec<Fault> = Vec::new();
        let mut hits: Vec<Fault> = Vec::new();
        for (_, f) in plan {
            match f {
                Fault::ServerCrash(_)
                | Fault::SessionExpiry(_)
                | Fault::MiniSmCrash(_)
                | Fault::PartitionStart(_)
                | Fault::NetDegrade { .. } => {
                    down.push(*f);
                    hits.push(*f);
                }
                Fault::ServerRestart(s) => {
                    let i = down
                        .iter()
                        .position(|d| *d == Fault::ServerCrash(*s))
                        .expect("restart pairs with a crash");
                    down.remove(i);
                }
                Fault::SessionRestore(s) => {
                    let i = down
                        .iter()
                        .position(|d| *d == Fault::SessionExpiry(*s))
                        .expect("restore pairs with an expiry");
                    down.remove(i);
                }
                Fault::MiniSmRestart(m) => {
                    let i = down
                        .iter()
                        .position(|d| *d == Fault::MiniSmCrash(*m))
                        .expect("restart pairs with a crash");
                    down.remove(i);
                }
                Fault::PartitionHeal => {
                    let i = down
                        .iter()
                        .position(|d| matches!(d, Fault::PartitionStart(_)))
                        .expect("heal pairs with a partition start");
                    down.remove(i);
                }
                Fault::NetHeal => {
                    let i = down
                        .iter()
                        .position(|d| matches!(d, Fault::NetDegrade { .. }))
                        .expect("heal pairs with a degrade");
                    down.remove(i);
                }
            }
        }
        assert!(down.is_empty(), "unrecovered faults: {down:?}");
        hits
    }

    #[test]
    fn every_fault_has_a_later_recovery() {
        check_pairing(&fault_plan(&cfg(3)));
    }

    #[test]
    fn profile_plans_pair_and_cover_their_fault_kinds() {
        for profile in FaultProfile::ALL {
            for seed in [1, 2, 3] {
                let c = profile.config(seed, 12, 3);
                let plan = fault_plan(&c);
                let hits = check_pairing(&plan);
                let parts: Vec<PartitionSpec> = hits
                    .iter()
                    .filter_map(|f| match f {
                        Fault::PartitionStart(p) => Some(*p),
                        _ => None,
                    })
                    .collect();
                let n_sym = parts.iter().filter(|p| !p.asym).count() as u32;
                let n_asym = parts.iter().filter(|p| p.asym).count() as u32;
                assert_eq!(n_sym, c.partitions, "{profile:?} seed {seed}");
                assert_eq!(n_asym, c.asym_partitions, "{profile:?} seed {seed}");
                for p in &parts {
                    assert!(p.len >= 1 && p.lo + p.len <= c.n_servers, "{p:?}");
                }
                let degrades = hits
                    .iter()
                    .filter(|f| matches!(f, Fault::NetDegrade { .. }))
                    .count() as u32;
                assert_eq!(degrades, c.degrade_windows, "{profile:?} seed {seed}");
            }
        }
    }

    #[test]
    fn same_kind_windows_never_overlap() {
        // The net models one partition (and one degradation level) at a
        // time, so the plan must serialize windows of the same kind.
        for seed in 0..20 {
            let c = FaultProfile::Mixed.config(seed, 12, 3);
            let plan = fault_plan(&c);
            let mut partition_open = false;
            let mut degrade_open = false;
            for (_, f) in &plan {
                match f {
                    Fault::PartitionStart(_) => {
                        assert!(!partition_open, "overlapping partitions, seed {seed}");
                        partition_open = true;
                    }
                    Fault::PartitionHeal => partition_open = false,
                    Fault::NetDegrade { .. } => {
                        assert!(!degrade_open, "overlapping degrades, seed {seed}");
                        degrade_open = true;
                    }
                    Fault::NetHeal => degrade_open = false,
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn profile_names_round_trip() {
        for p in FaultProfile::ALL {
            assert_eq!(FaultProfile::parse(p.name()), Some(p));
        }
        assert_eq!(FaultProfile::parse("no_such_profile"), None);
    }

    #[test]
    fn covering_plan_shape_is_unchanged_by_net_fault_support() {
        // PR 3's chaos gate replays covering plans; adding net faults
        // must not disturb the crash/expiry draw sequence.
        let plan = fault_plan(&cfg(7));
        assert!(plan.iter().all(|(_, f)| !matches!(
            f,
            Fault::PartitionStart(_) | Fault::PartitionHeal | Fault::NetDegrade { .. }
        )));
    }

    #[test]
    fn plan_is_time_sorted_within_bounds() {
        let c = cfg(9);
        let plan = fault_plan(&c);
        for w in plan.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        let end = c.start + c.window + c.downtime;
        for (at, _) in &plan {
            assert!(*at >= c.start && *at <= end);
        }
    }
}
