//! Seeded randomness for deterministic simulation.
//!
//! The generator is a self-contained xoshiro256++ seeded through
//! SplitMix64 — no ambient entropy, no external crates — so a run is a
//! pure function of its seed. Every random decision in the workspace
//! must flow through [`SimRng`]; `sm-lint` rule D2 enforces that no
//! code reaches for `thread_rng()` or other ambient generators.

/// A seeded random source shared by a simulation run.
///
/// Wraps a xoshiro256++ core with the handful of sampling helpers the
/// workspace needs, so call sites don't each hand-roll distributions.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step, used to expand the seed into the xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { state }
    }

    /// Derives an independent, reproducible stream from a base seed and
    /// a stream index — the sanctioned way to seed *per-worker* RNGs in
    /// parallel code (`sm-lint` rule D2 flags ad-hoc derivations such as
    /// `SimRng::seeded(seed + worker)` in threaded modules).
    ///
    /// Both arguments go through independent SplitMix64 mixes before
    /// being combined, so nearby `(seed, stream)` pairs land in
    /// far-apart xoshiro states: `seed_from(s, 0)` is unrelated to
    /// `seeded(s)` and to `seed_from(s, 1)`.
    pub fn seed_from(seed: u64, stream: u64) -> Self {
        let mut a = seed;
        let mut b = stream ^ 0x6a09_e667_f3bc_c909; // sqrt(2) fraction: offset stream 0
        let mixed = splitmix64(&mut a) ^ splitmix64(&mut b).rotate_left(17);
        Self::seeded(mixed)
    }

    /// The raw xoshiro256++ step: uniform over all of `u64`.
    // sm-lint: allow(P1) — fixed `[u64; 4]` state, const indices
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Widening-multiply range reduction (Lemire); the bias is at
        // most span / 2^64, far below anything a simulation can see.
        let wide = u128::from(self.next_u64()) * u128::from(span);
        lo + (wide >> 64) as u64
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.range_u64(0, n as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.index(i + 1));
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (or all of them when
    /// `k >= n`), in arbitrary order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k >= n {
            return (0..n).collect();
        }
        if k == 1 {
            // Same single draw the general path would make, without
            // allocating the O(n) pool — the dominant case in grouped
            // target sampling.
            return vec![self.index(n)];
        }
        // Partial Fisher–Yates: after k swaps the prefix holds a
        // uniform k-subset in uniform order.
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }

    /// A draw from Exp(1/mean), for Poisson inter-arrival times.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        // Inverse-CDF sampling; clamp away from 0 to avoid ln(0).
        let u = self.f64().max(1e-12);
        -mean * u.ln()
    }

    /// A draw from a bounded Pareto-like power law on `[lo, hi]` with
    /// shape `alpha` (> 0); smaller alpha gives a heavier tail.
    pub fn power_law(&mut self, lo: f64, hi: f64, alpha: f64) -> f64 {
        let u = self.f64();
        let la = lo.powf(-alpha);
        let ha = hi.powf(-alpha);
        (la - u * (la - ha)).powf(-1.0 / alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1_000_000), b.range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn seed_from_is_deterministic_and_stream_separated() {
        let mut a = SimRng::seed_from(42, 3);
        let mut b = SimRng::seed_from(42, 3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Distinct streams from one seed diverge, and stream 0 is not
        // the plain seeded() stream.
        let mut s0 = SimRng::seed_from(7, 0);
        let mut s1 = SimRng::seed_from(7, 1);
        let mut plain = SimRng::seeded(7);
        let same01 = (0..32).filter(|_| s0.index(1000) == s1.index(1000)).count();
        assert!(same01 < 32);
        let mut s0_again = SimRng::seed_from(7, 0);
        let same_plain = (0..32)
            .filter(|_| s0_again.index(1000) == plain.index(1000))
            .count();
        assert!(same_plain < 32);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..32).filter(|_| a.index(1000) == b.index(1000)).count();
        assert!(same < 32);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SimRng::seeded(7);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = rng.f64_range(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = SimRng::seeded(23);
        for _ in 0..10_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seeded(29);
        let mut items: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = SimRng::seeded(3);
        let picked = rng.sample_indices(100, 10);
        assert_eq!(picked.len(), 10);
        let set: std::collections::BTreeSet<_> = picked.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(picked.iter().all(|&i| i < 100));
        assert_eq!(rng.sample_indices(5, 10).len(), 5, "k >= n returns all");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seeded(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean {mean} too far from 4.0");
    }

    #[test]
    fn power_law_is_bounded_and_skewed() {
        let mut rng = SimRng::seeded(13);
        let draws: Vec<f64> = (0..10_000)
            .map(|_| rng.power_law(1.0, 100.0, 1.2))
            .collect();
        assert!(draws.iter().all(|&v| (1.0..=100.0001).contains(&v)));
        let below_10 = draws.iter().filter(|&&v| v < 10.0).count();
        assert!(below_10 > 7_000, "heavy tail means most mass is low");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seeded(5);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }
}
