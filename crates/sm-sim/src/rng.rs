//! Seeded randomness for deterministic simulation.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A seeded random source shared by a simulation run.
///
/// Wraps [`SmallRng`] with the handful of sampling helpers the workspace
/// needs, so call sites don't each import `rand` traits.
#[derive(Debug)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn seeded(seed: u64) -> Self {
        Self {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        items.shuffle(&mut self.inner);
    }

    /// Samples `k` distinct indices from `[0, n)` (or all of them when
    /// `k >= n`), in arbitrary order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k >= n {
            return (0..n).collect();
        }
        rand::seq::index::sample(&mut self.inner, n, k).into_vec()
    }

    /// A draw from Exp(1/mean), for Poisson inter-arrival times.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        // Inverse-CDF sampling; clamp away from 0 to avoid ln(0).
        let u = self.f64().max(1e-12);
        -mean * u.ln()
    }

    /// A draw from a bounded Pareto-like power law on `[lo, hi]` with
    /// shape `alpha` (> 0); smaller alpha gives a heavier tail.
    pub fn power_law(&mut self, lo: f64, hi: f64, alpha: f64) -> f64 {
        let u = self.f64();
        let la = lo.powf(-alpha);
        let ha = hi.powf(-alpha);
        (la - u * (la - ha)).powf(-1.0 / alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1_000_000), b.range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..32).filter(|_| a.index(1000) == b.index(1000)).count();
        assert!(same < 32);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SimRng::seeded(7);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = rng.f64_range(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = SimRng::seeded(3);
        let picked = rng.sample_indices(100, 10);
        assert_eq!(picked.len(), 10);
        let set: std::collections::HashSet<_> = picked.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(picked.iter().all(|&i| i < 100));
        assert_eq!(rng.sample_indices(5, 10).len(), 5, "k >= n returns all");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seeded(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean {mean} too far from 4.0");
    }

    #[test]
    fn power_law_is_bounded_and_skewed() {
        let mut rng = SimRng::seeded(13);
        let draws: Vec<f64> = (0..10_000)
            .map(|_| rng.power_law(1.0, 100.0, 1.2))
            .collect();
        assert!(draws.iter().all(|&v| (1.0..=100.0001).contains(&v)));
        let below_10 = draws.iter().filter(|&&v| v < 10.0).count();
        assert!(below_10 > 7_000, "heavy tail means most mass is low");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seeded(5);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }
}
