//! Event-queue implementations behind the [`crate::Simulation`] loop.
//!
//! The default is a **calendar queue**: a near-future wheel of
//! fixed-width time buckets plus a far-future overflow map. Pushes are
//! O(1) appends, pops amortize to a small per-bucket sort, and empty
//! stretches of virtual time are skipped with a bitmap scan (within the
//! wheel) or a single ordered-map lookup (beyond it) instead of being
//! stepped through poll by poll. The old binary heap is kept as an
//! alternative implementation so differential tests can assert that
//! both produce byte-identical runs.
//!
//! # Tie-order contract
//!
//! Every scheduled event carries `(at, seq)` where `seq` is a global
//! monotone insertion counter. Both queue implementations pop in strict
//! `(at, seq)` order: same-instant events are FIFO by insertion, and a
//! run's event order — and therefore its traces — is a pure function of
//! the schedule, never of queue internals.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Which event-queue implementation a [`crate::Simulation`] runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QueueKind {
    /// The calendar queue (near-future wheel + far-future overflow).
    #[default]
    Calendar,
    /// The original `BinaryHeap` — kept for differential testing; new
    /// code has no reason to choose it.
    BinaryHeap,
}

/// A timestamped event with its insertion sequence number.
pub(crate) struct Scheduled<E> {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Microseconds per wheel bucket, as a shift: 1024 µs ≈ 1 ms. Latency
/// samples land at µs resolution, so a bucket groups one RTT's worth of
/// deliveries; the per-bucket sort stays tiny.
const BUCKET_SHIFT: u32 = 10;
/// Wheel slots. 1024 buckets × ~1 ms ≈ 1.05 s of near future — wide
/// enough that heartbeats, retries, and RPC hops all stay on the wheel.
/// Must be a multiple of 64 (the occupancy bitmap is word-indexed).
const WHEEL_SLOTS: usize = 1024;
const WORDS: usize = WHEEL_SLOTS / 64;

/// The calendar queue.
///
/// Invariants:
/// - `cursor` is the absolute bucket index of the last pop (events only
///   leave in nondecreasing time, and the engine clamps pushes to
///   `now`, so no push ever lands below `cursor`);
/// - wheel slot `b % WHEEL_SLOTS` holds exactly the events of absolute
///   bucket `b` for `b` in `[cursor, cursor + WHEEL_SLOTS)`; buckets
///   beyond the horizon live in `overflow` keyed by absolute index;
/// - `cur` stages the bucket currently being drained, sorted in
///   *descending* `(at, seq)` order so the next event is `cur.pop()`;
///   same-bucket pushes during the drain are inserted in place.
pub(crate) struct CalendarQueue<E> {
    wheel: Vec<Vec<Scheduled<E>>>,
    /// One bit per wheel slot: set iff the slot is non-empty.
    occupied: [u64; WORDS],
    /// Events currently on the wheel (not slots).
    wheel_len: usize,
    /// Far-future buckets: absolute bucket index → events, unsorted.
    overflow: BTreeMap<u64, Vec<Scheduled<E>>>,
    /// Absolute bucket index the queue has drained up to.
    cursor: u64,
    /// The staged bucket, descending `(at, seq)`; `pop` takes the tail.
    cur: Vec<Scheduled<E>>,
    /// True while `cur` stages bucket `cursor` (its wheel slot is then
    /// empty and same-bucket pushes go straight into `cur`).
    staged: bool,
    len: usize,
}

impl<E> CalendarQueue<E> {
    pub(crate) fn new() -> Self {
        Self {
            wheel: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            wheel_len: 0,
            overflow: BTreeMap::new(),
            cursor: 0,
            cur: Vec::new(),
            staged: false,
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    fn bucket_of(at: SimTime) -> u64 {
        at.0 >> BUCKET_SHIFT
    }

    pub(crate) fn push(&mut self, s: Scheduled<E>) {
        let b = Self::bucket_of(s.at);
        debug_assert!(b >= self.cursor, "push below the queue cursor");
        self.len += 1;
        if b == self.cursor && self.staged {
            // The bucket being drained: keep `cur` sorted (descending),
            // so the new event pops in exact (at, seq) order.
            let pos = self.cur.partition_point(|x| (x.at, x.seq) > (s.at, s.seq));
            self.cur.insert(pos, s);
        } else if b < self.cursor + WHEEL_SLOTS as u64 {
            let slot = (b % WHEEL_SLOTS as u64) as usize;
            self.occupied[slot / 64] |= 1 << (slot % 64);
            self.wheel[slot].push(s);
            self.wheel_len += 1;
        } else {
            self.overflow.entry(b).or_default().push(s);
        }
    }

    /// Offset (in buckets from `cursor`) of the first occupied wheel
    /// slot, scanning the bitmap a word at a time.
    fn next_occupied_offset(&self) -> Option<u64> {
        let n = WHEEL_SLOTS as u64;
        let mut d = 0u64;
        while d < n {
            let slot = ((self.cursor + d) % n) as usize;
            let bit = slot % 64;
            let w = self.occupied[slot / 64] >> bit;
            if w != 0 {
                let cand = d + u64::from(w.trailing_zeros());
                return (cand < n).then_some(cand);
            }
            d += 64 - bit as u64;
        }
        None
    }

    /// Moves every overflow bucket that now fits the wheel horizon onto
    /// the wheel. Called after any cursor advance.
    fn pull_overflow(&mut self) {
        let end = self.cursor + WHEEL_SLOTS as u64;
        loop {
            let k = match self.overflow.first_key_value() {
                Some((&k, _)) if k < end => k,
                _ => break,
            };
            if let Some(v) = self.overflow.remove(&k) {
                let slot = (k % WHEEL_SLOTS as u64) as usize;
                debug_assert!(self.wheel[slot].is_empty(), "slot not drained");
                self.occupied[slot / 64] |= 1 << (slot % 64);
                self.wheel_len += v.len();
                self.wheel[slot] = v;
            }
        }
    }

    /// Stages the bucket at `cursor`: swaps its slot into `cur` (the
    /// slot inherits `cur`'s spent allocation — buckets recycle their
    /// backing storage) and sorts descending.
    fn stage_cursor_bucket(&mut self) {
        let slot = (self.cursor % WHEEL_SLOTS as u64) as usize;
        debug_assert!(self.cur.is_empty());
        std::mem::swap(&mut self.cur, &mut self.wheel[slot]);
        self.occupied[slot / 64] &= !(1 << (slot % 64));
        self.wheel_len -= self.cur.len();
        self.cur.sort_unstable_by_key(|s| Reverse((s.at, s.seq)));
        self.staged = true;
    }

    pub(crate) fn pop(&mut self) -> Option<Scheduled<E>> {
        loop {
            if let Some(s) = self.cur.pop() {
                self.len -= 1;
                return Some(s);
            }
            if self.len == 0 {
                return None;
            }
            // Advance: fast-forward over empty buckets — a bitmap scan
            // within the wheel, a single ordered-map lookup beyond it.
            self.staged = false;
            match self.next_occupied_offset() {
                Some(d) => {
                    self.cursor += d;
                    self.pull_overflow();
                    self.stage_cursor_bucket();
                }
                None => {
                    // The wheel is empty; jump straight to the first
                    // far-future bucket (idle-gap fast-forward).
                    let Some((&k, _)) = self.overflow.first_key_value() else {
                        debug_assert!(false, "len > 0 with no events anywhere");
                        return None;
                    };
                    self.cursor = k;
                    self.pull_overflow();
                    self.stage_cursor_bucket();
                }
            }
        }
    }

    /// Timestamp of the next event without popping it (non-mutating:
    /// the cursor only moves on actual pops, so later pushes at earlier
    /// times stay legal).
    pub(crate) fn next_at(&self) -> Option<SimTime> {
        if let Some(s) = self.cur.last() {
            return Some(s.at);
        }
        if self.wheel_len > 0 {
            if let Some(d) = self.next_occupied_offset() {
                let slot = ((self.cursor + d) % WHEEL_SLOTS as u64) as usize;
                return self.wheel[slot].iter().map(|s| s.at).min();
            }
        }
        // The first overflow bucket holds the globally earliest
        // remaining event (buckets are keyed by time).
        self.overflow
            .first_key_value()
            .and_then(|(_, v)| v.iter().map(|s| s.at).min())
    }
}

/// The queue a [`crate::Simulation`] actually drives: one of the two
/// implementations behind a common face.
pub(crate) enum EventQueue<E> {
    /// Boxed: the wheel header (occupancy bitmap + bookkeeping) is a
    /// few hundred bytes, far larger than the heap variant.
    Calendar(Box<CalendarQueue<E>>),
    Heap(BinaryHeap<Reverse<Scheduled<E>>>),
}

impl<E> EventQueue<E> {
    pub(crate) fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Calendar => EventQueue::Calendar(Box::new(CalendarQueue::new())),
            QueueKind::BinaryHeap => EventQueue::Heap(BinaryHeap::new()),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Calendar(q) => q.len(),
            EventQueue::Heap(h) => h.len(),
        }
    }

    pub(crate) fn push(&mut self, s: Scheduled<E>) {
        match self {
            EventQueue::Calendar(q) => q.push(s),
            EventQueue::Heap(h) => h.push(Reverse(s)),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Scheduled<E>> {
        match self {
            EventQueue::Calendar(q) => q.pop(),
            EventQueue::Heap(h) => h.pop().map(|Reverse(s)| s),
        }
    }

    pub(crate) fn next_at(&self) -> Option<SimTime> {
        match self {
            EventQueue::Calendar(q) => q.next_at(),
            EventQueue::Heap(h) => h.peek().map(|Reverse(s)| s.at),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, seq: u64) -> Scheduled<u64> {
        Scheduled {
            at: SimTime(at_us),
            seq,
            event: seq,
        }
    }

    /// Drains a queue, asserting strict (at, seq) order, and returns
    /// the popped sequence numbers.
    fn drain(q: &mut CalendarQueue<u64>) -> Vec<u64> {
        let mut out = Vec::new();
        let mut last = (SimTime::ZERO, 0u64);
        while let Some(s) = q.pop() {
            assert!((s.at, s.seq) >= last, "order violated at seq {}", s.seq);
            last = (s.at, s.seq);
            out.push(s.seq);
        }
        out
    }

    #[test]
    fn same_bucket_events_pop_in_seq_order() {
        let mut q = CalendarQueue::new();
        for seq in 0..10 {
            q.push(ev(500, seq));
        }
        assert_eq!(drain(&mut q), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn wheel_wrap_and_overflow_both_drain_in_time_order() {
        let mut q = CalendarQueue::new();
        // One event per region: staged bucket, same wheel turn, next
        // wheel turn (forces rollover), and deep overflow (days out).
        q.push(ev(10, 0));
        q.push(ev(900_000, 1)); // within the first horizon
        q.push(ev(3_000_000, 2)); // next wheel turn
        q.push(ev(86_400_000_000, 3)); // one day out
        assert_eq!(q.next_at(), Some(SimTime(10)));
        assert_eq!(drain(&mut q), vec![0, 1, 2, 3]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn push_into_staged_bucket_keeps_order() {
        let mut q = CalendarQueue::new();
        q.push(ev(100, 0));
        q.push(ev(300, 1));
        let first = q.pop().expect("first");
        assert_eq!(first.seq, 0);
        // Same bucket, between the two: must pop before seq 1.
        q.push(ev(200, 2));
        q.push(ev(300, 3)); // ties with seq 1 at t=300: FIFO by seq
        assert_eq!(drain(&mut q), vec![2, 1, 3]);
    }

    #[test]
    fn idle_gap_jump_lands_exactly() {
        let mut q = CalendarQueue::new();
        q.push(ev(1_000, 0));
        q.push(ev(3_600_000_000, 1)); // an hour later, nothing between
        assert_eq!(q.pop().map(|s| s.seq), Some(0));
        assert_eq!(q.next_at(), Some(SimTime(3_600_000_000)));
        assert_eq!(q.pop().map(|s| s.at), Some(SimTime(3_600_000_000)));
        assert_eq!(q.pop().map(|s| s.seq), None);
    }
}
