//! The discrete-event loop.
//!
//! A [`Simulation`] owns a user-defined [`World`] plus a priority queue
//! of timestamped events. `run_until` repeatedly pops the earliest event,
//! advances the clock, and hands the event to the world, which may
//! schedule more events through the [`Ctx`] it receives. Ties in time
//! break by insertion order, so same-instant events are FIFO and runs
//! are fully deterministic.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The simulated system: owns all component state and reacts to events.
pub trait World {
    /// The event alphabet this world understands.
    type Event;

    /// Handles one event at `ctx.now()`; schedule follow-ups via `ctx`.
    fn handle(&mut self, ctx: &mut Ctx<'_, Self::Event>, event: Self::Event);
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Handle given to [`World::handle`] for scheduling and randomness.
pub struct Ctx<'a, E> {
    now: SimTime,
    rng: &'a mut SimRng,
    pending: Vec<(SimTime, E)>,
}

impl<'a, E> Ctx<'a, E> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run's random source.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Schedules `event` to fire `delay` from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.pending.push((self.now + delay, event));
    }

    /// Schedules `event` at an absolute time; times in the past fire at
    /// the current instant (events never travel backwards).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.pending.push((at.max(self.now), event));
    }
}

/// The event loop driving a [`World`].
///
/// # Examples
///
/// ```
/// use sm_sim::{Ctx, SimDuration, SimTime, Simulation, World};
///
/// struct Counter {
///     fired: u32,
/// }
/// impl World for Counter {
///     type Event = ();
///     fn handle(&mut self, ctx: &mut Ctx<'_, ()>, _ev: ()) {
///         self.fired += 1;
///         if self.fired < 3 {
///             ctx.schedule_in(SimDuration::from_secs(1), ());
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(Counter { fired: 0 }, 42);
/// sim.schedule_at(SimTime::ZERO, ());
/// sim.run();
/// assert_eq!(sim.world().fired, 3);
/// assert_eq!(sim.now(), SimTime::from_secs(2));
/// ```
pub struct Simulation<W: World> {
    world: W,
    queue: BinaryHeap<Reverse<Scheduled<W::Event>>>,
    now: SimTime,
    seq: u64,
    rng: SimRng,
    steps: u64,
}

impl<W: World> Simulation<W> {
    /// Creates a simulation over `world` with the given RNG seed.
    pub fn new(world: W, seed: u64) -> Self {
        Self {
            world,
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng: SimRng::seeded(seed),
            steps: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Read access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (for setup between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// The simulation's random source (for setup-time sampling).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedules an event at an absolute time (clamped to now).
    pub fn schedule_at(&mut self, at: SimTime, event: W::Event) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: W::Event) {
        self.schedule_at(self.now + delay, event);
    }

    /// Processes a single event; returns false if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(next)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(next.at >= self.now, "time must not go backwards");
        self.now = next.at;
        self.steps += 1;
        let mut ctx = Ctx {
            now: self.now,
            rng: &mut self.rng,
            pending: Vec::new(),
        };
        self.world.handle(&mut ctx, next.event);
        for (at, event) in ctx.pending {
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(Reverse(Scheduled { at, seq, event }));
        }
        true
    }

    /// Runs until the queue drains or the next event is after `deadline`;
    /// the clock then rests at `min(deadline, last event time)`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline && self.queue.is_empty() {
            // Nothing left to do; park the clock at the deadline so
            // callers can keep scheduling relative to it.
            self.now = deadline;
        }
    }

    /// Runs until the event queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Consumes the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Ctx<'_, u32>, ev: u32) {
            self.seen.push((ctx.now(), ev));
            if ev == 100 {
                // Fan out two follow-ups at the same future instant.
                ctx.schedule_in(SimDuration::from_secs(1), 101);
                ctx.schedule_in(SimDuration::from_secs(1), 102);
            }
        }
    }

    fn sim() -> Simulation<Recorder> {
        Simulation::new(Recorder { seen: Vec::new() }, 1)
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut s = sim();
        s.schedule_at(SimTime::from_secs(3), 3);
        s.schedule_at(SimTime::from_secs(1), 1);
        s.schedule_at(SimTime::from_secs(2), 2);
        s.run();
        let evs: Vec<u32> = s.world().seen.iter().map(|(_, e)| *e).collect();
        assert_eq!(evs, vec![1, 2, 3]);
        assert_eq!(s.now(), SimTime::from_secs(3));
        assert_eq!(s.steps(), 3);
    }

    #[test]
    fn same_instant_events_are_fifo() {
        let mut s = sim();
        for i in 0..10 {
            s.schedule_at(SimTime::from_secs(5), i);
        }
        s.run();
        let evs: Vec<u32> = s.world().seen.iter().map(|(_, e)| *e).collect();
        assert_eq!(evs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut s = sim();
        s.schedule_at(SimTime::from_secs(1), 100);
        s.run();
        let evs: Vec<u32> = s.world().seen.iter().map(|(_, e)| *e).collect();
        assert_eq!(evs, vec![100, 101, 102]);
        assert_eq!(s.world().seen[1].0, SimTime::from_secs(2));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut s = sim();
        s.schedule_at(SimTime::from_secs(1), 1);
        s.schedule_at(SimTime::from_secs(10), 10);
        s.run_until(SimTime::from_secs(5));
        assert_eq!(s.world().seen.len(), 1);
        // Queue still holds the later event.
        s.run_until(SimTime::from_secs(20));
        assert_eq!(s.world().seen.len(), 2);
    }

    #[test]
    fn run_until_parks_clock_when_idle() {
        let mut s = sim();
        s.run_until(SimTime::from_secs(30));
        assert_eq!(s.now(), SimTime::from_secs(30));
    }

    #[test]
    fn past_events_fire_now_not_backwards() {
        let mut s = sim();
        s.schedule_at(SimTime::from_secs(5), 1);
        s.run();
        s.schedule_at(SimTime::from_secs(1), 2); // in the past
        s.run();
        assert_eq!(s.world().seen[1].0, SimTime::from_secs(5));
    }
}
