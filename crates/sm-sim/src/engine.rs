//! The discrete-event loop.
//!
//! A [`Simulation`] owns a user-defined [`World`] plus an event queue
//! of timestamped events (a calendar queue by default — see
//! [`QueueKind`]). `run_until` repeatedly pops the earliest event,
//! advances the clock, and hands the event to the world, which may
//! schedule more events through the [`Ctx`] it receives. Ties in time
//! break by insertion order, so same-instant events are FIFO and runs
//! are fully deterministic.
//!
//! # Oracle sweeps
//!
//! Worlds that audit invariants implement [`World::sweep`] and return a
//! safety-net cadence from [`World::sweep_interval`]. The engine then
//! owns the sweep schedule: it runs a sweep immediately after any event
//! whose handler called [`Ctx::state_changed`] (same timestamp, so
//! sub-interval violation windows are observed), and fires a coarse
//! safety-net sweep whenever a full interval passes without one. Worlds
//! cannot forget to arm the sweep, and the old fixed-poll blind spot —
//! a violation that opens and closes between two polls — is gone.

use crate::queue::{EventQueue, Scheduled};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

pub use crate::queue::QueueKind;

/// The simulated system: owns all component state and reacts to events.
pub trait World {
    /// The event alphabet this world understands.
    type Event;

    /// Handles one event at `ctx.now()`; schedule follow-ups via `ctx`.
    fn handle(&mut self, ctx: &mut Ctx<'_, Self::Event>, event: Self::Event);

    /// Audits world state at `ctx.now()` (invariant checks, trace
    /// samples). The engine calls this after state-changing events and
    /// on the safety-net cadence; worlds never schedule it themselves.
    fn sweep(&mut self, _ctx: &mut Ctx<'_, Self::Event>) {}

    /// Safety-net sweep cadence, or `None` for no sweeps. Read once at
    /// [`Simulation`] construction; returning a different value later
    /// has no effect.
    fn sweep_interval(&self) -> Option<SimDuration> {
        None
    }
}

/// Handle given to [`World::handle`] for scheduling and randomness.
pub struct Ctx<'a, E> {
    now: SimTime,
    rng: &'a mut SimRng,
    queue: &'a mut EventQueue<E>,
    seq: &'a mut u64,
    dirty: &'a mut bool,
}

impl<'a, E> Ctx<'a, E> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run's random source.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Schedules `event` to fire `delay` from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` at an absolute time; times in the past fire at
    /// the current instant (events never travel backwards).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = *self.seq;
        *self.seq += 1;
        self.queue.push(Scheduled { at, seq, event });
    }

    /// Marks that this event changed oracle-relevant state: the engine
    /// runs [`World::sweep`] at this same timestamp, right after the
    /// current handler returns.
    pub fn state_changed(&mut self) {
        *self.dirty = true;
    }
}

/// The event loop driving a [`World`].
///
/// # Examples
///
/// ```
/// use sm_sim::{Ctx, SimDuration, SimTime, Simulation, World};
///
/// struct Counter {
///     fired: u32,
/// }
/// impl World for Counter {
///     type Event = ();
///     fn handle(&mut self, ctx: &mut Ctx<'_, ()>, _ev: ()) {
///         self.fired += 1;
///         if self.fired < 3 {
///             ctx.schedule_in(SimDuration::from_secs(1), ());
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(Counter { fired: 0 }, 42);
/// sim.schedule_at(SimTime::ZERO, ());
/// sim.run();
/// assert_eq!(sim.world().fired, 3);
/// assert_eq!(sim.now(), SimTime::from_secs(2));
/// ```
pub struct Simulation<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    seq: u64,
    rng: SimRng,
    steps: u64,
    sweeps: u64,
    dirty: bool,
    /// Safety-net cadence, captured from the world at construction.
    sweep_every: Option<SimDuration>,
    /// When the next safety-net sweep is due (pushed out by any sweep).
    sweep_next: Option<SimTime>,
}

impl<W: World> Simulation<W> {
    /// Creates a simulation over `world` with the given RNG seed,
    /// running on the default calendar queue.
    pub fn new(world: W, seed: u64) -> Self {
        Self::with_queue(world, seed, QueueKind::default())
    }

    /// Creates a simulation on an explicit queue implementation. Both
    /// kinds produce byte-identical runs; non-default kinds exist for
    /// differential tests.
    pub fn with_queue(world: W, seed: u64, kind: QueueKind) -> Self {
        let sweep_every = world.sweep_interval();
        Self {
            world,
            queue: EventQueue::new(kind),
            now: SimTime::ZERO,
            seq: 0,
            rng: SimRng::seeded(seed),
            steps: 0,
            sweeps: 0,
            dirty: false,
            sweep_every,
            sweep_next: sweep_every.map(|every| SimTime::ZERO + every),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of oracle sweeps run so far (not counted in [`steps`]).
    ///
    /// [`steps`]: Simulation::steps
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// Number of events still waiting in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Read access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (for setup between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// The simulation's random source (for setup-time sampling).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedules an event at an absolute time (clamped to now).
    pub fn schedule_at(&mut self, at: SimTime, event: W::Event) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, event });
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: W::Event) {
        self.schedule_at(self.now + delay, event);
    }

    /// Runs the sweep at the current instant and re-arms the safety
    /// net a full interval out.
    fn sweep_now(&mut self) {
        self.sweeps += 1;
        self.dirty = false;
        let mut ctx = Ctx {
            now: self.now,
            rng: &mut self.rng,
            queue: &mut self.queue,
            seq: &mut self.seq,
            dirty: &mut self.dirty,
        };
        self.world.sweep(&mut ctx);
        // A sweep observing its own writes must not re-trigger itself.
        self.dirty = false;
        if let Some(every) = self.sweep_every {
            self.sweep_next = Some(self.now + every);
        }
    }

    /// Advances past exactly one thing — a due safety-net sweep or the
    /// next event (plus its change-driven sweep) — and returns true.
    /// Returns false when nothing remains at or before `limit`.
    ///
    /// With no events left, safety-net sweeps only run inside a bounded
    /// window (`limit = Some`): an unbounded drain would never finish.
    fn advance_once(&mut self, limit: Option<SimTime>) -> bool {
        let head = self.queue.next_at();
        if let Some(due) = self.sweep_next {
            // The safety net fires only strictly before the next event:
            // an event at the due instant goes first and usually
            // resolves the sweep by marking itself dirty.
            let before_head = head.map_or(limit.is_some(), |h| due < h);
            if before_head {
                if limit.is_some_and(|lim| due > lim) {
                    // Neither the sweep nor any event fits the window
                    // (the head, if any, is even later than the sweep).
                    return false;
                }
                debug_assert!(due >= self.now, "time must not go backwards");
                self.now = due;
                self.sweep_now();
                return true;
            }
        }
        let Some(h) = head else {
            return false;
        };
        if limit.is_some_and(|lim| h > lim) {
            return false;
        }
        let Some(next) = self.queue.pop() else {
            return false;
        };
        debug_assert!(next.at >= self.now, "time must not go backwards");
        self.now = next.at;
        self.steps += 1;
        let mut ctx = Ctx {
            now: self.now,
            rng: &mut self.rng,
            queue: &mut self.queue,
            seq: &mut self.seq,
            dirty: &mut self.dirty,
        };
        self.world.handle(&mut ctx, next.event);
        if self.dirty {
            self.sweep_now();
        }
        true
    }

    /// Processes a single event (or due sweep); returns false if
    /// nothing remains.
    pub fn step(&mut self) -> bool {
        self.advance_once(None)
    }

    /// Runs until the queue drains or the next event is after `deadline`;
    /// the clock then rests at `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.advance_once(Some(deadline)) {}
        if self.now < deadline {
            // Nothing before the deadline remains; the bounded run has
            // semantically advanced time to it, so callers can keep
            // scheduling relative to the deadline.
            self.now = deadline;
        }
    }

    /// Runs until the event queue is empty.
    pub fn run(&mut self) {
        while self.advance_once(None) {}
    }

    /// Consumes the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Ctx<'_, u32>, ev: u32) {
            self.seen.push((ctx.now(), ev));
            if ev == 100 {
                // Fan out two follow-ups at the same future instant.
                ctx.schedule_in(SimDuration::from_secs(1), 101);
                ctx.schedule_in(SimDuration::from_secs(1), 102);
            }
        }
    }

    fn sim() -> Simulation<Recorder> {
        Simulation::new(Recorder { seen: Vec::new() }, 1)
    }

    fn sim_on(kind: QueueKind) -> Simulation<Recorder> {
        Simulation::with_queue(Recorder { seen: Vec::new() }, 1, kind)
    }

    const BOTH: [QueueKind; 2] = [QueueKind::Calendar, QueueKind::BinaryHeap];

    #[test]
    fn events_fire_in_time_order() {
        for kind in BOTH {
            let mut s = sim_on(kind);
            s.schedule_at(SimTime::from_secs(3), 3);
            s.schedule_at(SimTime::from_secs(1), 1);
            s.schedule_at(SimTime::from_secs(2), 2);
            s.run();
            let evs: Vec<u32> = s.world().seen.iter().map(|(_, e)| *e).collect();
            assert_eq!(evs, vec![1, 2, 3]);
            assert_eq!(s.now(), SimTime::from_secs(3));
            assert_eq!(s.steps(), 3);
        }
    }

    #[test]
    fn same_instant_events_are_fifo() {
        for kind in BOTH {
            let mut s = sim_on(kind);
            for i in 0..10 {
                s.schedule_at(SimTime::from_secs(5), i);
            }
            s.run();
            let evs: Vec<u32> = s.world().seen.iter().map(|(_, e)| *e).collect();
            assert_eq!(evs, (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut s = sim();
        s.schedule_at(SimTime::from_secs(1), 100);
        s.run();
        let evs: Vec<u32> = s.world().seen.iter().map(|(_, e)| *e).collect();
        assert_eq!(evs, vec![100, 101, 102]);
        assert_eq!(s.world().seen[1].0, SimTime::from_secs(2));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut s = sim();
        s.schedule_at(SimTime::from_secs(1), 1);
        s.schedule_at(SimTime::from_secs(10), 10);
        s.run_until(SimTime::from_secs(5));
        assert_eq!(s.world().seen.len(), 1);
        // Queue still holds the later event.
        s.run_until(SimTime::from_secs(20));
        assert_eq!(s.world().seen.len(), 2);
    }

    #[test]
    fn run_until_parks_clock_when_idle() {
        let mut s = sim();
        s.run_until(SimTime::from_secs(30));
        assert_eq!(s.now(), SimTime::from_secs(30));
    }

    #[test]
    fn past_events_fire_now_not_backwards() {
        let mut s = sim();
        s.schedule_at(SimTime::from_secs(5), 1);
        s.run();
        s.schedule_at(SimTime::from_secs(1), 2); // in the past
        s.run();
        assert_eq!(s.world().seen[1].0, SimTime::from_secs(5));
    }

    #[test]
    fn both_queues_produce_identical_runs() {
        let run = |kind| {
            let mut s = sim_on(kind);
            // A mix of ties, out-of-order pushes, and a fan-out chain.
            s.schedule_at(SimTime::from_secs(7), 7);
            s.schedule_at(SimTime::from_secs(1), 100);
            for i in 0..5 {
                s.schedule_at(SimTime::from_secs(2), i);
            }
            s.run();
            s.world().seen.clone()
        };
        assert_eq!(run(QueueKind::Calendar), run(QueueKind::BinaryHeap));
    }

    /// A world with a sweep subscription: records each sweep instant
    /// and whether the flag was up at that moment.
    struct Swept {
        flag: bool,
        sweeps_at: Vec<(SimTime, bool)>,
    }

    /// Events: 1 = raise flag (dirty), 2 = lower flag (dirty),
    /// 0 = unrelated event (not dirty).
    impl World for Swept {
        type Event = u32;
        fn handle(&mut self, ctx: &mut Ctx<'_, u32>, ev: u32) {
            match ev {
                1 => {
                    self.flag = true;
                    ctx.state_changed();
                }
                2 => {
                    self.flag = false;
                    ctx.state_changed();
                }
                _ => {}
            }
        }
        fn sweep(&mut self, ctx: &mut Ctx<'_, u32>) {
            self.sweeps_at.push((ctx.now(), self.flag));
        }
        fn sweep_interval(&self) -> Option<SimDuration> {
            Some(SimDuration::from_millis(500))
        }
    }

    fn swept() -> Simulation<Swept> {
        Simulation::new(
            Swept {
                flag: false,
                sweeps_at: Vec::new(),
            },
            1,
        )
    }

    #[test]
    fn change_driven_sweep_fires_at_the_marking_instant() {
        let mut s = swept();
        // Flag is up only for 40ms, entirely inside one 500ms interval.
        s.schedule_at(SimTime::from_millis(130), 1);
        s.schedule_at(SimTime::from_millis(170), 2);
        s.run_until(SimTime::from_secs(1));
        let seen = &s.world().sweeps_at;
        assert!(seen.contains(&(SimTime::from_millis(130), true)));
        assert!(seen.contains(&(SimTime::from_millis(170), false)));
    }

    #[test]
    fn unmarked_events_do_not_sweep() {
        let mut s = swept();
        s.schedule_at(SimTime::from_millis(100), 0);
        s.schedule_at(SimTime::from_millis(200), 0);
        s.run_until(SimTime::from_millis(400));
        assert!(s.world().sweeps_at.is_empty());
        assert_eq!(s.sweeps(), 0);
        assert_eq!(s.steps(), 2);
    }

    #[test]
    fn safety_net_keeps_cadence_through_idle_windows() {
        let mut s = swept();
        s.run_until(SimTime::from_secs(2));
        // Sweeps at 500ms, 1s, 1.5s, 2s even with zero events.
        let at: Vec<SimTime> = s.world().sweeps_at.iter().map(|&(t, _)| t).collect();
        assert_eq!(
            at,
            (1..=4)
                .map(|i| SimTime::from_millis(500 * i))
                .collect::<Vec<_>>()
        );
        assert_eq!(s.now(), SimTime::from_secs(2));
        assert_eq!(s.steps(), 0);
        assert_eq!(s.sweeps(), 4);
    }

    #[test]
    fn change_driven_sweep_pushes_the_safety_net_out() {
        let mut s = swept();
        // Dirty event at 400ms → sweep at 400ms; next safety net is
        // then due at 900ms, not 500ms.
        s.schedule_at(SimTime::from_millis(400), 1);
        s.run_until(SimTime::from_millis(1000));
        let at: Vec<SimTime> = s.world().sweeps_at.iter().map(|&(t, _)| t).collect();
        assert_eq!(
            at,
            vec![SimTime::from_millis(400), SimTime::from_millis(900)]
        );
    }

    #[test]
    fn drain_run_does_not_sweep_forever() {
        let mut s = swept();
        s.schedule_at(SimTime::from_millis(600), 1);
        s.run(); // unbounded drain: must terminate
        assert_eq!(s.now(), SimTime::from_millis(600));
        // One safety-net sweep (500ms) + the change-driven one (600ms).
        assert_eq!(s.sweeps(), 2);
    }
}
