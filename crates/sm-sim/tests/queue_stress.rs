//! Seeded stress tests for the calendar event queue: the engine's two
//! queue implementations must be observationally identical under
//! randomized interleavings, bucket rollovers, far-future overflow, and
//! multi-week idle gaps.
//!
//! The model checks run *through the engine* (not against queue
//! internals): a world that records `(now, event)` for every delivery
//! is exactly the sorted-by-`(at, seq)` view of the schedule, so a
//! stable-sorted vector is a complete reference model.

use sm_sim::{Ctx, QueueKind, SimDuration, SimRng, SimTime, Simulation, World};

/// Records every delivery; events optionally fan out follow-ups, so the
/// stress runs also mix handler-time pushes with setup-time pushes.
struct Recorder {
    seen: Vec<(SimTime, u64)>,
    /// `(delay_us, payload)` follow-ups, popped one per `Spawn` event.
    spawns: Vec<(u64, u64)>,
}

/// Event payloads ≥ `SPAWN_BASE` pop one entry off `spawns` and
/// schedule it as a follow-up.
const SPAWN_BASE: u64 = 1 << 32;

impl World for Recorder {
    type Event = u64;
    fn handle(&mut self, ctx: &mut Ctx<'_, u64>, ev: u64) {
        self.seen.push((ctx.now(), ev));
        if ev >= SPAWN_BASE {
            if let Some((delay, payload)) = self.spawns.pop() {
                ctx.schedule_in(SimDuration::from_micros(delay), payload);
            }
        }
    }
}

fn run(kind: QueueKind, schedule: &[(u64, u64)], spawns: Vec<(u64, u64)>) -> Vec<(SimTime, u64)> {
    let mut sim = Simulation::with_queue(
        Recorder {
            seen: Vec::new(),
            spawns,
        },
        1,
        kind,
    );
    for &(at, ev) in schedule {
        sim.schedule_at(SimTime(at), ev);
    }
    sim.run();
    sim.into_world().seen
}

/// The reference model for a static schedule: stable sort by time.
/// Insertion order is the tiebreak — exactly the engine's `(at, seq)`
/// contract — so `sort_by_key` (stable) on `at` alone is the spec.
fn model(schedule: &[(u64, u64)]) -> Vec<(SimTime, u64)> {
    let mut v: Vec<(SimTime, u64)> = schedule.iter().map(|&(at, ev)| (SimTime(at), ev)).collect();
    v.sort_by_key(|&(at, _)| at);
    v
}

#[test]
fn randomized_static_schedules_match_the_sorted_model() {
    for seed in 0..24 {
        let mut rng = SimRng::seeded(seed);
        let n = 200 + rng.range_u64(0, 2_000) as usize;
        // Mix scales: same-µs bursts, wheel-width spreads, far-future
        // outliers. range picked per event so every run crosses bucket
        // and wheel boundaries many times.
        let schedule: Vec<(u64, u64)> = (0..n as u64)
            .map(|i| {
                let at = match rng.range_u64(0, 10) {
                    0..=3 => rng.range_u64(0, 2_000),           // dense head
                    4..=6 => rng.range_u64(0, 2_000_000),       // within ~2 wheel turns
                    7..=8 => rng.range_u64(0, 600_000_000),     // minutes out
                    _ => rng.range_u64(0, 14 * 86_400_000_000), // up to 2 weeks out
                };
                (at, i)
            })
            .collect();
        let expect = model(&schedule);
        assert_eq!(
            run(QueueKind::Calendar, &schedule, Vec::new()),
            expect,
            "calendar queue diverged from model at seed {seed}"
        );
        assert_eq!(
            run(QueueKind::BinaryHeap, &schedule, Vec::new()),
            expect,
            "heap queue diverged from model at seed {seed}"
        );
    }
}

#[test]
fn randomized_dynamic_interleavings_match_across_queues() {
    // Handler-time pushes interleave pops with inserts — the case a
    // static model can't express. Both queues must still agree exactly.
    for seed in 0..16 {
        let mut rng = SimRng::seeded(0xD15C0 + seed);
        let schedule: Vec<(u64, u64)> = (0..400)
            .map(|i| (rng.range_u64(0, 5_000_000), SPAWN_BASE + i))
            .collect();
        let spawns: Vec<(u64, u64)> = (0..400)
            .map(|i| {
                let delay = match rng.range_u64(0, 4) {
                    0 => 0,                                    // same instant as the parent
                    1 => rng.range_u64(0, 1_024),              // same or next bucket
                    2 => rng.range_u64(0, 1_100_000),          // just past the wheel horizon
                    _ => rng.range_u64(0, 3 * 86_400_000_000), // days of overflow
                };
                (delay, i)
            })
            .collect();
        let a = run(QueueKind::Calendar, &schedule, spawns.clone());
        let b = run(QueueKind::BinaryHeap, &schedule, spawns);
        assert_eq!(a, b, "queues diverged at seed {seed}");
        assert_eq!(a.len(), 800);
    }
}

#[test]
fn bucket_rollover_and_overflow_edges() {
    // Hand-picked boundary times: bucket edges (1024µs), the wheel
    // horizon (1024 buckets ≈ 1.048s), one-past wraps, and deep
    // overflow — with same-instant ties at each.
    let edges = [
        0u64,
        1,
        1_023,
        1_024,     // second bucket
        1_048_575, // last µs on the initial wheel horizon
        1_048_576, // first µs past it (overflow at push time)
        1_048_577,
        2 * 1_048_576,      // a full horizon later
        86_400_000_000,     // 1 day
        7 * 86_400_000_000, // 1 week
    ];
    let mut schedule = Vec::new();
    let mut i = 0;
    for &at in &edges {
        for _ in 0..3 {
            schedule.push((at, i));
            i += 1;
        }
    }
    // Push in reverse so insertion order disagrees with time order
    // everywhere except within each tie-burst (reversal is per-time).
    let mut reversed: Vec<(u64, u64)> = Vec::new();
    for &at in edges.iter().rev() {
        for &(a, ev) in &schedule {
            if a == at {
                reversed.push((a, ev));
            }
        }
    }
    let expect = model(&reversed);
    assert_eq!(run(QueueKind::Calendar, &reversed, Vec::new()), expect);
    assert_eq!(run(QueueKind::BinaryHeap, &reversed, Vec::new()), expect);
}

#[test]
fn multi_week_idle_gaps_fast_forward_exactly() {
    // A sparse schedule across six weeks: one event every ~3.5 days.
    // The calendar queue must jump each gap (instead of stepping
    // through ~300 million empty buckets) and land on the exact µs.
    let schedule: Vec<(u64, u64)> = (0..12)
        .map(|i| (i * 3 * 86_400_000_000 + i * 500_000_000 + 7, i))
        .collect();
    let got = run(QueueKind::Calendar, &schedule, Vec::new());
    assert_eq!(got, model(&schedule));
    assert_eq!(got.last().map(|&(t, _)| t), Some(SimTime(schedule[11].0)));
}

#[test]
fn run_until_across_idle_gap_parks_then_resumes() {
    struct Quiet;
    impl World for Quiet {
        type Event = u64;
        fn handle(&mut self, _ctx: &mut Ctx<'_, u64>, _ev: u64) {}
    }
    for kind in [QueueKind::Calendar, QueueKind::BinaryHeap] {
        let mut sim = Simulation::with_queue(Quiet, 3, kind);
        sim.schedule_at(SimTime::from_days(20), 1);
        // The deadline falls inside the 20-day idle gap.
        sim.run_until(SimTime::from_days(13));
        assert_eq!(sim.now(), SimTime::from_days(13), "clock parks at deadline");
        assert_eq!(sim.steps(), 0);
        // Late push into the gap must still come out first.
        sim.schedule_at(SimTime::from_days(15), 2);
        sim.run();
        assert_eq!(sim.steps(), 2);
        assert_eq!(sim.now(), SimTime::from_days(20));
    }
}
