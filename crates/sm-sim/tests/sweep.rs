//! Regression test for the fixed-poll oracle blind spot.
//!
//! A violation that opens and closes strictly between two 500ms poll
//! points — here, a 250ms dual-primary window from t=1.20s to t=1.45s —
//! was invisible to a world that swept on a hand-rolled 500ms timer.
//! The engine's change-driven sweep subscription closes the hole: the
//! events that open and close the window mark state as changed, so the
//! sweep observes the system *inside* the window.
//!
//! Both halves are asserted: the fixed-poll world provably misses the
//! window (non-vacuity — the bug was real), and the subscribed world
//! catches it.

use sm_sim::oracle::{InvariantKind, Oracle};
use sm_sim::{Ctx, SimDuration, SimTime, Simulation, World};

/// How the world arranges its oracle sweeps.
#[derive(Clone, Copy, PartialEq)]
enum SweepStyle {
    /// The old pattern: a self-scheduled 500ms poll event, no
    /// change-driven sweeps.
    FixedPoll,
    /// The engine subscription: `state_changed()` on mutations plus the
    /// engine's coarse safety net.
    Subscribed,
}

/// One shard, two "servers": `willing` counts how many would serve.
/// The schedule briefly raises it to 2 (a second unfenced primary)
/// and lowers it again, entirely between 500ms marks.
struct TwoPrimaries {
    style: SweepStyle,
    willing: usize,
    oracle: Oracle,
}

/// Events: 0 = second primary appears, 1 = it is fenced again,
/// 2 = the fixed 500ms poll.
impl World for TwoPrimaries {
    type Event = u8;

    fn handle(&mut self, ctx: &mut Ctx<'_, u8>, ev: u8) {
        match ev {
            0 => {
                self.willing = 2;
                if self.style == SweepStyle::Subscribed {
                    ctx.state_changed();
                }
            }
            1 => {
                self.willing = 1;
                if self.style == SweepStyle::Subscribed {
                    ctx.state_changed();
                }
            }
            _ => {
                // The old hand-rolled poll: sweep, reschedule.
                self.oracle.primaries_observed(ctx.now(), 0, self.willing);
                if ctx.now() < SimTime::from_secs(3) {
                    ctx.schedule_in(SimDuration::from_millis(500), 2);
                }
            }
        }
    }

    fn sweep(&mut self, ctx: &mut Ctx<'_, u8>) {
        self.oracle.primaries_observed(ctx.now(), 0, self.willing);
    }

    fn sweep_interval(&self) -> Option<SimDuration> {
        match self.style {
            SweepStyle::FixedPoll => None,
            SweepStyle::Subscribed => Some(SimDuration::from_millis(500)),
        }
    }
}

fn run(style: SweepStyle) -> Oracle {
    let mut sim = Simulation::new(
        TwoPrimaries {
            style,
            willing: 1,
            oracle: Oracle::new(),
        },
        7,
    );
    // The dual-primary window: opens at 1.20s, closes at 1.45s —
    // strictly inside the (1.0s, 1.5s) gap between 500ms marks.
    sim.schedule_at(SimTime::from_millis(1_200), 0);
    sim.schedule_at(SimTime::from_millis(1_450), 1);
    if style == SweepStyle::FixedPoll {
        sim.schedule_at(SimTime::from_millis(500), 2);
    }
    sim.run_until(SimTime::from_secs(3));
    sim.into_world().oracle
}

#[test]
fn fixed_poll_misses_the_sub_interval_window() {
    // Non-vacuity: the blind spot was real. Every poll lands at a
    // multiple of 500ms, the window lives entirely between two of
    // them, and the poll-only world sees nothing.
    let oracle = run(SweepStyle::FixedPoll);
    assert!(
        oracle.observations() >= 5,
        "the poll did run: {} observations",
        oracle.observations()
    );
    assert_eq!(
        oracle.total_violations(),
        0,
        "a fixed poll must NOT see the 1.20s–1.45s window: {:?}",
        oracle.violations()
    );
}

#[test]
fn change_driven_sweep_catches_the_same_window() {
    let oracle = run(SweepStyle::Subscribed);
    assert!(
        oracle.total_violations() >= 1,
        "the change-driven sweep must observe the window"
    );
    let v = &oracle.violations()[0];
    assert_eq!(v.kind, InvariantKind::DualPrimary);
    assert_eq!(
        v.at,
        SimTime::from_millis(1_200),
        "caught at the instant the window opened, not at a later poll"
    );
}
