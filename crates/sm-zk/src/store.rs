//! The znode tree, sessions, ephemerals, and watches.

use sm_types::SmError;
use std::collections::{BTreeMap, BTreeSet};

/// A client session; ephemeral nodes die with it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SessionId(pub u64);

/// How a znode is created.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CreateMode {
    /// A durable node.
    Persistent,
    /// Deleted automatically when its owning session expires.
    Ephemeral,
    /// Durable, with a monotonically increasing suffix appended to the
    /// requested path (e.g. `/locks/lock-` becomes `/locks/lock-0000000003`).
    PersistentSequential,
}

/// Node metadata returned by reads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Stat {
    /// Data version, incremented on every set.
    pub version: u64,
    /// Number of children.
    pub num_children: usize,
    /// Whether the node is ephemeral.
    pub ephemeral: bool,
}

/// What a fired watch observed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WatchKind {
    /// The watched node was created.
    Created,
    /// The watched node's data changed.
    DataChanged,
    /// The watched node was deleted.
    Deleted,
    /// The watched node's child set changed.
    ChildrenChanged,
}

/// A fired watch: delivered to `watcher` about `path`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WatchEvent {
    /// The session that registered the watch.
    pub watcher: SessionId,
    /// The watched path.
    pub path: String,
    /// What happened.
    pub kind: WatchKind,
}

#[derive(Clone, Debug)]
struct Znode {
    data: Vec<u8>,
    version: u64,
    owner: Option<SessionId>,
    children: BTreeSet<String>,
    seq_counter: u64,
}

impl Znode {
    fn new(data: Vec<u8>, owner: Option<SessionId>) -> Self {
        Self {
            data,
            version: 0,
            owner,
            children: BTreeSet::new(),
            seq_counter: 0,
        }
    }
}

/// The coordination store.
///
/// # Examples
///
/// ```
/// use sm_zk::{CreateMode, ZkStore};
///
/// let mut zk = ZkStore::new();
/// let session = zk.connect();
/// zk.create(session, "/apps", b"".to_vec(), CreateMode::Persistent).unwrap();
/// zk.create(session, "/apps/kv", b"policy".to_vec(), CreateMode::Persistent).unwrap();
/// assert_eq!(zk.get("/apps/kv").unwrap().0, b"policy");
/// ```
#[derive(Clone, Debug, Default)]
pub struct ZkStore {
    nodes: BTreeMap<String, Znode>,
    next_session: u64,
    live_sessions: BTreeSet<SessionId>,
    /// One-shot data watches: path -> watching sessions.
    data_watches: BTreeMap<String, BTreeSet<SessionId>>,
    /// One-shot child watches: path -> watching sessions.
    child_watches: BTreeMap<String, BTreeSet<SessionId>>,
}

impl ZkStore {
    /// Creates an empty store containing only the root node `/`.
    pub fn new() -> Self {
        let mut store = Self::default();
        store
            .nodes
            .insert("/".to_string(), Znode::new(Vec::new(), None));
        store
    }

    /// Opens a new session.
    pub fn connect(&mut self) -> SessionId {
        let id = SessionId(self.next_session);
        self.next_session += 1;
        self.live_sessions.insert(id);
        id
    }

    /// Returns true if the session is live.
    pub fn session_alive(&self, session: SessionId) -> bool {
        self.live_sessions.contains(&session)
    }

    /// Expires a session: its pending watches are discarded, then its
    /// ephemeral nodes are deleted (firing the survivors' watches).
    ///
    /// Ordering matters: the expiring session's own watches must be
    /// dropped *before* its ephemerals are reaped, or it would be
    /// delivered events about its own death — real ZooKeeper never
    /// notifies an expired session. Surviving sessions watching the
    /// ephemerals (`watch_exists` on a node owned by the dying session)
    /// do get their `Deleted`/`ChildrenChanged` events.
    pub fn expire_session(&mut self, session: SessionId) -> Vec<WatchEvent> {
        self.live_sessions.remove(&session);
        for watches in self.data_watches.values_mut() {
            watches.remove(&session);
        }
        for watches in self.child_watches.values_mut() {
            watches.remove(&session);
        }
        let doomed: Vec<String> = self
            .nodes
            .iter()
            .filter(|(_, n)| n.owner == Some(session))
            .map(|(p, _)| p.clone())
            .collect();
        let mut events = Vec::new();
        for path in doomed {
            // The node may already be gone if a parent ephemeral was
            // removed first (ephemerals cannot have children in real ZK;
            // we keep the same rule, so this is just defensive).
            if self.nodes.contains_key(&path) {
                events.extend(self.delete_unchecked(&path));
            }
        }
        events
    }

    fn validate_path(path: &str) -> Result<(), SmError> {
        if !path.starts_with('/') || (path.len() > 1 && path.ends_with('/')) {
            return Err(SmError::InvalidArgument(format!("bad path {path:?}")));
        }
        if path.contains("//") {
            return Err(SmError::InvalidArgument(format!("bad path {path:?}")));
        }
        Ok(())
    }

    // sm-lint: allow(P1) — rfind returns a char boundary inside path
    fn parent_of(path: &str) -> &str {
        match path.rfind('/') {
            Some(0) => "/",
            Some(i) => &path[..i],
            None => "/",
        }
    }

    /// Creates a node. Returns the actual path (which differs from the
    /// requested one for sequential nodes) plus fired watches.
    ///
    /// Fails if the node exists, the parent is missing, the parent is
    /// ephemeral, or the session is dead.
    pub fn create(
        &mut self,
        session: SessionId,
        path: &str,
        data: Vec<u8>,
        mode: CreateMode,
    ) -> Result<(String, Vec<WatchEvent>), SmError> {
        Self::validate_path(path)?;
        if !self.session_alive(session) {
            return Err(SmError::Unavailable(format!("session {session:?} expired")));
        }
        if path == "/" {
            return Err(SmError::Conflict("root already exists".into()));
        }
        let parent = Self::parent_of(path).to_string();
        let actual = {
            let parent_node = self
                .nodes
                .get_mut(&parent)
                .ok_or_else(|| SmError::not_found(format!("parent {parent}")))?;
            if parent_node.owner.is_some() {
                return Err(SmError::InvalidArgument(format!(
                    "ephemeral parent {parent} cannot have children"
                )));
            }
            match mode {
                CreateMode::PersistentSequential => {
                    let seq = parent_node.seq_counter;
                    parent_node.seq_counter += 1;
                    format!("{path}{seq:010}")
                }
                _ => path.to_string(),
            }
        };
        if self.nodes.contains_key(&actual) {
            return Err(SmError::conflict(format!("{actual} exists")));
        }
        let owner = match mode {
            CreateMode::Ephemeral => Some(session),
            _ => None,
        };
        self.nodes
            .get_mut(&parent)
            .ok_or_else(|| SmError::not_found(format!("parent {parent}")))?
            .children
            .insert(actual.clone());
        self.nodes.insert(actual.clone(), Znode::new(data, owner));
        let mut events = self.fire_data_watches(&actual, WatchKind::Created);
        events.extend(self.fire_child_watches(&parent));
        Ok((actual, events))
    }

    /// Reads a node's data and stat.
    pub fn get(&self, path: &str) -> Result<(Vec<u8>, Stat), SmError> {
        let node = self
            .nodes
            .get(path)
            .ok_or_else(|| SmError::not_found(path))?;
        Ok((
            node.data.clone(),
            Stat {
                version: node.version,
                num_children: node.children.len(),
                ephemeral: node.owner.is_some(),
            },
        ))
    }

    /// Returns true if the node exists.
    pub fn exists(&self, path: &str) -> bool {
        self.nodes.contains_key(path)
    }

    /// Overwrites a node's data. `expected_version` of `Some(v)` makes
    /// the write conditional (compare-and-set).
    pub fn set(
        &mut self,
        path: &str,
        data: Vec<u8>,
        expected_version: Option<u64>,
    ) -> Result<(u64, Vec<WatchEvent>), SmError> {
        let node = self
            .nodes
            .get_mut(path)
            .ok_or_else(|| SmError::not_found(path))?;
        if let Some(expected) = expected_version {
            if node.version != expected {
                return Err(SmError::conflict(format!(
                    "{path}: version {} != expected {expected}",
                    node.version
                )));
            }
        }
        node.data = data;
        node.version += 1;
        let version = node.version;
        let events = self.fire_data_watches(path, WatchKind::DataChanged);
        Ok((version, events))
    }

    /// Session-checked conditional write — the control-plane fencing
    /// primitive (§6.2). Like [`Self::set`], but the write is rejected
    /// with `Unavailable` when the writer's session has expired, before
    /// the version is even compared. A stale mini-SM that lost its
    /// session (or whose cached version was overtaken by a successor's
    /// write) therefore gets an [`SmError`] and the znode is untouched:
    /// it can degrade, but never clobber.
    pub fn set_as(
        &mut self,
        session: SessionId,
        path: &str,
        data: Vec<u8>,
        expected_version: Option<u64>,
    ) -> Result<(u64, Vec<WatchEvent>), SmError> {
        if !self.session_alive(session) {
            return Err(SmError::Unavailable(format!("session {session:?} expired")));
        }
        self.set(path, data, expected_version)
    }

    /// Deletes a leaf node. Fails if it has children.
    pub fn delete(&mut self, path: &str) -> Result<Vec<WatchEvent>, SmError> {
        let node = self
            .nodes
            .get(path)
            .ok_or_else(|| SmError::not_found(path))?;
        if !node.children.is_empty() {
            return Err(SmError::conflict(format!("{path} has children")));
        }
        if path == "/" {
            return Err(SmError::InvalidArgument("cannot delete root".into()));
        }
        Ok(self.delete_unchecked(path))
    }

    fn delete_unchecked(&mut self, path: &str) -> Vec<WatchEvent> {
        self.nodes.remove(path);
        let parent = Self::parent_of(path).to_string();
        if let Some(p) = self.nodes.get_mut(&parent) {
            p.children.remove(path);
        }
        let mut events = self.fire_data_watches(path, WatchKind::Deleted);
        events.extend(self.fire_child_watches(&parent));
        events
    }

    /// Lists a node's children (full paths), sorted.
    pub fn children(&self, path: &str) -> Result<Vec<String>, SmError> {
        let node = self
            .nodes
            .get(path)
            .ok_or_else(|| SmError::not_found(path))?;
        Ok(node.children.iter().cloned().collect())
    }

    /// Registers a one-shot watch on a node's existence/data. The node
    /// need not exist yet (a creation fires the watch).
    pub fn watch_data(&mut self, session: SessionId, path: &str) {
        self.data_watches
            .entry(path.to_string())
            .or_default()
            .insert(session);
    }

    /// Registers a one-shot existence watch: fires `Created` when the
    /// node appears, `Deleted` when it disappears — including the
    /// ephemeral reaping performed by [`Self::expire_session`] — and
    /// `DataChanged` on writes. Mechanically identical to
    /// [`Self::watch_data`]; the separate name documents the
    /// `exists`-style usage where the watcher tracks liveness of a node
    /// owned by *another* session.
    pub fn watch_exists(&mut self, session: SessionId, path: &str) {
        self.watch_data(session, path);
    }

    /// Registers a one-shot watch on a node's child set.
    pub fn watch_children(&mut self, session: SessionId, path: &str) {
        self.child_watches
            .entry(path.to_string())
            .or_default()
            .insert(session);
    }

    fn fire_data_watches(&mut self, path: &str, kind: WatchKind) -> Vec<WatchEvent> {
        let Some(watchers) = self.data_watches.remove(path) else {
            return Vec::new();
        };
        // BTreeSet iteration is already session-ordered.
        watchers
            .into_iter()
            .map(|watcher| WatchEvent {
                watcher,
                path: path.to_string(),
                kind,
            })
            .collect()
    }

    fn fire_child_watches(&mut self, path: &str) -> Vec<WatchEvent> {
        let Some(watchers) = self.child_watches.remove(path) else {
            return Vec::new();
        };
        watchers
            .into_iter()
            .map(|watcher| WatchEvent {
                watcher,
                path: path.to_string(),
                kind: WatchKind::ChildrenChanged,
            })
            .collect()
    }

    /// Total node count (including the root), for tests and metrics.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> (ZkStore, SessionId) {
        let mut zk = ZkStore::new();
        let s = zk.connect();
        (zk, s)
    }

    #[test]
    fn create_get_set_delete_round_trip() {
        let (mut zk, s) = store();
        zk.create(s, "/a", b"1".to_vec(), CreateMode::Persistent)
            .unwrap();
        let (data, stat) = zk.get("/a").unwrap();
        assert_eq!(data, b"1");
        assert_eq!(stat.version, 0);
        assert!(!stat.ephemeral);

        let (v, _) = zk.set("/a", b"2".to_vec(), None).unwrap();
        assert_eq!(v, 1);
        assert_eq!(zk.get("/a").unwrap().0, b"2");

        zk.delete("/a").unwrap();
        assert!(!zk.exists("/a"));
    }

    #[test]
    fn create_requires_parent() {
        let (mut zk, s) = store();
        let err = zk.create(s, "/a/b", vec![], CreateMode::Persistent);
        assert!(matches!(err, Err(SmError::NotFound(_))));
    }

    #[test]
    fn duplicate_create_conflicts() {
        let (mut zk, s) = store();
        zk.create(s, "/a", vec![], CreateMode::Persistent).unwrap();
        assert!(matches!(
            zk.create(s, "/a", vec![], CreateMode::Persistent),
            Err(SmError::Conflict(_))
        ));
    }

    #[test]
    fn delete_with_children_fails() {
        let (mut zk, s) = store();
        zk.create(s, "/a", vec![], CreateMode::Persistent).unwrap();
        zk.create(s, "/a/b", vec![], CreateMode::Persistent)
            .unwrap();
        assert!(zk.delete("/a").is_err());
        zk.delete("/a/b").unwrap();
        zk.delete("/a").unwrap();
    }

    #[test]
    fn conditional_set_checks_version() {
        let (mut zk, s) = store();
        zk.create(s, "/a", b"x".to_vec(), CreateMode::Persistent)
            .unwrap();
        assert!(zk.set("/a", b"y".to_vec(), Some(1)).is_err());
        zk.set("/a", b"y".to_vec(), Some(0)).unwrap();
        assert_eq!(zk.get("/a").unwrap().1.version, 1);
    }

    #[test]
    fn ephemeral_dies_with_session() {
        let mut zk = ZkStore::new();
        let s1 = zk.connect();
        let s2 = zk.connect();
        zk.create(s1, "/servers", vec![], CreateMode::Persistent)
            .unwrap();
        zk.create(s1, "/servers/srv1", vec![], CreateMode::Ephemeral)
            .unwrap();
        zk.create(s2, "/servers/srv2", vec![], CreateMode::Ephemeral)
            .unwrap();
        zk.expire_session(s1);
        assert!(!zk.exists("/servers/srv1"));
        assert!(zk.exists("/servers/srv2"));
        assert!(!zk.session_alive(s1));
        assert!(zk.session_alive(s2));
    }

    #[test]
    fn expired_session_cannot_create() {
        let (mut zk, s) = store();
        zk.expire_session(s);
        assert!(matches!(
            zk.create(s, "/a", vec![], CreateMode::Persistent),
            Err(SmError::Unavailable(_))
        ));
    }

    #[test]
    fn ephemeral_cannot_have_children() {
        let (mut zk, s) = store();
        zk.create(s, "/e", vec![], CreateMode::Ephemeral).unwrap();
        assert!(zk
            .create(s, "/e/child", vec![], CreateMode::Persistent)
            .is_err());
    }

    #[test]
    fn sequential_nodes_get_increasing_suffixes() {
        let (mut zk, s) = store();
        zk.create(s, "/q", vec![], CreateMode::Persistent).unwrap();
        let (p1, _) = zk
            .create(s, "/q/item-", vec![], CreateMode::PersistentSequential)
            .unwrap();
        let (p2, _) = zk
            .create(s, "/q/item-", vec![], CreateMode::PersistentSequential)
            .unwrap();
        assert_eq!(p1, "/q/item-0000000000");
        assert_eq!(p2, "/q/item-0000000001");
        assert!(p1 < p2);
        assert_eq!(zk.children("/q").unwrap(), vec![p1, p2]);
    }

    #[test]
    fn data_watch_fires_once_on_change() {
        let (mut zk, s) = store();
        let watcher = zk.connect();
        zk.create(s, "/a", vec![], CreateMode::Persistent).unwrap();
        zk.watch_data(watcher, "/a");
        let (_, events) = zk.set("/a", b"1".to_vec(), None).unwrap();
        assert_eq!(
            events,
            vec![WatchEvent {
                watcher,
                path: "/a".to_string(),
                kind: WatchKind::DataChanged
            }]
        );
        // One-shot: second change fires nothing.
        let (_, events) = zk.set("/a", b"2".to_vec(), None).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn watch_on_missing_node_fires_on_create() {
        let (mut zk, s) = store();
        let watcher = zk.connect();
        zk.watch_data(watcher, "/later");
        let (_, events) = zk
            .create(s, "/later", vec![], CreateMode::Persistent)
            .unwrap();
        assert_eq!(events[0].kind, WatchKind::Created);
    }

    #[test]
    fn delete_fires_data_and_child_watches() {
        let (mut zk, s) = store();
        let watcher = zk.connect();
        zk.create(s, "/parent", vec![], CreateMode::Persistent)
            .unwrap();
        zk.create(s, "/parent/kid", vec![], CreateMode::Ephemeral)
            .unwrap();
        zk.watch_data(watcher, "/parent/kid");
        zk.watch_children(watcher, "/parent");
        let events = zk.expire_session(s);
        let kinds: Vec<WatchKind> = events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&WatchKind::Deleted));
        assert!(kinds.contains(&WatchKind::ChildrenChanged));
    }

    #[test]
    fn expire_drops_pending_watches_of_that_session() {
        let (mut zk, s) = store();
        let watcher = zk.connect();
        zk.create(s, "/a", vec![], CreateMode::Persistent).unwrap();
        zk.watch_data(watcher, "/a");
        zk.expire_session(watcher);
        let (_, events) = zk.set("/a", b"1".to_vec(), None).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn exists_watch_expiry_notifies_survivors_only() {
        // Session A watches a node owned by session B; B also watches
        // its own node. When B expires, A (the survivor) must get the
        // Deleted event and B — already expired — must get nothing.
        let mut zk = ZkStore::new();
        let root = zk.connect();
        let a = zk.connect();
        let b = zk.connect();
        zk.create(root, "/minisms", vec![], CreateMode::Persistent)
            .unwrap();
        zk.create(b, "/minisms/m1", vec![], CreateMode::Ephemeral)
            .unwrap();
        zk.watch_exists(a, "/minisms/m1");
        zk.watch_exists(b, "/minisms/m1");
        zk.watch_children(a, "/minisms");
        zk.watch_children(b, "/minisms");

        let events = zk.expire_session(b);
        assert!(
            events.iter().all(|e| e.watcher != b),
            "an expired session must never be delivered watch events \
             from its own expiry: {events:?}"
        );
        let a_kinds: Vec<WatchKind> = events
            .iter()
            .filter(|e| e.watcher == a)
            .map(|e| e.kind)
            .collect();
        assert!(a_kinds.contains(&WatchKind::Deleted), "{events:?}");
        assert!(a_kinds.contains(&WatchKind::ChildrenChanged), "{events:?}");
    }

    #[test]
    fn exists_watch_sees_reregistration_after_expiry() {
        // After the Deleted event a survivor re-arms the watch and sees
        // the replacement ephemeral appear under a fresh session.
        let mut zk = ZkStore::new();
        let root = zk.connect();
        let a = zk.connect();
        let b = zk.connect();
        zk.create(root, "/servers", vec![], CreateMode::Persistent)
            .unwrap();
        zk.create(b, "/servers/srv0", vec![], CreateMode::Ephemeral)
            .unwrap();
        zk.watch_exists(a, "/servers/srv0");
        let events = zk.expire_session(b);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, WatchKind::Deleted);

        zk.watch_exists(a, "/servers/srv0"); // one-shot: re-arm
        let b2 = zk.connect();
        let (_, events) = zk
            .create(b2, "/servers/srv0", vec![], CreateMode::Ephemeral)
            .unwrap();
        assert_eq!(events[0].watcher, a);
        assert_eq!(events[0].kind, WatchKind::Created);
    }

    #[test]
    fn fenced_set_rejects_expired_session_without_writing() {
        let mut zk = ZkStore::new();
        let alive = zk.connect();
        let stale = zk.connect();
        zk.create(alive, "/state", b"v0".to_vec(), CreateMode::Persistent)
            .unwrap();
        zk.expire_session(stale);
        let err = zk.set_as(stale, "/state", b"stale".to_vec(), Some(0));
        assert!(matches!(err, Err(SmError::Unavailable(_))), "{err:?}");
        let (data, stat) = zk.get("/state").unwrap();
        assert_eq!(data, b"v0", "stale write must be absent");
        assert_eq!(stat.version, 0);
    }

    #[test]
    fn fenced_set_rejects_stale_version_without_writing() {
        let mut zk = ZkStore::new();
        let old_owner = zk.connect();
        let new_owner = zk.connect();
        zk.create(old_owner, "/state", b"v0".to_vec(), CreateMode::Persistent)
            .unwrap();
        // The new owner takes over and bumps the version.
        zk.set_as(new_owner, "/state", b"v1".to_vec(), Some(0))
            .unwrap();
        // The old owner's session is still alive (a zombie) but its
        // cached version is stale: BadVersion, znode untouched.
        let err = zk.set_as(old_owner, "/state", b"zombie".to_vec(), Some(0));
        assert!(matches!(err, Err(SmError::Conflict(_))), "{err:?}");
        assert_eq!(zk.get("/state").unwrap().0, b"v1");
    }

    #[test]
    fn path_validation() {
        let (mut zk, s) = store();
        for bad in ["a", "/a/", "//a", "/a//b"] {
            assert!(
                zk.create(s, bad, vec![], CreateMode::Persistent).is_err(),
                "{bad} should be rejected"
            );
        }
    }

    #[test]
    fn children_sorted_full_paths() {
        let (mut zk, s) = store();
        zk.create(s, "/d", vec![], CreateMode::Persistent).unwrap();
        zk.create(s, "/d/b", vec![], CreateMode::Persistent)
            .unwrap();
        zk.create(s, "/d/a", vec![], CreateMode::Persistent)
            .unwrap();
        assert_eq!(zk.children("/d").unwrap(), vec!["/d/a", "/d/b"]);
    }
}
