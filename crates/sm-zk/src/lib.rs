#![warn(missing_docs)]
//! A ZooKeeper-like coordination store.
//!
//! Shard Manager uses ZooKeeper for three things (§3.2): persisting the
//! orchestrator's state, letting application servers bootstrap their
//! shard assignment without the control plane, and detecting application
//! server failures through ephemeral nodes. This crate provides exactly
//! that surface: a hierarchical namespace of versioned znodes with
//! ephemeral nodes bound to sessions, one-shot watches, and sequence
//! nodes.
//!
//! The store is synchronous and deterministic. Mutating operations
//! return the set of [`WatchEvent`]s they triggered; the embedding
//! simulation decides when (and with what delay) to deliver them, which
//! keeps the store reusable both inside `sm-sim` worlds and in plain
//! unit tests.

pub mod store;

pub use store::{CreateMode, SessionId, Stat, WatchEvent, WatchKind, ZkStore};
