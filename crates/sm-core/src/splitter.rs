//! The adaptive shard splitter (beyond the paper, ROADMAP item 3).
//!
//! The paper's SM never splits or merges shards (§3.1): a viral key
//! range has no remedy except overloading its server. Following the
//! "Self-healing Nodes with Adaptive Data-Sharding" direction, the
//! [`SplitScaler`] watches per-shard load and recommends *resharding*
//! operations: split a hot shard's key range at its midpoint, or merge
//! two adjacent cold shards back into one. The
//! [`crate::Orchestrator`] executes each recommendation with a
//! generalized five-step graceful migration (1→2 for split, 2→1 for
//! merge) so no request window is ever unowned — see
//! `Orchestrator::start_split` / `start_merge`.
//!
//! The scaler itself is a pure decision function: `(spec, loads, busy)`
//! in, recommendations out. All execution state lives in the
//! orchestrator so the decisions stay trivially deterministic and
//! testable.

use sm_types::{LoadVector, MetricId, ShardId, ShardingSpec};
use std::collections::{BTreeMap, BTreeSet};

/// Split-scaler tuning.
#[derive(Clone, Copy, Debug)]
pub struct SplitScalerConfig {
    /// The load metric the scaler watches.
    pub metric: MetricId,
    /// Split a shard when its load exceeds this.
    pub split_above: f64,
    /// Merge two adjacent shards when their combined load stays below
    /// this. Must be below `split_above`, or a merge would immediately
    /// re-split.
    pub merge_below: f64,
    /// Never merge below this many shards.
    pub min_shards: usize,
    /// Never split above this many shards.
    pub max_shards: usize,
    /// Cap on concurrently executing split/merge operations.
    pub max_concurrent: usize,
}

impl SplitScalerConfig {
    /// A scaler splitting above `split_above` and merging neighbors
    /// whose combined load stays below `merge_below`, keeping the shard
    /// count within `[min_shards, max_shards]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < merge_below < split_above` and
    /// `0 < min_shards <= max_shards`.
    pub fn new(
        metric: MetricId,
        split_above: f64,
        merge_below: f64,
        min_shards: usize,
        max_shards: usize,
    ) -> Self {
        assert!(
            merge_below > 0.0 && merge_below < split_above,
            "need 0 < merge_below < split_above for hysteresis"
        );
        assert!(
            min_shards >= 1 && min_shards <= max_shards,
            "bad shard-count bounds"
        );
        Self {
            metric,
            split_above,
            merge_below,
            min_shards,
            max_shards,
            max_concurrent: 1,
        }
    }

    /// Allows up to `n` concurrent split/merge operations.
    pub fn with_max_concurrent(mut self, n: usize) -> Self {
        self.max_concurrent = n.max(1);
        self
    }
}

/// One recommended resharding operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReshardOp {
    /// Split `shard`'s key range at its midpoint.
    Split {
        /// The hot shard to split.
        shard: ShardId,
    },
    /// Merge the adjacent ranges of `left` and `right` into one shard.
    Merge {
        /// The shard owning the lower range.
        left: ShardId,
        /// The shard owning the adjacent higher range.
        right: ShardId,
    },
}

/// The adaptive shard splitter: key-range split/merge decisions.
#[derive(Clone, Debug)]
pub struct SplitScaler {
    config: SplitScalerConfig,
}

impl SplitScaler {
    /// Creates a scaler.
    pub fn new(config: SplitScalerConfig) -> Self {
        Self { config }
    }

    /// The configuration the scaler runs with.
    pub fn config(&self) -> SplitScalerConfig {
        self.config
    }

    /// Evaluates the spec against the latest per-shard loads.
    ///
    /// `busy` names shards that must not be touched (already splitting,
    /// merging, migrating, or reclaiming). Returns at most
    /// `max_concurrent` operations: hottest splits first, then coldest
    /// adjacent merges, never recommending both for the same shard and
    /// never crossing the `[min_shards, max_shards]` bounds even if all
    /// recommendations execute.
    pub fn evaluate(
        &self,
        spec: &ShardingSpec,
        loads: &BTreeMap<ShardId, LoadVector>,
        busy: &BTreeSet<ShardId>,
    ) -> Vec<ReshardOp> {
        let mut out = Vec::new();
        let count = spec.shard_count();
        let load_of = |s: ShardId| loads.get(&s).map(|l| l.get(self.config.metric));

        // Splits: hottest first. Each split nets +1 shard.
        let mut hot: Vec<(f64, ShardId)> = spec
            .iter()
            .filter(|(range, shard)| !busy.contains(shard) && range.midpoint().is_some())
            .filter_map(|(_, shard)| {
                load_of(*shard)
                    .filter(|&l| l > self.config.split_above)
                    .map(|l| (l, *shard))
            })
            .collect();
        hot.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let split_budget = self.config.max_shards.saturating_sub(count);
        for (_, shard) in hot.into_iter().take(split_budget) {
            if out.len() >= self.config.max_concurrent {
                return out;
            }
            out.push(ReshardOp::Split { shard });
        }

        // Merges: adjacent cold pairs, coldest first, disjoint. Shards
        // being split this round are off-limits. Each merge nets -1.
        let claimed: BTreeSet<ShardId> = out
            .iter()
            .filter_map(|op| match op {
                ReshardOp::Split { shard } => Some(*shard),
                ReshardOp::Merge { .. } => None,
            })
            .collect();
        let entries: Vec<_> = spec.iter().collect();
        let mut cold: Vec<(f64, ShardId, ShardId)> = entries
            .iter()
            .zip(entries.iter().skip(1))
            .filter_map(|((lr, ls), (rr, rs))| {
                if busy.contains(ls)
                    || busy.contains(rs)
                    || claimed.contains(ls)
                    || claimed.contains(rs)
                {
                    return None;
                }
                // Only truly adjacent ranges merge.
                lr.merge(rr)?;
                let combined = load_of(*ls)? + load_of(*rs)?;
                (combined < self.config.merge_below).then_some((combined, *ls, *rs))
            })
            .collect();
        cold.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut merged: BTreeSet<ShardId> = BTreeSet::new();
        let mut merge_budget = count.saturating_sub(self.config.min_shards);
        for (_, left, right) in cold {
            if out.len() >= self.config.max_concurrent || merge_budget == 0 {
                break;
            }
            if merged.contains(&left) || merged.contains(&right) {
                continue; // pairs sharing a shard are not independent
            }
            merged.insert(left);
            merged.insert(right);
            merge_budget -= 1;
            out.push(ReshardOp::Merge { left, right });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_types::Metric;

    fn cfg() -> SplitScalerConfig {
        SplitScalerConfig::new(Metric::Synthetic.id(), 100.0, 30.0, 2, 8).with_max_concurrent(4)
    }

    fn loads(pairs: &[(u64, f64)]) -> BTreeMap<ShardId, LoadVector> {
        pairs
            .iter()
            .map(|&(s, l)| (ShardId(s), LoadVector::single(Metric::Synthetic.id(), l)))
            .collect()
    }

    #[test]
    fn hot_shard_is_split_first() {
        let spec = ShardingSpec::uniform_u64(4);
        let scaler = SplitScaler::new(cfg());
        let ops = scaler.evaluate(
            &spec,
            &loads(&[(0, 50.0), (1, 250.0), (2, 150.0), (3, 50.0)]),
            &BTreeSet::new(),
        );
        assert_eq!(
            ops,
            vec![
                ReshardOp::Split { shard: ShardId(1) },
                ReshardOp::Split { shard: ShardId(2) },
            ],
            "hottest first; in-band shards untouched"
        );
    }

    #[test]
    fn cold_neighbors_merge_coldest_first_and_disjoint() {
        let spec = ShardingSpec::uniform_u64(4);
        let scaler = SplitScaler::new(cfg());
        // All four cold: pairs (0,1)=4, (1,2)=12, (2,3)=18. Coldest is
        // (0,1); (1,2) then conflicts, (2,3) still fits.
        let ops = scaler.evaluate(
            &spec,
            &loads(&[(0, 1.0), (1, 3.0), (2, 9.0), (3, 9.0)]),
            &BTreeSet::new(),
        );
        assert_eq!(
            ops,
            vec![
                ReshardOp::Merge {
                    left: ShardId(0),
                    right: ShardId(1)
                },
                ReshardOp::Merge {
                    left: ShardId(2),
                    right: ShardId(3)
                },
            ]
        );
    }

    #[test]
    fn busy_shards_and_bounds_are_respected() {
        let spec = ShardingSpec::uniform_u64(2);
        let scaler = SplitScaler::new(cfg());
        // Hot but busy: nothing.
        let busy: BTreeSet<ShardId> = [ShardId(0)].into_iter().collect();
        let ops = scaler.evaluate(&spec, &loads(&[(0, 500.0), (1, 1.0)]), &busy);
        assert!(ops.is_empty());
        // At min_shards=2, a cold pair must not merge.
        let ops = scaler.evaluate(&spec, &loads(&[(0, 1.0), (1, 1.0)]), &BTreeSet::new());
        assert!(ops.is_empty(), "merge would go below min_shards");
        // At max_shards, a hot shard must not split.
        let spec8 = ShardingSpec::uniform_u64(8);
        let all_hot: Vec<(u64, f64)> = (0..8).map(|s| (s, 500.0)).collect();
        let ops = scaler.evaluate(&spec8, &loads(&all_hot), &BTreeSet::new());
        assert!(ops.is_empty(), "split would go above max_shards");
    }

    #[test]
    fn shards_without_load_reports_are_left_alone() {
        let spec = ShardingSpec::uniform_u64(3);
        let scaler = SplitScaler::new(cfg());
        let ops = scaler.evaluate(&spec, &loads(&[(1, 1.0)]), &BTreeSet::new());
        assert!(ops.is_empty(), "no report, no decision");
    }

    #[test]
    fn unsplittable_sliver_is_skipped() {
        // A one-key-wide range has no interior split point.
        use sm_types::{AppKey, KeyRange};
        let sliver = KeyRange::new(AppKey::new(vec![0x10]), AppKey::new(vec![0x10, 0x00, 0x01]));
        assert!(sliver.midpoint().is_some(), "this one still splits");
        let nosplit = KeyRange::new(AppKey::new(vec![0x10]), AppKey::new(vec![0x10, 0x00]));
        let spec = ShardingSpec::new(vec![
            (
                KeyRange::new(AppKey::min(), AppKey::new(vec![0x10])),
                ShardId(0),
            ),
            (nosplit, ShardId(1)),
            (KeyRange::from(AppKey::new(vec![0x10, 0x00])), ShardId(2)),
        ])
        .unwrap();
        let scaler = SplitScaler::new(cfg());
        let ops = scaler.evaluate(&spec, &loads(&[(1, 500.0)]), &BTreeSet::new());
        assert!(ops.is_empty(), "hot but unsplittable");
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_band_rejected() {
        SplitScalerConfig::new(Metric::Synthetic.id(), 10.0, 20.0, 1, 4);
    }
}
