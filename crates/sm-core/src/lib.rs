#![warn(missing_docs)]
//! Shard Manager's control plane — the paper's primary contribution.
//!
//! - [`api`] — the programming model (Figure 11): the five callbacks an
//!   application server implements (`add_shard`, `drop_shard`,
//!   `change_role`, `prepare_add_shard`, `prepare_drop_shard`) and the
//!   RPC/command vocabulary the orchestrator speaks.
//! - [`orchestrator`] — per-partition shard orchestration: desired
//!   assignment, the five-step graceful primary migration (§4.3),
//!   failure-driven emergency re-placement, load collection, periodic
//!   load balancing, and drain execution.
//! - [`taskcontroller`] — the TaskControl endpoint (§4.1): reviews
//!   pending container operations from *all* regional cluster managers
//!   and approves the maximal subset that keeps every shard within its
//!   availability caps, requesting drains first where policy demands.
//! - [`control_plane`] — the scale-out architecture (Figure 14):
//!   application registry, partitioning, partition registry, mini-SM
//!   bookkeeping, and the read service.
//! - [`ha`] — control-plane fault tolerance (§3.2, §6.2): fenced state
//!   persistence in ZooKeeper znodes, ephemeral-node liveness for
//!   mini-SMs and servers, watch-driven failure detection, and
//!   partition failover with snapshot bootstrap.
//! - [`scaler`] — the shard scaler: per-shard replica-count adjustment
//!   in response to load.
//! - [`splitter`] — the adaptive shard splitter (beyond the paper):
//!   key-range split/merge decisions the orchestrator executes with a
//!   generalized (1→2, 2→1) graceful migration.

pub mod api;
pub mod control_plane;
pub mod ha;
pub mod orchestrator;
pub mod scaler;
pub mod splitter;
pub mod taskcontroller;

pub use api::{OrchCommand, ServerRpc, ShardServer};
pub use control_plane::{
    ApplicationManager, ApplicationRegistry, Frontend, MiniSm, Partition, PartitionRegistry,
    ReadService,
};
pub use ha::{HaControlPlane, HaMiniSm, HaStats, ServerLease, ZkLease};
pub use orchestrator::{Orchestrator, OrchestratorConfig, ServerEntry};
pub use scaler::{ScaleDecision, ShardScaler, ShardScalerConfig};
pub use splitter::{ReshardOp, SplitScaler, SplitScalerConfig};
pub use taskcontroller::{AvailabilityView, TaskController, TcReview};
