//! Control-plane fault tolerance (§3.2, §6.2): the glue between the
//! scale-out control plane and ZooKeeper.
//!
//! Three mechanisms, layered:
//!
//! 1. **Persistence with fencing** — every orchestrator serializes its
//!    durable state ([`crate::Orchestrator::snapshot`]) into a
//!    versioned znode after each reconciliation step. Writes go through
//!    a [`ZkLease`], which issues *conditional* sets: the expected
//!    znode version is the one this lease last wrote (or adopted on
//!    takeover). A stale owner — one whose session expired and whose
//!    partition failed over — gets [`SmError::Unavailable`] (session
//!    gone) or [`SmError::Conflict`] (version advanced by the new
//!    owner) and permanently degrades to read-only. It can never
//!    clobber the new owner's state.
//! 2. **Liveness & failover** — each mini-SM holds an ephemeral znode
//!    under `/sm/minisms`, each application server one under
//!    `/servers`. The [`HaControlPlane`] keeps a child watch on
//!    `/sm/minisms` and an exists watch per server znode; session
//!    expiry deletes the ephemeral, the watch fires, and
//!    [`HaControlPlane::handle_event`] reassigns the dead mini-SM's
//!    partitions to survivors (bootstrapping each new owner from the
//!    persisted znode) or marks the dead server down in its partition's
//!    orchestrator. Server-down detection is therefore watch-driven —
//!    nothing calls `server_down` directly.
//! 3. **Idempotent recovery** — a restored orchestrator re-drives
//!    in-flight work from the durable assignment: replayed acks for
//!    migrations it no longer tracks are ignored, re-sent `add_shard` /
//!    `drop_shard` calls are no-ops at the server. Killing a mini-SM at
//!    any step of the five-step graceful migration and recovering is
//!    exercised in `tests/chaos.rs`.
//!
//! The znode layout and the fencing rule are documented in DESIGN.md
//! ("Control-plane fault tolerance").

use crate::api::{OrchCommand, ServerRpc};
use crate::control_plane::{MiniSm, Partition, PartitionRegistry};
use crate::orchestrator::OrchestratorConfig;
use sm_types::{AppId, AppPolicy, LoadVector, Location, MiniSmId, PartitionId, ServerId, SmError};
use sm_zk::{CreateMode, SessionId, WatchEvent, WatchKind, ZkStore};
use std::collections::{BTreeMap, BTreeSet};

/// Znode layout used by the control plane.
pub mod paths {
    use sm_types::{MiniSmId, PartitionId, ServerId};

    /// Control-plane root.
    pub const SM: &str = "/sm";
    /// Parent of per-partition durable state nodes.
    pub const PARTITIONS: &str = "/sm/partitions";
    /// Parent of per-mini-SM ephemeral liveness nodes.
    pub const MINISMS: &str = "/sm/minisms";
    /// The partition registry's durable state node.
    pub const REGISTRY: &str = "/sm/registry";
    /// Parent of per-server ephemeral liveness nodes.
    pub const SERVERS: &str = "/servers";

    /// Durable state node of one partition's orchestrator.
    pub fn partition_state(partition: PartitionId) -> String {
        format!("{PARTITIONS}/p{}", partition.raw())
    }

    /// Ephemeral liveness node of one mini-SM.
    pub fn minism_node(minism: MiniSmId) -> String {
        format!("{MINISMS}/m{}", minism.raw())
    }

    /// Ephemeral liveness node of one application server.
    pub fn server_node(server: ServerId) -> String {
        format!("{SERVERS}/srv{}", server.raw())
    }

    /// Parses a `/sm/minisms/m<N>` path back to its mini-SM id.
    pub fn parse_minism(path: &str) -> Option<MiniSmId> {
        let rest = path.strip_prefix(MINISMS)?.strip_prefix("/m")?;
        rest.parse().ok().map(MiniSmId)
    }

    /// Parses a `/servers/srv<N>` path back to its server id.
    pub fn parse_server(path: &str) -> Option<ServerId> {
        let rest = path.strip_prefix(SERVERS)?.strip_prefix("/srv")?;
        rest.parse().ok().map(ServerId)
    }
}

/// Creates the persistent base directories if they do not exist yet,
/// returning any watch events the creations fired.
pub fn ensure_base(zk: &mut ZkStore, session: SessionId) -> Result<Vec<WatchEvent>, SmError> {
    let mut events = Vec::new();
    for path in [paths::SM, paths::PARTITIONS, paths::MINISMS, paths::SERVERS] {
        if !zk.exists(path) {
            let (_, ev) = zk.create(session, path, Vec::new(), CreateMode::Persistent)?;
            events.extend(ev);
        }
    }
    Ok(events)
}

/// A fenced writer: one ZK session plus the znode versions it has
/// written, enforcing the paper's stale-leader rule. Every write is a
/// conditional set against the last version this lease observed; the
/// first write to an existing znode *adopts* its current version (the
/// takeover path), after which the previous owner's cached version is
/// stale and its next conditional set fails.
///
/// Any failed write permanently fences the lease — a degraded owner
/// must rebuild through a fresh lease (a new session), never retry
/// blindly.
#[derive(Debug)]
pub struct ZkLease {
    /// The ZK session the lease writes through.
    pub session: SessionId,
    versions: BTreeMap<String, u64>,
    fenced: bool,
}

impl ZkLease {
    /// Opens a fresh lease on a new session.
    pub fn new(zk: &mut ZkStore) -> Self {
        Self {
            session: zk.connect(),
            versions: BTreeMap::new(),
            fenced: false,
        }
    }

    /// True once any write has failed; all further writes are refused.
    pub fn is_fenced(&self) -> bool {
        self.fenced
    }

    /// Writes `data` to `path`, fenced by the znode version. Creates
    /// the node when missing; adopts the current version on the first
    /// write to a node created by a predecessor.
    pub fn write(
        &mut self,
        zk: &mut ZkStore,
        path: &str,
        data: Vec<u8>,
    ) -> Result<Vec<WatchEvent>, SmError> {
        if self.fenced {
            return Err(SmError::Unavailable(format!(
                "lease on session {:?} is fenced",
                self.session
            )));
        }
        if !zk.session_alive(self.session) {
            self.fenced = true;
            return Err(SmError::Unavailable(format!(
                "session {:?} expired; write to {path} refused",
                self.session
            )));
        }
        let expected = match self.versions.get(path) {
            Some(&v) => v,
            None => {
                if !zk.exists(path) {
                    match zk.create(self.session, path, data, CreateMode::Persistent) {
                        Ok((_, events)) => {
                            self.versions.insert(path.to_string(), 0);
                            return Ok(events);
                        }
                        Err(e) => {
                            self.fenced = true;
                            return Err(e);
                        }
                    }
                }
                // Takeover: adopt the version the predecessor left.
                let (_, stat) = zk.get(path)?;
                stat.version
            }
        };
        match zk.set_as(self.session, path, data, Some(expected)) {
            Ok((version, events)) => {
                self.versions.insert(path.to_string(), version);
                Ok(events)
            }
            Err(e) => {
                self.fenced = true;
                Err(e)
            }
        }
    }
}

/// A mini-SM process wired to ZooKeeper: the plain [`MiniSm`]
/// multiplexer plus the lease that fences its state writes and the
/// ephemeral znode that advertises its liveness.
pub struct HaMiniSm {
    /// The orchestrator multiplexer.
    pub sm: MiniSm,
    /// The fenced writer bound to this process's ZK session.
    pub lease: ZkLease,
}

impl HaMiniSm {
    /// Starts a mini-SM process: fresh session, base directories, and
    /// the ephemeral liveness node `/sm/minisms/m<id>`.
    pub fn start(zk: &mut ZkStore, id: MiniSmId) -> Result<(Self, Vec<WatchEvent>), SmError> {
        let lease = ZkLease::new(zk);
        let mut events = ensure_base(zk, lease.session)?;
        let (_, ev) = zk.create(
            lease.session,
            &paths::minism_node(id),
            Vec::new(),
            CreateMode::Ephemeral,
        )?;
        events.extend(ev);
        Ok((
            Self {
                sm: MiniSm::new(id),
                lease,
            },
            events,
        ))
    }

    /// Persists one partition's orchestrator state through the lease.
    pub fn persist(
        &mut self,
        zk: &mut ZkStore,
        partition: PartitionId,
    ) -> Result<Vec<WatchEvent>, SmError> {
        let Some(orch) = self.sm.orchestrator(partition) else {
            return Err(SmError::NotFound(format!(
                "partition {partition:?} not hosted by mini-SM {:?}",
                self.sm.id
            )));
        };
        let snapshot = orch.snapshot();
        self.lease
            .write(zk, &paths::partition_state(partition), snapshot)
    }
}

/// Counters describing the HA layer's activity (tests and figures).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HaStats {
    /// Mini-SM failovers executed.
    pub failovers: u64,
    /// Partitions bootstrapped from a persisted znode snapshot.
    pub snapshot_restores: u64,
    /// Partitions rebuilt from membership (no snapshot found).
    pub rebuilds: u64,
    /// State writes refused because the writer was fenced.
    pub fenced_writes: u64,
    /// Acks dropped because their partition's owner was mid-failover.
    pub dropped_acks: u64,
    /// Recovery steps that hit an unexpected error and degraded.
    pub recovery_errors: u64,
}

/// The HA control plane: partition registry, the mini-SM fleet, and the
/// watch-driven failure handling that ties them to ZooKeeper.
///
/// This is the Figure 14 partition-registry layer made crash-tolerant:
/// partition-to-mini-SM assignment is persisted (fenced) in
/// `/sm/registry`, each partition's orchestrator state in
/// `/sm/partitions/p<id>`, and liveness flows through ephemerals and
/// watches rather than direct calls.
pub struct HaControlPlane {
    config: OrchestratorConfig,
    capacity: LoadVector,
    policies: BTreeMap<AppId, AppPolicy>,
    /// The registry's own session: holds the watches and the registry lease.
    session: SessionId,
    registry_lease: ZkLease,
    /// Partition-to-mini-SM assignment (persisted in [`paths::REGISTRY`]).
    pub registry: PartitionRegistry,
    partitions: BTreeMap<PartitionId, Partition>,
    server_to_partition: BTreeMap<ServerId, PartitionId>,
    minisms: BTreeMap<MiniSmId, HaMiniSm>,
    server_locations: BTreeMap<ServerId, Location>,
    down_servers: BTreeSet<ServerId>,
    stats: HaStats,
}

impl HaControlPlane {
    /// Builds the control plane: connects its session, creates the base
    /// znodes, and arms the child watch on `/sm/minisms`.
    pub fn new(
        zk: &mut ZkStore,
        config: OrchestratorConfig,
        capacity: LoadVector,
        max_servers_per_minism: usize,
    ) -> Result<(Self, Vec<WatchEvent>), SmError> {
        let registry_lease = ZkLease::new(zk);
        let session = registry_lease.session;
        let events = ensure_base(zk, session)?;
        zk.watch_children(session, paths::MINISMS);
        Ok((
            Self {
                config,
                capacity,
                policies: BTreeMap::new(),
                session,
                registry_lease,
                registry: PartitionRegistry::new(max_servers_per_minism),
                partitions: BTreeMap::new(),
                server_to_partition: BTreeMap::new(),
                minisms: BTreeMap::new(),
                server_locations: BTreeMap::new(),
                down_servers: BTreeSet::new(),
                stats: HaStats::default(),
            },
            events,
        ))
    }

    /// Activity counters.
    pub fn stats(&self) -> HaStats {
        self.stats
    }

    /// Registers an application's policy (replication shape).
    pub fn register_app(&mut self, app: AppId, policy: AppPolicy) {
        self.policies.insert(app, policy);
    }

    /// Records a server's location and arms the exists watch on its
    /// liveness node — the watch-driven replacement for calling
    /// `server_down` directly.
    pub fn register_server(&mut self, zk: &mut ZkStore, server: ServerId, location: Location) {
        self.server_locations.insert(server, location);
        zk.watch_exists(self.session, &paths::server_node(server));
    }

    /// Deploys a partition: assigns it to a mini-SM (starting one if
    /// needed), builds its orchestrator, runs the initial placement,
    /// and persists both the partition state and the registry.
    pub fn deploy_partition(
        &mut self,
        zk: &mut ZkStore,
        partition: &Partition,
    ) -> Result<Vec<WatchEvent>, SmError> {
        let policy = self
            .policies
            .get(&partition.app)
            .cloned()
            .ok_or_else(|| SmError::NotFound(format!("no policy for {:?}", partition.app)))?;
        let replica_count =
            partition.shards.len() * policy.replication.replicas_per_shard() as usize;
        let owner = self.registry.assign(partition, replica_count);
        self.partitions.insert(partition.id, partition.clone());
        for &server in &partition.servers {
            self.server_to_partition.insert(server, partition.id);
        }
        let mut events = self.ensure_minism(zk, owner)?;
        let locations = self.server_locations.clone();
        let capacity = self.capacity;
        let config = self.config.clone();
        if let Some(host) = self.minisms.get_mut(&owner) {
            let orch = host.sm.adopt_partition(
                partition,
                policy,
                config,
                |s| locate(&locations, s),
                capacity,
            );
            orch.run_emergency();
        }
        events.extend(self.persist_partition(zk, partition.id));
        events.extend(self.persist_registry(zk));
        Ok(events)
    }

    /// Drains every hosted orchestrator's command outbox, tagged by
    /// partition.
    pub fn take_commands(&mut self) -> Vec<(PartitionId, OrchCommand)> {
        let mut out = Vec::new();
        for host in self.minisms.values_mut() {
            let pids: Vec<PartitionId> = host.sm.partitions().copied().collect();
            for pid in pids {
                if let Some(orch) = host.sm.orchestrator(pid) {
                    for cmd in orch.take_commands() {
                        out.push((pid, cmd));
                    }
                }
            }
        }
        out
    }

    /// Routes a server's RPC ack to the orchestrator owning its
    /// partition and persists the resulting state. Acks for partitions
    /// whose owner is mid-failover are dropped (counted) — the restored
    /// orchestrator re-drives the migration from the durable state, so
    /// a replayed or lost ack is harmless.
    pub fn rpc_acked(
        &mut self,
        zk: &mut ZkStore,
        server: ServerId,
        rpc: ServerRpc,
    ) -> Vec<WatchEvent> {
        self.route_ack(zk, server, rpc, true)
    }

    /// Routes a server's RPC failure like [`Self::rpc_acked`].
    pub fn rpc_failed(
        &mut self,
        zk: &mut ZkStore,
        server: ServerId,
        rpc: ServerRpc,
    ) -> Vec<WatchEvent> {
        self.route_ack(zk, server, rpc, false)
    }

    fn route_ack(
        &mut self,
        zk: &mut ZkStore,
        server: ServerId,
        rpc: ServerRpc,
        ok: bool,
    ) -> Vec<WatchEvent> {
        let owner = self
            .server_to_partition
            .get(&server)
            .copied()
            .and_then(|pid| self.registry.minism_of(pid).map(|m| (pid, m)));
        let Some((pid, minism)) = owner else {
            self.stats.dropped_acks += 1;
            return Vec::new();
        };
        let Some(host) = self.minisms.get_mut(&minism) else {
            self.stats.dropped_acks += 1;
            return Vec::new();
        };
        let Some(orch) = host.sm.orchestrator(pid) else {
            self.stats.dropped_acks += 1;
            return Vec::new();
        };
        if ok {
            orch.rpc_acked(server, rpc);
        } else {
            orch.rpc_failed(server, rpc);
        }
        self.persist_partition(zk, pid)
    }

    /// Runs the periodic load-balancing pass on every orchestrator and
    /// persists each partition that changed.
    pub fn run_periodic(&mut self, zk: &mut ZkStore) -> Vec<WatchEvent> {
        let mut events = Vec::new();
        let pids: Vec<PartitionId> = self.partitions.keys().copied().collect();
        for pid in pids {
            let Some(minism) = self.registry.minism_of(pid) else {
                continue;
            };
            let moved = self
                .minisms
                .get_mut(&minism)
                .and_then(|h| h.sm.orchestrator(pid))
                .map(|orch| orch.run_periodic());
            if moved.unwrap_or(0) > 0 {
                events.extend(self.persist_partition(zk, pid));
            }
        }
        events
    }

    /// Reacts to a watch event addressed to the control plane's
    /// session: mini-SM expiry triggers failover, server znode deletion
    /// marks the server down, recreation reconciles it back. Watches
    /// are one-shot, so each handled event re-arms its watch. Events
    /// addressed to other sessions are ignored (not this watcher's).
    pub fn handle_event(&mut self, zk: &mut ZkStore, event: &WatchEvent) -> Vec<WatchEvent> {
        if event.watcher != self.session {
            return Vec::new();
        }
        if event.path == paths::MINISMS {
            zk.watch_children(self.session, paths::MINISMS);
            if event.kind != WatchKind::ChildrenChanged {
                return Vec::new();
            }
            let live: BTreeSet<MiniSmId> = zk
                .children(paths::MINISMS)
                .unwrap_or_default()
                .iter()
                .filter_map(|p| paths::parse_minism(p))
                .collect();
            let registered: Vec<MiniSmId> = self.registry.mini_sms().map(|(id, _)| *id).collect();
            let mut events = Vec::new();
            for id in registered {
                if !live.contains(&id) {
                    events.extend(self.fail_over(zk, id));
                }
            }
            return events;
        }
        if let Some(server) = paths::parse_server(&event.path) {
            zk.watch_exists(self.session, &event.path);
            // Under a simulated (or real) network, notifications can be
            // delayed past further state changes: a `Deleted` event may
            // arrive after the server already re-registered. The event
            // is only a *hint* that the node changed — the current
            // `exists()` state is authoritative, so re-check it rather
            // than trusting `event.kind`.
            return if zk.exists(&event.path) {
                self.server_up(zk, server)
            } else {
                self.server_down(zk, server)
            };
        }
        Vec::new()
    }

    /// Fails over every partition of a dead mini-SM to survivors (or
    /// freshly started mini-SMs), bootstrapping each new owner from the
    /// persisted znode state. The new owner's first fenced write adopts
    /// the znode version, which permanently fences the dead owner.
    fn fail_over(&mut self, zk: &mut ZkStore, dead: MiniSmId) -> Vec<WatchEvent> {
        // Drop the process object if it is still around (zombie path).
        self.minisms.remove(&dead);
        let orphans = self.registry.remove_minism(dead);
        if orphans.is_empty() {
            return Vec::new();
        }
        self.stats.failovers += 1;
        let mut events = Vec::new();
        for pid in orphans {
            let Some(partition) = self.partitions.get(&pid).cloned() else {
                self.stats.recovery_errors += 1;
                continue;
            };
            let Some(policy) = self.policies.get(&partition.app).cloned() else {
                self.stats.recovery_errors += 1;
                continue;
            };
            let replica_count =
                partition.shards.len() * policy.replication.replicas_per_shard() as usize;
            let new_owner = self.registry.assign(&partition, replica_count);
            match self.ensure_minism(zk, new_owner) {
                Ok(ev) => events.extend(ev),
                Err(_) => {
                    self.stats.recovery_errors += 1;
                    continue;
                }
            }
            let snapshot = zk.get(&paths::partition_state(pid)).ok().map(|(d, _)| d);
            let down: Vec<ServerId> = partition
                .servers
                .iter()
                .copied()
                .filter(|s| self.down_servers.contains(s))
                .collect();
            let locations = self.server_locations.clone();
            let capacity = self.capacity;
            let config = self.config.clone();
            let Some(host) = self.minisms.get_mut(&new_owner) else {
                self.stats.recovery_errors += 1;
                continue;
            };
            let orch = host.sm.adopt_partition(
                &partition,
                policy,
                config,
                |s| locate(&locations, s),
                capacity,
            );
            match snapshot {
                Some(bytes) => match orch.restore(&bytes) {
                    Ok(()) => self.stats.snapshot_restores += 1,
                    Err(_) => {
                        // Corrupt snapshot: degrade to a rebuild from
                        // membership rather than refusing to recover.
                        self.stats.recovery_errors += 1;
                        self.stats.rebuilds += 1;
                    }
                },
                None => self.stats.rebuilds += 1,
            }
            for server in down {
                orch.server_down(server);
            }
            orch.run_emergency();
            events.extend(self.persist_partition(zk, pid));
        }
        events.extend(self.persist_registry(zk));
        events
    }

    fn server_down(&mut self, zk: &mut ZkStore, server: ServerId) -> Vec<WatchEvent> {
        if !self.down_servers.insert(server) {
            return Vec::new(); // duplicate notification
        }
        let Some(&pid) = self.server_to_partition.get(&server) else {
            return Vec::new();
        };
        let changed = self
            .registry
            .minism_of(pid)
            .and_then(|m| self.minisms.get_mut(&m))
            .and_then(|h| h.sm.orchestrator(pid))
            .map(|orch| {
                orch.server_down(server);
            })
            .is_some();
        if changed {
            self.persist_partition(zk, pid)
        } else {
            Vec::new()
        }
    }

    fn server_up(&mut self, zk: &mut ZkStore, server: ServerId) -> Vec<WatchEvent> {
        self.down_servers.remove(&server);
        let Some(&pid) = self.server_to_partition.get(&server) else {
            return Vec::new();
        };
        let changed = self
            .registry
            .minism_of(pid)
            .and_then(|m| self.minisms.get_mut(&m))
            .and_then(|h| h.sm.orchestrator(pid))
            .map(|orch| {
                // The server may have restarted empty: mark it alive,
                // re-send its assignment, and re-place what emergency
                // placement moved away in the meantime.
                orch.server_up(server);
                orch.reconcile_server(server);
                orch.run_emergency();
            })
            .is_some();
        if changed {
            self.persist_partition(zk, pid)
        } else {
            Vec::new()
        }
    }

    /// Crashes a mini-SM process: the object is dropped and its session
    /// expired, deleting the ephemeral and firing the registry's child
    /// watch. Failover happens when that event is delivered to
    /// [`Self::handle_event`], not here — mirroring the real system's
    /// detection delay.
    pub fn crash_minism(&mut self, zk: &mut ZkStore, id: MiniSmId) -> Vec<WatchEvent> {
        match self.minisms.remove(&id) {
            Some(host) => zk.expire_session(host.lease.session),
            None => Vec::new(),
        }
    }

    /// Expires a mini-SM's session but keeps the process object alive
    /// and returns it: a zombie. Its lease fences on the next write;
    /// the direct fencing test drives exactly that.
    pub fn zombie_minism(
        &mut self,
        zk: &mut ZkStore,
        id: MiniSmId,
    ) -> (Option<HaMiniSm>, Vec<WatchEvent>) {
        match self.minisms.remove(&id) {
            Some(host) => {
                let events = zk.expire_session(host.lease.session);
                (Some(host), events)
            }
            None => (None, Vec::new()),
        }
    }

    /// Restarts a crashed mini-SM: it rejoins empty under a fresh
    /// session and becomes eligible for future partition assignments.
    /// Fails with [`SmError::Conflict`] while the old incarnation is
    /// still registered (its expiry has not been observed yet).
    pub fn restart_minism(
        &mut self,
        zk: &mut ZkStore,
        id: MiniSmId,
    ) -> Result<Vec<WatchEvent>, SmError> {
        if self.minisms.contains_key(&id) {
            return Err(SmError::Conflict(format!(
                "mini-SM {id:?} is still running"
            )));
        }
        self.registry.restore_minism(id)?;
        let (host, mut events) = HaMiniSm::start(zk, id)?;
        self.minisms.insert(id, host);
        // The restore changed registry membership in memory; persist it
        // so a control-plane crash right after this restart recovers a
        // registry that knows about the rejoined mini-SM.
        events.extend(self.persist_registry(zk));
        Ok(events)
    }

    /// The orchestrator currently owning `partition`, if any.
    pub fn orchestrator(&mut self, partition: PartitionId) -> Option<&mut crate::Orchestrator> {
        let minism = self.registry.minism_of(partition)?;
        self.minisms.get_mut(&minism)?.sm.orchestrator(partition)
    }

    /// Partitions deployed through this control plane.
    pub fn partition_ids(&self) -> Vec<PartitionId> {
        self.partitions.keys().copied().collect()
    }

    /// Mini-SM processes currently running.
    pub fn running_minisms(&self) -> Vec<MiniSmId> {
        self.minisms.keys().copied().collect()
    }

    /// Shards that currently lack a full placement: no replica at all,
    /// or no primary where the policy requires one.
    pub fn unplaced(&mut self) -> Vec<(PartitionId, sm_types::ShardId)> {
        let mut missing = Vec::new();
        let pids: Vec<PartitionId> = self.partitions.keys().copied().collect();
        for pid in pids {
            let Some(partition) = self.partitions.get(&pid).cloned() else {
                continue;
            };
            let needs_primary = self
                .policies
                .get(&partition.app)
                .map(|p| p.replication.has_primary())
                .unwrap_or(false);
            match self.orchestrator(pid) {
                Some(orch) => {
                    for &shard in &partition.shards {
                        let replicas = orch.assignment().replicas(shard);
                        let has_primary = orch.assignment().primary_of(shard).is_some();
                        if replicas.is_empty() || (needs_primary && !has_primary) {
                            missing.push((pid, shard));
                        }
                    }
                }
                None => missing.extend(partition.shards.iter().map(|&s| (pid, s))),
            }
        }
        missing
    }

    /// True when every shard of every partition is placed.
    pub fn fully_placed(&mut self) -> bool {
        self.unplaced().is_empty()
    }

    /// Total in-flight graceful migrations across all orchestrators.
    pub fn in_flight_total(&mut self) -> usize {
        let pids: Vec<PartitionId> = self.partitions.keys().copied().collect();
        pids.iter()
            .filter_map(|&pid| self.orchestrator(pid).map(|o| o.in_flight_migrations()))
            .sum()
    }

    fn ensure_minism(
        &mut self,
        zk: &mut ZkStore,
        id: MiniSmId,
    ) -> Result<Vec<WatchEvent>, SmError> {
        if self.minisms.contains_key(&id) {
            return Ok(Vec::new());
        }
        let (host, events) = HaMiniSm::start(zk, id)?;
        self.minisms.insert(id, host);
        Ok(events)
    }

    fn persist_partition(&mut self, zk: &mut ZkStore, pid: PartitionId) -> Vec<WatchEvent> {
        let Some(minism) = self.registry.minism_of(pid) else {
            return Vec::new();
        };
        let Some(host) = self.minisms.get_mut(&minism) else {
            return Vec::new();
        };
        match host.persist(zk, pid) {
            Ok(events) => events,
            Err(_) => {
                self.stats.fenced_writes += 1;
                Vec::new()
            }
        }
    }

    fn persist_registry(&mut self, zk: &mut ZkStore) -> Vec<WatchEvent> {
        let snapshot = self.registry.snapshot();
        match self.registry_lease.write(zk, paths::REGISTRY, snapshot) {
            Ok(events) => events,
            Err(_) => {
                self.stats.fenced_writes += 1;
                Vec::new()
            }
        }
    }
}

/// A running application server's liveness registration: an ephemeral
/// znode on its own session. Dropping the session (crash, partition)
/// deletes the node and notifies the control plane's exists watch.
pub struct ServerLease {
    /// The registered server.
    pub server: ServerId,
    /// The session holding the ephemeral.
    pub session: SessionId,
}

impl ServerLease {
    /// Registers a server: fresh session plus `/servers/srv<id>`.
    pub fn register(
        zk: &mut ZkStore,
        server: ServerId,
    ) -> Result<(Self, Vec<WatchEvent>), SmError> {
        let session = zk.connect();
        let mut events = ensure_base(zk, session)?;
        let (_, ev) = zk.create(
            session,
            &paths::server_node(server),
            Vec::new(),
            CreateMode::Ephemeral,
        )?;
        events.extend(ev);
        Ok((Self { server, session }, events))
    }

    /// Expires the server's session, deleting its liveness node.
    pub fn expire(self, zk: &mut ZkStore) -> Vec<WatchEvent> {
        zk.expire_session(self.session)
    }
}

/// Client-side half of the §3.2 fencing contract: a server tracks the
/// last time the control plane acknowledged its heartbeat and stops
/// serving on its own once that silence exceeds `timeout`.
///
/// The safety rule is `timeout` strictly **less** than the ZK session
/// timeout (with margin for one heartbeat interval plus network skew):
/// a partitioned server must have wiped itself *before* the control
/// plane can see its ephemeral vanish and promote a replacement —
/// otherwise a stale-lease window opens where two unfenced primaries
/// overlap. The DST oracle's `dual_primary` invariant exists to catch
/// exactly the runs where a world gets this ordering wrong.
#[derive(Clone, Copy, Debug)]
pub struct SelfFenceTimer {
    last_ack: sm_sim::SimTime,
    timeout: sm_sim::SimDuration,
}

impl SelfFenceTimer {
    /// A timer that considers itself acked at `now`.
    pub fn new(now: sm_sim::SimTime, timeout: sm_sim::SimDuration) -> Self {
        Self {
            last_ack: now,
            timeout,
        }
    }

    /// Records a heartbeat acknowledgement arriving at `now`. Stale
    /// acks (older than the last recorded one — the net can reorder)
    /// are ignored so they cannot push the fence deadline backwards.
    pub fn ack(&mut self, now: sm_sim::SimTime) {
        if now >= self.last_ack {
            self.last_ack = now;
        }
    }

    /// True once the server has gone unacknowledged long enough that
    /// it must stop serving: `now - last_ack > timeout`. The bound is
    /// strict so a timer checked exactly at the deadline still holds.
    pub fn must_fence(&self, now: sm_sim::SimTime) -> bool {
        now.since(self.last_ack) > self.timeout
    }

    /// The moment of the last acknowledgement.
    pub fn last_ack(&self) -> sm_sim::SimTime {
        self.last_ack
    }
}

fn locate(locations: &BTreeMap<ServerId, Location>, server: ServerId) -> Location {
    locations.get(&server).copied().unwrap_or(Location {
        region: sm_types::RegionId(0),
        datacenter: 0,
        rack: server.raw(),
        machine: sm_types::MachineId(server.raw()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control_plane::ApplicationManager;
    use sm_allocator::{AllocConfig, MoveCaps};
    use sm_sim::{SimDuration, SimTime};
    use sm_types::{MachineId, Metric, RegionId, ShardId};

    fn config() -> OrchestratorConfig {
        OrchestratorConfig {
            graceful_migration: true,
            move_caps: MoveCaps::default(),
            alloc: AllocConfig::new(vec![Metric::ShardCount.id()]),
            skip_cutover_ack: false,
        }
    }

    fn loc(s: u32) -> Location {
        Location {
            region: RegionId(0),
            datacenter: 0,
            rack: s,
            machine: MachineId(s),
        }
    }

    struct Rig {
        zk: ZkStore,
        cp: HaControlPlane,
        servers: BTreeMap<ServerId, ServerLease>,
        partitions: Vec<Partition>,
    }

    /// Builds a world: `n_servers` registered servers split into
    /// partitions of at most 4 servers, all deployed and settled.
    fn rig(n_servers: u32, n_shards: u64) -> Rig {
        let mut zk = ZkStore::new();
        let (mut cp, _events) = HaControlPlane::new(
            &mut zk,
            config(),
            LoadVector::single(Metric::ShardCount.id(), 1000.0),
            4,
        )
        .expect("control plane");
        let app = AppId(0);
        cp.register_app(app, AppPolicy::primary_only());
        let mut r = Rig {
            zk,
            cp,
            servers: BTreeMap::new(),
            partitions: Vec::new(),
        };
        let server_ids: Vec<ServerId> = (0..n_servers).map(ServerId).collect();
        for &s in &server_ids {
            r.cp.register_server(&mut r.zk, s, loc(s.raw()));
            let (lease, events) = ServerLease::register(&mut r.zk, s).expect("server lease");
            r.servers.insert(s, lease);
            // Deliver the Created events so one-shot watches re-arm —
            // exactly what the embedding world does.
            deliver(&mut r, events);
        }
        let shard_ids: Vec<ShardId> = (0..n_shards).map(ShardId).collect();
        let mut mgr = ApplicationManager::new(4);
        let partitions = mgr.partition_app(app, &server_ids, &shard_ids);
        for p in &partitions {
            let events = r.cp.deploy_partition(&mut r.zk, p).expect("deploy");
            deliver(&mut r, events);
        }
        r.partitions = partitions;
        settle(&mut r);
        r
    }

    /// Acks every outstanding RPC until the command stream drains.
    fn settle(r: &mut Rig) {
        for _round in 0..200 {
            let cmds = r.cp.take_commands();
            if cmds.is_empty() {
                return;
            }
            for (_pid, cmd) in cmds {
                if let OrchCommand::Rpc { server, rpc } = cmd {
                    // Dead servers never ack.
                    if r.servers.contains_key(&server) {
                        r.cp.rpc_acked(&mut r.zk, server, rpc);
                    }
                }
            }
        }
    }

    /// Delivers every pending watch event (and those it generates).
    fn deliver(r: &mut Rig, mut events: Vec<WatchEvent>) {
        let mut guard = 0;
        while let Some(e) = events.pop() {
            guard += 1;
            assert!(guard < 10_000, "watch event storm");
            let more = r.cp.handle_event(&mut r.zk, &e);
            events.extend(more);
        }
    }

    #[test]
    fn deploy_persists_fenced_state() {
        let mut r = rig(8, 32);
        assert!(r.cp.fully_placed(), "unplaced: {:?}", r.cp.unplaced());
        for p in &r.partitions {
            let (data, stat) =
                r.zk.get(&paths::partition_state(p.id))
                    .expect("state znode exists");
            assert!(data.starts_with(b"smorch v1"));
            assert!(stat.version > 0, "state was persisted more than once");
        }
        let (reg, _) = r.zk.get(paths::REGISTRY).expect("registry znode");
        assert!(reg.starts_with(b"smreg v1"));
        assert_eq!(r.cp.stats().fenced_writes, 0);
    }

    #[test]
    fn minism_crash_fails_over_from_snapshot() {
        let mut r = rig(8, 32);
        let dead = *r.cp.running_minisms().first().expect("a mini-SM");
        let events = r.cp.crash_minism(&mut r.zk, dead);
        assert!(
            events
                .iter()
                .any(|e| e.path == paths::MINISMS && e.kind == WatchKind::ChildrenChanged),
            "expiry must fire the registry's child watch: {events:?}"
        );
        deliver(&mut r, events);
        settle(&mut r);
        assert!(!r.cp.running_minisms().contains(&dead));
        assert!(r.cp.fully_placed(), "unplaced: {:?}", r.cp.unplaced());
        let s = r.cp.stats();
        assert_eq!(s.failovers, 1);
        assert!(s.snapshot_restores > 0, "{s:?}");
        for p in &r.partitions {
            assert_ne!(r.cp.registry.minism_of(p.id), Some(dead));
        }
    }

    #[test]
    fn zombie_minism_write_is_fenced_and_absent() {
        let mut r = rig(8, 32);
        let target = *r.cp.running_minisms().first().expect("a mini-SM");
        let (zombie, events) = r.cp.zombie_minism(&mut r.zk, target);
        let mut zombie = zombie.expect("zombie handle");
        let pid = *zombie.sm.partitions().next().expect("hosts a partition");
        let before = r.zk.get(&paths::partition_state(pid)).expect("state");
        // Failover re-owns the partition...
        deliver(&mut r, events);
        settle(&mut r);
        // ...then the zombie tries to write its stale state.
        let err = zombie.persist(&mut r.zk, pid);
        assert!(matches!(err, Err(SmError::Unavailable(_))));
        assert!(zombie.lease.is_fenced());
        // The zombie's write is provably absent: the znode holds what
        // the new owner wrote, which restores to a valid orchestrator.
        let after = r.zk.get(&paths::partition_state(pid)).expect("state");
        assert!(after.1.version >= before.1.version);
        assert!(after.0.starts_with(b"smorch v1"));
        // And a second attempt stays fenced without touching ZK.
        let again = zombie.persist(&mut r.zk, pid);
        assert!(matches!(again, Err(SmError::Unavailable(_))));
    }

    #[test]
    fn stale_version_fences_even_with_live_session() {
        // Two leases racing on one znode: the one that lost its cached
        // version gets Conflict and fences, even though its session is
        // still alive.
        let mut zk = ZkStore::new();
        let mut a = ZkLease::new(&mut zk);
        let mut b = ZkLease::new(&mut zk);
        a.write(&mut zk, "/sm", vec![]).expect("mkdir");
        a.write(&mut zk, "/sm/x", b"a1".to_vec()).expect("create");
        b.write(&mut zk, "/sm/x", b"b1".to_vec()).expect("adopt");
        let err = a.write(&mut zk, "/sm/x", b"a2".to_vec());
        assert!(matches!(err, Err(SmError::Conflict(_))));
        assert!(a.is_fenced());
        assert_eq!(zk.get("/sm/x").expect("node").0, b"b1");
    }

    #[test]
    fn server_expiry_is_watch_driven() {
        let mut r = rig(8, 32);
        let victim = ServerId(3);
        let lease = r.servers.remove(&victim).expect("registered");
        let events = lease.expire(&mut r.zk);
        assert!(
            events
                .iter()
                .any(|e| e.kind == WatchKind::Deleted && e.path == paths::server_node(victim)),
            "{events:?}"
        );
        deliver(&mut r, events);
        settle(&mut r);
        assert!(r.cp.fully_placed(), "unplaced: {:?}", r.cp.unplaced());
        let pid = *r
            .cp
            .partitions
            .iter()
            .find(|(_, p)| p.servers.contains(&victim))
            .map(|(pid, _)| pid)
            .expect("victim's partition");
        let orch = r.cp.orchestrator(pid).expect("owner");
        assert!(orch.shards_on(victim).is_empty(), "victim still assigned");
        // The server comes back: new lease, Created event, reconcile.
        let (lease, events) = ServerLease::register(&mut r.zk, victim).expect("re-register");
        r.servers.insert(victim, lease);
        deliver(&mut r, events);
        settle(&mut r);
        assert!(r.cp.fully_placed());
    }

    #[test]
    fn restart_rejoins_after_failover_only() {
        let mut r = rig(8, 32);
        let dead = *r.cp.running_minisms().first().expect("a mini-SM");
        let events = r.cp.crash_minism(&mut r.zk, dead);
        // Before the expiry is observed, the registry still lists the
        // old incarnation: restart must refuse.
        let early = r.cp.restart_minism(&mut r.zk, dead);
        assert!(early.is_err());
        deliver(&mut r, events);
        settle(&mut r);
        let events = r.cp.restart_minism(&mut r.zk, dead).expect("rejoin");
        deliver(&mut r, events);
        assert!(r.cp.running_minisms().contains(&dead));
    }

    #[test]
    fn stale_deleted_notification_defers_to_current_state() {
        // A partition can delay a `Deleted` watch event past the
        // server's re-registration. handle_event must trust the
        // *current* exists() state, not the stale event kind, or it
        // would mark a healthy, re-registered server down.
        let mut r = rig(8, 32);
        let victim = ServerId(3);
        let lease = r.servers.remove(&victim).expect("registered");
        let events = lease.expire(&mut r.zk);
        let stale: Vec<WatchEvent> = events
            .iter()
            .filter(|e| e.kind == WatchKind::Deleted && e.path == paths::server_node(victim))
            .cloned()
            .collect();
        assert!(!stale.is_empty());
        // The node is already back before the Deleted event is seen.
        let (lease, reg_events) = ServerLease::register(&mut r.zk, victim).expect("re-register");
        r.servers.insert(victim, lease);
        for e in stale {
            r.cp.handle_event(&mut r.zk, &e);
        }
        deliver(&mut r, reg_events);
        settle(&mut r);
        assert!(
            !r.cp.down_servers.contains(&victim),
            "stale Deleted must not mark a live server down"
        );
        assert!(r.cp.fully_placed(), "unplaced: {:?}", r.cp.unplaced());
    }

    #[test]
    fn stale_created_notification_defers_to_current_state() {
        // The converse reordering: a delayed `Created` event arrives
        // after the node is already gone. Trusting the event kind would
        // resurrect a dead server; the exists() re-check marks it down.
        let mut r = rig(8, 32);
        let victim = ServerId(3);
        let lease = r.servers.remove(&victim).expect("registered");
        let expiry_events = lease.expire(&mut r.zk);
        let stale_created = WatchEvent {
            watcher: r.cp.session,
            path: paths::server_node(victim),
            kind: WatchKind::Created,
        };
        let more = r.cp.handle_event(&mut r.zk, &stale_created);
        deliver(&mut r, more);
        assert!(
            r.cp.down_servers.contains(&victim),
            "stale Created must not resurrect a deleted server"
        );
        // The real Deleted events are then harmless duplicates.
        deliver(&mut r, expiry_events);
        settle(&mut r);
        assert!(r.cp.down_servers.contains(&victim));
        assert!(r.cp.fully_placed(), "unplaced: {:?}", r.cp.unplaced());
    }

    #[test]
    fn self_fence_timer_fences_strictly_after_timeout() {
        let timeout = SimDuration::from_secs(5);
        let mut t = SelfFenceTimer::new(SimTime::ZERO, timeout);
        assert!(!t.must_fence(SimTime::from_secs(5)), "bound is strict");
        assert!(t.must_fence(SimTime::from_secs(5) + SimDuration::from_micros(1)));
        t.ack(SimTime::from_secs(4));
        assert!(!t.must_fence(SimTime::from_secs(9)));
        assert!(t.must_fence(SimTime::from_secs(10)));
    }

    #[test]
    fn self_fence_timer_ignores_reordered_stale_acks() {
        let mut t = SelfFenceTimer::new(SimTime::from_secs(10), SimDuration::from_secs(5));
        // A delayed ack from t=2 arrives after the t=10 one: the net
        // reordered. It must not move the deadline backwards.
        t.ack(SimTime::from_secs(2));
        assert_eq!(t.last_ack(), SimTime::from_secs(10));
        assert!(!t.must_fence(SimTime::from_secs(15)));
        assert!(t.must_fence(SimTime::from_secs(16)));
    }
}
