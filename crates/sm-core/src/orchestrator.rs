//! The per-partition orchestrator.
//!
//! One orchestrator manages one application partition (§6.1): it owns
//! the desired shard-to-server assignment, reacts to server failures
//! with emergency re-placement and primary promotion, collects load,
//! runs the allocator periodically, executes allocation plans under the
//! system-stability move caps, drains servers ahead of planned events,
//! and drives the five-step graceful primary migration of §4.3:
//!
//! 1. `prepare_add_shard` → new primary (accept only forwarded writes);
//! 2. `prepare_drop_shard` → old primary (start forwarding);
//! 3. `add_shard` → new primary (officially owns the role);
//! 4. publish the new shard map through service discovery;
//! 5. `drop_shard` → old primary (drain residual forwarded traffic).
//!
//! The orchestrator is a synchronous state machine: methods mutate state
//! and append [`OrchCommand`]s to an outbox the embedding world drains,
//! delivering RPCs to application servers and feeding acks back in.

use crate::api::{OrchCommand, ServerRpc};
use crate::splitter::{ReshardOp, SplitScaler};
use sm_allocator::{
    AllocConfig, AllocInput, Allocator, MoveCaps, MoveScheduler, ReplicaMove, ServerInfo,
    ShardPlacement,
};
use sm_types::{
    AppId, AppKey, AppPolicy, Assignment, LoadVector, Location, ReplicaRole, ServerId, ShardId,
    ShardMap, ShardingSpec, SmError,
};
use std::collections::{BTreeMap, BTreeSet};

/// Orchestrator tuning and ablation switches.
#[derive(Clone, Debug)]
pub struct OrchestratorConfig {
    /// Use the §4.3 graceful protocol for primary moves; when false,
    /// primaries move abruptly (drop-then-add) — the middle curve of
    /// Figure 17.
    pub graceful_migration: bool,
    /// System-stability caps on concurrent moves (§5.1 hard
    /// constraint 1).
    pub move_caps: MoveCaps,
    /// Allocator configuration.
    pub alloc: AllocConfig,
    /// Fault-injection ablation for the resharding protocol: commit a
    /// split/merge as soon as the cutover `add_shard`s are *sent*
    /// instead of waiting for their acks. A child that dies before
    /// applying then owns a range nobody serves — the skew-storm world's
    /// oracle catches this as a lost request. Never enable outside DST.
    pub skip_cutover_ack: bool,
}

impl OrchestratorConfig {
    /// Runs the allocator's solver with `threads` deterministic
    /// parallel workers (1 = plain single-threaded search). Plans stay
    /// a pure function of `(problem, specs, seed, threads)`.
    pub fn with_solver_threads(mut self, threads: usize) -> Self {
        self.alloc.search.threads = threads;
        self
    }
}

/// A server known to the orchestrator.
#[derive(Clone, Copy, Debug)]
pub struct ServerEntry {
    /// Fault-domain coordinates.
    pub location: Location,
    /// Capacity per metric.
    pub capacity: LoadVector,
    /// False once the server is detected down.
    pub alive: bool,
    /// True while the server is being evacuated.
    pub draining: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MigrationKind {
    /// §4.3 five-step protocol (primary with a live source).
    GracefulPrimary,
    /// Add-then-drop (secondaries; safe to double-host briefly).
    SecondaryMove,
    /// Drop-then-add (ablation mode for primaries).
    AbruptMove,
    /// Fresh placement (no source).
    FreshAdd,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    PrepareAdd,
    PrepareDrop,
    Add,
    Drop,
}

#[derive(Clone, Copy, Debug)]
struct Migration {
    shard: ShardId,
    from: Option<ServerId>,
    to: ServerId,
    role: ReplicaRole,
    kind: MigrationKind,
    phase: Phase,
    mv: ReplicaMove,
}

/// Phases of the generalized (1→2 / 2→1) graceful resharding protocol.
/// `Prepare` and `Cutover` each await acks from the shards entering the
/// spec; `Forward` awaits acks from the shards leaving it. Commit — the
/// point of no return, where the spec and assignment swap atomically —
/// is not a phase: it happens inside the final cutover ack, so an op
/// observed in any phase can still abort cleanly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ScalePhase {
    Prepare,
    Forward,
    Cutover,
}

/// An in-flight split: `parent`'s range divides at `at` into
/// `left` = [start, at) on `left_to` and `right` = [at, end) on
/// `right_to`. The children are *not* in `shards`, the spec, or any
/// published map until commit, so clients cannot reach them and an
/// abort only has to reclaim unpublished state.
#[derive(Clone, Debug)]
struct SplitOp {
    parent: ShardId,
    parent_primary: ServerId,
    at: AppKey,
    left: ShardId,
    left_to: ServerId,
    right: ShardId,
    right_to: ServerId,
    phase: ScalePhase,
    // Per-phase ack flags for the two-sided phases (Prepare/Cutover
    // await both children; reset on every phase transition).
    left_ready: bool,
    right_ready: bool,
}

/// An in-flight merge: the inverse shape — two sources forward into one
/// prepared `target` on `target_to`.
#[derive(Clone, Debug)]
struct MergeOp {
    left: ShardId,
    left_primary: ServerId,
    right: ShardId,
    right_primary: ServerId,
    target: ShardId,
    target_to: ServerId,
    phase: ScalePhase,
    left_ready: bool,
    right_ready: bool,
}

#[derive(Clone, Debug)]
enum ScaleOpState {
    Split(SplitOp),
    Merge(MergeOp),
}

impl ScaleOpState {
    fn involves_server(&self, server: ServerId) -> bool {
        match self {
            ScaleOpState::Split(op) => {
                server == op.parent_primary || server == op.left_to || server == op.right_to
            }
            ScaleOpState::Merge(op) => {
                server == op.left_primary || server == op.right_primary || server == op.target_to
            }
        }
    }

    fn involves_shard(&self, shard: ShardId) -> bool {
        match self {
            ScaleOpState::Split(op) => shard == op.parent || shard == op.left || shard == op.right,
            ScaleOpState::Merge(op) => shard == op.left || shard == op.right || shard == op.target,
        }
    }

    /// Every shard the op touches, for the busy set.
    fn shards(&self) -> [ShardId; 3] {
        match self {
            ScaleOpState::Split(op) => [op.parent, op.left, op.right],
            ScaleOpState::Merge(op) => [op.left, op.right, op.target],
        }
    }
}

/// Counters exposed for tests and experiment reporting.
#[derive(Clone, Copy, Debug, Default)]
pub struct OrchStats {
    /// Completed replica moves/placements.
    pub completed_moves: u64,
    /// Migrations aborted by failures.
    pub aborted_moves: u64,
    /// Primary promotions performed after failures.
    pub promotions: u64,
    /// Shard map versions published.
    pub maps_published: u64,
    /// Promotion acks whose assignment transition was rejected — each
    /// one also surfaces an [`SmError`] via
    /// [`Orchestrator::drain_errors`].
    pub failed_transitions: u64,
    /// Splits committed (spec swapped to the two children).
    pub splits_completed: u64,
    /// Splits aborted before commit (children reclaimed, parent kept).
    pub splits_aborted: u64,
    /// Merges committed (spec swapped to the merged shard).
    pub merges_completed: u64,
    /// Merges aborted before commit (target reclaimed, sources kept).
    pub merges_aborted: u64,
}

/// The per-partition orchestrator.
pub struct Orchestrator {
    app: AppId,
    policy: AppPolicy,
    config: OrchestratorConfig,
    servers: BTreeMap<ServerId, ServerEntry>,
    shards: Vec<ShardId>,
    desired_replicas: BTreeMap<ShardId, u32>,
    assignment: Assignment,
    loads: BTreeMap<ShardId, LoadVector>,
    map_version: u64,
    outbox: Vec<OrchCommand>,
    migrations: Vec<Migration>,
    /// Pending promotions: `(shard, server)` awaiting a ChangeRole ack.
    promotions: Vec<(ShardId, ServerId)>,
    /// Suspect replicas awaiting reclamation: `(shard, server)` pairs
    /// where an RPC failed but the server may have applied it anyway
    /// (the ack, not the request, can be what the network lost). Until
    /// the compensating `DropShard` is acked — or the server's lease
    /// expires, which fences it — the shard must not be re-placed, or
    /// the unacked copy becomes a second willing primary.
    reclaims: Vec<(ShardId, ServerId)>,
    scheduler: Option<MoveScheduler>,
    stats: OrchStats,
    /// The authoritative key-range spec, once registered. Resharding
    /// (split/merge) rewrites it; `spec_version` counts the rewrites so
    /// routers can detect staleness independent of the map version.
    spec: Option<ShardingSpec>,
    spec_version: u64,
    /// Next never-used shard id for minting split/merge children.
    next_shard_id: u64,
    /// In-flight split/merge operations.
    scale_ops: Vec<ScaleOpState>,
    /// Post-abort resumes awaiting an `AddShard` ack: the source shard's
    /// primary was told to resume direct serving (cancelling forward
    /// state); retried on failure like reclaims.
    restores: Vec<(ShardId, ServerId)>,
    /// Surfaced anomalies (e.g. rejected promotion transitions), drained
    /// by the embedding world for logging. Bounded.
    errors: Vec<SmError>,
}

impl Orchestrator {
    /// Creates an orchestrator for one application partition.
    pub fn new(app: AppId, policy: AppPolicy, config: OrchestratorConfig) -> Self {
        Self {
            app,
            policy,
            config,
            servers: BTreeMap::new(),
            shards: Vec::new(),
            desired_replicas: BTreeMap::new(),
            assignment: Assignment::new(),
            loads: BTreeMap::new(),
            map_version: 0,
            outbox: Vec::new(),
            migrations: Vec::new(),
            promotions: Vec::new(),
            reclaims: Vec::new(),
            scheduler: None,
            stats: OrchStats::default(),
            spec: None,
            spec_version: 0,
            next_shard_id: 0,
            scale_ops: Vec::new(),
            restores: Vec::new(),
            errors: Vec::new(),
        }
    }

    /// The application this orchestrator manages.
    pub fn app(&self) -> AppId {
        self.app
    }

    /// Current desired assignment.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// Counters.
    pub fn stats(&self) -> OrchStats {
        self.stats
    }

    /// Updates one shard's regional placement preference (§5.1 soft
    /// goal 1). Takes effect on the next allocation run — the Figure 20
    /// workflow, where an administrator repoints AppShards at the region
    /// their DBShards moved to.
    pub fn set_region_preference(
        &mut self,
        shard: ShardId,
        region: sm_types::RegionId,
        weight: f64,
    ) {
        self.config
            .alloc
            .region_preferences
            .insert(shard, (region, weight));
    }

    /// True if `server` is registered and alive.
    pub fn server_alive(&self, server: ServerId) -> bool {
        self.servers.get(&server).map(|e| e.alive).unwrap_or(false)
    }

    /// Registers an application server.
    pub fn register_server(&mut self, id: ServerId, location: Location, capacity: LoadVector) {
        self.servers.insert(
            id,
            ServerEntry {
                location,
                capacity,
                alive: true,
                draining: false,
            },
        );
    }

    /// Registers the application's shards (app-defined, §3.1), each with
    /// the policy's default replica count.
    pub fn register_shards(&mut self, shards: impl IntoIterator<Item = ShardId>) {
        let n = self.policy.replication.replicas_per_shard();
        for s in shards {
            self.shards.push(s);
            self.desired_replicas.insert(s, n);
            self.next_shard_id = self.next_shard_id.max(s.raw() + 1);
        }
    }

    /// Registers the application's key-range spec, enabling adaptive
    /// resharding ([`Self::start_split`] / [`Self::start_merge`]). The
    /// spec's shards should also be registered via
    /// [`Self::register_shards`].
    pub fn register_spec(&mut self, spec: ShardingSpec) {
        if let Some(max) = spec.max_shard_id() {
            self.next_shard_id = self.next_shard_id.max(max.raw() + 1);
        }
        self.spec = Some(spec);
        self.spec_version += 1;
    }

    /// The current key-range spec, if one was registered. Resharding
    /// rewrites it at each commit; readers pair it with
    /// [`Self::current_map`] to route by key.
    pub fn sharding_spec(&self) -> Option<&ShardingSpec> {
        self.spec.as_ref()
    }

    /// Monotonic counter of spec rewrites.
    pub fn spec_version(&self) -> u64 {
        self.spec_version
    }

    /// The pending split point of `parent`, while a split of it is in
    /// flight. The world uses this to derive the child ranges when it
    /// delivers the `SplitForward` RPC (the RPC itself carries only ids,
    /// keeping [`ServerRpc`] `Copy`).
    pub fn pending_split(&self, parent: ShardId) -> Option<&AppKey> {
        self.scale_ops.iter().find_map(|op| match op {
            ScaleOpState::Split(s) if s.parent == parent => Some(&s.at),
            _ => None,
        })
    }

    /// The `(target, target_server)` of an in-flight merge consuming
    /// `source`, if any.
    pub fn pending_merge(&self, source: ShardId) -> Option<(ShardId, ServerId)> {
        self.scale_ops.iter().find_map(|op| match op {
            ScaleOpState::Merge(m) if m.left == source || m.right == source => {
                Some((m.target, m.target_to))
            }
            _ => None,
        })
    }

    /// Drains surfaced anomalies (rejected transitions, failed commits)
    /// for the embedding world to log.
    pub fn drain_errors(&mut self) -> Vec<SmError> {
        std::mem::take(&mut self.errors)
    }

    fn push_error(&mut self, err: SmError) {
        // Bounded: an unread backlog must not grow without limit.
        if self.errors.len() < 64 {
            self.errors.push(err);
        }
    }

    /// Adjusts one shard's desired replica count (driven by the shard
    /// scaler). Takes effect on the next allocation run; shrinking drops
    /// excess secondaries immediately.
    pub fn set_desired_replicas(&mut self, shard: ShardId, n: u32) {
        self.desired_replicas.insert(shard, n.max(1));
        let current = self.assignment.replicas(shard).len() as u32;
        if current > n {
            // Drop excess replicas, secondaries first.
            let mut victims: Vec<(ServerId, ReplicaRole)> = self
                .assignment
                .replicas(shard)
                .iter()
                .map(|r| (r.server, r.role))
                .collect();
            victims.sort_by_key(|(_, role)| role.is_primary());
            for (server, _) in victims.into_iter().take((current - n) as usize) {
                self.assignment.remove_replica(shard, server);
                self.send_rpc(server, ServerRpc::DropShard { shard });
            }
            self.publish_map();
        }
    }

    /// Drains the outbox; the world executes these commands.
    pub fn take_commands(&mut self) -> Vec<OrchCommand> {
        std::mem::take(&mut self.outbox)
    }

    fn send_rpc(&mut self, server: ServerId, rpc: ServerRpc) {
        self.outbox.push(OrchCommand::Rpc { server, rpc });
    }

    fn publish_map(&mut self) {
        self.map_version += 1;
        self.stats.maps_published += 1;
        // Collapse consecutive change notices: the world only needs to
        // know the latest version.
        if let Some(OrchCommand::MapChanged { version }) = self.outbox.last_mut() {
            *version = self.map_version;
            return;
        }
        self.outbox.push(OrchCommand::MapChanged {
            version: self.map_version,
        });
    }

    /// The current shard map at the latest published version.
    pub fn current_map(&self) -> ShardMap {
        ShardMap::from_assignment(self.map_version, &self.assignment)
    }

    /// Stores a server's load report (pulled periodically in §3.2).
    pub fn report_load(&mut self, _server: ServerId, loads: Vec<(ShardId, LoadVector)>) {
        for (shard, load) in loads {
            self.loads.insert(shard, load);
        }
    }

    // ---- Allocation ----

    fn build_input(&self) -> AllocInput {
        let servers: Vec<ServerInfo> = self
            .servers
            .iter()
            .filter(|(_, e)| e.alive)
            .map(|(id, e)| ServerInfo {
                id: *id,
                location: e.location,
                capacity: e.capacity,
                draining: e.draining,
            })
            .collect();
        let shards: Vec<ShardPlacement> = self
            .shards
            .iter()
            .map(|&shard| {
                let desired = *self.desired_replicas.get(&shard).unwrap_or(&1) as usize;
                let mut replicas: Vec<Option<ServerId>> = self
                    .assignment
                    .replicas(shard)
                    .iter()
                    .map(|r| Some(r.server))
                    .collect();
                replicas.resize(desired, None);
                replicas.truncate(desired.max(replicas.len()));
                ShardPlacement {
                    shard,
                    load_per_replica: self
                        .loads
                        .get(&shard)
                        .copied()
                        .unwrap_or_else(default_shard_load),
                    replicas,
                }
            })
            .collect();
        AllocInput {
            servers,
            shards,
            config: self.config.alloc.clone(),
        }
    }

    /// Runs the periodic allocation (§5.1 periodic mode) and begins
    /// executing the plan under the move caps.
    pub fn run_periodic(&mut self) -> usize {
        let input = self.build_input();
        let plan = Allocator::plan_periodic(&input);
        let n = plan.moves.len();
        self.install_plan(plan.moves);
        n
    }

    /// Runs the emergency allocation (§5.1 emergency mode): places only
    /// the replicas that currently lack a server.
    pub fn run_emergency(&mut self) -> usize {
        let input = self.build_input();
        let plan = Allocator::plan_emergency(&input);
        // Emergency placements are fresh adds only.
        let moves: Vec<ReplicaMove> = plan
            .moves
            .into_iter()
            .filter(|m| m.from.is_none())
            .collect();
        let n = moves.len();
        self.install_plan(moves);
        n
    }

    fn install_plan(&mut self, moves: Vec<ReplicaMove>) {
        self.scheduler = Some(MoveScheduler::new(moves, self.config.move_caps));
        self.pump_scheduler();
    }

    fn pump_scheduler(&mut self) {
        let Some(mut scheduler) = self.scheduler.take() else {
            return;
        };
        let wave = scheduler.release();
        self.scheduler = Some(scheduler);
        for mv in wave {
            self.start_move(mv);
        }
    }

    fn start_move(&mut self, mv: ReplicaMove) {
        let shard = mv.shard;
        // Plans can be superseded (a drain or emergency run replaces a
        // periodic plan), so a released move may be stale by the time it
        // starts. Skip moves whose source no longer hosts the shard and
        // moves for shards already migrating — the next allocation run
        // re-plans anything still suboptimal.
        let stale_source = mv
            .from
            .map(|f| {
                !self
                    .assignment
                    .replicas(shard)
                    .iter()
                    .any(|r| r.server == f)
            })
            .unwrap_or(false);
        let already_migrating = self.migrations.iter().any(|m| m.shard == shard);
        let target_occupied = self
            .assignment
            .replicas(shard)
            .iter()
            .any(|r| r.server == mv.to);
        // A shard with a suspect unacked copy must not be re-placed
        // until the reclaim resolves; nor may any shard be placed onto
        // a server we are currently reclaiming it from. Shards inside a
        // split/merge are equally off-limits: moving the parent's
        // primary mid-forward would strand the forwarding chain.
        let reclaiming = self.reclaims.iter().any(|&(s, _)| s == shard);
        let resharding = self.scale_ops.iter().any(|op| op.involves_shard(shard))
            || self.restores.iter().any(|&(s, _)| s == shard);
        if stale_source || already_migrating || target_occupied || reclaiming || resharding {
            if let Some(s) = self.scheduler.as_mut() {
                s.complete(&mv);
            }
            return;
        }
        // Role: keep the role held at the source; fresh adds become
        // primary if the shard needs one.
        let role = match mv.from {
            Some(from) => self
                .assignment
                .replicas(shard)
                .iter()
                .find(|r| r.server == from)
                .map(|r| r.role),
            None => None,
        }
        .unwrap_or_else(|| {
            let promotion_pending = self.promotions.iter().any(|&(s, _)| s == shard);
            if self.policy.replication.has_primary()
                && self.assignment.primary_of(shard).is_none()
                && !promotion_pending
            {
                ReplicaRole::Primary
            } else {
                ReplicaRole::Secondary
            }
        });

        let source_alive = mv
            .from
            .map(|s| self.servers.get(&s).map(|e| e.alive).unwrap_or(false))
            .unwrap_or(false);

        let kind = match (mv.from, role, source_alive) {
            (None, _, _) => MigrationKind::FreshAdd,
            (Some(_), ReplicaRole::Primary, true) if self.config.graceful_migration => {
                MigrationKind::GracefulPrimary
            }
            (Some(_), ReplicaRole::Primary, true) => MigrationKind::AbruptMove,
            (Some(_), ReplicaRole::Secondary, true) => MigrationKind::SecondaryMove,
            // Source dead: nothing to hand off.
            (Some(_), _, false) => MigrationKind::FreshAdd,
        };

        // Matching on (kind, source) lets the compiler see that the
        // source-ful kinds carry a source; a sourceless one (impossible
        // by construction above) degrades to a fresh add.
        let (phase, first_rpc, target) = match (kind, mv.from) {
            (MigrationKind::GracefulPrimary, Some(src)) => (
                Phase::PrepareAdd,
                ServerRpc::PrepareAddShard {
                    shard,
                    current_owner: src,
                    role,
                },
                mv.to,
            ),
            (MigrationKind::AbruptMove, Some(src)) => {
                (Phase::Drop, ServerRpc::DropShard { shard }, src)
            }
            (MigrationKind::SecondaryMove | MigrationKind::FreshAdd, _) | (_, None) => {
                (Phase::Add, ServerRpc::AddShard { shard, role }, mv.to)
            }
        };
        self.migrations.push(Migration {
            shard,
            from: mv.from,
            to: mv.to,
            role,
            kind,
            phase,
            mv,
        });
        self.send_rpc(target, first_rpc);
    }

    /// Writes an updated migration back by index. A stale index (which
    /// the `position()` lookups above the call sites rule out) is a
    /// no-op rather than a panic.
    fn store_migration(&mut self, idx: usize, mig: Migration) {
        if let Some(slot) = self.migrations.get_mut(idx) {
            *slot = mig;
        }
    }

    /// Handles an RPC acknowledgement from an application server,
    /// advancing the corresponding migration/promotion state machine.
    pub fn rpc_acked(&mut self, server: ServerId, rpc: ServerRpc) {
        // Reclaim acks first: the suspect copy is confirmed gone, so
        // the shard is safe to place again. A reclaim is never also a
        // live migration ack — reclaims are only created after every
        // migration touching that (shard, server) was aborted, and no
        // new one can start while the reclaim is pending.
        if let ServerRpc::DropShard { shard } = rpc {
            if let Some(pos) = self
                .reclaims
                .iter()
                .position(|&(s, srv)| s == shard && srv == server)
            {
                self.reclaims.swap_remove(pos);
                if self.assignment.replicas(shard).is_empty()
                    && !self.migrations.iter().any(|m| m.shard == shard)
                {
                    self.run_emergency();
                }
                // A promotion deferred by the reclaim can go ahead now.
                self.ensure_primary_for(shard);
                return;
            }
        }

        // Promotions first: ChangeRole to primary.
        if let ServerRpc::ChangeRole { shard, new, .. } = rpc {
            if let Some(pos) = self
                .promotions
                .iter()
                .position(|&(s, srv)| s == shard && srv == server)
            {
                self.promotions.swap_remove(pos);
                if new.is_primary() {
                    match self.assignment.change_role(shard, server, new) {
                        Ok(()) => {
                            self.stats.promotions += 1;
                            self.publish_map();
                        }
                        Err(reason) => {
                            // The server acked the promotion but the
                            // assignment refused it (e.g. a concurrent
                            // path already installed another primary).
                            // The acker now wrongly believes it is
                            // primary: demote it, surface the anomaly,
                            // and re-run role reconciliation instead of
                            // publishing a map that contradicts
                            // reality.
                            self.stats.failed_transitions += 1;
                            self.push_error(SmError::conflict(format!(
                                "promotion of {shard} at {server} acked but rejected: {reason}"
                            )));
                            self.send_rpc(
                                server,
                                ServerRpc::ChangeRole {
                                    shard,
                                    current: ReplicaRole::Primary,
                                    new: ReplicaRole::Secondary,
                                },
                            );
                            self.ensure_primary_for(shard);
                        }
                    }
                }
                return;
            }
        }

        if self.restore_acked(server, rpc) || self.scale_rpc_acked(server, rpc) {
            return;
        }

        let Some(idx) = self.migrations.iter().position(|m| match m.phase {
            Phase::PrepareAdd => {
                server == m.to
                    && m.from.is_some_and(|src| {
                        rpc == ServerRpc::PrepareAddShard {
                            shard: m.shard,
                            current_owner: src,
                            role: m.role,
                        }
                    })
            }
            Phase::PrepareDrop => {
                Some(server) == m.from
                    && rpc
                        == ServerRpc::PrepareDropShard {
                            shard: m.shard,
                            new_owner: m.to,
                            role: m.role,
                        }
            }
            Phase::Add => {
                server == m.to
                    && rpc
                        == ServerRpc::AddShard {
                            shard: m.shard,
                            role: m.role,
                        }
            }
            Phase::Drop => {
                let drop_target = match m.kind {
                    MigrationKind::AbruptMove if m.phase == Phase::Drop => m.from,
                    _ => m.from,
                };
                Some(server) == drop_target && rpc == ServerRpc::DropShard { shard: m.shard }
            }
        }) else {
            return;
        };

        let Some(mut mig) = self.migrations.get(idx).copied() else {
            return;
        };
        match (mig.kind, mig.phase) {
            // -- Graceful primary: steps 1..5 --
            (MigrationKind::GracefulPrimary, Phase::PrepareAdd) => {
                let Some(src) = mig.from else { return };
                mig.phase = Phase::PrepareDrop;
                self.store_migration(idx, mig);
                self.send_rpc(
                    src,
                    ServerRpc::PrepareDropShard {
                        shard: mig.shard,
                        new_owner: mig.to,
                        role: mig.role,
                    },
                );
            }
            (MigrationKind::GracefulPrimary, Phase::PrepareDrop) => {
                mig.phase = Phase::Add;
                self.store_migration(idx, mig);
                self.send_rpc(
                    mig.to,
                    ServerRpc::AddShard {
                        shard: mig.shard,
                        role: mig.role,
                    },
                );
            }
            (MigrationKind::GracefulPrimary, Phase::Add) => {
                // Step 4: record the handover and publish before the
                // final drop.
                let Some(src) = mig.from else { return };
                let _outcome = self.assignment.move_replica(mig.shard, src, mig.to);
                self.publish_map();
                mig.phase = Phase::Drop;
                self.store_migration(idx, mig);
                self.send_rpc(src, ServerRpc::DropShard { shard: mig.shard });
            }
            (MigrationKind::GracefulPrimary, Phase::Drop) => {
                self.finish_migration(idx);
            }

            // -- Abrupt primary move: drop, then add --
            (MigrationKind::AbruptMove, Phase::Drop) => {
                let Some(src) = mig.from else { return };
                self.assignment.remove_replica(mig.shard, src);
                mig.phase = Phase::Add;
                self.store_migration(idx, mig);
                self.send_rpc(
                    mig.to,
                    ServerRpc::AddShard {
                        shard: mig.shard,
                        role: mig.role,
                    },
                );
            }
            (MigrationKind::AbruptMove, Phase::Add) => {
                let _outcome = self.assignment.add_replica(mig.shard, mig.to, mig.role);
                self.publish_map();
                self.finish_migration(idx);
            }

            // -- Secondary move: add, publish, then drop --
            (MigrationKind::SecondaryMove, Phase::Add) => {
                let Some(src) = mig.from else { return };
                let _outcome = self.assignment.add_replica(mig.shard, mig.to, mig.role);
                self.publish_map();
                mig.phase = Phase::Drop;
                self.store_migration(idx, mig);
                self.send_rpc(src, ServerRpc::DropShard { shard: mig.shard });
            }
            (MigrationKind::SecondaryMove, Phase::Drop) => {
                let Some(src) = mig.from else { return };
                self.assignment.remove_replica(mig.shard, src);
                self.publish_map();
                self.finish_migration(idx);
            }

            // -- Fresh add --
            (MigrationKind::FreshAdd, Phase::Add) => {
                let mut role = mig.role;
                if role.is_primary() && self.assignment.primary_of(mig.shard).is_some() {
                    // A concurrent promotion won the primary role while
                    // this add was in flight; demote the newcomer and
                    // record it as a secondary.
                    role = ReplicaRole::Secondary;
                    self.send_rpc(
                        mig.to,
                        ServerRpc::ChangeRole {
                            shard: mig.shard,
                            current: ReplicaRole::Primary,
                            new: ReplicaRole::Secondary,
                        },
                    );
                }
                let _outcome = self.assignment.add_replica(mig.shard, mig.to, role);
                self.publish_map();
                self.finish_migration(idx);
            }
            _ => {}
        }
    }

    fn finish_migration(&mut self, idx: usize) {
        let mig = self.migrations.swap_remove(idx);
        self.stats.completed_moves += 1;
        if let Some(s) = self.scheduler.as_mut() {
            s.complete(&mig.mv);
        }
        // A shard can end a migration without a primary (e.g. its
        // promotion failed while this replacement replica was being
        // placed); re-elect as soon as the shard is quiescent.
        self.ensure_primary_for(mig.shard);
        self.pump_scheduler();
    }

    /// Handles an RPC failure: the migration is aborted; failure-driven
    /// repair happens through [`Self::server_down`].
    pub fn rpc_failed(&mut self, server: ServerId, rpc: ServerRpc) {
        let shard = rpc.shard();
        // A failed post-abort resume retries while the server lives (a
        // source primary that never resumes serving blackholes its
        // range); a dead server resolves through `server_down`.
        if let ServerRpc::AddShard { .. } = rpc {
            if self
                .restores
                .iter()
                .any(|&(s, srv)| s == shard && srv == server)
            {
                if self.server_alive(server) {
                    self.send_rpc(server, rpc);
                }
                return;
            }
        }
        // Any nack inside an in-flight split/merge aborts the whole op
        // pre-commit: children are reclaimed, sources resume serving.
        if let Some(idx) = self
            .scale_ops
            .iter()
            .position(|op| op.involves_shard(shard) && op.involves_server(server))
        {
            self.abort_scale_op(idx, None);
            return;
        }
        if let Some(idx) = self
            .migrations
            .iter()
            .position(|m| m.shard == shard && (m.to == server || m.from == Some(server)))
        {
            let mig = self.migrations.swap_remove(idx);
            self.stats.aborted_moves += 1;
            if let Some(s) = self.scheduler.as_mut() {
                s.complete(&mig.mv);
            }
            // If the target had been prepared (step 1) it still holds
            // prepare-state and warmed data; tell it to discard unless
            // the shard's record actually lives there.
            if mig.kind == MigrationKind::GracefulPrimary
                && mig.to != server
                && self.server_alive(mig.to)
                && !self
                    .assignment
                    .replicas(mig.shard)
                    .iter()
                    .any(|r| r.server == mig.to)
            {
                self.send_rpc(mig.to, ServerRpc::DropShard { shard: mig.shard });
            }
            self.pump_scheduler();
        }
        // A failed *promotion* retries on the next live secondary: the
        // application may have nacked because a safe joint election was
        // momentarily impossible there (stale log, unreachable quorum),
        // while another replica can win right now. Without the retry
        // the shard stays primary-less until an unrelated event.
        let was_promotion = matches!(rpc, ServerRpc::ChangeRole { new, .. } if new.is_primary())
            && self
                .promotions
                .iter()
                .any(|&(s, srv)| s == shard && srv == server);
        self.promotions
            .retain(|&(s, srv)| !(s == shard && srv == server));
        if was_promotion {
            self.retry_promotion(shard, server);
        }
        // "Failed" only means no ack arrived — the server may well have
        // applied the RPC (a lossy network can eat the ack rather than
        // the request). If the server is still alive and the assignment
        // does not place this shard there, it may now hold an unacked
        // copy: reclaim it with a compensating DropShard, and hold the
        // shard back from re-placement until the drop is confirmed or
        // the server's lease expiry fences it. Re-placing earlier would
        // create a second willing primary (§3.2).
        let assigned_there = self
            .assignment
            .replicas(shard)
            .iter()
            .any(|r| r.server == server);
        if self.server_alive(server) && !assigned_there {
            if !self.reclaims.contains(&(shard, server)) {
                self.reclaims.push((shard, server));
            }
            self.send_rpc(server, ServerRpc::DropShard { shard });
        }
        // An aborted fresh add can leave the shard with no replica at
        // all (e.g. the target restarted mid-placement). Re-place it
        // immediately instead of waiting for the next periodic run.
        if self.assignment.replicas(shard).is_empty()
            && !self.migrations.iter().any(|m| m.shard == shard)
        {
            self.run_emergency();
        }
    }

    // ---- Failure handling ----

    /// Marks a server down (ZooKeeper ephemeral expired, §3.2): its
    /// replicas are dropped from the assignment, surviving secondaries
    /// are promoted where the primary was lost, a new map is published,
    /// and the emergency allocator refills the missing replicas.
    pub fn server_down(&mut self, server: ServerId) {
        let Some(entry) = self.servers.get_mut(&server) else {
            return;
        };
        if !entry.alive {
            return;
        }
        entry.alive = false;

        // Abort split/merge ops touching the dead server while the
        // assignment still reflects pre-failure reality (the abort's
        // source-resume check needs it). The dead server's own reclaims
        // and restores are fenced by lease expiry below.
        let doomed_ops: Vec<usize> = self
            .scale_ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.involves_server(server))
            .map(|(i, _)| i)
            .collect();
        for idx in doomed_ops.into_iter().rev() {
            self.abort_scale_op(idx, Some(server));
        }
        self.restores.retain(|&(_, srv)| srv != server);

        // Abort migrations touching the dead server.
        let doomed: Vec<usize> = self
            .migrations
            .iter()
            .enumerate()
            .filter(|(_, m)| m.to == server || m.from == Some(server))
            .map(|(i, _)| i)
            .collect();
        for idx in doomed.into_iter().rev() {
            let mig = self.migrations.swap_remove(idx);
            self.stats.aborted_moves += 1;
            if let Some(s) = self.scheduler.as_mut() {
                s.complete(&mig.mv);
            }
        }

        // Lease expiry fences the dead server (§3.2: it wiped itself or
        // will refuse traffic), so any unacked copy it held is gone —
        // its pending reclaims resolve, freeing those shards to be
        // re-placed by the emergency run below.
        let freed: Vec<ShardId> = self
            .reclaims
            .iter()
            .filter(|&&(_, srv)| srv == server)
            .map(|&(s, _)| s)
            .collect();
        self.reclaims.retain(|&(_, srv)| srv != server);

        let lost = self.assignment.drop_server(server);
        // Promote a surviving secondary wherever a primary was lost.
        for (shard, role) in &lost {
            if role.is_primary() {
                let survivor = self
                    .assignment
                    .replicas(*shard)
                    .iter()
                    .find(|r| {
                        !r.role.is_primary()
                            && self
                                .servers
                                .get(&r.server)
                                .map(|e| e.alive)
                                .unwrap_or(false)
                    })
                    .map(|r| r.server);
                if let Some(new_primary) = survivor {
                    self.promotions.push((*shard, new_primary));
                    self.send_rpc(
                        new_primary,
                        ServerRpc::ChangeRole {
                            shard: *shard,
                            current: ReplicaRole::Secondary,
                            new: ReplicaRole::Primary,
                        },
                    );
                }
            }
        }
        self.publish_map();
        if !lost.is_empty() || !freed.is_empty() {
            self.run_emergency();
        }
        self.ensure_primaries();
        self.pump_scheduler();
    }

    /// Marks a recovered server available again (it returns empty; the
    /// next periodic run will use it).
    pub fn server_up(&mut self, server: ServerId) {
        if let Some(e) = self.servers.get_mut(&server) {
            e.alive = true;
            e.draining = false;
        }
    }

    // ---- Drain (planned events, §4.1/§4.2) ----

    /// Begins evacuating `server`: every replica it hosts is migrated to
    /// a greedily chosen target (graceful for primaries). Returns the
    /// number of migrations started; zero means it was already empty.
    pub fn drain_server(&mut self, server: ServerId) -> usize {
        if let Some(e) = self.servers.get_mut(&server) {
            e.draining = true;
        }
        let victims: Vec<(ShardId, sm_types::ReplicaRole)> = self
            .assignment
            .shards_on(server)
            .into_iter()
            .filter(|(shard, _)| !self.migrations.iter().any(|m| m.shard == *shard))
            .collect();
        let mut moves = Vec::new();
        // Track hypothetical extra load per target so consecutive picks
        // spread rather than pile onto one cold server.
        let mut extra: BTreeMap<ServerId, LoadVector> = BTreeMap::new();
        for (shard, _) in &victims {
            let load = self
                .loads
                .get(shard)
                .copied()
                .unwrap_or_else(default_shard_load);
            let target = self.pick_drain_target(*shard, &extra, &load);
            let Some(target) = target else { continue };
            *extra.entry(target).or_insert_with(LoadVector::zero) += load;
            moves.push(ReplicaMove {
                shard: *shard,
                replica: 0,
                from: Some(server),
                to: target,
            });
        }
        let n = moves.len();
        self.install_plan(moves);
        n
    }

    fn pick_drain_target(
        &self,
        shard: ShardId,
        extra: &BTreeMap<ServerId, LoadVector>,
        load: &LoadVector,
    ) -> Option<ServerId> {
        let hosts: Vec<ServerId> = self
            .assignment
            .replicas(shard)
            .iter()
            .map(|r| r.server)
            .collect();
        self.servers
            .iter()
            .filter(|(id, e)| e.alive && !e.draining && !hosts.contains(id))
            .filter(|(id, e)| {
                // Honor capacity where configured.
                let mut usage = self.usage_of(**id);
                if let Some(x) = extra.get(id) {
                    usage += *x;
                }
                usage += *load;
                usage.fits_within(&e.capacity) || e.capacity == LoadVector::zero()
            })
            .min_by(|(a, ea), (b, eb)| {
                let ua = self.usage_of(**a).max_utilization(&ea.capacity);
                let ub = self.usage_of(**b).max_utilization(&eb.capacity);
                ua.partial_cmp(&ub).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(id, _)| *id)
    }

    fn usage_of(&self, server: ServerId) -> LoadVector {
        let mut usage = LoadVector::zero();
        for (shard, _) in self.assignment.shards_on(server) {
            usage += self
                .loads
                .get(&shard)
                .copied()
                .unwrap_or_else(default_shard_load);
        }
        usage
    }

    /// True once `server` hosts nothing and no migration still involves
    /// it — the signal the TaskController waits for before approving the
    /// container operation.
    pub fn is_drained(&self, server: ServerId) -> bool {
        self.assignment.shards_on(server).is_empty()
            && !self
                .migrations
                .iter()
                .any(|m| m.from == Some(server) || m.to == server)
    }

    /// Clears the draining mark after the container operation completes.
    pub fn drain_finished(&mut self, server: ServerId) {
        if let Some(e) = self.servers.get_mut(&server) {
            e.draining = false;
        }
    }

    // ---- Non-negotiable maintenance preparation (§4.2) ----

    /// Prepares for an announced, non-delayable maintenance event on
    /// `servers`: for a short-impact event (e.g. rack-switch network
    /// loss), secondaries may stay, but every primary on an affected
    /// server is demoted while a secondary on an unaffected server is
    /// promoted. Returns the number of role swaps started.
    ///
    /// Shards whose every replica sits on an affected server have
    /// nowhere to promote to; they are left as-is (the event's downtime
    /// hits them regardless — placement spread exists to make this
    /// rare).
    pub fn prepare_for_maintenance(&mut self, servers: &[ServerId]) -> usize {
        let affected: std::collections::BTreeSet<ServerId> = servers.iter().copied().collect();
        let mut swaps = 0;
        let shard_list: Vec<ShardId> = self.shards.clone();
        for shard in shard_list {
            let Some(primary) = self.assignment.primary_of(shard) else {
                continue;
            };
            if !affected.contains(&primary) {
                continue;
            }
            let successor = self
                .assignment
                .replicas(shard)
                .iter()
                .find(|r| {
                    !r.role.is_primary()
                        && !affected.contains(&r.server)
                        && self
                            .servers
                            .get(&r.server)
                            .map(|e| e.alive)
                            .unwrap_or(false)
                })
                .map(|r| r.server);
            let Some(new_primary) = successor else {
                continue; // every replica is in the blast radius
            };
            // Demote in place, then promote through the normal
            // promotion path (ack-driven, publishes the map).
            let _outcome = self
                .assignment
                .change_role(shard, primary, ReplicaRole::Secondary);
            self.send_rpc(
                primary,
                ServerRpc::ChangeRole {
                    shard,
                    current: ReplicaRole::Primary,
                    new: ReplicaRole::Secondary,
                },
            );
            self.promotions.push((shard, new_primary));
            self.send_rpc(
                new_primary,
                ServerRpc::ChangeRole {
                    shard,
                    current: ReplicaRole::Secondary,
                    new: ReplicaRole::Primary,
                },
            );
            swaps += 1;
        }
        if swaps > 0 {
            self.publish_map();
        }
        swaps
    }

    /// Replicas currently hosted per server (for the TaskController's
    /// availability view).
    pub fn shards_on(&self, server: ServerId) -> Vec<(ShardId, ReplicaRole)> {
        self.assignment.shards_on(server)
    }

    /// Role reconciliation: promotes a live secondary wherever a shard
    /// that should have a primary lacks one and no promotion or
    /// migration is already in flight. Covers the corner where a
    /// promotion RPC fails (e.g. the chosen successor dies before
    /// acking) — without this, the shard would stay primary-less until
    /// an unrelated event.
    fn ensure_primaries(&mut self) {
        if !self.policy.replication.has_primary() {
            return;
        }
        let shards: Vec<ShardId> = self.shards.clone();
        for shard in shards {
            self.ensure_primary_for(shard);
        }
    }

    /// Per-shard variant of the role reconciliation, cheap enough for
    /// hot paths like migration completion.
    fn ensure_primary_for(&mut self, shard: ShardId) {
        if !self.policy.replication.has_primary()
            || self.assignment.primary_of(shard).is_some()
            || self.assignment.replicas(shard).is_empty()
            || self.promotions.iter().any(|&(s, _)| s == shard)
            || self.migrations.iter().any(|m| m.shard == shard)
            // A suspect unacked copy may still be primary-willing;
            // promoting a survivor before the reclaim resolves would
            // make two (§3.2).
            || self.reclaims.iter().any(|&(s, _)| s == shard)
        {
            return;
        }
        let successor = self
            .assignment
            .replicas(shard)
            .iter()
            .find(|r| {
                self.servers
                    .get(&r.server)
                    .map(|e| e.alive)
                    .unwrap_or(false)
            })
            .map(|r| r.server);
        if let Some(server) = successor {
            self.promotions.push((shard, server));
            self.send_rpc(
                server,
                ServerRpc::ChangeRole {
                    shard,
                    current: ReplicaRole::Secondary,
                    new: ReplicaRole::Primary,
                },
            );
        }
    }

    /// Re-drives a failed promotion on the next candidate: live
    /// non-primary replicas in server order, starting just past the
    /// server that nacked and wrapping around to it last — a sole
    /// secondary gets retried too (it may only have needed one more
    /// catch-up round). No-op when another promotion for the shard is
    /// already pending.
    fn retry_promotion(&mut self, shard: ShardId, failed: ServerId) {
        if self.promotions.iter().any(|&(s, _)| s == shard) {
            return;
        }
        let mut candidates: Vec<ServerId> = self
            .assignment
            .replicas(shard)
            .iter()
            .filter(|r| !r.role.is_primary())
            .map(|r| r.server)
            .filter(|srv| self.servers.get(srv).map(|e| e.alive).unwrap_or(false))
            .collect();
        candidates.sort_unstable();
        let next = candidates
            .iter()
            .copied()
            .find(|&srv| srv > failed)
            .or_else(|| candidates.first().copied());
        if let Some(server) = next {
            self.promotions.push((shard, server));
            self.send_rpc(
                server,
                ServerRpc::ChangeRole {
                    shard,
                    current: ReplicaRole::Secondary,
                    new: ReplicaRole::Primary,
                },
            );
        }
    }

    // ---- Shard scaling (§3.4) ----

    /// Runs the shard scaler over the latest load reports: each shard's
    /// total load (per-replica load x replica count) is evaluated and
    /// replica counts adjusted. Returns the number of shards resized;
    /// scale-ups are placed immediately through the emergency path.
    pub fn run_scaler(&mut self, scaler: &crate::ShardScaler) -> usize {
        let mut totals = BTreeMap::new();
        let mut counts = BTreeMap::new();
        for (&shard, load) in &self.loads {
            let n = self.assignment.replicas(shard).len() as u32;
            if n == 0 {
                continue;
            }
            totals.insert(shard, load.scale(f64::from(n)));
            counts.insert(shard, n);
        }
        let decisions = scaler.evaluate(&totals, &counts);
        let changed = decisions.len();
        let mut grew = false;
        for d in decisions {
            grew |= d.to > d.from;
            self.set_desired_replicas(d.shard, d.to);
        }
        if grew {
            self.run_emergency();
        }
        changed
    }

    // ---- Adaptive resharding (beyond the paper; ROADMAP item 3) ----
    //
    // A split runs the §4.3 graceful protocol generalized to 1→2:
    //
    // 1. `prepare_add_shard(left)` → left_to, `prepare_add_shard(right)`
    //    → right_to (children accept only forwarded requests);
    // 2. `split_forward(parent, ...)` → parent's primary (keeps the
    //    data, stops serving directly, forwards each request to the
    //    child covering its key);
    // 3. `add_shard(left)` → left_to, `add_shard(right)` → right_to;
    // 4. on both acks, *commit*: rewrite the spec, swap the assignment,
    //    publish the new map — one atomic step, so every shard id keeps
    //    a single immutable range from mint to removal;
    // 5. `drop_shard(parent)` → old primary via the reclaim machinery
    //    (drains residual forwarded traffic; retried like any reclaim).
    //
    // A merge is the mirror image (2→1): prepare the target, tell both
    // source primaries to `merge_forward`, cut over, commit, reclaim
    // the sources. Any nack, involved-server death, or involved-server
    // restart before commit aborts the whole op: the unpublished
    // children/target are reclaimed and the sources resume serving.

    /// Begins a graceful split of `parent` at its range midpoint.
    pub fn start_split(&mut self, parent: ShardId) -> Result<(), SmError> {
        let spec = self
            .spec
            .as_ref()
            .ok_or_else(|| SmError::conflict("no sharding spec registered"))?;
        let range = spec
            .range_of(parent)
            .ok_or_else(|| SmError::not_found(parent))?;
        let at = range
            .midpoint()
            .ok_or_else(|| SmError::conflict(format!("{parent} is too narrow to split")))?;
        if self.reshard_busy().contains(&parent) {
            return Err(SmError::conflict(format!("{parent} is busy")));
        }
        let parent_primary = self
            .assignment
            .primary_of(parent)
            .filter(|&p| self.server_alive(p))
            .ok_or_else(|| SmError::Unavailable(format!("{parent} has no live primary")))?;
        // Each child inherits half the parent's observed load; targets
        // are picked like drain targets, spreading the two halves.
        let half = self
            .loads
            .get(&parent)
            .copied()
            .unwrap_or_else(default_shard_load)
            .scale(0.5);
        let mut extra: BTreeMap<ServerId, LoadVector> = BTreeMap::new();
        let no_target = || SmError::Unavailable("no server can host a split child".into());
        let left_to = self
            .pick_scale_target(&[parent_primary], &extra, &half)
            .ok_or_else(no_target)?;
        extra.insert(left_to, half);
        let right_to = self
            .pick_scale_target(&[parent_primary], &extra, &half)
            .ok_or_else(no_target)?;
        let left = self.mint_shard_id();
        let right = self.mint_shard_id();
        self.loads.insert(left, half);
        self.loads.insert(right, half);
        self.scale_ops.push(ScaleOpState::Split(SplitOp {
            parent,
            parent_primary,
            at,
            left,
            left_to,
            right,
            right_to,
            phase: ScalePhase::Prepare,
            left_ready: false,
            right_ready: false,
        }));
        self.send_rpc(
            left_to,
            ServerRpc::PrepareAddShard {
                shard: left,
                current_owner: parent_primary,
                role: ReplicaRole::Primary,
            },
        );
        self.send_rpc(
            right_to,
            ServerRpc::PrepareAddShard {
                shard: right,
                current_owner: parent_primary,
                role: ReplicaRole::Primary,
            },
        );
        Ok(())
    }

    /// Begins a graceful merge of the adjacent shards `left` and
    /// `right` into one freshly minted shard.
    pub fn start_merge(&mut self, left: ShardId, right: ShardId) -> Result<(), SmError> {
        let spec = self
            .spec
            .as_ref()
            .ok_or_else(|| SmError::conflict("no sharding spec registered"))?;
        let lr = spec
            .range_of(left)
            .ok_or_else(|| SmError::not_found(left))?;
        let rr = spec
            .range_of(right)
            .ok_or_else(|| SmError::not_found(right))?;
        if lr.merge(rr).is_none() {
            return Err(SmError::InvalidArgument(format!(
                "{left} and {right} are not adjacent"
            )));
        }
        let busy = self.reshard_busy();
        if busy.contains(&left) || busy.contains(&right) {
            return Err(SmError::conflict(format!("{left} or {right} is busy")));
        }
        let live_primary = |o: &Self, s: ShardId| {
            o.assignment
                .primary_of(s)
                .filter(|&p| o.server_alive(p))
                .ok_or_else(|| SmError::Unavailable(format!("{s} has no live primary")))
        };
        let left_primary = live_primary(self, left)?;
        let right_primary = live_primary(self, right)?;
        let mut combined = self
            .loads
            .get(&left)
            .copied()
            .unwrap_or_else(default_shard_load);
        combined += self
            .loads
            .get(&right)
            .copied()
            .unwrap_or_else(default_shard_load);
        let target_to = self
            .pick_scale_target(&[left_primary, right_primary], &BTreeMap::new(), &combined)
            .ok_or_else(|| SmError::Unavailable("no server can host the merged shard".into()))?;
        let target = self.mint_shard_id();
        self.loads.insert(target, combined);
        self.scale_ops.push(ScaleOpState::Merge(MergeOp {
            left,
            left_primary,
            right,
            right_primary,
            target,
            target_to,
            phase: ScalePhase::Prepare,
            left_ready: false,
            right_ready: false,
        }));
        self.send_rpc(
            target_to,
            ServerRpc::PrepareAddShard {
                shard: target,
                current_owner: left_primary,
                role: ReplicaRole::Primary,
            },
        );
        Ok(())
    }

    /// Runs the split scaler over the latest load reports and starts as
    /// many recommended operations as the concurrency budget allows.
    /// Returns the number started.
    pub fn run_reshard(&mut self, scaler: &SplitScaler) -> usize {
        let Some(spec) = self.spec.clone() else {
            return 0;
        };
        let slots = scaler
            .config()
            .max_concurrent
            .saturating_sub(self.scale_ops.len());
        if slots == 0 {
            return 0;
        }
        let busy = self.reshard_busy();
        let ops = scaler.evaluate(&spec, &self.loads, &busy);
        let mut started = 0;
        for op in ops.into_iter().take(slots) {
            let outcome = match op {
                ReshardOp::Split { shard } => self.start_split(shard),
                ReshardOp::Merge { left, right } => self.start_merge(left, right),
            };
            // A refused start (no target with headroom, primary briefly
            // missing) is not an anomaly; the next tick retries.
            if outcome.is_ok() {
                started += 1;
            }
        }
        started
    }

    /// Shards the split scaler must leave alone: anything mid-migration,
    /// mid-promotion, mid-reclaim, mid-restore, or inside a scale op.
    fn reshard_busy(&self) -> BTreeSet<ShardId> {
        let mut busy: BTreeSet<ShardId> = BTreeSet::new();
        busy.extend(self.migrations.iter().map(|m| m.shard));
        busy.extend(self.promotions.iter().map(|&(s, _)| s));
        busy.extend(self.reclaims.iter().map(|&(s, _)| s));
        busy.extend(self.restores.iter().map(|&(s, _)| s));
        for op in &self.scale_ops {
            busy.extend(op.shards());
        }
        busy
    }

    fn mint_shard_id(&mut self) -> ShardId {
        let id = ShardId(self.next_shard_id);
        self.next_shard_id += 1;
        id
    }

    /// Drain-style target pick for shards entering the spec, excluding
    /// the servers already involved in the op.
    fn pick_scale_target(
        &self,
        exclude: &[ServerId],
        extra: &BTreeMap<ServerId, LoadVector>,
        load: &LoadVector,
    ) -> Option<ServerId> {
        self.servers
            .iter()
            .filter(|(id, e)| e.alive && !e.draining && !exclude.contains(id))
            .filter(|(id, e)| {
                let mut usage = self.usage_of(**id);
                if let Some(x) = extra.get(id) {
                    usage += *x;
                }
                usage += *load;
                usage.fits_within(&e.capacity) || e.capacity == LoadVector::zero()
            })
            .min_by(|(a, ea), (b, eb)| {
                let ua = self.usage_of(**a).max_utilization(&ea.capacity);
                let ub = self.usage_of(**b).max_utilization(&eb.capacity);
                ua.partial_cmp(&ub).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(id, _)| *id)
    }

    /// Matches an ack against in-flight scale ops and advances the
    /// owning state machine. Returns true when consumed.
    fn scale_rpc_acked(&mut self, server: ServerId, rpc: ServerRpc) -> bool {
        for idx in 0..self.scale_ops.len() {
            let advanced = match self.scale_ops.get(idx) {
                Some(ScaleOpState::Split(op)) => {
                    let op = op.clone();
                    self.split_acked(idx, &op, server, rpc)
                }
                Some(ScaleOpState::Merge(op)) => {
                    let op = op.clone();
                    self.merge_acked(idx, &op, server, rpc)
                }
                None => false,
            };
            if advanced {
                return true;
            }
        }
        false
    }

    fn split_acked(&mut self, idx: usize, op: &SplitOp, server: ServerId, rpc: ServerRpc) -> bool {
        let mut op = op.clone();
        match op.phase {
            ScalePhase::Prepare => {
                let expected = |child: ShardId| ServerRpc::PrepareAddShard {
                    shard: child,
                    current_owner: op.parent_primary,
                    role: ReplicaRole::Primary,
                };
                if server == op.left_to && rpc == expected(op.left) {
                    op.left_ready = true;
                } else if server == op.right_to && rpc == expected(op.right) {
                    op.right_ready = true;
                } else {
                    return false;
                }
                if op.left_ready && op.right_ready {
                    op.phase = ScalePhase::Forward;
                    op.left_ready = false;
                    op.right_ready = false;
                    self.send_rpc(
                        op.parent_primary,
                        ServerRpc::SplitForward {
                            parent: op.parent,
                            left: op.left,
                            left_to: op.left_to,
                            right: op.right,
                            right_to: op.right_to,
                        },
                    );
                }
                self.store_scale_op(idx, ScaleOpState::Split(op));
                true
            }
            ScalePhase::Forward => {
                let expected = ServerRpc::SplitForward {
                    parent: op.parent,
                    left: op.left,
                    left_to: op.left_to,
                    right: op.right,
                    right_to: op.right_to,
                };
                if server != op.parent_primary || rpc != expected {
                    return false;
                }
                self.send_rpc(
                    op.left_to,
                    ServerRpc::AddShard {
                        shard: op.left,
                        role: ReplicaRole::Primary,
                    },
                );
                self.send_rpc(
                    op.right_to,
                    ServerRpc::AddShard {
                        shard: op.right,
                        role: ReplicaRole::Primary,
                    },
                );
                if self.config.skip_cutover_ack {
                    // DST ablation: commit at send time. See
                    // `OrchestratorConfig::skip_cutover_ack`.
                    self.scale_ops.swap_remove(idx);
                    self.commit_split(&op);
                } else {
                    op.phase = ScalePhase::Cutover;
                    self.store_scale_op(idx, ScaleOpState::Split(op));
                }
                true
            }
            ScalePhase::Cutover => {
                let expected = |child: ShardId| ServerRpc::AddShard {
                    shard: child,
                    role: ReplicaRole::Primary,
                };
                if server == op.left_to && rpc == expected(op.left) {
                    op.left_ready = true;
                } else if server == op.right_to && rpc == expected(op.right) {
                    op.right_ready = true;
                } else {
                    return false;
                }
                if op.left_ready && op.right_ready {
                    self.scale_ops.swap_remove(idx);
                    self.commit_split(&op);
                } else {
                    self.store_scale_op(idx, ScaleOpState::Split(op));
                }
                true
            }
        }
    }

    fn merge_acked(&mut self, idx: usize, op: &MergeOp, server: ServerId, rpc: ServerRpc) -> bool {
        let mut op = op.clone();
        match op.phase {
            ScalePhase::Prepare => {
                let expected = ServerRpc::PrepareAddShard {
                    shard: op.target,
                    current_owner: op.left_primary,
                    role: ReplicaRole::Primary,
                };
                if server != op.target_to || rpc != expected {
                    return false;
                }
                op.phase = ScalePhase::Forward;
                self.send_rpc(
                    op.left_primary,
                    ServerRpc::MergeForward {
                        source: op.left,
                        target: op.target,
                        target_to: op.target_to,
                    },
                );
                self.send_rpc(
                    op.right_primary,
                    ServerRpc::MergeForward {
                        source: op.right,
                        target: op.target,
                        target_to: op.target_to,
                    },
                );
                self.store_scale_op(idx, ScaleOpState::Merge(op));
                true
            }
            ScalePhase::Forward => {
                let expected = |source: ShardId| ServerRpc::MergeForward {
                    source,
                    target: op.target,
                    target_to: op.target_to,
                };
                if server == op.left_primary && rpc == expected(op.left) {
                    op.left_ready = true;
                } else if server == op.right_primary && rpc == expected(op.right) {
                    op.right_ready = true;
                } else {
                    return false;
                }
                if op.left_ready && op.right_ready {
                    self.send_rpc(
                        op.target_to,
                        ServerRpc::AddShard {
                            shard: op.target,
                            role: ReplicaRole::Primary,
                        },
                    );
                    if self.config.skip_cutover_ack {
                        self.scale_ops.swap_remove(idx);
                        self.commit_merge(&op);
                        return true;
                    }
                    op.phase = ScalePhase::Cutover;
                }
                self.store_scale_op(idx, ScaleOpState::Merge(op));
                true
            }
            ScalePhase::Cutover => {
                let expected = ServerRpc::AddShard {
                    shard: op.target,
                    role: ReplicaRole::Primary,
                };
                if server != op.target_to || rpc != expected {
                    return false;
                }
                self.scale_ops.swap_remove(idx);
                self.commit_merge(&op);
                true
            }
        }
    }

    fn store_scale_op(&mut self, idx: usize, op: ScaleOpState) {
        if let Some(slot) = self.scale_ops.get_mut(idx) {
            *slot = op;
        }
    }

    /// Commit step of a split: rewrite the spec, swap the assignment,
    /// publish — then drain the old primary through the reclaim path.
    fn commit_split(&mut self, op: &SplitOp) {
        let Some(spec) = self.spec.as_ref() else {
            return;
        };
        let new_spec = match spec.split_shard(op.parent, &op.at, op.left, op.right) {
            Ok(s) => s,
            Err(reason) => {
                // Unreachable by construction (the op held exclusive
                // ownership of the parent's range); surface and recover
                // rather than corrupt the spec.
                self.push_error(SmError::conflict(format!(
                    "split of {} failed at commit: {reason}",
                    op.parent
                )));
                self.stats.splits_aborted += 1;
                self.reclaim_from(op.left, op.left_to, None);
                self.reclaim_from(op.right, op.right_to, None);
                self.loads.remove(&op.left);
                self.loads.remove(&op.right);
                self.restore_serving(op.parent, op.parent_primary, None);
                return;
            }
        };
        self.spec = Some(new_spec);
        self.spec_version += 1;
        let desired = self.desired_replicas.get(&op.parent).copied().unwrap_or(1);
        for (child, to) in [(op.left, op.left_to), (op.right, op.right_to)] {
            self.shards.push(child);
            self.desired_replicas.insert(child, desired);
            if let Err(reason) = self.assignment.add_replica(child, to, ReplicaRole::Primary) {
                self.push_error(SmError::conflict(format!(
                    "split child {child} could not be recorded at {to}: {reason}"
                )));
            }
        }
        self.retire_shard(op.parent);
        self.publish_map();
        self.stats.splits_completed += 1;
        if desired > 1 {
            // Children start primary-only; refill their secondaries.
            self.run_emergency();
        }
    }

    /// Commit step of a merge: mirror image of `commit_split`.
    fn commit_merge(&mut self, op: &MergeOp) {
        let Some(spec) = self.spec.as_ref() else {
            return;
        };
        let new_spec = match spec.merge_shards(op.left, op.right, op.target) {
            Ok(s) => s,
            Err(reason) => {
                self.push_error(SmError::conflict(format!(
                    "merge into {} failed at commit: {reason}",
                    op.target
                )));
                self.stats.merges_aborted += 1;
                self.reclaim_from(op.target, op.target_to, None);
                self.loads.remove(&op.target);
                self.restore_serving(op.left, op.left_primary, None);
                self.restore_serving(op.right, op.right_primary, None);
                return;
            }
        };
        self.spec = Some(new_spec);
        self.spec_version += 1;
        let desired = self
            .desired_replicas
            .get(&op.left)
            .copied()
            .unwrap_or(1)
            .max(self.desired_replicas.get(&op.right).copied().unwrap_or(1));
        self.shards.push(op.target);
        self.desired_replicas.insert(op.target, desired);
        if let Err(reason) =
            self.assignment
                .add_replica(op.target, op.target_to, ReplicaRole::Primary)
        {
            self.push_error(SmError::conflict(format!(
                "merged shard {} could not be recorded at {}: {reason}",
                op.target, op.target_to
            )));
        }
        self.retire_shard(op.left);
        self.retire_shard(op.right);
        self.publish_map();
        self.stats.merges_completed += 1;
        if desired > 1 {
            self.run_emergency();
        }
    }

    /// Removes a committed-away shard from every book and drains its
    /// remaining replicas through the reclaim path (step 5: the old
    /// primary keeps forwarding residual traffic until dropped).
    fn retire_shard(&mut self, shard: ShardId) {
        let holders: Vec<ServerId> = self
            .assignment
            .replicas(shard)
            .iter()
            .map(|r| r.server)
            .collect();
        for server in holders {
            self.assignment.remove_replica(shard, server);
            self.reclaim_from(shard, server, None);
        }
        self.shards.retain(|&s| s != shard);
        self.desired_replicas.remove(&shard);
        self.loads.remove(&shard);
    }

    /// Aborts an in-flight scale op before commit: reclaim the
    /// unpublished children/target, resume the sources' direct serving.
    /// `dead` marks a server that just failed — nothing is sent to it
    /// (lease expiry fences whatever it held).
    fn abort_scale_op(&mut self, idx: usize, dead: Option<ServerId>) {
        let op = self.scale_ops.swap_remove(idx);
        match op {
            ScaleOpState::Split(op) => {
                self.stats.splits_aborted += 1;
                self.loads.remove(&op.left);
                self.loads.remove(&op.right);
                self.reclaim_from(op.left, op.left_to, dead);
                self.reclaim_from(op.right, op.right_to, dead);
                self.restore_serving(op.parent, op.parent_primary, dead);
            }
            ScaleOpState::Merge(op) => {
                self.stats.merges_aborted += 1;
                self.loads.remove(&op.target);
                self.reclaim_from(op.target, op.target_to, dead);
                self.restore_serving(op.left, op.left_primary, dead);
                self.restore_serving(op.right, op.right_primary, dead);
            }
        }
    }

    /// Sends a compensating `DropShard` through the reclaim machinery
    /// (retried on failure, fenced by lease expiry on death).
    fn reclaim_from(&mut self, shard: ShardId, server: ServerId, dead: Option<ServerId>) {
        if Some(server) == dead || !self.server_alive(server) {
            return;
        }
        if !self.reclaims.contains(&(shard, server)) {
            self.reclaims.push((shard, server));
        }
        self.send_rpc(server, ServerRpc::DropShard { shard });
    }

    /// Tells a still-assigned source primary to resume direct serving
    /// after an abort (an idempotent `AddShard` cancels forward state).
    fn restore_serving(&mut self, shard: ShardId, server: ServerId, dead: Option<ServerId>) {
        let still_assigned = self
            .assignment
            .replicas(shard)
            .iter()
            .any(|r| r.server == server);
        if Some(server) == dead || !self.server_alive(server) || !still_assigned {
            return;
        }
        if !self.restores.contains(&(shard, server)) {
            self.restores.push((shard, server));
        }
        self.send_rpc(
            server,
            ServerRpc::AddShard {
                shard,
                role: ReplicaRole::Primary,
            },
        );
    }

    /// Matches an `AddShard` ack against pending post-abort restores.
    fn restore_acked(&mut self, server: ServerId, rpc: ServerRpc) -> bool {
        if let ServerRpc::AddShard { shard, .. } = rpc {
            if let Some(pos) = self
                .restores
                .iter()
                .position(|&(s, srv)| s == shard && srv == server)
            {
                self.restores.swap_remove(pos);
                return true;
            }
        }
        false
    }

    // ---- State persistence (§3.2, §6.2) ----

    /// Serializes the orchestrator's durable state — the assignment,
    /// desired replica counts, and map version — in a compact
    /// line-oriented format. The production system stores this in
    /// ZooKeeper so that a standby replica of the control plane can
    /// take over ([`Self::restore`]) and application servers can
    /// bootstrap their assignment without the control plane.
    pub fn snapshot(&self) -> Vec<u8> {
        use std::fmt::Write as _;
        let mut out = String::from("smorch v1\n");
        let _infallible = writeln!(out, "version {}", self.map_version);
        for (shard, n) in &self.desired_replicas {
            let _infallible = writeln!(out, "desired {} {}", shard.raw(), n);
        }
        for (shard, replica) in self.assignment.iter() {
            let _infallible = writeln!(
                out,
                "replica {} {} {}",
                shard.raw(),
                replica.server.raw(),
                if replica.role.is_primary() { "P" } else { "S" }
            );
        }
        out.into_bytes()
    }

    /// Restores the durable state written by [`Self::snapshot`] into a
    /// freshly constructed orchestrator (servers must be registered by
    /// the caller, as in a normal start-up). Replaces the shard list
    /// and assignment wholesale.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), sm_types::SmError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| sm_types::SmError::InvalidArgument(format!("snapshot not utf-8: {e}")))?;
        let mut lines = text.lines();
        if lines.next() != Some("smorch v1") {
            return Err(sm_types::SmError::InvalidArgument(
                "unknown snapshot header".into(),
            ));
        }
        let mut assignment = Assignment::new();
        let mut desired = BTreeMap::new();
        let mut version = 0u64;
        for line in lines {
            let mut parts = line.split_whitespace();
            let parse = |v: Option<&str>| -> Result<u64, sm_types::SmError> {
                v.and_then(|x| x.parse().ok())
                    .ok_or_else(|| sm_types::SmError::InvalidArgument(format!("bad line: {line}")))
            };
            match parts.next() {
                Some("version") => version = parse(parts.next())?,
                Some("desired") => {
                    let shard = ShardId(parse(parts.next())?);
                    let n = parse(parts.next())? as u32;
                    desired.insert(shard, n);
                }
                Some("replica") => {
                    let shard = ShardId(parse(parts.next())?);
                    let server = ServerId(parse(parts.next())? as u32);
                    let role = match parts.next() {
                        Some("P") => ReplicaRole::Primary,
                        Some("S") => ReplicaRole::Secondary,
                        other => {
                            return Err(sm_types::SmError::InvalidArgument(format!(
                                "bad role {other:?} in line: {line}"
                            )))
                        }
                    };
                    assignment
                        .add_replica(shard, server, role)
                        .map_err(sm_types::SmError::InvalidArgument)?;
                }
                Some(other) => {
                    return Err(sm_types::SmError::InvalidArgument(format!(
                        "unknown record {other:?}"
                    )))
                }
                None => {}
            }
        }
        self.shards = desired.keys().copied().collect();
        self.desired_replicas = desired;
        self.assignment = assignment;
        self.map_version = version;
        self.migrations.clear();
        self.promotions.clear();
        self.scheduler = None;
        Ok(())
    }

    /// Re-sends `add_shard` for everything assigned to `server` — called
    /// when a container restarted in place and came back empty (§3.2:
    /// on start-up a server also reads its assignment from ZooKeeper;
    /// this is the control-plane push side of that reconciliation).
    pub fn reconcile_server(&mut self, server: ServerId) {
        if let Some(e) = self.servers.get_mut(&server) {
            e.alive = true;
        }
        // An in-place restart silently discarded any split/merge
        // forwarding or prepared-child state the server held. Committing
        // such an op later would hand ownership to a child that no
        // longer exists, or leave a "forwarding" parent serving
        // directly — abort now and let the scaler retry once quiescent.
        self.restores.retain(|&(_, srv)| srv != server);
        let doomed: Vec<usize> = self
            .scale_ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.involves_server(server))
            .map(|(i, _)| i)
            .collect();
        for idx in doomed.into_iter().rev() {
            self.abort_scale_op(idx, Some(server));
        }
        for (shard, role) in self.assignment.shards_on(server) {
            self.send_rpc(server, ServerRpc::AddShard { shard, role });
        }
    }

    /// Count of in-flight migrations (tests / metrics).
    pub fn in_flight_migrations(&self) -> usize {
        self.migrations.len()
    }

    /// Count of in-flight split/merge operations (tests / metrics).
    pub fn in_flight_reshards(&self) -> usize {
        self.scale_ops.len()
    }
}

fn default_shard_load() -> LoadVector {
    LoadVector::single(sm_types::Metric::ShardCount.id(), 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_types::{MachineId, Metric, RegionId};

    fn loc(region: u16, machine: u32) -> Location {
        Location {
            region: RegionId(region),
            datacenter: u32::from(region),
            rack: u32::from(region) * 1000 + machine,
            machine: MachineId(machine),
        }
    }

    fn config() -> OrchestratorConfig {
        let mut alloc = AllocConfig::new(vec![Metric::ShardCount.id()]);
        alloc.search.seed = 7;
        OrchestratorConfig {
            graceful_migration: true,
            move_caps: MoveCaps {
                max_total: 1000,
                max_per_server: 1000,
                max_per_shard: 1,
            },
            alloc,
            skip_cutover_ack: false,
        }
    }

    fn cap(v: f64) -> LoadVector {
        LoadVector::single(Metric::ShardCount.id(), v)
    }

    /// Orchestrator with `n` servers in one region.
    fn orch(policy: AppPolicy, n: u32, shards: u64) -> Orchestrator {
        let mut o = Orchestrator::new(AppId(1), policy, config());
        for i in 0..n {
            o.register_server(ServerId(i), loc(0, i), cap(1000.0));
        }
        o.register_shards((0..shards).map(ShardId));
        o
    }

    /// Drives all outstanding RPCs to acked completion, like a perfectly
    /// responsive world. Returns all commands processed.
    fn settle(o: &mut Orchestrator) -> Vec<OrchCommand> {
        let mut all = Vec::new();
        loop {
            let cmds = o.take_commands();
            if cmds.is_empty() {
                break;
            }
            for c in &cmds {
                if let OrchCommand::Rpc { server, rpc } = c {
                    o.rpc_acked(*server, *rpc);
                }
            }
            all.extend(cmds);
        }
        all
    }

    #[test]
    fn bootstrap_places_all_shards() {
        let mut o = orch(AppPolicy::primary_only(), 4, 20);
        o.run_emergency();
        settle(&mut o);
        assert_eq!(o.assignment().shard_count(), 20);
        for s in 0..20 {
            assert!(o.assignment().primary_of(ShardId(s)).is_some());
        }
        assert_eq!(o.in_flight_migrations(), 0);
    }

    #[test]
    fn solver_threads_knob_keeps_plans_deterministic() {
        // Same world, two runs with threads=2: the parallel solve must
        // produce identical placements both times and place everything.
        let threaded = || {
            let mut o = Orchestrator::new(
                AppId(1),
                AppPolicy::primary_only(),
                config().with_solver_threads(2),
            );
            for i in 0..6 {
                o.register_server(ServerId(i), loc(0, i), cap(1000.0));
            }
            o.register_shards((0..24).map(ShardId));
            o.run_emergency();
            settle(&mut o);
            o.run_periodic();
            settle(&mut o);
            (0..24)
                .map(|s| o.assignment().primary_of(ShardId(s)))
                .collect::<Vec<_>>()
        };
        let first = threaded();
        let second = threaded();
        assert!(first.iter().all(Option::is_some));
        assert_eq!(first, second, "threaded plans must be reproducible");
    }

    #[test]
    fn primary_secondary_bootstrap_assigns_roles() {
        let mut o = orch(AppPolicy::primary_secondary(2), 6, 10);
        o.run_emergency();
        settle(&mut o);
        for s in 0..10 {
            let replicas = o.assignment().replicas(ShardId(s));
            assert_eq!(replicas.len(), 3, "shard {s}");
            assert_eq!(
                replicas.iter().filter(|r| r.role.is_primary()).count(),
                1,
                "exactly one primary"
            );
        }
    }

    #[test]
    fn graceful_migration_follows_five_steps() {
        let mut o = orch(AppPolicy::primary_only(), 2, 1);
        o.run_emergency();
        settle(&mut o);
        let from = o.assignment().primary_of(ShardId(0)).unwrap();
        let to = if from == ServerId(0) {
            ServerId(1)
        } else {
            ServerId(0)
        };

        // Hand-inject a move and walk the protocol step by step.
        o.install_plan(vec![ReplicaMove {
            shard: ShardId(0),
            replica: 0,
            from: Some(from),
            to,
        }]);
        // Step 1: prepare_add to the new primary.
        let cmds = o.take_commands();
        assert_eq!(
            cmds,
            vec![OrchCommand::Rpc {
                server: to,
                rpc: ServerRpc::PrepareAddShard {
                    shard: ShardId(0),
                    current_owner: from,
                    role: ReplicaRole::Primary
                }
            }]
        );
        o.rpc_acked(
            to,
            ServerRpc::PrepareAddShard {
                shard: ShardId(0),
                current_owner: from,
                role: ReplicaRole::Primary,
            },
        );
        // Step 2: prepare_drop to the old primary.
        let cmds = o.take_commands();
        assert!(matches!(
            cmds[0],
            OrchCommand::Rpc {
                server,
                rpc: ServerRpc::PrepareDropShard { .. }
            } if server == from
        ));
        o.rpc_acked(
            from,
            ServerRpc::PrepareDropShard {
                shard: ShardId(0),
                new_owner: to,
                role: ReplicaRole::Primary,
            },
        );
        // Step 3: add to the new primary.
        let cmds = o.take_commands();
        assert!(matches!(
            cmds[0],
            OrchCommand::Rpc {
                server,
                rpc: ServerRpc::AddShard { .. }
            } if server == to
        ));
        // Assignment still points at the old primary pre-ack.
        assert_eq!(o.assignment().primary_of(ShardId(0)), Some(from));
        o.rpc_acked(
            to,
            ServerRpc::AddShard {
                shard: ShardId(0),
                role: ReplicaRole::Primary,
            },
        );
        // Step 4: map published; step 5: drop sent to the old primary.
        let cmds = o.take_commands();
        assert!(matches!(cmds[0], OrchCommand::MapChanged { .. }));
        assert!(matches!(
            cmds[1],
            OrchCommand::Rpc {
                server,
                rpc: ServerRpc::DropShard { .. }
            } if server == from
        ));
        assert_eq!(o.assignment().primary_of(ShardId(0)), Some(to));
        o.rpc_acked(from, ServerRpc::DropShard { shard: ShardId(0) });
        assert_eq!(o.in_flight_migrations(), 0);
        assert_eq!(o.stats().completed_moves, 2, "bootstrap + migration");
    }

    #[test]
    fn abrupt_mode_drops_before_adding() {
        let mut o = Orchestrator::new(AppId(1), AppPolicy::primary_only(), {
            let mut c = config();
            c.graceful_migration = false;
            c
        });
        for i in 0..2 {
            o.register_server(ServerId(i), loc(0, i), cap(1000.0));
        }
        o.register_shards([ShardId(0)]);
        o.run_emergency();
        settle(&mut o);
        let from = o.assignment().primary_of(ShardId(0)).unwrap();
        let to = if from == ServerId(0) {
            ServerId(1)
        } else {
            ServerId(0)
        };
        o.install_plan(vec![ReplicaMove {
            shard: ShardId(0),
            replica: 0,
            from: Some(from),
            to,
        }]);
        let cmds = o.take_commands();
        assert_eq!(
            cmds,
            vec![OrchCommand::Rpc {
                server: from,
                rpc: ServerRpc::DropShard { shard: ShardId(0) }
            }],
            "abrupt mode drops first"
        );
        o.rpc_acked(from, ServerRpc::DropShard { shard: ShardId(0) });
        // Shard is now nowhere — the unavailability window.
        assert!(o.assignment().primary_of(ShardId(0)).is_none());
        settle(&mut o);
        assert_eq!(o.assignment().primary_of(ShardId(0)), Some(to));
    }

    #[test]
    fn server_failure_promotes_secondary_and_refills() {
        let mut o = orch(AppPolicy::primary_secondary(1), 4, 4);
        o.run_emergency();
        settle(&mut o);
        let victim = o.assignment().primary_of(ShardId(0)).unwrap();
        let shards_lost = o.shards_on(victim).len();
        assert!(shards_lost > 0);

        o.server_down(victim);
        settle(&mut o);

        // Every shard has a primary again, on a live server.
        for s in 0..4 {
            let p = o.assignment().primary_of(ShardId(s)).unwrap();
            assert_ne!(p, victim);
        }
        // Replica counts restored to 2.
        for s in 0..4 {
            assert_eq!(o.assignment().replicas(ShardId(s)).len(), 2, "shard {s}");
        }
        assert!(o.stats().promotions >= 1);
    }

    #[test]
    fn primary_only_failover_recreates_primaries() {
        let mut o = orch(AppPolicy::primary_only(), 3, 9);
        o.run_emergency();
        settle(&mut o);
        o.server_down(ServerId(0));
        settle(&mut o);
        for s in 0..9 {
            let p = o.assignment().primary_of(ShardId(s)).expect("replaced");
            assert_ne!(p, ServerId(0));
        }
    }

    #[test]
    fn drain_empties_server_gracefully() {
        let mut o = orch(AppPolicy::primary_only(), 4, 12);
        o.run_emergency();
        settle(&mut o);
        let victim = ServerId(0);
        let before = o.shards_on(victim).len();
        assert!(before > 0, "victim should host something");
        assert!(!o.is_drained(victim));

        let started = o.drain_server(victim);
        assert_eq!(started, before);
        settle(&mut o);
        assert!(o.is_drained(victim));
        assert_eq!(o.assignment().shard_count(), 12, "nothing lost");
        // Cleared for reuse after the planned event.
        o.drain_finished(victim);
        assert!(!o.servers[&victim].draining);
    }

    #[test]
    fn drain_of_empty_server_is_immediate() {
        let mut o = orch(AppPolicy::primary_only(), 2, 1);
        o.run_emergency();
        settle(&mut o);
        let empty = if o.shards_on(ServerId(0)).is_empty() {
            ServerId(0)
        } else {
            ServerId(1)
        };
        if o.shards_on(empty).is_empty() {
            assert_eq!(o.drain_server(empty), 0);
            assert!(o.is_drained(empty));
        }
    }

    #[test]
    fn scaler_changes_replica_count() {
        let mut o = orch(AppPolicy::secondary_only(2), 5, 2);
        o.run_emergency();
        settle(&mut o);
        assert_eq!(o.assignment().replicas(ShardId(0)).len(), 2);

        // Scale up to 4: next emergency run fills the new slots.
        o.set_desired_replicas(ShardId(0), 4);
        o.run_emergency();
        settle(&mut o);
        assert_eq!(o.assignment().replicas(ShardId(0)).len(), 4);

        // Scale down to 1: drops happen immediately.
        o.set_desired_replicas(ShardId(0), 1);
        settle(&mut o);
        assert_eq!(o.assignment().replicas(ShardId(0)).len(), 1);
    }

    #[test]
    fn scale_down_prefers_dropping_secondaries() {
        let mut o = orch(AppPolicy::primary_secondary(2), 5, 1);
        o.run_emergency();
        settle(&mut o);
        let primary = o.assignment().primary_of(ShardId(0)).unwrap();
        o.set_desired_replicas(ShardId(0), 2);
        settle(&mut o);
        assert_eq!(o.assignment().primary_of(ShardId(0)), Some(primary));
        assert_eq!(o.assignment().replicas(ShardId(0)).len(), 2);
    }

    #[test]
    fn rpc_failure_aborts_migration() {
        let mut o = orch(AppPolicy::primary_only(), 2, 1);
        o.run_emergency();
        settle(&mut o);
        let from = o.assignment().primary_of(ShardId(0)).unwrap();
        let to = if from == ServerId(0) {
            ServerId(1)
        } else {
            ServerId(0)
        };
        o.install_plan(vec![ReplicaMove {
            shard: ShardId(0),
            replica: 0,
            from: Some(from),
            to,
        }]);
        let cmds = o.take_commands();
        let OrchCommand::Rpc { server, rpc } = cmds[0] else {
            panic!("expected rpc");
        };
        o.rpc_failed(server, rpc);
        assert_eq!(o.in_flight_migrations(), 0);
        assert_eq!(o.stats().aborted_moves, 1);
        // Old primary untouched.
        assert_eq!(o.assignment().primary_of(ShardId(0)), Some(from));
    }

    #[test]
    fn periodic_run_balances_shard_count() {
        // Shard-count capacity of 16 per server makes the 10% balance
        // band bind: 16 shards on 4 servers -> avg util 0.25, so no
        // server may hold more than 16 x 0.35 = 5.6 shards.
        let mut o = Orchestrator::new(AppId(1), AppPolicy::primary_only(), config());
        for i in 0..4 {
            o.register_server(ServerId(i), loc(0, i), cap(16.0));
        }
        o.register_shards((0..16).map(ShardId));
        // Bootstrap everything onto server 0 by failing the others first.
        o.server_down(ServerId(1));
        o.server_down(ServerId(2));
        o.server_down(ServerId(3));
        o.run_emergency();
        settle(&mut o);
        assert_eq!(o.shards_on(ServerId(0)).len(), 16);
        o.server_up(ServerId(1));
        o.server_up(ServerId(2));
        o.server_up(ServerId(3));
        // Shard-count load reports.
        for s in 0..16 {
            o.report_load(
                ServerId(0),
                vec![(ShardId(s), LoadVector::single(Metric::ShardCount.id(), 1.0))],
            );
        }
        o.run_periodic();
        settle(&mut o);
        // No server may end above the 5.6-shard band; nothing is lost.
        for i in 0..4 {
            let n = o.shards_on(ServerId(i)).len();
            assert!(n <= 5, "server {i} has {n} shards");
        }
        assert_eq!(o.assignment().shard_count(), 16);
    }

    #[test]
    fn maintenance_preparation_swaps_roles_off_affected_servers() {
        let mut o = orch(AppPolicy::primary_secondary(1), 4, 8);
        o.run_emergency();
        settle(&mut o);
        // Rack maintenance hits servers 0 and 1.
        let affected = [ServerId(0), ServerId(1)];
        let primaries_on_affected: Vec<ShardId> = (0..8)
            .map(ShardId)
            .filter(|&s| {
                o.assignment()
                    .primary_of(s)
                    .map(|p| affected.contains(&p))
                    .unwrap_or(false)
            })
            .collect();
        let escapable = primaries_on_affected
            .iter()
            .filter(|&&s| {
                o.assignment()
                    .replicas(s)
                    .iter()
                    .any(|r| !r.role.is_primary() && !affected.contains(&r.server))
            })
            .count();
        let swaps = o.prepare_for_maintenance(&affected);
        settle(&mut o);
        // Every shard that can escape has its primary off the affected
        // servers; secondaries may stay (§4.2).
        for s in primaries_on_affected {
            let p = o.assignment().primary_of(s).expect("still has a primary");
            let other_replica_outside = o
                .assignment()
                .replicas(s)
                .iter()
                .any(|r| !affected.contains(&r.server));
            if other_replica_outside {
                assert!(
                    !affected.contains(&p),
                    "shard {s} primary still in blast radius"
                );
            }
        }
        assert_eq!(swaps, escapable, "one swap per escapable shard");
        // No shard lost replicas: demote/promote only.
        assert_eq!(o.assignment().replica_count(), 16);
    }

    #[test]
    fn maintenance_preparation_skips_fully_affected_shards() {
        let mut o = orch(AppPolicy::primary_secondary(1), 2, 1);
        o.run_emergency();
        settle(&mut o);
        // Both replicas live on the only two servers; nothing to do.
        let swaps = o.prepare_for_maintenance(&[ServerId(0), ServerId(1)]);
        assert_eq!(swaps, 0);
        assert!(o.assignment().primary_of(ShardId(0)).is_some());
    }

    #[test]
    fn scaler_grows_hot_shards_and_shrinks_cold_ones() {
        use crate::{ShardScaler, ShardScalerConfig};
        let mut o = orch(AppPolicy::secondary_only(2), 6, 4);
        o.run_emergency();
        settle(&mut o);
        // Shard 0 is hot (per-replica synthetic load 30), shard 1 cold.
        let hot = LoadVector::single(Metric::Synthetic.id(), 30.0);
        let cold = LoadVector::single(Metric::Synthetic.id(), 0.1);
        o.report_load(ServerId(0), vec![(ShardId(0), hot), (ShardId(1), cold)]);
        let scaler = ShardScaler::new(ShardScalerConfig::new(
            Metric::Synthetic.id(),
            1.0,
            20.0,
            1,
            6,
        ));
        let changed = o.run_scaler(&scaler);
        settle(&mut o);
        assert_eq!(changed, 2);
        // Hot: total 60 over 20-per-replica budget -> 3 replicas.
        assert_eq!(o.assignment().replicas(ShardId(0)).len(), 3);
        // Cold: shrinks to the floor.
        assert_eq!(o.assignment().replicas(ShardId(1)).len(), 1);
        // Untouched shard keeps its 2 replicas.
        assert_eq!(o.assignment().replicas(ShardId(2)).len(), 2);
    }

    #[test]
    fn failed_promotion_is_retried_until_a_primary_exists() {
        let mut o = orch(AppPolicy::primary_secondary(2), 5, 3);
        o.run_emergency();
        settle(&mut o);
        let victim = o.assignment().primary_of(ShardId(0)).unwrap();
        o.server_down(victim);
        // Intercept the promotion RPC and fail it (the successor
        // rejects or times out) instead of acking.
        let cmds = o.take_commands();
        let mut failed_one = false;
        for c in &cmds {
            if let OrchCommand::Rpc { server, rpc } = c {
                match rpc {
                    ServerRpc::ChangeRole { new, .. } if new.is_primary() && !failed_one => {
                        o.rpc_failed(*server, *rpc);
                        failed_one = true;
                    }
                    _ => o.rpc_acked(*server, *rpc),
                }
            }
        }
        assert!(failed_one, "a promotion was attempted");
        // ensure_primaries re-elects; settle the retry.
        settle(&mut o);
        for s in 0..3 {
            let p = o.assignment().primary_of(ShardId(s));
            assert!(p.is_some(), "shard {s} has a primary again: {p:?}");
            assert_ne!(p, Some(victim));
        }
    }

    #[test]
    fn nacked_promotion_immediately_retries_the_next_secondary() {
        let mut o = orch(AppPolicy::primary_secondary(2), 4, 1);
        o.run_emergency();
        settle(&mut o);
        let victim = o.assignment().primary_of(ShardId(0)).unwrap();
        o.server_down(victim);
        // Nack the promotion (the application's safe election can
        // reject a momentarily stale candidate); ack everything else.
        let cmds = o.take_commands();
        let mut nacked = None;
        for c in &cmds {
            if let OrchCommand::Rpc { server, rpc } = c {
                match rpc {
                    ServerRpc::ChangeRole { new, .. } if new.is_primary() && nacked.is_none() => {
                        o.rpc_failed(*server, *rpc);
                        nacked = Some(*server);
                    }
                    _ => o.rpc_acked(*server, *rpc),
                }
            }
        }
        let nacked = nacked.expect("a promotion was attempted");
        // The retry is already queued — no periodic sweep needed — and
        // goes to a different secondary.
        let retry = o
            .take_commands()
            .into_iter()
            .find_map(|c| match c {
                OrchCommand::Rpc {
                    server,
                    rpc: rpc @ ServerRpc::ChangeRole { new, .. },
                } if new.is_primary() => Some((server, rpc)),
                _ => None,
            })
            .expect("immediate promotion retry");
        assert_ne!(retry.0, nacked, "retry targets the next candidate");
        o.rpc_acked(retry.0, retry.1);
        settle(&mut o);
        assert_eq!(o.assignment().primary_of(ShardId(0)), Some(retry.0));
    }

    #[test]
    fn snapshot_restore_round_trips_through_a_standby() {
        let mut o = orch(AppPolicy::primary_secondary(1), 5, 20);
        o.run_emergency();
        settle(&mut o);
        o.set_desired_replicas(ShardId(3), 3);
        settle(&mut o);
        let snapshot = o.snapshot();

        // A standby control-plane replica takes over (§6.2): fresh
        // orchestrator, same servers, restored state.
        let mut standby = Orchestrator::new(AppId(1), AppPolicy::primary_secondary(1), config());
        for i in 0..5 {
            standby.register_server(ServerId(i), loc(0, i), cap(1000.0));
        }
        standby.restore(&snapshot).expect("restore");
        assert_eq!(standby.assignment(), o.assignment());

        // The standby is fully operational: it can handle a failure.
        let victim = standby.assignment().primary_of(ShardId(0)).unwrap();
        standby.server_down(victim);
        settle(&mut standby);
        let p = standby.assignment().primary_of(ShardId(0)).unwrap();
        assert_ne!(p, victim);
    }

    #[test]
    fn restore_rejects_garbage() {
        let mut o = orch(AppPolicy::primary_only(), 2, 1);
        assert!(o.restore(b"not a snapshot").is_err());
        assert!(o.restore(b"smorch v1\nbogus record 1").is_err());
        assert!(o.restore(b"smorch v1\nreplica 1 2 X").is_err());
        assert!(o.restore(&[0xff, 0xfe]).is_err());
        // Empty-but-valid snapshot restores to an empty assignment.
        o.restore(b"smorch v1\nversion 9\n").unwrap();
        assert_eq!(o.assignment().shard_count(), 0);
    }

    #[test]
    fn duplicate_server_down_is_idempotent() {
        let mut o = orch(AppPolicy::primary_only(), 3, 3);
        o.run_emergency();
        settle(&mut o);
        o.server_down(ServerId(0));
        let published = o.stats().maps_published;
        o.server_down(ServerId(0));
        assert_eq!(o.stats().maps_published, published, "second call no-ops");
    }

    // ---- Adaptive resharding ----

    /// Drains the outbox into `(server, rpc)` pairs, dropping map
    /// notices.
    fn rpcs(o: &mut Orchestrator) -> Vec<(ServerId, ServerRpc)> {
        o.take_commands()
            .into_iter()
            .filter_map(|c| match c {
                OrchCommand::Rpc { server, rpc } => Some((server, rpc)),
                _ => None,
            })
            .collect()
    }

    /// Bootstrapped primary-only orchestrator with a registered
    /// two-shard uniform spec.
    fn reshard_orch(servers: u32) -> Orchestrator {
        let mut o = orch(AppPolicy::primary_only(), servers, 2);
        o.register_spec(ShardingSpec::uniform_u64(2));
        o.run_emergency();
        settle(&mut o);
        o
    }

    #[test]
    fn graceful_split_walks_the_generalized_five_steps() {
        let mut o = reshard_orch(3);
        let parent = ShardId(0);
        let old_primary = o.assignment().primary_of(parent).unwrap();
        o.start_split(parent).unwrap();
        assert_eq!(o.in_flight_reshards(), 1);

        // Step 1: both children prepared on servers != the old primary.
        let prepares = rpcs(&mut o);
        assert_eq!(prepares.len(), 2);
        for (s, r) in &prepares {
            assert!(matches!(
                r,
                ServerRpc::PrepareAddShard {
                    current_owner,
                    role: ReplicaRole::Primary,
                    ..
                } if *current_owner == old_primary
            ));
            assert_ne!(*s, old_primary);
            o.rpc_acked(*s, *r);
        }

        // Step 2: the parent stops serving directly and forwards
        // per-key; the split point is exposed for the world.
        assert!(o.pending_split(parent).is_some());
        let fwd = rpcs(&mut o);
        assert_eq!(fwd.len(), 1);
        let (s, r) = fwd[0];
        assert_eq!(s, old_primary);
        assert!(matches!(r, ServerRpc::SplitForward { parent: p, .. } if p == parent));
        o.rpc_acked(s, r);

        // Step 3: cutover adds — nothing committed until both ack.
        let adds = rpcs(&mut o);
        assert_eq!(adds.len(), 2);
        assert_eq!(o.sharding_spec().unwrap().shard_count(), 2);
        for (s, r) in &adds {
            assert!(matches!(
                r,
                ServerRpc::AddShard {
                    role: ReplicaRole::Primary,
                    ..
                }
            ));
            o.rpc_acked(*s, *r);
        }

        // Step 4: atomic commit — spec rewritten, children published,
        // parent retired. Step 5: residual drain via the reclaim path.
        assert_eq!(o.stats().splits_completed, 1);
        assert_eq!(o.in_flight_reshards(), 0);
        assert!(o.pending_split(parent).is_none());
        let spec = o.sharding_spec().unwrap();
        assert_eq!(spec.shard_count(), 3, "shard 1 plus two children");
        assert!(spec.range_of(parent).is_none());
        for (child, _) in [(ShardId(2), ()), (ShardId(3), ())] {
            assert!(spec.range_of(child).is_some(), "minted child in spec");
            assert!(o.assignment().primary_of(child).is_some());
        }
        settle(&mut o); // acks the parent's DropShard reclaim
        assert!(o.assignment().replicas(parent).is_empty());
    }

    #[test]
    fn graceful_merge_walks_the_inverse_protocol() {
        let mut o = reshard_orch(3);
        let left_primary = o.assignment().primary_of(ShardId(0)).unwrap();
        let right_primary = o.assignment().primary_of(ShardId(1)).unwrap();
        o.start_merge(ShardId(0), ShardId(1)).unwrap();

        // Prepare the target off both source primaries.
        let prepares = rpcs(&mut o);
        assert_eq!(prepares.len(), 1);
        let (target_to, prep) = prepares[0];
        assert_ne!(target_to, left_primary);
        assert_ne!(target_to, right_primary);
        o.rpc_acked(target_to, prep);

        // Both sources forward into the target.
        let fwds = rpcs(&mut o);
        assert_eq!(fwds.len(), 2);
        for (s, r) in &fwds {
            assert!(matches!(r, ServerRpc::MergeForward { .. }));
            o.rpc_acked(*s, *r);
        }
        assert!(o.pending_merge(ShardId(0)).is_some());

        // Single cutover add, then commit.
        let adds = rpcs(&mut o);
        assert_eq!(adds.len(), 1);
        assert_eq!(adds[0].0, target_to);
        o.rpc_acked(adds[0].0, adds[0].1);
        assert_eq!(o.stats().merges_completed, 1);
        let spec = o.sharding_spec().unwrap();
        assert_eq!(spec.shard_count(), 1);
        let merged = ShardId(2);
        assert!(spec.range_of(merged).is_some());
        assert_eq!(o.assignment().primary_of(merged), Some(target_to));
        settle(&mut o);
        assert!(o.assignment().replicas(ShardId(0)).is_empty());
        assert!(o.assignment().replicas(ShardId(1)).is_empty());
    }

    #[test]
    fn split_aborts_on_nack_and_the_parent_resumes() {
        let mut o = reshard_orch(3);
        let parent = ShardId(0);
        let old_primary = o.assignment().primary_of(parent).unwrap();
        o.start_split(parent).unwrap();
        for (s, r) in rpcs(&mut o) {
            o.rpc_acked(s, r); // prepares
        }
        let fwd = rpcs(&mut o);
        o.rpc_failed(fwd[0].0, fwd[0].1); // the parent refuses to forward

        assert_eq!(o.stats().splits_aborted, 1);
        assert_eq!(o.in_flight_reshards(), 0);
        let cleanup = rpcs(&mut o);
        // Both prepared children are reclaimed; the parent resumes.
        assert_eq!(
            cleanup
                .iter()
                .filter(|(_, r)| matches!(r, ServerRpc::DropShard { .. }))
                .count(),
            2
        );
        assert!(cleanup.iter().any(|(s, r)| *s == old_primary
            && matches!(r, ServerRpc::AddShard { shard, .. } if *shard == parent)));
        for (s, r) in cleanup {
            o.rpc_acked(s, r);
        }
        settle(&mut o);
        assert_eq!(
            o.sharding_spec().unwrap().shard_count(),
            2,
            "spec untouched"
        );
        assert_eq!(o.assignment().primary_of(parent), Some(old_primary));
        assert_eq!(o.in_flight_migrations(), 0);
    }

    #[test]
    fn involved_server_failure_aborts_the_split() {
        let mut o = reshard_orch(4);
        let parent = ShardId(0);
        let old_primary = o.assignment().primary_of(parent).unwrap();
        o.start_split(parent).unwrap();
        let prepares = rpcs(&mut o);
        let (left_to, _) = prepares[0];
        for (s, r) in &prepares {
            o.rpc_acked(*s, *r);
        }
        // A child target dies mid-forward: the whole op aborts and the
        // parent keeps (resumes) serving its original range.
        o.server_down(left_to);
        assert_eq!(o.stats().splits_aborted, 1);
        assert_eq!(o.in_flight_reshards(), 0);
        settle(&mut o);
        assert_eq!(o.sharding_spec().unwrap().shard_count(), 2);
        assert_eq!(o.assignment().primary_of(parent), Some(old_primary));
    }

    #[test]
    fn skip_cutover_ack_commits_before_children_ack() {
        let mut cfg = config();
        cfg.skip_cutover_ack = true;
        let mut o = Orchestrator::new(AppId(1), AppPolicy::primary_only(), cfg);
        for i in 0..3 {
            o.register_server(ServerId(i), loc(0, i), cap(1000.0));
        }
        o.register_shards((0..2).map(ShardId));
        o.register_spec(ShardingSpec::uniform_u64(2));
        o.run_emergency();
        settle(&mut o);
        o.start_split(ShardId(0)).unwrap();
        for (s, r) in rpcs(&mut o) {
            o.rpc_acked(s, r); // prepares
        }
        let fwd = rpcs(&mut o);
        o.rpc_acked(fwd[0].0, fwd[0].1);
        // Mutated behavior: committed the instant the cutover adds were
        // *sent* — children own ranges they may never have applied.
        assert_eq!(o.stats().splits_completed, 1);
        assert_eq!(o.in_flight_reshards(), 0);
        assert_eq!(o.sharding_spec().unwrap().shard_count(), 3);
    }

    #[test]
    fn run_reshard_executes_scaler_recommendations() {
        let mut o = reshard_orch(3);
        o.report_load(
            ServerId(0),
            vec![(ShardId(0), cap(500.0)), (ShardId(1), cap(50.0))],
        );
        let scaler = crate::SplitScaler::new(crate::SplitScalerConfig::new(
            Metric::ShardCount.id(),
            100.0,
            30.0,
            1,
            8,
        ));
        assert_eq!(o.run_reshard(&scaler), 1, "hot shard 0 splits");
        assert_eq!(o.run_reshard(&scaler), 0, "concurrency cap holds");
        settle(&mut o);
        assert_eq!(o.stats().splits_completed, 1);
        assert_eq!(o.sharding_spec().unwrap().shard_count(), 3);
    }

    #[test]
    fn rejected_promotion_transition_is_surfaced_not_ignored() {
        let mut o = orch(AppPolicy::primary_secondary(1), 4, 1);
        o.run_emergency();
        settle(&mut o);
        let shard = ShardId(0);
        let a = o.assignment().primary_of(shard).unwrap();
        o.server_down(a);
        // Hold back the promotion ack; drive everything else.
        let mut promote = None;
        loop {
            let cmds = rpcs(&mut o);
            if cmds.is_empty() {
                break;
            }
            for (s, r) in cmds {
                if promote.is_none()
                    && matches!(r, ServerRpc::ChangeRole { new, .. } if new.is_primary())
                {
                    promote = Some((s, r));
                } else {
                    o.rpc_acked(s, r);
                }
            }
        }
        let (b, promote) = promote.expect("promotion queued");
        // The candidate's lease expires while its ack is in flight...
        o.server_down(b);
        settle(&mut o);
        // ...and the stale ack arrives: the assignment (which dropped
        // b's replica) refuses the transition. Before the fix this was
        // silently ignored and a contradictory map published.
        let published = o.stats().maps_published;
        o.rpc_acked(b, promote);
        assert_eq!(o.stats().failed_transitions, 1);
        assert_eq!(o.stats().maps_published, published, "no contradictory map");
        let errs = o.drain_errors();
        assert_eq!(errs.len(), 1, "anomaly surfaced: {errs:?}");
        assert!(o.drain_errors().is_empty(), "drained");
        settle(&mut o);
        assert!(o.assignment().primary_of(shard).is_some(), "re-elected");
    }
}
