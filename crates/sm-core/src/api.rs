//! The SM programming model (Figure 11).
//!
//! An application server implements [`ShardServer`]; the orchestrator
//! drives it with [`ServerRpc`] calls. The model is deliberately tiny —
//! the paper credits this simplicity with lowering the adoption barrier
//! (§3.3) — yet rich enough to express the graceful primary migration
//! protocol: the two `prepare_*` calls set up request forwarding between
//! the old and new primary before ownership officially changes hands.

use sm_types::{LoadVector, ReplicaRole, ServerId, ShardId, SmError};

/// The callbacks an application server implements (Figure 11).
pub trait ShardServer {
    /// Take ownership of `shard` in `role`; the server must be ready to
    /// serve requests for it when this returns.
    fn add_shard(&mut self, shard: ShardId, role: ReplicaRole) -> Result<(), SmError>;

    /// Release `shard`; the server stops serving it.
    fn drop_shard(&mut self, shard: ShardId) -> Result<(), SmError>;

    /// Switch the replica of `shard` from `current` to `new` role.
    fn change_role(
        &mut self,
        shard: ShardId,
        current: ReplicaRole,
        new: ReplicaRole,
    ) -> Result<(), SmError>;

    /// Step 1 of graceful migration (§4.3): prepare to take over `shard`
    /// from `current_owner`. Until `add_shard`, primary-type requests
    /// are only accepted when forwarded from the current owner.
    fn prepare_add_shard(
        &mut self,
        shard: ShardId,
        current_owner: ServerId,
        role: ReplicaRole,
    ) -> Result<(), SmError>;

    /// Step 2 of graceful migration (§4.3): `new_owner` is taking over;
    /// start forwarding primary-type requests to it.
    fn prepare_drop_shard(
        &mut self,
        shard: ShardId,
        new_owner: ServerId,
        role: ReplicaRole,
    ) -> Result<(), SmError>;

    /// Current per-shard load, pulled periodically by the orchestrator.
    fn report_load(&self) -> Vec<(ShardId, LoadVector)>;

    /// Split analogue of `prepare_drop_shard` (§4.3 generalized to 1→N):
    /// the server keeps `parent`'s data but stops serving it directly,
    /// forwarding each request to the prepared child owner covering its
    /// key (`left_to` / `right_to`). The child ranges are fetched from
    /// the spec service by correlation, so the RPC stays tiny.
    ///
    /// The default refuses — an application must opt into resharding.
    fn split_forward(
        &mut self,
        parent: ShardId,
        left: ShardId,
        left_to: ServerId,
        right: ShardId,
        right_to: ServerId,
    ) -> Result<(), SmError> {
        Err(SmError::conflict(format!(
            "split of {parent} into {left}@{left_to}/{right}@{right_to} \
             not supported by this application"
        )))
    }

    /// Merge analogue of `prepare_drop_shard` (§4.3 generalized to N→1):
    /// stop serving `source` directly and forward its requests to the
    /// prepared owner of the merged shard `target`.
    ///
    /// The default refuses — an application must opt into resharding.
    fn merge_forward(
        &mut self,
        source: ShardId,
        target: ShardId,
        target_to: ServerId,
    ) -> Result<(), SmError> {
        Err(SmError::conflict(format!(
            "merge of {source} into {target}@{target_to} \
             not supported by this application"
        )))
    }
}

/// One orchestrator-to-server RPC.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServerRpc {
    /// `add_shard(shard, role)`.
    AddShard {
        /// Target shard.
        shard: ShardId,
        /// Role to assume.
        role: ReplicaRole,
    },
    /// `drop_shard(shard)`.
    DropShard {
        /// Target shard.
        shard: ShardId,
    },
    /// `change_role(shard, current, new)`.
    ChangeRole {
        /// Target shard.
        shard: ShardId,
        /// Current role.
        current: ReplicaRole,
        /// New role.
        new: ReplicaRole,
    },
    /// `prepare_add_shard(shard, current_owner, role)`.
    PrepareAddShard {
        /// Target shard.
        shard: ShardId,
        /// The server currently holding the role.
        current_owner: ServerId,
        /// Role being transferred.
        role: ReplicaRole,
    },
    /// `prepare_drop_shard(shard, new_owner, role)`.
    PrepareDropShard {
        /// Target shard.
        shard: ShardId,
        /// The server taking over the role.
        new_owner: ServerId,
        /// Role being transferred.
        role: ReplicaRole,
    },
    /// `split_forward(parent, left, left_to, right, right_to)`.
    SplitForward {
        /// The shard being split (hosted by the receiving server).
        parent: ShardId,
        /// Child owning the low half of the parent's range.
        left: ShardId,
        /// Server prepared to host `left`.
        left_to: ServerId,
        /// Child owning the high half of the parent's range.
        right: ShardId,
        /// Server prepared to host `right`.
        right_to: ServerId,
    },
    /// `merge_forward(source, target, target_to)`.
    MergeForward {
        /// The shard being merged away (hosted by the receiving server).
        source: ShardId,
        /// The merged shard absorbing `source`'s range.
        target: ShardId,
        /// Server prepared to host `target`.
        target_to: ServerId,
    },
}

impl ServerRpc {
    /// The shard this RPC concerns.
    pub fn shard(&self) -> ShardId {
        match self {
            ServerRpc::AddShard { shard, .. }
            | ServerRpc::DropShard { shard }
            | ServerRpc::ChangeRole { shard, .. }
            | ServerRpc::PrepareAddShard { shard, .. }
            | ServerRpc::PrepareDropShard { shard, .. } => *shard,
            ServerRpc::SplitForward { parent, .. } => *parent,
            ServerRpc::MergeForward { source, .. } => *source,
        }
    }

    /// Dispatches this RPC onto a [`ShardServer`] implementation.
    pub fn dispatch<S: ShardServer + ?Sized>(&self, server: &mut S) -> Result<(), SmError> {
        match *self {
            ServerRpc::AddShard { shard, role } => server.add_shard(shard, role),
            ServerRpc::DropShard { shard } => server.drop_shard(shard),
            ServerRpc::ChangeRole {
                shard,
                current,
                new,
            } => server.change_role(shard, current, new),
            ServerRpc::PrepareAddShard {
                shard,
                current_owner,
                role,
            } => server.prepare_add_shard(shard, current_owner, role),
            ServerRpc::PrepareDropShard {
                shard,
                new_owner,
                role,
            } => server.prepare_drop_shard(shard, new_owner, role),
            ServerRpc::SplitForward {
                parent,
                left,
                left_to,
                right,
                right_to,
            } => server.split_forward(parent, left, left_to, right, right_to),
            ServerRpc::MergeForward {
                source,
                target,
                target_to,
            } => server.merge_forward(source, target, target_to),
        }
    }
}

/// A command emitted by the orchestrator for the embedding world to
/// carry out.
#[derive(Clone, Debug, PartialEq)]
pub enum OrchCommand {
    /// Deliver an RPC to an application server and report the ack back
    /// via [`crate::Orchestrator::rpc_acked`].
    Rpc {
        /// Destination server.
        server: ServerId,
        /// The call.
        rpc: ServerRpc,
    },
    /// The shard map changed: the world should (re)publish the
    /// orchestrator's current map through service discovery. Carrying
    /// only the version keeps the hot path O(1); the world pulls the
    /// full map lazily (and may debounce bursts of changes).
    MapChanged {
        /// The new map version.
        version: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Minimal recording implementation used across sm-core tests.
    #[derive(Default)]
    struct Recorder {
        shards: BTreeMap<ShardId, ReplicaRole>,
        calls: Vec<String>,
    }

    impl ShardServer for Recorder {
        fn add_shard(&mut self, shard: ShardId, role: ReplicaRole) -> Result<(), SmError> {
            self.calls.push(format!("add {shard} {role}"));
            self.shards.insert(shard, role);
            Ok(())
        }
        fn drop_shard(&mut self, shard: ShardId) -> Result<(), SmError> {
            self.calls.push(format!("drop {shard}"));
            self.shards
                .remove(&shard)
                .map(|_| ())
                .ok_or_else(|| SmError::not_found(shard))
        }
        fn change_role(
            &mut self,
            shard: ShardId,
            current: ReplicaRole,
            new: ReplicaRole,
        ) -> Result<(), SmError> {
            self.calls.push(format!("role {shard} {current}->{new}"));
            let r = self
                .shards
                .get_mut(&shard)
                .ok_or_else(|| SmError::not_found(shard))?;
            if *r != current {
                return Err(SmError::conflict("role mismatch"));
            }
            *r = new;
            Ok(())
        }
        fn prepare_add_shard(
            &mut self,
            shard: ShardId,
            _current_owner: ServerId,
            _role: ReplicaRole,
        ) -> Result<(), SmError> {
            self.calls.push(format!("prep_add {shard}"));
            Ok(())
        }
        fn prepare_drop_shard(
            &mut self,
            shard: ShardId,
            _new_owner: ServerId,
            _role: ReplicaRole,
        ) -> Result<(), SmError> {
            self.calls.push(format!("prep_drop {shard}"));
            Ok(())
        }
        fn report_load(&self) -> Vec<(ShardId, LoadVector)> {
            self.shards
                .keys()
                .map(|s| (*s, LoadVector::zero()))
                .collect()
        }
    }

    #[test]
    fn dispatch_routes_to_trait_methods() {
        let mut srv = Recorder::default();
        let s = ShardId(3);
        ServerRpc::AddShard {
            shard: s,
            role: ReplicaRole::Primary,
        }
        .dispatch(&mut srv)
        .unwrap();
        ServerRpc::ChangeRole {
            shard: s,
            current: ReplicaRole::Primary,
            new: ReplicaRole::Secondary,
        }
        .dispatch(&mut srv)
        .unwrap();
        ServerRpc::PrepareDropShard {
            shard: s,
            new_owner: ServerId(9),
            role: ReplicaRole::Secondary,
        }
        .dispatch(&mut srv)
        .unwrap();
        ServerRpc::DropShard { shard: s }
            .dispatch(&mut srv)
            .unwrap();
        assert_eq!(
            srv.calls,
            vec![
                "add shard3 primary",
                "role shard3 primary->secondary",
                "prep_drop shard3",
                "drop shard3"
            ]
        );
    }

    #[test]
    fn rpc_shard_accessor() {
        assert_eq!(
            ServerRpc::DropShard { shard: ShardId(7) }.shard(),
            ShardId(7)
        );
        assert_eq!(
            ServerRpc::PrepareAddShard {
                shard: ShardId(1),
                current_owner: ServerId(2),
                role: ReplicaRole::Primary
            }
            .shard(),
            ShardId(1)
        );
    }

    #[test]
    fn resharding_rpcs_default_to_refusal() {
        let mut srv = Recorder::default();
        let err = ServerRpc::SplitForward {
            parent: ShardId(1),
            left: ShardId(2),
            left_to: ServerId(4),
            right: ShardId(3),
            right_to: ServerId(5),
        }
        .dispatch(&mut srv)
        .unwrap_err();
        assert!(matches!(err, SmError::Conflict(_)));
        let err = ServerRpc::MergeForward {
            source: ShardId(1),
            target: ShardId(2),
            target_to: ServerId(4),
        }
        .dispatch(&mut srv)
        .unwrap_err();
        assert!(matches!(err, SmError::Conflict(_)));
        assert_eq!(
            ServerRpc::MergeForward {
                source: ShardId(1),
                target: ShardId(2),
                target_to: ServerId(4),
            }
            .shard(),
            ShardId(1),
            "forward RPCs key on the shard leaving the spec"
        );
    }

    #[test]
    fn change_role_validates_current() {
        let mut srv = Recorder::default();
        srv.add_shard(ShardId(1), ReplicaRole::Secondary).unwrap();
        let err = srv
            .change_role(ShardId(1), ReplicaRole::Primary, ReplicaRole::Secondary)
            .unwrap_err();
        assert!(matches!(err, SmError::Conflict(_)));
    }
}
