//! The scale-out global control plane (§6.1, Figure 14).
//!
//! A single SM control plane cannot manage millions of servers and
//! billions of shards, so SM shards *itself*: applications are divided
//! into partitions (thousands of servers, hundreds of thousands of
//! replicas each), partitions are assigned to mini-SMs, and mini-SMs
//! scale out horizontally. This module is that bookkeeping layer:
//!
//! - [`ApplicationRegistry`] — applications and their policies;
//! - [`ApplicationManager`] — splits an application's servers/shards
//!   into partitions;
//! - [`PartitionRegistry`] — assigns partitions to mini-SMs,
//!   least-loaded first, adding mini-SMs as capacity demands;
//! - [`ReadService`] — indices over control-plane metadata for queries.

use crate::orchestrator::{Orchestrator, OrchestratorConfig};
use sm_types::{AppId, AppPolicy, MiniSmId, PartitionId, ServerId, ShardId, SmError};
use std::collections::BTreeMap;

/// Per-application record in the registry.
#[derive(Clone, Debug)]
pub struct AppRecord {
    /// Human name.
    pub name: String,
    /// Policy.
    pub policy: AppPolicy,
    /// The application's partitions, in creation order.
    pub partitions: Vec<PartitionId>,
}

/// The application registry: the entry point of Figure 14.
#[derive(Debug, Default)]
pub struct ApplicationRegistry {
    apps: BTreeMap<AppId, AppRecord>,
    next_app: u32,
}

impl ApplicationRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an application, returning its id.
    pub fn register(&mut self, name: impl Into<String>, policy: AppPolicy) -> AppId {
        let id = AppId(self.next_app);
        self.next_app += 1;
        self.apps.insert(
            id,
            AppRecord {
                name: name.into(),
                policy,
                partitions: Vec::new(),
            },
        );
        id
    }

    /// Looks up an application.
    pub fn get(&self, app: AppId) -> Option<&AppRecord> {
        self.apps.get(&app)
    }

    /// Records that `app` gained a partition.
    pub fn add_partition(&mut self, app: AppId, partition: PartitionId) {
        if let Some(rec) = self.apps.get_mut(&app) {
            rec.partitions.push(partition);
        }
    }

    /// Number of registered applications.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// True when no application is registered.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Iterates over all applications.
    pub fn iter(&self) -> impl Iterator<Item = (&AppId, &AppRecord)> {
        self.apps.iter()
    }
}

/// A partition: a disjoint slice of one application's servers and
/// shards, managed by exactly one mini-SM (§6.1). A shard's replicas
/// always stay within one partition.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Identifier.
    pub id: PartitionId,
    /// Owning application.
    pub app: AppId,
    /// Servers in this partition.
    pub servers: Vec<ServerId>,
    /// Shards in this partition.
    pub shards: Vec<ShardId>,
}

/// Splits applications into partitions.
#[derive(Debug)]
pub struct ApplicationManager {
    /// Maximum servers per partition (the paper: "thousands").
    pub max_servers_per_partition: usize,
    next_partition: u32,
}

impl ApplicationManager {
    /// Creates a manager with the given partition size limit.
    pub fn new(max_servers_per_partition: usize) -> Self {
        assert!(max_servers_per_partition > 0);
        Self {
            max_servers_per_partition,
            next_partition: 0,
        }
    }

    /// Divides an application into partitions: servers are split into
    /// chunks of at most `max_servers_per_partition`, and shards are
    /// distributed round-robin so every partition gets a proportional
    /// slice. Replicas of one shard live in one partition by
    /// construction (the shard itself belongs to exactly one).
    // sm-lint: allow(P1) — indexes are `i % n_parts` with n_parts = len ≥ 1
    pub fn partition_app(
        &mut self,
        app: AppId,
        servers: &[ServerId],
        shards: &[ShardId],
    ) -> Vec<Partition> {
        let n_parts = servers
            .len()
            .div_ceil(self.max_servers_per_partition)
            .max(1);
        let mut parts: Vec<Partition> = (0..n_parts)
            .map(|_| {
                let id = PartitionId(self.next_partition);
                self.next_partition += 1;
                Partition {
                    id,
                    app,
                    servers: Vec::new(),
                    shards: Vec::new(),
                }
            })
            .collect();
        for (i, &srv) in servers.iter().enumerate() {
            parts[i % n_parts].servers.push(srv);
        }
        for (i, &shard) in shards.iter().enumerate() {
            parts[i % n_parts].shards.push(shard);
        }
        parts
    }
}

/// Capacity bookkeeping for one mini-SM.
#[derive(Clone, Debug, Default)]
pub struct MiniSmInfo {
    /// Partitions assigned.
    pub partitions: Vec<PartitionId>,
    /// Servers managed (sum over partitions).
    pub servers: usize,
    /// Shard replicas managed (sum over partitions).
    pub replicas: usize,
}

/// Assigns partitions to mini-SMs (Figure 14's partition registry).
#[derive(Debug)]
pub struct PartitionRegistry {
    mini_sms: BTreeMap<MiniSmId, MiniSmInfo>,
    assignment: BTreeMap<PartitionId, MiniSmId>,
    /// A mini-SM takes new partitions until it manages this many servers.
    pub max_servers_per_minism: usize,
    /// ... or this many shard replicas, whichever fills first.
    pub max_replicas_per_minism: usize,
    next_minism: u32,
}

impl PartitionRegistry {
    /// Creates a registry; mini-SMs are added on demand.
    pub fn new(max_servers_per_minism: usize) -> Self {
        assert!(max_servers_per_minism > 0);
        Self {
            mini_sms: BTreeMap::new(),
            assignment: BTreeMap::new(),
            max_servers_per_minism,
            max_replicas_per_minism: usize::MAX,
            next_minism: 0,
        }
    }

    /// Sets the replica capacity of a mini-SM (builder style).
    pub fn with_replica_cap(mut self, max_replicas: usize) -> Self {
        assert!(max_replicas > 0);
        self.max_replicas_per_minism = max_replicas;
        self
    }

    /// Assigns a partition to the least-loaded mini-SM with room,
    /// scaling out with a fresh mini-SM when none fits.
    pub fn assign(&mut self, partition: &Partition, replica_count: usize) -> MiniSmId {
        let fit = self
            .mini_sms
            .iter()
            .filter(|(_, info)| {
                info.servers + partition.servers.len() <= self.max_servers_per_minism
                    && info.replicas + replica_count <= self.max_replicas_per_minism
            })
            .min_by_key(|(_, info)| info.servers)
            .map(|(id, _)| *id);
        let id = fit.unwrap_or_else(|| {
            let id = MiniSmId(self.next_minism);
            self.next_minism += 1;
            id
        });
        let info = self.mini_sms.entry(id).or_default();
        info.partitions.push(partition.id);
        info.servers += partition.servers.len();
        info.replicas += replica_count;
        self.assignment.insert(partition.id, id);
        id
    }

    /// The mini-SM managing `partition`.
    pub fn minism_of(&self, partition: PartitionId) -> Option<MiniSmId> {
        self.assignment.get(&partition).copied()
    }

    /// Removes a mini-SM (it crashed or its ZK session expired) and
    /// returns the partitions it was managing, now orphaned and waiting
    /// for reassignment via [`PartitionRegistry::assign`]. Removing an
    /// unknown mini-SM is a no-op returning no orphans, so a duplicate
    /// expiry notification is harmless.
    pub fn remove_minism(&mut self, dead: MiniSmId) -> Vec<PartitionId> {
        let Some(info) = self.mini_sms.remove(&dead) else {
            return Vec::new();
        };
        for partition in &info.partitions {
            self.assignment.remove(partition);
        }
        info.partitions
    }

    /// Re-admits a mini-SM after a restart: it comes back empty and
    /// becomes eligible for future [`assign`](Self::assign) calls.
    /// Returns [`SmError::Conflict`] if a mini-SM with that id is still
    /// registered — the caller must fail it over first.
    pub fn restore_minism(&mut self, id: MiniSmId) -> Result<(), SmError> {
        if self.mini_sms.contains_key(&id) {
            return Err(SmError::Conflict(format!(
                "mini-SM {id:?} is already registered"
            )));
        }
        self.mini_sms.insert(id, MiniSmInfo::default());
        self.next_minism = self.next_minism.max(id.raw() + 1);
        Ok(())
    }

    /// All mini-SMs with their loads.
    pub fn mini_sms(&self) -> impl Iterator<Item = (&MiniSmId, &MiniSmInfo)> {
        self.mini_sms.iter()
    }

    /// Number of mini-SMs in service.
    pub fn minism_count(&self) -> usize {
        self.mini_sms.len()
    }

    /// Serializes the registry into the hand-rolled line format stored
    /// in its znode (`smreg v1`). Deterministic: BTreeMap iteration
    /// order, no timestamps.
    pub fn snapshot(&self) -> Vec<u8> {
        use std::fmt::Write as _;
        let mut out = String::from("smreg v1\n");
        let _infallible = writeln!(
            out,
            "caps {} {} {}",
            self.max_servers_per_minism, self.max_replicas_per_minism, self.next_minism
        );
        for (id, info) in &self.mini_sms {
            let _infallible = writeln!(
                out,
                "minism {} {} {}",
                id.raw(),
                info.servers,
                info.replicas
            );
        }
        for (partition, minism) in &self.assignment {
            let _infallible = writeln!(out, "assign {} {}", partition.raw(), minism.raw());
        }
        out.into_bytes()
    }

    /// Restores a registry from [`snapshot`](Self::snapshot) bytes,
    /// replacing all current state. Per-mini-SM partition lists are
    /// rebuilt from the `assign` lines.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SmError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| SmError::InvalidArgument("registry snapshot is not UTF-8".into()))?;
        let mut lines = text.lines();
        if lines.next() != Some("smreg v1") {
            return Err(SmError::InvalidArgument(
                "registry snapshot missing 'smreg v1' header".into(),
            ));
        }
        let bad =
            |line: &str| SmError::InvalidArgument(format!("malformed registry line: {line:?}"));
        let mut mini_sms: BTreeMap<MiniSmId, MiniSmInfo> = BTreeMap::new();
        let mut assignment: BTreeMap<PartitionId, MiniSmId> = BTreeMap::new();
        for line in lines {
            let fields: Vec<&str> = line.split_whitespace().collect();
            match fields.as_slice() {
                ["caps", srv, rep, next] => {
                    self.max_servers_per_minism = srv.parse().map_err(|_| bad(line))?;
                    self.max_replicas_per_minism = rep.parse().map_err(|_| bad(line))?;
                    self.next_minism = next.parse().map_err(|_| bad(line))?;
                }
                ["minism", id, servers, replicas] => {
                    let id = MiniSmId(id.parse().map_err(|_| bad(line))?);
                    let info = mini_sms.entry(id).or_default();
                    info.servers = servers.parse().map_err(|_| bad(line))?;
                    info.replicas = replicas.parse().map_err(|_| bad(line))?;
                }
                ["assign", partition, minism] => {
                    let partition = PartitionId(partition.parse().map_err(|_| bad(line))?);
                    let minism = MiniSmId(minism.parse().map_err(|_| bad(line))?);
                    mini_sms
                        .entry(minism)
                        .or_default()
                        .partitions
                        .push(partition);
                    assignment.insert(partition, minism);
                }
                [] => {}
                _ => return Err(bad(line)),
            }
        }
        self.mini_sms = mini_sms;
        self.assignment = assignment;
        Ok(())
    }
}

/// Read-only indices over control-plane metadata (Figure 14's read
/// service): answers "which partition/mini-SM serves shard X of app Y"
/// and "what does server Z belong to" without touching the mini-SMs.
#[derive(Debug, Default)]
pub struct ReadService {
    shard_to_partition: BTreeMap<(AppId, ShardId), PartitionId>,
    server_to_partition: BTreeMap<ServerId, PartitionId>,
}

impl ReadService {
    /// Creates an empty read service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes a partition's membership.
    pub fn index_partition(&mut self, partition: &Partition) {
        for &shard in &partition.shards {
            self.shard_to_partition
                .insert((partition.app, shard), partition.id);
        }
        for &server in &partition.servers {
            self.server_to_partition.insert(server, partition.id);
        }
    }

    /// The partition holding `(app, shard)`.
    pub fn partition_of_shard(&self, app: AppId, shard: ShardId) -> Option<PartitionId> {
        self.shard_to_partition.get(&(app, shard)).copied()
    }

    /// The partition a server belongs to.
    pub fn partition_of_server(&self, server: ServerId) -> Option<PartitionId> {
        self.server_to_partition.get(&server).copied()
    }
}

/// One mini-SM instance (Figure 14's "Mini-SM Control Plane"): a
/// process hosting the orchestrators of the partitions assigned to it.
///
/// Each partition gets its own [`Orchestrator`]; the mini-SM is a thin
/// multiplexer that owns them and routes by partition id. In production
/// each mini-SM is the Figure 10 control plane (orchestrator +
/// allocator + ZooKeeper client) for its partitions.
pub struct MiniSm {
    /// Identifier.
    pub id: MiniSmId,
    orchestrators: BTreeMap<PartitionId, Orchestrator>,
}

impl MiniSm {
    /// Creates an empty mini-SM.
    pub fn new(id: MiniSmId) -> Self {
        Self {
            id,
            orchestrators: BTreeMap::new(),
        }
    }

    /// Takes over a partition: builds its orchestrator from the
    /// partition's membership and the app's policy.
    pub fn adopt_partition(
        &mut self,
        partition: &Partition,
        policy: AppPolicy,
        config: OrchestratorConfig,
        locate: impl Fn(ServerId) -> sm_types::Location,
        capacity: sm_types::LoadVector,
    ) -> &mut Orchestrator {
        let mut orch = Orchestrator::new(partition.app, policy, config);
        for &server in &partition.servers {
            orch.register_server(server, locate(server), capacity);
        }
        orch.register_shards(partition.shards.iter().copied());
        // entry() hands back the freshly inserted orchestrator without a
        // second lookup that would need an unreachable panic path.
        match self.orchestrators.entry(partition.id) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                e.insert(orch);
                e.into_mut()
            }
            std::collections::btree_map::Entry::Vacant(e) => e.insert(orch),
        }
    }

    /// Releases a partition (it is being rebalanced to another mini-SM).
    ///
    /// Returns [`SmError::NotFound`] if this mini-SM does not hold the
    /// partition — which happens legitimately when a rebalance races a
    /// failover that already moved it. Callers must treat that as "the
    /// partition is elsewhere", not as a fatal bug.
    pub fn release_partition(&mut self, partition: PartitionId) -> Result<Orchestrator, SmError> {
        self.orchestrators.remove(&partition).ok_or_else(|| {
            SmError::NotFound(format!(
                "partition {partition:?} is not hosted by mini-SM {:?} \
                 (released already, or failed over)",
                self.id
            ))
        })
    }

    /// The orchestrator of one partition.
    pub fn orchestrator(&mut self, partition: PartitionId) -> Option<&mut Orchestrator> {
        self.orchestrators.get_mut(&partition)
    }

    /// Partitions currently managed.
    pub fn partitions(&self) -> impl Iterator<Item = &PartitionId> {
        self.orchestrators.keys()
    }

    /// Total shard replicas under management.
    pub fn replica_count(&self) -> usize {
        self.orchestrators
            .values()
            .map(|o| o.assignment().replica_count())
            .sum()
    }
}

/// The global entry point (Figure 14's frontend): resolves an
/// application's shard to the mini-SM responsible for it, composing the
/// application registry, read service, and partition registry.
pub struct Frontend<'a> {
    /// Application registry.
    pub apps: &'a ApplicationRegistry,
    /// Metadata indices.
    pub reads: &'a ReadService,
    /// Partition-to-mini-SM assignment.
    pub partitions: &'a PartitionRegistry,
}

impl<'a> Frontend<'a> {
    /// The mini-SM managing `(app, shard)`, if registered.
    pub fn minism_for_shard(&self, app: AppId, shard: ShardId) -> Option<MiniSmId> {
        let partition = self.reads.partition_of_shard(app, shard)?;
        self.partitions.minism_of(partition)
    }

    /// The mini-SM managing a server, if registered.
    pub fn minism_for_server(&self, server: ServerId) -> Option<MiniSmId> {
        let partition = self.reads.partition_of_server(server)?;
        self.partitions.minism_of(partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn servers(n: u32) -> Vec<ServerId> {
        (0..n).map(ServerId).collect()
    }
    fn shards(n: u64) -> Vec<ShardId> {
        (0..n).map(ShardId).collect()
    }

    #[test]
    fn registry_round_trip() {
        let mut reg = ApplicationRegistry::new();
        let a = reg.register("kvstore", AppPolicy::primary_only());
        let b = reg.register("queue", AppPolicy::secondary_only(2));
        assert_ne!(a, b);
        assert_eq!(reg.get(a).unwrap().name, "kvstore");
        assert_eq!(reg.len(), 2);
        reg.add_partition(a, PartitionId(0));
        assert_eq!(reg.get(a).unwrap().partitions, vec![PartitionId(0)]);
    }

    #[test]
    fn small_app_is_one_partition() {
        let mut mgr = ApplicationManager::new(1000);
        let parts = mgr.partition_app(AppId(0), &servers(10), &shards(100));
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].servers.len(), 10);
        assert_eq!(parts[0].shards.len(), 100);
    }

    #[test]
    fn large_app_splits_evenly() {
        let mut mgr = ApplicationManager::new(100);
        let parts = mgr.partition_app(AppId(0), &servers(250), &shards(1000));
        assert_eq!(parts.len(), 3);
        // Servers split near-evenly; shards proportional.
        for p in &parts {
            assert!(p.servers.len() >= 83 && p.servers.len() <= 84);
            assert!(p.shards.len() >= 333 && p.shards.len() <= 334);
        }
        // Disjoint shard sets.
        let mut all: Vec<ShardId> = parts.iter().flat_map(|p| p.shards.clone()).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 1000);
    }

    #[test]
    fn partition_ids_are_unique_across_apps() {
        let mut mgr = ApplicationManager::new(100);
        let p1 = mgr.partition_app(AppId(0), &servers(150), &shards(10));
        let p2 = mgr.partition_app(AppId(1), &servers(150), &shards(10));
        let mut ids: Vec<PartitionId> = p1.iter().chain(p2.iter()).map(|p| p.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn partition_registry_scales_out() {
        let mut mgr = ApplicationManager::new(50);
        let mut reg = PartitionRegistry::new(100);
        // 8 partitions of 50 servers: 2 per mini-SM -> 4 mini-SMs.
        let parts = mgr.partition_app(AppId(0), &servers(400), &shards(800));
        for p in &parts {
            reg.assign(p, p.shards.len() * 2);
        }
        assert_eq!(reg.minism_count(), 4);
        for (_, info) in reg.mini_sms() {
            assert_eq!(info.servers, 100);
            assert_eq!(info.partitions.len(), 2);
        }
        // Every partition resolvable.
        for p in &parts {
            assert!(reg.minism_of(p.id).is_some());
        }
    }

    #[test]
    fn registry_prefers_least_loaded() {
        let mut mgr = ApplicationManager::new(10);
        let mut reg = PartitionRegistry::new(100);
        let small = mgr.partition_app(AppId(0), &servers(10), &shards(1));
        let m0 = reg.assign(&small[0], 1);
        // Next assignment goes to the same (only) mini-SM while it fits.
        let small2 = mgr.partition_app(AppId(1), &servers(10), &shards(1));
        let m1 = reg.assign(&small2[0], 1);
        assert_eq!(m0, m1);
    }

    #[test]
    fn minism_hosts_partition_orchestrators() {
        use sm_allocator::{AllocConfig, MoveCaps};
        use sm_types::{LoadVector, Location, MachineId, Metric, RegionId};
        let mut mgr = ApplicationManager::new(4);
        let parts = mgr.partition_app(AppId(0), &servers(8), &shards(16));
        assert_eq!(parts.len(), 2);
        let mut minism = MiniSm::new(MiniSmId(0));
        let config = OrchestratorConfig {
            graceful_migration: true,
            move_caps: MoveCaps::default(),
            alloc: AllocConfig::new(vec![Metric::ShardCount.id()]),
            skip_cutover_ack: false,
        };
        for p in &parts {
            let orch = minism.adopt_partition(
                p,
                AppPolicy::primary_only(),
                config.clone(),
                |s| Location {
                    region: RegionId(0),
                    datacenter: 0,
                    rack: s.raw(),
                    machine: MachineId(s.raw()),
                },
                LoadVector::single(Metric::ShardCount.id(), 100.0),
            );
            // Bootstrap each partition and settle synchronously.
            orch.run_emergency();
            loop {
                let cmds = orch.take_commands();
                if cmds.is_empty() {
                    break;
                }
                for c in cmds {
                    if let crate::api::OrchCommand::Rpc { server, rpc } = c {
                        orch.rpc_acked(server, rpc);
                    }
                }
            }
        }
        assert_eq!(minism.partitions().count(), 2);
        assert_eq!(minism.replica_count(), 16);
        // Partitions can be released for rebalancing to another mini-SM.
        let moved = minism.release_partition(parts[0].id).expect("released");
        assert_eq!(moved.assignment().shard_count(), 8);
        assert_eq!(minism.replica_count(), 8);
        // Releasing again — e.g. a rebalance racing a failover that
        // already moved the partition — is an error, not a panic.
        let again = minism.release_partition(parts[0].id);
        assert!(matches!(again, Err(SmError::NotFound(_))));
        let unknown = minism.release_partition(PartitionId(999));
        assert!(matches!(unknown, Err(SmError::NotFound(_))));
    }

    #[test]
    fn registry_failover_reassigns_orphans() {
        let mut mgr = ApplicationManager::new(10);
        let mut reg = PartitionRegistry::new(20);
        let parts = mgr.partition_app(AppId(0), &servers(40), &shards(40));
        for p in &parts {
            reg.assign(p, p.shards.len());
        }
        assert_eq!(reg.minism_count(), 2);
        let dead = reg.minism_of(parts[0].id).expect("assigned");
        let orphans = reg.remove_minism(dead);
        assert!(!orphans.is_empty());
        for o in &orphans {
            assert!(reg.minism_of(*o).is_none(), "orphan still assigned");
        }
        // Orphans land on survivors or freshly minted mini-SMs, never
        // back on the dead id.
        for p in parts.iter().filter(|p| orphans.contains(&p.id)) {
            let new_owner = reg.assign(p, p.shards.len());
            assert_ne!(new_owner, dead);
        }
        // A duplicate expiry notification is a harmless no-op.
        assert!(reg.remove_minism(dead).is_empty());
        // After the failover completed, the restarted mini-SM may
        // rejoin empty; rejoining while registered is a conflict.
        reg.restore_minism(dead).expect("rejoin");
        let conflict = reg.restore_minism(dead);
        assert!(
            matches!(conflict, Err(SmError::Conflict(_))),
            "{conflict:?}"
        );
    }

    #[test]
    fn registry_snapshot_round_trips() {
        let mut mgr = ApplicationManager::new(10);
        let mut reg = PartitionRegistry::new(20).with_replica_cap(500);
        let parts = mgr.partition_app(AppId(0), &servers(50), &shards(60));
        for p in &parts {
            reg.assign(p, p.shards.len());
        }
        let snap = reg.snapshot();
        let mut restored = PartitionRegistry::new(1);
        restored.restore(&snap).expect("valid snapshot");
        assert_eq!(restored.minism_count(), reg.minism_count());
        for p in &parts {
            assert_eq!(restored.minism_of(p.id), reg.minism_of(p.id));
        }
        assert_eq!(restored.snapshot(), snap, "restore is lossless");
        // New assignments after restore never reuse a minted id.
        let extra = mgr.partition_app(AppId(1), &servers(30), &shards(10));
        let mut minted: Vec<MiniSmId> = reg.mini_sms().map(|(id, _)| *id).collect();
        for p in &extra {
            minted.push(restored.assign(p, p.shards.len()));
        }
        minted.sort();
        let uniq = minted.len();
        minted.dedup();
        assert!(minted.len() <= uniq);
        // Corrupt snapshots are rejected, not panicked on.
        assert!(restored.restore(b"garbage").is_err());
        assert!(restored.restore(b"smreg v1\nminism x y z\n").is_err());
    }

    #[test]
    fn frontend_resolves_shard_to_minism() {
        let mut registry = ApplicationRegistry::new();
        let app = registry.register("kv", AppPolicy::primary_only());
        let mut mgr = ApplicationManager::new(50);
        let mut partitions = PartitionRegistry::new(60);
        let mut reads = ReadService::new();
        for p in mgr.partition_app(app, &servers(100), &shards(400)) {
            partitions.assign(&p, p.shards.len());
            reads.index_partition(&p);
        }
        let frontend = Frontend {
            apps: &registry,
            reads: &reads,
            partitions: &partitions,
        };
        let m = frontend
            .minism_for_shard(app, ShardId(123))
            .expect("resolved");
        let via_server = frontend.minism_for_server(ServerId(3)).expect("resolved");
        let _ = (m, via_server);
        assert!(frontend.minism_for_shard(AppId(9), ShardId(0)).is_none());
    }

    #[test]
    fn read_service_indices() {
        let mut mgr = ApplicationManager::new(100);
        let parts = mgr.partition_app(AppId(3), &servers(150), &shards(10));
        let mut rs = ReadService::new();
        for p in &parts {
            rs.index_partition(p);
        }
        for p in &parts {
            for &s in &p.shards {
                assert_eq!(rs.partition_of_shard(AppId(3), s), Some(p.id));
            }
            for &srv in &p.servers {
                assert_eq!(rs.partition_of_server(srv), Some(p.id));
            }
        }
        assert!(rs.partition_of_shard(AppId(9), ShardId(0)).is_none());
    }
}
