//! The TaskController: negotiating container operations (§4.1).
//!
//! Cluster managers (one per region) periodically send the controller
//! their pending container operations. The controller approves the
//! maximal subset that keeps the application inside two caps:
//!
//! - a **global cap** on concurrent container operations, counting
//!   containers already down for any reason;
//! - a **per-shard cap** on simultaneously unavailable replicas,
//!   counting replicas already down due to unplanned failures.
//!
//! Where the application's drain policy requires it, the controller
//! first asks the orchestrator to drain the affected server and only
//! approves the operation once the container hosts nothing. Because one
//! controller serves every region's cluster manager, it is the piece
//! that prevents two regions from independently restarting two replicas
//! of the same shard (§2.3's motivating example).

use sm_cluster::{ContainerOp, OpId};
use sm_types::{AppPolicy, ContainerId, DrainPolicy, RegionId, ReplicaRole, ServerId, ShardId};
use std::collections::{BTreeMap, BTreeSet};

/// A snapshot of shard availability the caller provides at review time.
#[derive(Clone, Debug, Default)]
pub struct AvailabilityView {
    /// Replicas hosted per container right now.
    pub shards_on: BTreeMap<ContainerId, Vec<(ShardId, ReplicaRole)>>,
    /// Replicas already unavailable per shard (unplanned outages).
    pub failed_replicas: BTreeMap<ShardId, u32>,
    /// Containers already down for any reason outside the controller's
    /// own approvals.
    pub containers_down: usize,
}

/// The controller's verdict on one review round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TcReview {
    /// Operations the cluster manager may execute now.
    pub approved: Vec<OpId>,
    /// Servers the orchestrator must drain before the corresponding
    /// operations can be approved (review again once drained).
    pub drains_needed: Vec<ServerId>,
}

#[derive(Clone, Debug)]
struct InFlightOp {
    shards: Vec<ShardId>,
}

/// The per-application TaskController.
pub struct TaskController {
    policy: AppPolicy,
    /// Approved operations not yet reported finished.
    in_flight: BTreeMap<(RegionId, OpId), InFlightOp>,
    /// Servers we have asked the orchestrator to drain.
    drains_requested: BTreeSet<ServerId>,
}

impl TaskController {
    /// Creates a controller enforcing `policy`'s caps.
    pub fn new(policy: AppPolicy) -> Self {
        Self {
            policy,
            in_flight: BTreeMap::new(),
            drains_requested: BTreeSet::new(),
        }
    }

    /// Number of approved, unfinished operations across all regions.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Replicas of `shard` made unavailable by in-flight approved ops.
    fn planned_unavailable(&self, shard: ShardId) -> u32 {
        self.in_flight
            .values()
            .map(|op| op.shards.iter().filter(|s| **s == shard).count() as u32)
            .sum()
    }

    /// Whether this container needs draining before its op may proceed,
    /// per the drain policies of §2.2.5.
    fn needs_drain(&self, replicas: &[(ShardId, ReplicaRole)]) -> bool {
        replicas.iter().any(|(_, role)| {
            let policy = if role.is_primary() {
                self.policy.drain_primary
            } else {
                self.policy.drain_secondary
            };
            policy == DrainPolicy::Drain
        })
    }

    /// Reviews one cluster manager's pending operations (the TaskControl
    /// notification of §4.1) against the availability snapshot.
    ///
    /// Containers and application servers share ids in this
    /// reproduction, so `ContainerId(n)` maps to `ServerId(n)`.
    pub fn review(
        &mut self,
        region: RegionId,
        ops: &[ContainerOp],
        view: &AvailabilityView,
    ) -> TcReview {
        let mut review = TcReview::default();
        let global_cap = self.policy.max_concurrent_container_ops as usize;
        let shard_cap = self.policy.max_unavailable_replicas_per_shard;

        for op in ops {
            // Global cap counts already-down containers, everything we
            // have approved fleet-wide, and servers being drained for
            // ops we are about to approve — otherwise every pending op
            // would start a drain at once and shards would have nowhere
            // left to go.
            let outstanding =
                self.in_flight.len() + self.drains_requested.len() + view.containers_down;
            if outstanding >= global_cap {
                break;
            }
            let empty = Vec::new();
            let replicas = view.shards_on.get(&op.container).unwrap_or(&empty);

            if !replicas.is_empty() && self.needs_drain(replicas) {
                let server = ServerId(op.container.raw());
                if self.drains_requested.insert(server) {
                    review.drains_needed.push(server);
                }
                continue; // hold until drained
            }

            // Per-shard cap: every replica this op takes down must stay
            // within budget, counting failures and other in-flight ops.
            // A cap of N means at most N replicas of a shard may be
            // unavailable at once, counting failures, other in-flight
            // ops, and the replica this op takes down.
            let violates = replicas.iter().any(|(shard, _)| {
                let failed = view.failed_replicas.get(shard).copied().unwrap_or(0);
                failed + self.planned_unavailable(*shard) + 1 > shard_cap
            });
            if violates {
                continue;
            }
            self.in_flight.insert(
                (region, op.id),
                InFlightOp {
                    shards: replicas.iter().map(|(s, _)| *s).collect(),
                },
            );
            review.approved.push(op.id);
        }
        review
    }

    /// Records that an approved operation finished (the cluster manager's
    /// completion notice), freeing its cap budget.
    pub fn op_finished(&mut self, region: RegionId, op: OpId) {
        self.in_flight.remove(&(region, op));
    }

    /// Records that a requested drain completed; the held operation will
    /// pass review next round (its container now hosts nothing).
    pub fn drain_complete(&mut self, server: ServerId) {
        self.drains_requested.remove(&server);
    }

    /// Servers with an outstanding drain request.
    pub fn pending_drains(&self) -> Vec<ServerId> {
        self.drains_requested.iter().copied().collect()
    }

    /// Records that a server died outright (ZK session expired): any
    /// drain requested for it can never complete normally — the
    /// orchestrator already dropped its replicas — so the request is
    /// discarded rather than held forever.
    pub fn server_lost(&mut self, server: ServerId) {
        self.drains_requested.remove(&server);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_cluster::{OpKind, OpReason};
    use sm_types::AppPolicy;

    fn op(id: u64, container: u32) -> ContainerOp {
        ContainerOp {
            id: OpId(id),
            container: ContainerId(container),
            kind: OpKind::Restart,
            reason: OpReason::Upgrade,
        }
    }

    fn view_with(
        entries: &[(u32, &[(u64, ReplicaRole)])],
        failed: &[(u64, u32)],
        down: usize,
    ) -> AvailabilityView {
        AvailabilityView {
            shards_on: entries
                .iter()
                .map(|(c, shards)| {
                    (
                        ContainerId(*c),
                        shards.iter().map(|(s, r)| (ShardId(*s), *r)).collect(),
                    )
                })
                .collect(),
            failed_replicas: failed.iter().map(|(s, n)| (ShardId(*s), *n)).collect(),
            containers_down: down,
        }
    }

    fn no_drain_policy(global: u32, per_shard: u32) -> AppPolicy {
        let mut p = AppPolicy::secondary_only(2);
        p.max_concurrent_container_ops = global;
        p.max_unavailable_replicas_per_shard = per_shard;
        p
    }

    #[test]
    fn global_cap_limits_approvals() {
        let mut tc = TaskController::new(no_drain_policy(2, 5));
        let view = view_with(
            &[
                (0, &[(10, ReplicaRole::Secondary)]),
                (1, &[(11, ReplicaRole::Secondary)]),
                (2, &[(12, ReplicaRole::Secondary)]),
            ],
            &[],
            0,
        );
        let r = tc.review(RegionId(0), &[op(0, 0), op(1, 1), op(2, 2)], &view);
        assert_eq!(r.approved.len(), 2, "global cap 2");
        assert_eq!(tc.in_flight(), 2);
        // Finishing one frees a slot.
        tc.op_finished(RegionId(0), OpId(0));
        let r = tc.review(RegionId(0), &[op(2, 2)], &view);
        assert_eq!(r.approved, vec![OpId(2)]);
    }

    #[test]
    fn already_down_containers_count_toward_global_cap() {
        let mut tc = TaskController::new(no_drain_policy(2, 5));
        let view = view_with(&[(0, &[(10, ReplicaRole::Secondary)])], &[], 2);
        let r = tc.review(RegionId(0), &[op(0, 0)], &view);
        assert!(r.approved.is_empty(), "2 containers already down");
    }

    #[test]
    fn per_shard_cap_blocks_second_replica() {
        // Cap 1: at most one replica of a shard unavailable at a time.
        let mut tc = TaskController::new(no_drain_policy(10, 1));
        // Containers 0 and 1 both host a replica of shard 7.
        let view = view_with(
            &[
                (0, &[(7, ReplicaRole::Secondary)]),
                (1, &[(7, ReplicaRole::Secondary)]),
            ],
            &[],
            0,
        );
        let r = tc.review(RegionId(0), &[op(0, 0), op(1, 1)], &view);
        assert_eq!(r.approved, vec![OpId(0)], "second replica blocked");
        tc.op_finished(RegionId(0), OpId(0));
        let r = tc.review(RegionId(0), &[op(1, 1)], &view);
        assert_eq!(r.approved, vec![OpId(1)]);
    }

    #[test]
    fn cross_region_coordination_prevents_double_outage() {
        // The §2.3 scenario: two regional cluster managers each want to
        // restart a container; the two containers hold the two replicas
        // of shard 7. One controller sees both.
        let mut tc = TaskController::new(no_drain_policy(10, 1));
        let view = view_with(
            &[
                (0, &[(7, ReplicaRole::Secondary)]),
                (100, &[(7, ReplicaRole::Secondary)]),
            ],
            &[],
            0,
        );
        let r1 = tc.review(RegionId(0), &[op(0, 0)], &view);
        assert_eq!(r1.approved, vec![OpId(0)]);
        // Region 1's op on the other replica must wait.
        let r2 = tc.review(RegionId(1), &[op(0, 100)], &view);
        assert!(r2.approved.is_empty());
        // After region 0 finishes, region 1 proceeds.
        tc.op_finished(RegionId(0), OpId(0));
        let r2 = tc.review(RegionId(1), &[op(0, 100)], &view);
        assert_eq!(r2.approved, vec![OpId(0)]);
    }

    #[test]
    fn failed_replicas_count_against_shard_cap() {
        let mut tc = TaskController::new(no_drain_policy(10, 1));
        // Shard 7 already has one failed replica; restarting its other
        // replica would take both down.
        let view = view_with(&[(0, &[(7, ReplicaRole::Secondary)])], &[(7, 1)], 0);
        let r = tc.review(RegionId(0), &[op(0, 0)], &view);
        assert!(r.approved.is_empty());
        // Once the failure heals, the op may proceed.
        let healed = view_with(&[(0, &[(7, ReplicaRole::Secondary)])], &[], 0);
        let r = tc.review(RegionId(0), &[op(0, 0)], &healed);
        assert_eq!(r.approved, vec![OpId(0)]);
    }

    #[test]
    fn drain_requested_for_primaries_then_approved() {
        // Primary-only policy drains primaries before restarts.
        let mut tc = TaskController::new(AppPolicy::primary_only());
        let view = view_with(&[(3, &[(7, ReplicaRole::Primary)])], &[], 0);
        let r = tc.review(RegionId(0), &[op(0, 3)], &view);
        assert!(r.approved.is_empty());
        assert_eq!(r.drains_needed, vec![ServerId(3)]);
        assert_eq!(tc.pending_drains(), vec![ServerId(3)]);

        // Second review while still draining: no duplicate request.
        let r = tc.review(RegionId(0), &[op(0, 3)], &view);
        assert!(r.drains_needed.is_empty());

        // Drained: container hosts nothing now.
        tc.drain_complete(ServerId(3));
        let drained_view = view_with(&[(3, &[])], &[], 0);
        let r = tc.review(RegionId(0), &[op(0, 3)], &drained_view);
        assert_eq!(r.approved, vec![OpId(0)]);
        assert!(tc.pending_drains().is_empty());
    }

    #[test]
    fn lost_server_clears_pending_drain() {
        // A drain was requested, then the server's ZK session expired:
        // the drain can never complete, so the request must not linger.
        let mut tc = TaskController::new(AppPolicy::primary_only());
        let view = view_with(&[(3, &[(7, ReplicaRole::Primary)])], &[], 0);
        let r = tc.review(RegionId(0), &[op(0, 3)], &view);
        assert_eq!(r.drains_needed, vec![ServerId(3)]);
        tc.server_lost(ServerId(3));
        assert!(tc.pending_drains().is_empty());
        // The container now hosts nothing (its replicas were dropped by
        // emergency re-placement), so the op passes a later review.
        let dead_view = view_with(&[(3, &[])], &[], 0);
        let r = tc.review(RegionId(0), &[op(0, 3)], &dead_view);
        assert_eq!(r.approved, vec![OpId(0)]);
    }

    #[test]
    fn secondaries_restart_without_drain_under_cap() {
        // Default primary-only policy: secondaries don't drain.
        let mut tc = TaskController::new(AppPolicy::primary_secondary(2));
        let view = view_with(
            &[(
                0,
                &[(7, ReplicaRole::Secondary), (8, ReplicaRole::Secondary)],
            )],
            &[],
            0,
        );
        let r = tc.review(RegionId(0), &[op(0, 0)], &view);
        assert_eq!(r.approved, vec![OpId(0)], "no drain for secondaries");
        assert!(r.drains_needed.is_empty());
    }

    #[test]
    fn empty_container_always_approvable_under_global_cap() {
        let mut tc = TaskController::new(AppPolicy::primary_only());
        let view = view_with(&[], &[], 0);
        let r = tc.review(RegionId(0), &[op(0, 9)], &view);
        assert_eq!(r.approved, vec![OpId(0)]);
    }
}
