//! The shard scaler (§3.4, §6.1): per-shard replica-count adjustment.
//!
//! In response to load changes on individual shards, SM can adjust each
//! shard's replica count independently — scaling out a hot shard by
//! adding read replicas and scaling a cold one back in. The scaler
//! watches a single scalar load signal per shard (e.g. CPU or the
//! synthetic metric) and keeps per-replica load inside a band.

use sm_types::{LoadVector, MetricId, ShardId};
use std::collections::BTreeMap;

/// Scaler tuning.
#[derive(Clone, Copy, Debug)]
pub struct ShardScalerConfig {
    /// The load metric the scaler watches.
    pub metric: MetricId,
    /// Add a replica when per-replica load exceeds this.
    pub scale_up_above: f64,
    /// Remove a replica when per-replica load falls below this.
    pub scale_down_below: f64,
    /// Replica-count floor.
    pub min_replicas: u32,
    /// Replica-count ceiling.
    pub max_replicas: u32,
}

impl ShardScalerConfig {
    /// A scaler keeping per-replica load within `[low, high]` on `metric`.
    ///
    /// # Panics
    ///
    /// Panics unless `low < high` and `min >= 1`.
    pub fn new(metric: MetricId, low: f64, high: f64, min: u32, max: u32) -> Self {
        assert!(low < high, "band must be non-empty");
        assert!(min >= 1 && min <= max, "bad replica bounds");
        Self {
            metric,
            scale_up_above: high,
            scale_down_below: low,
            min_replicas: min,
            max_replicas: max,
        }
    }
}

/// One recommended change.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScaleDecision {
    /// The shard to resize.
    pub shard: ShardId,
    /// Current replica count.
    pub from: u32,
    /// Recommended replica count.
    pub to: u32,
}

/// The shard scaler.
#[derive(Clone, Debug)]
pub struct ShardScaler {
    config: ShardScalerConfig,
}

impl ShardScaler {
    /// Creates a scaler.
    pub fn new(config: ShardScalerConfig) -> Self {
        Self { config }
    }

    /// Evaluates every shard: `loads` holds each shard's *total* load
    /// (across all its replicas) and `replicas` its current replica
    /// count. Returns the recommended changes, hysteresis applied — a
    /// shard is only resized when the new count would put per-replica
    /// load back inside the band.
    pub fn evaluate(
        &self,
        loads: &BTreeMap<ShardId, LoadVector>,
        replicas: &BTreeMap<ShardId, u32>,
    ) -> Vec<ScaleDecision> {
        let mut out = Vec::new();
        for (&shard, load) in loads {
            let n = replicas.get(&shard).copied().unwrap_or(1).max(1);
            let total = load.get(self.config.metric);
            let per_replica = total / f64::from(n);
            let mut target = n;
            if per_replica > self.config.scale_up_above {
                // Smallest count that brings per-replica load to or
                // below the upper bound.
                target = (total / self.config.scale_up_above).ceil() as u32;
            } else if per_replica < self.config.scale_down_below && n > self.config.min_replicas {
                // Largest count that keeps per-replica load under the
                // upper bound after shrinking.
                let candidate = (total / self.config.scale_up_above).ceil().max(1.0) as u32;
                if candidate < n {
                    target = candidate;
                }
            }
            let target = target.clamp(self.config.min_replicas, self.config.max_replicas);
            if target != n {
                out.push(ScaleDecision {
                    shard,
                    from: n,
                    to: target,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_types::Metric;

    fn cfg() -> ShardScalerConfig {
        ShardScalerConfig::new(Metric::Cpu.id(), 2.0, 10.0, 1, 8)
    }

    fn eval(total_load: f64, replicas: u32) -> Vec<ScaleDecision> {
        let scaler = ShardScaler::new(cfg());
        let mut loads = BTreeMap::new();
        loads.insert(ShardId(0), LoadVector::single(Metric::Cpu.id(), total_load));
        let mut reps = BTreeMap::new();
        reps.insert(ShardId(0), replicas);
        scaler.evaluate(&loads, &reps)
    }

    #[test]
    fn steady_load_makes_no_change() {
        assert!(eval(15.0, 2).is_empty(), "7.5 per replica is in band");
    }

    #[test]
    fn hot_shard_scales_up() {
        let d = eval(45.0, 2); // 22.5 per replica > 10
        assert_eq!(
            d,
            vec![ScaleDecision {
                shard: ShardId(0),
                from: 2,
                to: 5 // 45/10 = 4.5 -> 5 replicas -> 9.0 each
            }]
        );
    }

    #[test]
    fn cold_shard_scales_down() {
        let d = eval(3.0, 4); // 0.75 per replica < 2
        assert_eq!(
            d,
            vec![ScaleDecision {
                shard: ShardId(0),
                from: 4,
                to: 1
            }]
        );
    }

    #[test]
    fn respects_bounds() {
        // Enormous load still capped at max_replicas.
        let d = eval(1000.0, 2);
        assert_eq!(d[0].to, 8);
        // Cold shard never below min.
        let d = eval(0.0, 1);
        assert!(d.is_empty());
    }

    #[test]
    fn hysteresis_avoids_flapping() {
        // 19 load on 2 replicas = 9.5 each, just under the top: stay.
        assert!(eval(19.0, 2).is_empty());
        // 11 load on 2 replicas = 5.5 each: in band, stay (no shrink to
        // 1 which would give 11 > 10).
        assert!(eval(11.0, 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "band must be non-empty")]
    fn bad_band_rejected() {
        ShardScalerConfig::new(Metric::Cpu.id(), 5.0, 2.0, 1, 4);
    }
}
